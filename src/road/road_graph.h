#ifndef COSKQ_ROAD_ROAD_GRAPH_H_
#define COSKQ_ROAD_ROAD_GRAPH_H_

#include <stdint.h>

#include <limits>
#include <vector>

#include "geo/point.h"

namespace coskq {

/// Extension substrate: an undirected weighted road network. The SIGMOD
/// 2013 paper names "other distance metrics such as road networks" as the
/// primary future direction; this module provides the network and shortest-
/// path machinery the road-network CoSKQ solvers run on.
using RoadNodeId = uint32_t;

inline constexpr RoadNodeId kInvalidRoadNode =
    std::numeric_limits<RoadNodeId>::max();

inline constexpr double kUnreachable =
    std::numeric_limits<double>::infinity();

class RoadGraph {
 public:
  RoadGraph() = default;

  /// Adds a node at `location`; returns its id.
  RoadNodeId AddNode(const Point& location);

  /// Adds an undirected edge of the given positive length. Parallel edges
  /// are allowed (the shorter one wins during search).
  void AddEdge(RoadNodeId a, RoadNodeId b, double length);

  /// Adds an undirected edge whose length is the Euclidean distance between
  /// the endpoints' locations.
  void AddEuclideanEdge(RoadNodeId a, RoadNodeId b);

  size_t NumNodes() const { return locations_.size(); }
  size_t NumEdges() const { return num_edges_; }
  const Point& location(RoadNodeId id) const;

  struct Edge {
    RoadNodeId to;
    double length;
  };
  const std::vector<Edge>& Neighbors(RoadNodeId id) const;

  /// Single-source shortest-path distances (Dijkstra) from `source` to all
  /// nodes; unreachable nodes get kUnreachable. If `radius` is finite, the
  /// search stops once every unsettled node is farther than `radius`
  /// (distances beyond the radius may be reported as kUnreachable).
  std::vector<double> ShortestDistances(
      RoadNodeId source, double radius = kUnreachable) const;

  /// Network distance between two nodes (single Dijkstra, early exit).
  double ShortestDistance(RoadNodeId from, RoadNodeId to) const;

  /// The node nearest to `p` in Euclidean distance (linear scan; the
  /// generator keeps graphs memory-resident and moderate-sized).
  /// kInvalidRoadNode on an empty graph.
  RoadNodeId NearestNode(const Point& p) const;

  /// True iff every node can reach node 0 (or the graph is empty).
  bool IsConnected() const;

 private:
  std::vector<Point> locations_;
  std::vector<std::vector<Edge>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace coskq

#endif  // COSKQ_ROAD_ROAD_GRAPH_H_
