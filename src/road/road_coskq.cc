#include "road/road_coskq.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

double RoadDistanceOracle::Between(RoadNodeId a, RoadNodeId b) {
  if (a == b) {
    return 0.0;
  }
  // Use whichever source is already cached; otherwise cache `a`.
  auto it = cache_.find(b);
  if (it != cache_.end()) {
    return it->second[a];
  }
  return From(a)[b];
}

const std::vector<double>& RoadDistanceOracle::From(RoadNodeId source) {
  auto it = cache_.find(source);
  if (it == cache_.end()) {
    it = cache_.emplace(source, graph_->ShortestDistances(source)).first;
  }
  return it->second;
}

namespace {

// Incremental network-distance cost tracker (the road twin of
// SetCostTracker): push/pop in LIFO order, exact components, monotone under
// Push.
class RoadCostTracker {
 public:
  RoadCostTracker(const RoadWorkload* workload, RoadDistanceOracle* oracle,
                  RoadNodeId query_node, CostType type)
      : workload_(workload),
        oracle_(oracle),
        query_node_(query_node),
        type_(type) {
    stack_.push_back(CostComponents{});
  }

  void Push(ObjectId id) {
    const RoadNodeId node = workload_->node_of[id];
    CostComponents next = stack_.back();
    next.max_query_dist =
        std::max(next.max_query_dist, oracle_->Between(query_node_, node));
    for (RoadNodeId existing : nodes_) {
      next.max_pairwise_dist =
          std::max(next.max_pairwise_dist, oracle_->Between(existing, node));
    }
    ids_.push_back(id);
    nodes_.push_back(node);
    stack_.push_back(next);
  }

  void Pop() {
    COSKQ_CHECK(!ids_.empty());
    ids_.pop_back();
    nodes_.pop_back();
    stack_.pop_back();
  }

  double cost() const { return CombineCost(type_, stack_.back()); }
  const std::vector<ObjectId>& ids() const { return ids_; }
  bool Contains(ObjectId id) const {
    return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
  }

 private:
  const RoadWorkload* workload_;
  RoadDistanceOracle* oracle_;
  RoadNodeId query_node_;
  CostType type_;
  std::vector<ObjectId> ids_;
  std::vector<RoadNodeId> nodes_;
  std::vector<CostComponents> stack_;
};

struct RoadCandidates {
  bool feasible = false;
  /// N(q) under network distance and its cost.
  std::vector<ObjectId> nn_set;
  double nn_cost = 0.0;
  /// Relevant objects with finite network distance <= nn_cost, ascending.
  std::vector<ObjectId> cands;
  /// Per-query-keyword candidate indices into `cands`.
  std::vector<std::vector<uint32_t>> lists;
};

RoadCandidates CollectCandidates(const RoadWorkload& workload,
                                 const RoadCoskqQuery& query, CostType type,
                                 RoadDistanceOracle* oracle) {
  RoadCandidates out;
  const std::vector<double>& dist_q = oracle->From(query.node);
  const Dataset& dataset = workload.dataset;

  // Network N(q): the nearest reachable object per query keyword.
  std::vector<ObjectId> nn(query.keywords.size(), kInvalidObjectId);
  std::vector<double> nn_dist(query.keywords.size(), kUnreachable);
  for (const SpatialObject& obj : dataset.objects()) {
    const double d = dist_q[workload.node_of[obj.id]];
    if (d == kUnreachable) {
      continue;
    }
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      if (d < nn_dist[k] && obj.ContainsTerm(query.keywords[k])) {
        nn_dist[k] = d;
        nn[k] = obj.id;
      }
    }
  }
  for (ObjectId id : nn) {
    if (id == kInvalidObjectId) {
      return out;  // Some keyword is not coverable.
    }
    out.nn_set.push_back(id);
  }
  std::sort(out.nn_set.begin(), out.nn_set.end());
  out.nn_set.erase(std::unique(out.nn_set.begin(), out.nn_set.end()),
                   out.nn_set.end());
  out.feasible = true;
  out.nn_cost =
      EvaluateRoadCost(type, workload, oracle, query.node, out.nn_set);

  // Candidates: any member of a better set is within network distance
  // curCost of the query (its query distance alone already costs that).
  for (const SpatialObject& obj : dataset.objects()) {
    const double d = dist_q[workload.node_of[obj.id]];
    if (d <= out.nn_cost && obj.ContainsAnyOf(query.keywords)) {
      out.cands.push_back(obj.id);
    }
  }
  std::sort(out.cands.begin(), out.cands.end(),
            [&](ObjectId a, ObjectId b) {
              const double da = dist_q[workload.node_of[a]];
              const double db = dist_q[workload.node_of[b]];
              if (da != db) {
                return da < db;
              }
              return a < b;
            });
  out.lists.resize(query.keywords.size());
  for (uint32_t i = 0; i < out.cands.size(); ++i) {
    const SpatialObject& obj = dataset.object(out.cands[i]);
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      if (obj.ContainsTerm(query.keywords[k])) {
        out.lists[k].push_back(i);
      }
    }
  }
  return out;
}

}  // namespace

double EvaluateRoadCost(CostType type, const RoadWorkload& workload,
                        RoadDistanceOracle* oracle, RoadNodeId query_node,
                        const std::vector<ObjectId>& set) {
  CostComponents components;
  for (size_t i = 0; i < set.size(); ++i) {
    const RoadNodeId node_i = workload.node_of[set[i]];
    components.max_query_dist = std::max(
        components.max_query_dist, oracle->Between(query_node, node_i));
    for (size_t j = i + 1; j < set.size(); ++j) {
      components.max_pairwise_dist =
          std::max(components.max_pairwise_dist,
                   oracle->Between(node_i, workload.node_of[set[j]]));
    }
  }
  return CombineCost(type, components);
}

CoskqResult SolveRoadCoskqExact(const RoadWorkload& workload,
                                const RoadCoskqQuery& query, CostType type) {
  WallTimer timer;
  CoskqResult result;
  if (query.keywords.empty()) {
    result.feasible = true;
    result.cost = 0.0;
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  RoadDistanceOracle oracle(&workload.graph);
  RoadCandidates c = CollectCandidates(workload, query, type, &oracle);
  if (!c.feasible) {
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = c.nn_set;
  double cur_cost = c.nn_cost;
  result.stats.candidates = c.cands.size();

  RoadCostTracker tracker(&workload, &oracle, query.node, type);
  const std::vector<double>& dist_q = oracle.From(query.node);

  struct Search {
    const RoadWorkload& workload;
    const RoadCoskqQuery& query;
    const RoadCandidates& c;
    const std::vector<double>& dist_q;
    RoadCostTracker& tracker;
    std::vector<ObjectId>& cur_set;
    double& cur_cost;
    SolveStats& stats;

    void Dfs(const TermSet& uncovered) {
      if (tracker.cost() >= cur_cost) {
        return;  // Monotone under Push.
      }
      if (uncovered.empty()) {
        ++stats.sets_evaluated;
        cur_cost = tracker.cost();
        cur_set = tracker.ids();
        return;
      }
      size_t best_k = query.keywords.size();
      for (size_t k = 0; k < query.keywords.size(); ++k) {
        if (!TermSetContains(uncovered, query.keywords[k])) {
          continue;
        }
        if (best_k == query.keywords.size() ||
            c.lists[k].size() < c.lists[best_k].size()) {
          best_k = k;
        }
      }
      for (uint32_t index : c.lists[best_k]) {
        const ObjectId id = c.cands[index];
        if (dist_q[workload.node_of[id]] >= cur_cost) {
          break;  // Candidates ascend in query distance.
        }
        if (tracker.Contains(id)) {
          continue;
        }
        tracker.Push(id);
        Dfs(TermSetDifference(uncovered,
                              workload.dataset.object(id).keywords));
        tracker.Pop();
      }
    }
  };
  Search search{workload, query,    c,       dist_q,
                tracker,  cur_set,  cur_cost, result.stats};
  search.Dfs(query.keywords);

  std::sort(cur_set.begin(), cur_set.end());
  result.feasible = true;
  result.set = std::move(cur_set);
  result.cost = cur_cost;
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

CoskqResult SolveRoadCoskqGreedy(const RoadWorkload& workload,
                                 const RoadCoskqQuery& query,
                                 CostType type) {
  WallTimer timer;
  CoskqResult result;
  if (query.keywords.empty()) {
    result.feasible = true;
    result.cost = 0.0;
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  RoadDistanceOracle oracle(&workload.graph);
  RoadCandidates c = CollectCandidates(workload, query, type, &oracle);
  if (!c.feasible) {
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  result.stats.candidates = c.cands.size();

  // Greedy min-cost-growth construction.
  std::vector<ObjectId> greedy;
  TermSet uncovered = query.keywords;
  while (!uncovered.empty()) {
    ObjectId best = kInvalidObjectId;
    double best_cost = std::numeric_limits<double>::infinity();
    size_t best_gain = 0;
    for (ObjectId id : c.cands) {
      const size_t gain = TermSetIntersectionSize(
          workload.dataset.object(id).keywords, uncovered);
      if (gain == 0) {
        continue;
      }
      std::vector<ObjectId> trial = greedy;
      trial.push_back(id);
      const double cost =
          EvaluateRoadCost(type, workload, &oracle, query.node, trial);
      if (cost < best_cost || (cost == best_cost && gain > best_gain)) {
        best_cost = cost;
        best = id;
        best_gain = gain;
      }
    }
    if (best == kInvalidObjectId) {
      break;  // Cannot finish within the candidate disk; fall back to N(q).
    }
    greedy.push_back(best);
    uncovered = TermSetDifference(uncovered,
                                  workload.dataset.object(best).keywords);
    ++result.stats.sets_evaluated;
  }

  std::vector<ObjectId> answer = c.nn_set;
  double answer_cost = c.nn_cost;
  if (uncovered.empty()) {
    const double greedy_cost =
        EvaluateRoadCost(type, workload, &oracle, query.node, greedy);
    if (greedy_cost < answer_cost) {
      answer = greedy;
      answer_cost = greedy_cost;
    }
  }
  std::sort(answer.begin(), answer.end());
  answer.erase(std::unique(answer.begin(), answer.end()), answer.end());
  result.feasible = true;
  result.set = std::move(answer);
  result.cost = answer_cost;
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
