#ifndef COSKQ_ROAD_ROAD_GENERATOR_H_
#define COSKQ_ROAD_ROAD_GENERATOR_H_

#include <stddef.h>

#include <vector>

#include "data/dataset.h"
#include "road/road_graph.h"
#include "util/random.h"

namespace coskq {

/// A geo-textual workload on a road network: the network, the objects
/// (whose locations coincide with their node's location), and the
/// object → node assignment.
struct RoadWorkload {
  RoadGraph graph;
  Dataset dataset;
  /// node_of[o] is the road node object o sits on.
  std::vector<RoadNodeId> node_of;
  /// Objects residing on each node (inverse of node_of).
  std::vector<std::vector<ObjectId>> objects_at;
};

/// Parameters of the synthetic road-network generator: a jittered
/// `grid_size` x `grid_size` street grid with randomly removed street
/// segments (keeping the network connected) and a few diagonal shortcuts —
/// the standard synthetic stand-in for real road networks.
struct RoadNetworkSpec {
  size_t grid_size = 20;
  /// Probability of removing a grid street segment (connectivity is
  /// restored afterwards if removal disconnects the network).
  double removal_probability = 0.15;
  /// Number of extra diagonal shortcut edges.
  size_t num_shortcuts = 30;
  /// Coordinate jitter as a fraction of the grid cell size.
  double jitter = 0.25;

  /// Number of objects placed on (uniformly random) nodes.
  size_t num_objects = 2000;
  /// Vocabulary size and keyword statistics of the objects.
  size_t vocab_size = 200;
  double avg_keywords_per_object = 3.5;
  double zipf_theta = 0.8;
};

/// Generates a connected road network with geo-textual objects on its
/// nodes, deterministically in `rng`.
RoadWorkload GenerateRoadWorkload(const RoadNetworkSpec& spec, Rng* rng);

}  // namespace coskq

#endif  // COSKQ_ROAD_ROAD_GENERATOR_H_
