#include "road/road_graph.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace coskq {

RoadNodeId RoadGraph::AddNode(const Point& location) {
  const RoadNodeId id = static_cast<RoadNodeId>(locations_.size());
  locations_.push_back(location);
  adjacency_.emplace_back();
  return id;
}

void RoadGraph::AddEdge(RoadNodeId a, RoadNodeId b, double length) {
  COSKQ_CHECK_LT(a, locations_.size());
  COSKQ_CHECK_LT(b, locations_.size());
  COSKQ_CHECK_GT(length, 0.0);
  COSKQ_CHECK_NE(a, b);
  adjacency_[a].push_back(Edge{b, length});
  adjacency_[b].push_back(Edge{a, length});
  ++num_edges_;
}

void RoadGraph::AddEuclideanEdge(RoadNodeId a, RoadNodeId b) {
  AddEdge(a, b, Distance(location(a), location(b)));
}

const Point& RoadGraph::location(RoadNodeId id) const {
  COSKQ_CHECK_LT(id, locations_.size());
  return locations_[id];
}

const std::vector<RoadGraph::Edge>& RoadGraph::Neighbors(
    RoadNodeId id) const {
  COSKQ_CHECK_LT(id, adjacency_.size());
  return adjacency_[id];
}

std::vector<double> RoadGraph::ShortestDistances(RoadNodeId source,
                                                 double radius) const {
  COSKQ_CHECK_LT(source, locations_.size());
  std::vector<double> dist(locations_.size(), kUnreachable);
  using QueueEntry = std::pair<double, RoadNodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist[source] = 0.0;
  queue.emplace(0.0, source);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[node]) {
      continue;  // Stale entry.
    }
    if (d > radius) {
      break;  // Everything unsettled is at least this far.
    }
    for (const Edge& edge : adjacency_[node]) {
      const double nd = d + edge.length;
      if (nd < dist[edge.to]) {
        dist[edge.to] = nd;
        queue.emplace(nd, edge.to);
      }
    }
  }
  if (radius != kUnreachable) {
    // Distances discovered but not settled beyond the radius are not
    // guaranteed shortest; report them as unreachable for safety.
    for (double& d : dist) {
      if (d > radius) {
        d = kUnreachable;
      }
    }
  }
  return dist;
}

double RoadGraph::ShortestDistance(RoadNodeId from, RoadNodeId to) const {
  COSKQ_CHECK_LT(to, locations_.size());
  if (from == to) {
    return 0.0;
  }
  // Dijkstra with target early exit.
  std::vector<double> dist(locations_.size(), kUnreachable);
  using QueueEntry = std::pair<double, RoadNodeId>;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist[from] = 0.0;
  queue.emplace(0.0, from);
  while (!queue.empty()) {
    const auto [d, node] = queue.top();
    queue.pop();
    if (node == to) {
      return d;
    }
    if (d > dist[node]) {
      continue;
    }
    for (const Edge& edge : adjacency_[node]) {
      const double nd = d + edge.length;
      if (nd < dist[edge.to]) {
        dist[edge.to] = nd;
        queue.emplace(nd, edge.to);
      }
    }
  }
  return kUnreachable;
}

RoadNodeId RoadGraph::NearestNode(const Point& p) const {
  RoadNodeId best = kInvalidRoadNode;
  double best_d2 = kUnreachable;
  for (RoadNodeId id = 0; id < locations_.size(); ++id) {
    const double d2 = SquaredDistance(p, locations_[id]);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = id;
    }
  }
  return best;
}

bool RoadGraph::IsConnected() const {
  if (locations_.empty()) {
    return true;
  }
  const std::vector<double> dist = ShortestDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](double d) { return d == kUnreachable; });
}

}  // namespace coskq
