#include "road/road_generator.h"

#include <algorithm>
#include <string>

#include "util/logging.h"

namespace coskq {

namespace {

// Disjoint-set forest for connectivity maintenance during edge removal.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) {
      parent_[i] = i;
    }
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return false;
    }
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

RoadWorkload GenerateRoadWorkload(const RoadNetworkSpec& spec, Rng* rng) {
  COSKQ_CHECK_GE(spec.grid_size, 2u);
  RoadWorkload workload;
  const size_t n = spec.grid_size;
  const double cell = 1.0 / static_cast<double>(n - 1);

  // Jittered grid nodes.
  for (size_t row = 0; row < n; ++row) {
    for (size_t col = 0; col < n; ++col) {
      const double jx = spec.jitter * cell * rng->UniformDouble(-1.0, 1.0);
      const double jy = spec.jitter * cell * rng->UniformDouble(-1.0, 1.0);
      workload.graph.AddNode(
          Point{std::clamp(col * cell + jx, 0.0, 1.0),
                std::clamp(row * cell + jy, 0.0, 1.0)});
    }
  }
  const auto node_at = [n](size_t row, size_t col) {
    return static_cast<RoadNodeId>(row * n + col);
  };

  // Candidate street segments: right and down neighbors.
  struct Segment {
    RoadNodeId a;
    RoadNodeId b;
  };
  std::vector<Segment> kept;
  std::vector<Segment> removed;
  for (size_t row = 0; row < n; ++row) {
    for (size_t col = 0; col < n; ++col) {
      if (col + 1 < n) {
        Segment s{node_at(row, col), node_at(row, col + 1)};
        (rng->Bernoulli(spec.removal_probability) ? removed : kept)
            .push_back(s);
      }
      if (row + 1 < n) {
        Segment s{node_at(row, col), node_at(row + 1, col)};
        (rng->Bernoulli(spec.removal_probability) ? removed : kept)
            .push_back(s);
      }
    }
  }

  UnionFind components(workload.graph.NumNodes());
  for (const Segment& s : kept) {
    workload.graph.AddEuclideanEdge(s.a, s.b);
    components.Union(s.a, s.b);
  }
  // Restore connectivity with removed segments where needed.
  rng->Shuffle(&removed);
  for (const Segment& s : removed) {
    if (components.Union(s.a, s.b)) {
      workload.graph.AddEuclideanEdge(s.a, s.b);
    }
  }
  // Diagonal shortcuts.
  for (size_t i = 0; i < spec.num_shortcuts; ++i) {
    const size_t row = rng->UniformUint64(n - 1);
    const size_t col = rng->UniformUint64(n - 1);
    workload.graph.AddEuclideanEdge(node_at(row, col),
                                    node_at(row + 1, col + 1));
  }
  COSKQ_CHECK(workload.graph.IsConnected());

  // Geo-textual objects on uniformly random nodes.
  for (size_t i = 0; i < spec.vocab_size; ++i) {
    std::string word = "t";
    word += std::to_string(i);
    workload.dataset.mutable_vocabulary().GetOrAdd(word);
  }
  ZipfSampler zipf(spec.vocab_size, spec.zipf_theta);
  workload.objects_at.resize(workload.graph.NumNodes());
  for (size_t i = 0; i < spec.num_objects; ++i) {
    const RoadNodeId node = static_cast<RoadNodeId>(
        rng->UniformUint64(workload.graph.NumNodes()));
    TermSet terms;
    const size_t want =
        std::min<size_t>(1 + rng->UniformUint64(static_cast<uint64_t>(
                                 2.0 * spec.avg_keywords_per_object - 1.0)),
                         spec.vocab_size);
    size_t attempts = 0;
    while (terms.size() < want && attempts < 32 * want + 64) {
      ++attempts;
      const TermId t = static_cast<TermId>(zipf.Sample(rng));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    const ObjectId id = workload.dataset.AddObjectWithTerms(
        workload.graph.location(node), terms);
    workload.node_of.push_back(node);
    workload.objects_at[node].push_back(id);
  }
  return workload;
}

}  // namespace coskq
