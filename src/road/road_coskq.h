#ifndef COSKQ_ROAD_ROAD_COSKQ_H_
#define COSKQ_ROAD_ROAD_COSKQ_H_

#include <unordered_map>
#include <vector>

#include "core/cost.h"
#include "core/solver.h"
#include "road/road_generator.h"
#include "road/road_graph.h"

namespace coskq {

/// Extension: CoSKQ under *network* distance — the paper's stated future
/// direction. The query location is a road node; d(·,·) is shortest-path
/// distance in the network; MaxSum and Dia keep their definitions with the
/// metric swapped.

/// A CoSKQ query anchored at a road node.
struct RoadCoskqQuery {
  RoadNodeId node = kInvalidRoadNode;
  TermSet keywords;
};

/// Memoizing shortest-path oracle: one full Dijkstra per distinct source
/// node, cached for the lifetime of the oracle (a query execution).
class RoadDistanceOracle {
 public:
  explicit RoadDistanceOracle(const RoadGraph* graph) : graph_(graph) {}

  /// Network distance between two nodes.
  double Between(RoadNodeId a, RoadNodeId b);

  /// All distances from `source` (cached).
  const std::vector<double>& From(RoadNodeId source);

  size_t CachedSources() const { return cache_.size(); }

 private:
  const RoadGraph* graph_;
  std::unordered_map<RoadNodeId, std::vector<double>> cache_;
};

/// Network-distance cost of an object set w.r.t. a query node.
double EvaluateRoadCost(CostType type, const RoadWorkload& workload,
                        RoadDistanceOracle* oracle, RoadNodeId query_node,
                        const std::vector<ObjectId>& set);

/// Exact road-network CoSKQ: keyword-driven branch-and-bound over the
/// relevant objects within network distance curCost of the query node, with
/// exact incremental network-distance costing (both cost functions are
/// monotone under set growth, so the incumbent cutoff is safe — the same
/// argument as in the Euclidean case, using only the metric axioms).
CoskqResult SolveRoadCoskqExact(const RoadWorkload& workload,
                                const RoadCoskqQuery& query, CostType type);

/// Greedy road-network CoSKQ: seeds with the network N(q) and then, from
/// scratch, repeatedly adds the candidate that minimizes the exact cost of
/// the grown set until feasible; returns the better of the two. Feasible
/// whenever the query is answerable; no approximation guarantee (heuristic).
CoskqResult SolveRoadCoskqGreedy(const RoadWorkload& workload,
                                 const RoadCoskqQuery& query, CostType type);

}  // namespace coskq

#endif  // COSKQ_ROAD_ROAD_COSKQ_H_
