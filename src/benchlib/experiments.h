#ifndef COSKQ_BENCHLIB_EXPERIMENTS_H_
#define COSKQ_BENCHLIB_EXPERIMENTS_H_

#include <vector>

#include "benchlib/bench_config.h"
#include "benchlib/harness.h"
#include "core/cost.h"

namespace coskq {

/// Runs one full "figure" for a (workload, |q.ψ| or derived-dataset) sweep
/// point: times the two exact algorithms (the paper's owner-driven exact and
/// the Cao et al. branch-and-bound) and the three approximate algorithms
/// (the paper's, Cao-Appro1, Cao-Appro2), with approximation ratios measured
/// against the owner-driven exact costs.
struct SweepPointResult {
  CellResult exact_owner;   // MaxSum-Exact / Dia-Exact
  CellResult exact_cao;     // Cao-Exact
  CellResult appro_owner;   // MaxSum-Appro / Dia-Appro
  CellResult appro_cao1;    // Cao-Appro1
  CellResult appro_cao2;    // Cao-Appro2
};

/// Evaluates all five algorithms on `queries` over `workload`.
SweepPointResult RunSweepPoint(const BenchWorkload& workload, CostType type,
                               const std::vector<CoskqQuery>& queries,
                               const BenchConfig& config);

/// The paper's "effect of |q.ψ|" figure for one cost function: for each of
/// the three datasets, sweeps |q.ψ| over {3, 6, 9, 12, 15} and prints the
/// exact-time, approximate-time, and approximation-ratio series.
void RunVaryQueryKeywordsExperiment(CostType type, const BenchConfig& config);

/// The |q.ψ| sweep used across the evaluation.
inline const std::vector<size_t>& QueryKeywordSweep() {
  static const std::vector<size_t> kSweep{3, 6, 9, 12, 15};
  return kSweep;
}

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_EXPERIMENTS_H_
