#include "benchlib/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace coskq {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    // The comma (if any) was emitted with the key.
    pending_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) {
      out_ += ',';
    }
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  COSKQ_CHECK(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  COSKQ_CHECK(!has_elements_.empty());
  has_elements_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  COSKQ_CHECK(!has_elements_.empty()) << "Key outside any object";
  COSKQ_CHECK(!pending_key_) << "two keys in a row";
  if (has_elements_.back()) {
    out_ += ',';
  }
  has_elements_.back() = true;
  AppendEscaped(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  AppendEscaped(v);
  return *this;
}

void JsonWriter::AppendEscaped(const std::string& v) {
  out_ += '"';
  for (char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out_ += buffer;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

std::string JsonWriter::TakeString() {
  COSKQ_CHECK(has_elements_.empty()) << "unbalanced JSON document";
  COSKQ_CHECK(!pending_key_) << "dangling key";
  std::string result = std::move(out_);
  out_.clear();
  return result;
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace coskq
