#ifndef COSKQ_BENCHLIB_JSON_WRITER_H_
#define COSKQ_BENCHLIB_JSON_WRITER_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "util/status.h"

namespace coskq {

/// Minimal streaming JSON builder for the benchmark reports (BENCH_*.json).
/// No external dependency, no DOM: callers emit tokens in document order and
/// the writer handles commas, nesting, string escaping, and non-finite
/// numbers (rendered as null, which consuming dashboards treat as missing).
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("qps").Value(123.4);
///   json.Key("runs").BeginArray().Value(1).Value(2).EndArray();
///   json.EndObject();
///   WriteTextFile("BENCH_foo.json", json.TakeString());
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be directly inside an object and followed by
  /// exactly one value (or container).
  JsonWriter& Key(const std::string& name);

  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v);
  JsonWriter& Value(const std::string& v);
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }

  /// The finished document; the writer must be back at nesting depth zero.
  std::string TakeString();

 private:
  void BeforeValue();
  void AppendEscaped(const std::string& v);

  std::string out_;
  /// One entry per open container: true once it has at least one element.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

/// Writes `content` to `path`, replacing any existing file.
Status WriteTextFile(const std::string& path, const std::string& content);

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_JSON_WRITER_H_
