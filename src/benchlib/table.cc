#include "benchlib/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace coskq {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  COSKQ_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace coskq
