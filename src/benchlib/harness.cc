#include "benchlib/harness.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <functional>

#include "benchlib/table.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace coskq {

BenchWorkload MakeWorkload(std::string name, Dataset dataset) {
  BenchWorkload workload;
  workload.name = std::move(name);
  workload.dataset = std::move(dataset);
  WallTimer timer;
  workload.index = std::make_unique<IrTree>(&workload.dataset);
  workload.index_build_ms = timer.ElapsedMillis();
  return workload;
}

namespace {

BenchWorkload MakeFromSpec(const SyntheticSpec& spec,
                           const BenchConfig& config) {
  Rng rng(config.seed ^ std::hash<std::string>{}(spec.name));
  Dataset dataset = GenerateSynthetic(spec, &rng);
  return MakeWorkload(spec.name, std::move(dataset));
}

}  // namespace

BenchWorkload MakeHotelWorkload(const BenchConfig& config) {
  // Hotel is small enough to synthesize at its published size regardless of
  // the scale knob (the paper's smallest dataset, 20,790 objects).
  return MakeFromSpec(HotelLikeSpec(std::max(config.scale, 1.0)), config);
}

BenchWorkload MakeGnWorkload(const BenchConfig& config) {
  return MakeFromSpec(GnLikeSpec(config.scale), config);
}

BenchWorkload MakeWebWorkload(const BenchConfig& config) {
  return MakeFromSpec(WebLikeSpec(config.scale), config);
}

std::vector<CoskqQuery> MakeQueries(const BenchWorkload& workload,
                                    size_t num_keywords,
                                    const BenchConfig& config) {
  QueryGenerator gen(&workload.dataset);
  Rng rng(config.seed * 7919 + num_keywords);
  std::vector<CoskqQuery> queries;
  queries.reserve(config.queries);
  for (size_t i = 0; i < config.queries; ++i) {
    queries.push_back(gen.Generate(num_keywords, &rng));
  }
  return queries;
}

CellResult RunCell(CoskqSolver* solver,
                   const std::vector<CoskqQuery>& queries, double budget_s,
                   const std::vector<double>* reference_costs,
                   std::vector<double>* costs_out) {
  COSKQ_CHECK(solver != nullptr);
  CellResult cell;
  WallTimer budget;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (budget_s > 0.0 && budget.ElapsedSeconds() > budget_s &&
        cell.completed > 0) {
      cell.truncated = true;
      break;
    }
    const CoskqResult result = solver->Solve(queries[i]);
    ++cell.completed;
    cell.time_ms.Add(result.stats.elapsed_ms);
    cell.truncated |= result.stats.truncated;
    if (costs_out != nullptr) {
      // A truncated (deadline-hit) solve is not a valid reference optimum:
      // record NaN so downstream ratio statistics skip the query.
      costs_out->push_back(result.stats.truncated
                               ? std::numeric_limits<double>::quiet_NaN()
                               : result.cost);
    }
    if (!result.feasible) {
      continue;
    }
    cell.cost.Add(result.cost);
    if (reference_costs != nullptr && i < reference_costs->size()) {
      const double opt = (*reference_costs)[i];
      if (opt > 0.0 && std::isfinite(opt)) {
        const double ratio = result.cost / opt;
        cell.ratio.Add(ratio);
        if (ratio <= 1.0 + 1e-9) {
          ++cell.optimal_count;
        }
      }
    }
  }
  return cell;
}

std::vector<double> ReferenceCosts(CoskqSolver* solver,
                                   const std::vector<CoskqQuery>& queries) {
  std::vector<double> costs;
  costs.reserve(queries.size());
  for (const CoskqQuery& query : queries) {
    costs.push_back(solver->Solve(query).cost);
  }
  return costs;
}

ThroughputResult RunThroughput(const BenchWorkload& workload,
                               const std::string& solver_name,
                               const std::vector<CoskqQuery>& queries,
                               int threads) {
  ThroughputResult out;
  BatchOptions options;
  options.solver_name = solver_name;
  options.num_threads = 1;
  const BatchEngine sequential(workload.context(), options);
  const BatchOutcome seq = sequential.Run(queries);
  COSKQ_CHECK(seq.status.ok()) << seq.status.ToString();
  options.num_threads = threads;
  const BatchEngine concurrent(workload.context(), options);
  const BatchOutcome par = concurrent.Run(queries);
  COSKQ_CHECK(par.status.ok()) << par.status.ToString();

  out.sequential = seq.stats;
  out.parallel = par.stats;
  out.identical = seq.results.size() == par.results.size();
  for (size_t i = 0; out.identical && i < seq.results.size(); ++i) {
    out.identical = seq.results[i].feasible == par.results[i].feasible &&
                    seq.results[i].set == par.results[i].set &&
                    seq.results[i].cost == par.results[i].cost;
  }
  out.speedup = par.stats.wall_ms > 0.0
                    ? seq.stats.wall_ms / par.stats.wall_ms
                    : 0.0;
  return out;
}

std::string FormatCellTime(const CellResult& cell) {
  if (cell.completed == 0) {
    return "-";
  }
  std::string rendered = FormatMillis(cell.time_ms.mean());
  if (cell.truncated) {
    rendered = ">= " + rendered;
  }
  return rendered;
}

std::string FormatCellRatio(const CellResult& cell) {
  if (cell.ratio.count() == 0) {
    return "-";
  }
  return FormatDouble(cell.ratio.mean(), 4) + " [" +
         FormatDouble(cell.ratio.min(), 4) + ", " +
         FormatDouble(cell.ratio.max(), 4) + "]";
}

double RoundSamples::best() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double RoundSamples::median() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return Percentile(samples_, 50.0);
}

}  // namespace coskq
