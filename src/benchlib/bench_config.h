#ifndef COSKQ_BENCHLIB_BENCH_CONFIG_H_
#define COSKQ_BENCHLIB_BENCH_CONFIG_H_

#include <stddef.h>
#include <stdint.h>

#include <string>

namespace coskq {

/// Knobs shared by every figure/table harness. All values can be overridden
/// through environment variables so a single machine class does not bake
/// itself into the binaries:
///
///   COSKQ_BENCH_SCALE      dataset scale relative to the published dataset
///                          sizes (default 0.02; 1.0 reproduces the paper's
///                          2013 sizes and needs hours + tens of GB)
///   COSKQ_BENCH_QUERIES    queries per experimental cell (paper: 500;
///                          default here: 20)
///   COSKQ_BENCH_BUDGET_S   wall-clock budget per (algorithm, setting) cell
///                          in seconds; slow baselines report a truncated
///                          ">= avg" once they exceed it (default 20)
///   COSKQ_BENCH_SEED       RNG seed for datasets and queries
///   COSKQ_BENCH_THREADS    worker threads for the BatchEngine throughput
///                          sections (0 = hardware_concurrency)
struct BenchConfig {
  double scale = 0.02;
  size_t queries = 20;
  double cell_budget_s = 20.0;
  uint64_t seed = 20130622;
  int threads = 0;

  /// Reads the environment overrides.
  static BenchConfig FromEnv();

  /// One-line rendering printed at the top of every bench report.
  std::string ToString() const;
};

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_BENCH_CONFIG_H_
