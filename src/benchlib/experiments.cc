#include "benchlib/experiments.h"

#include <cstdio>

#include "benchlib/table.h"
#include "core/cao_appro.h"
#include "core/cao_exact.h"
#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"

namespace coskq {

SweepPointResult RunSweepPoint(const BenchWorkload& workload, CostType type,
                               const std::vector<CoskqQuery>& queries,
                               const BenchConfig& config) {
  const CoskqContext context = workload.context();
  const double budget = config.cell_budget_s;
  // Exact solvers additionally get a per-query deadline of half the cell
  // budget so a single adversarial query cannot stall the whole bench.
  OwnerDrivenExact::Options owner_options;
  owner_options.deadline_ms = budget * 500.0;
  CaoExact::Options cao_options;
  cao_options.deadline_ms = budget * 500.0;

  SweepPointResult result;
  std::vector<double> reference;

  OwnerDrivenExact owner_exact(context, type, owner_options);
  result.exact_owner = RunCell(&owner_exact, queries, budget, nullptr,
                               &reference);

  CaoExact cao_exact(context, type, cao_options);
  result.exact_cao = RunCell(&cao_exact, queries, budget, &reference);

  OwnerDrivenAppro owner_appro(context, type);
  result.appro_owner = RunCell(&owner_appro, queries, budget, &reference);

  CaoAppro1 cao_appro1(context, type);
  result.appro_cao1 = RunCell(&cao_appro1, queries, budget, &reference);

  CaoAppro2 cao_appro2(context, type);
  result.appro_cao2 = RunCell(&cao_appro2, queries, budget, &reference);

  return result;
}

void RunVaryQueryKeywordsExperiment(CostType type,
                                    const BenchConfig& config) {
  const char* cost_name = CostType::kMaxSum == type ? "MaxSum" : "Dia";
  std::printf("== Effect of |q.psi| on cost_%s (paper Figs. 4-6 style) ==\n",
              cost_name);
  std::printf("config: %s\n\n", config.ToString().c_str());

  BenchWorkload workloads[] = {MakeHotelWorkload(config),
                               MakeGnWorkload(config),
                               MakeWebWorkload(config)};
  const std::string exact_owner_name = std::string(cost_name) + "-Exact";
  const std::string appro_owner_name = std::string(cost_name) + "-Appro";

  for (const BenchWorkload& workload : workloads) {
    std::printf("-- dataset %s (%zu objects) --\n", workload.name.c_str(),
                workload.dataset.NumObjects());
    TablePrinter exact_table(
        {"|q.psi|", exact_owner_name + " time", "Cao-Exact time"});
    TablePrinter appro_table({"|q.psi|", appro_owner_name + " time",
                              "Cao-Appro1 time", "Cao-Appro2 time"});
    TablePrinter ratio_table(
        {"|q.psi|", appro_owner_name + " ratio", "Cao-Appro1 ratio",
         "Cao-Appro2 ratio", appro_owner_name + " %opt", "Cao-Appro1 %opt",
         "Cao-Appro2 %opt"});

    for (size_t k : QueryKeywordSweep()) {
      const std::vector<CoskqQuery> queries =
          MakeQueries(workload, k, config);
      const SweepPointResult r =
          RunSweepPoint(workload, type, queries, config);
      exact_table.AddRow({std::to_string(k), FormatCellTime(r.exact_owner),
                          FormatCellTime(r.exact_cao)});
      appro_table.AddRow({std::to_string(k), FormatCellTime(r.appro_owner),
                          FormatCellTime(r.appro_cao1),
                          FormatCellTime(r.appro_cao2)});
      auto pct = [](const CellResult& cell) {
        if (cell.ratio.count() == 0) {
          return std::string("-");
        }
        return FormatDouble(100.0 * static_cast<double>(cell.optimal_count) /
                                static_cast<double>(cell.ratio.count()),
                            1) +
               "%";
      };
      ratio_table.AddRow({std::to_string(k), FormatCellRatio(r.appro_owner),
                          FormatCellRatio(r.appro_cao1),
                          FormatCellRatio(r.appro_cao2), pct(r.appro_owner),
                          pct(r.appro_cao1), pct(r.appro_cao2)});
    }
    std::printf("(a) exact algorithms, running time\n");
    exact_table.Print();
    std::printf("(b) approximate algorithms, running time\n");
    appro_table.Print();
    std::printf("(c) approximation ratios avg [min, max] and %% optimal\n");
    ratio_table.Print();
    std::printf("\n");
  }
}

}  // namespace coskq
