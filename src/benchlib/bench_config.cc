#include "benchlib/bench_config.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace coskq {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  double parsed = 0.0;
  return ParseDouble(value, &parsed) ? parsed : fallback;
}

uint64_t EnvUint64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return fallback;
  }
  uint64_t parsed = 0;
  return ParseUint64(value, &parsed) ? parsed : fallback;
}

}  // namespace

BenchConfig BenchConfig::FromEnv() {
  BenchConfig config;
  config.scale = EnvDouble("COSKQ_BENCH_SCALE", config.scale);
  config.queries = EnvUint64("COSKQ_BENCH_QUERIES", config.queries);
  config.cell_budget_s =
      EnvDouble("COSKQ_BENCH_BUDGET_S", config.cell_budget_s);
  config.seed = EnvUint64("COSKQ_BENCH_SEED", config.seed);
  config.threads = static_cast<int>(
      EnvUint64("COSKQ_BENCH_THREADS", static_cast<uint64_t>(config.threads)));
  return config;
}

std::string BenchConfig::ToString() const {
  std::ostringstream os;
  os << "scale=" << scale << " queries/cell=" << queries
     << " cell-budget=" << cell_budget_s << "s seed=" << seed
     << " threads=" << (threads == 0 ? std::string("hw")
                                     : std::to_string(threads));
  return os.str();
}

}  // namespace coskq
