#ifndef COSKQ_BENCHLIB_TABLE_H_
#define COSKQ_BENCHLIB_TABLE_H_

#include <string>
#include <vector>

// FormatDouble / FormatMillis moved to util/string_util.h so non-benchlib
// layers (the batch engine, the CLI) can use them; kept included here for
// the existing harness call sites.
#include "util/string_util.h"

namespace coskq {

/// Minimal aligned-column table printer for the figure/table harnesses.
/// Output is markdown-ish: a header row, a rule, then data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned table.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_TABLE_H_
