#ifndef COSKQ_BENCHLIB_TABLE_H_
#define COSKQ_BENCHLIB_TABLE_H_

#include <string>
#include <vector>

namespace coskq {

/// Minimal aligned-column table printer for the figure/table harnesses.
/// Output is markdown-ish: a header row, a rule, then data rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned table.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant-ish decimal places, trimming
/// trailing zeros ("1.25", "0.001", "12").
std::string FormatDouble(double value, int digits);

/// Formats a milliseconds measurement: "12.3 ms", "1.25 s" when >= 1000.
std::string FormatMillis(double ms);

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_TABLE_H_
