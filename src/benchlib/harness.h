#ifndef COSKQ_BENCHLIB_HARNESS_H_
#define COSKQ_BENCHLIB_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "benchlib/bench_config.h"
#include "core/solver.h"
#include "data/dataset.h"
#include "data/query.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "util/stats.h"

namespace coskq {

/// A benchmark workload: a dataset, its IR-tree, and its name.
struct BenchWorkload {
  std::string name;
  Dataset dataset;
  std::unique_ptr<IrTree> index;
  double index_build_ms = 0.0;

  CoskqContext context() const {
    return CoskqContext{&dataset, index.get()};
  }
};

/// Builds a workload over an already-generated dataset (times the IR-tree
/// construction).
BenchWorkload MakeWorkload(std::string name, Dataset dataset);

/// The paper's three evaluation datasets, synthesized at the configured
/// scale (see EXPERIMENTS.md for the substitution note).
BenchWorkload MakeHotelWorkload(const BenchConfig& config);
BenchWorkload MakeGnWorkload(const BenchConfig& config);
BenchWorkload MakeWebWorkload(const BenchConfig& config);

/// `config.queries` queries with `num_keywords` keywords each, generated the
/// paper's way (uniform location in the MBR, keywords from the frequent
/// band), deterministic in config.seed and num_keywords.
std::vector<CoskqQuery> MakeQueries(const BenchWorkload& workload,
                                    size_t num_keywords,
                                    const BenchConfig& config);

/// Aggregate outcome of running one solver over one query batch.
struct CellResult {
  RunningStat time_ms;
  RunningStat cost;
  /// Approximation ratio vs. reference costs (only if references given).
  RunningStat ratio;
  /// Queries answered optimally (ratio <= 1 + 1e-9).
  size_t optimal_count = 0;
  /// Queries actually executed before the cell budget ran out.
  size_t completed = 0;
  /// True iff the cell budget expired before all queries ran, or any
  /// individual solve was internally truncated.
  bool truncated = false;
};

/// Runs `solver` over `queries`, stopping early once `budget_s` of wall
/// clock is spent (the current query always finishes; 0 = no budget). When
/// `reference_costs` is non-null, ratio statistics are recorded for every
/// executed query i with i < reference_costs->size(). When `costs_out` is
/// non-null it receives the cost of each executed query, usable as the
/// reference for later cells.
CellResult RunCell(CoskqSolver* solver,
                   const std::vector<CoskqQuery>& queries, double budget_s,
                   const std::vector<double>* reference_costs,
                   std::vector<double>* costs_out = nullptr);

/// Solves every query with `solver` (meant to be an exact algorithm with a
/// generous deadline) and returns the per-query costs, used as the ratio
/// reference for approximate algorithms.
std::vector<double> ReferenceCosts(CoskqSolver* solver,
                                   const std::vector<CoskqQuery>& queries);

/// One sequential-vs-parallel throughput measurement of `solver_name` over
/// `queries` on the workload's context: the paper's per-query experiment
/// replayed through the BatchEngine at 1 thread and at `threads` workers,
/// with the parallel results verified bit-identical to the sequential ones.
struct ThroughputResult {
  BatchStats sequential;
  BatchStats parallel;
  /// True iff every parallel (feasible, set, cost) triple equals its
  /// sequential counterpart — the concurrency-correctness check the
  /// batch engine promises.
  bool identical = false;
  /// sequential wall clock / parallel wall clock.
  double speedup = 0.0;
};

/// Runs the comparison; `threads` 0 picks hardware_concurrency.
ThroughputResult RunThroughput(const BenchWorkload& workload,
                               const std::string& solver_name,
                               const std::vector<CoskqQuery>& queries,
                               int threads);

/// Per-round wall-clock samples of one A/B side. Benchmarks record every
/// timing round here and report both the round minimum (`best()`, the
/// least-noise headline number) and the `median()` — the spread hint the
/// BENCH_*.json reports carry so tools/bench_compare.py can gate on the
/// median instead of a lucky best round.
class RoundSamples {
 public:
  void Add(double sample) { samples_.push_back(sample); }
  size_t count() const { return samples_.size(); }
  /// Minimum sample; 0.0 when no samples were recorded.
  double best() const;
  /// Median sample (Percentile 50); 0.0 when no samples were recorded.
  double median() const;

 private:
  std::vector<double> samples_;
};

/// "12.3 ms" or ">= 12.3 ms" when the cell was truncated; "-" when empty.
std::string FormatCellTime(const CellResult& cell);

/// "1.023 [1, 1.31]" avg/min/max ratio rendering; "-" when empty.
std::string FormatCellRatio(const CellResult& cell);

}  // namespace coskq

#endif  // COSKQ_BENCHLIB_HARNESS_H_
