#ifndef COSKQ_GEO_POINT_H_
#define COSKQ_GEO_POINT_H_

#include <string>

namespace coskq {

/// A point in the 2-D Euclidean plane. CoSKQ object locations and query
/// locations are points; all distances in the paper's cost functions are
/// Euclidean distances between points.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  /// "(x, y)" rendering for diagnostics.
  std::string ToString() const;
};

/// Squared Euclidean distance. Prefer this in comparisons to avoid sqrt.
double SquaredDistance(const Point& a, const Point& b);

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Midpoint of the segment ab.
Point Midpoint(const Point& a, const Point& b);

}  // namespace coskq

#endif  // COSKQ_GEO_POINT_H_
