#include "geo/point.h"

#include <cmath>
#include <sstream>

namespace coskq {

std::string Point::ToString() const {
  std::ostringstream os;
  os << "(" << x << ", " << y << ")";
  return os.str();
}

double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

Point Midpoint(const Point& a, const Point& b) {
  return Point{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

}  // namespace coskq
