#ifndef COSKQ_GEO_RECT_H_
#define COSKQ_GEO_RECT_H_

#include <string>

#include "geo/point.h"

namespace coskq {

/// An axis-aligned rectangle (minimum bounding rectangle, MBR) used by the
/// R-tree / IR-tree nodes. A default-constructed Rect is *empty*: it contains
/// nothing and expanding it by a point yields exactly that point.
struct Rect {
  double min_x = 1.0;
  double min_y = 1.0;
  double max_x = 0.0;  // max < min encodes the empty rectangle
  double max_y = 0.0;

  /// Constructs the empty rectangle.
  Rect() = default;

  Rect(double min_x_in, double min_y_in, double max_x_in, double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  /// Degenerate rectangle holding a single point.
  static Rect FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

  /// Smallest rectangle containing both inputs.
  static Rect Union(const Rect& a, const Rect& b);

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// Grows this rectangle to contain `p`.
  void ExpandToInclude(const Point& p);

  /// Grows this rectangle to contain `other`.
  void ExpandToInclude(const Rect& other);

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff `other` lies entirely inside this rectangle.
  bool Contains(const Rect& other) const;

  /// True iff the two rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }

  /// Half-perimeter; the R*-tree "margin" goodness measure.
  double Margin() const { return Width() + Height(); }

  Point Center() const {
    return Point{(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  /// Minimum Euclidean distance from `p` to any point of the rectangle
  /// (0 if `p` is inside). This is the MINDIST bound used by best-first
  /// nearest-neighbor search.
  double MinDistance(const Point& p) const;

  /// Maximum Euclidean distance from `p` to any point of the rectangle.
  double MaxDistance(const Point& p) const;

  /// Area of the intersection with `other` (0 if disjoint).
  double IntersectionArea(const Rect& other) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }

  std::string ToString() const;
};

}  // namespace coskq

#endif  // COSKQ_GEO_RECT_H_
