#include "geo/circle.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace coskq {

bool Circle::Intersects(const Circle& other) const {
  const double d = radius + other.radius;
  return SquaredDistance(center, other.center) <= d * d;
}

bool Circle::Contains(const Circle& other) const {
  const double slack = radius - other.radius;
  if (slack < 0.0) {
    return false;
  }
  return SquaredDistance(center, other.center) <= slack * slack;
}

Rect Circle::BoundingRect() const {
  return Rect(center.x - radius, center.y - radius, center.x + radius,
              center.y + radius);
}

std::string Circle::ToString() const {
  std::ostringstream os;
  os << "C(" << center.ToString() << ", r=" << radius << ")";
  return os.str();
}

bool LensContains(const Point& a, const Point& b, double r, const Point& p) {
  const double r2 = r * r;
  return SquaredDistance(a, p) <= r2 && SquaredDistance(b, p) <= r2;
}

double LensDiameter(const Point& a, const Point& b, double r) {
  const double d = Distance(a, b);
  if (d > 2.0 * r) {
    return 0.0;  // Empty lens.
  }
  // The lens is convex; its diameter is either the chord through the two
  // boundary intersection points or the extent along the center axis.
  const double chord = 2.0 * std::sqrt(std::max(0.0, r * r - d * d / 4.0));
  const double axial = 2.0 * r - d;
  return std::max(chord, axial);
}

double CircleBoundaryChord(const Circle& a, const Circle& b) {
  const double d = Distance(a.center, b.center);
  if (d == 0.0 || d > a.radius + b.radius ||
      d < std::abs(a.radius - b.radius)) {
    return 0.0;  // Boundaries do not intersect (or circles are concentric).
  }
  const double x =
      (d * d + a.radius * a.radius - b.radius * b.radius) / (2.0 * d);
  const double h2 = a.radius * a.radius - x * x;
  if (h2 <= 0.0) {
    return 0.0;
  }
  return 2.0 * std::sqrt(h2);
}

}  // namespace coskq
