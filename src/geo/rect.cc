#include "geo/rect.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace coskq {

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect result = a;
  result.ExpandToInclude(b);
  return result;
}

void Rect::ExpandToInclude(const Point& p) {
  if (IsEmpty()) {
    *this = FromPoint(p);
    return;
  }
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.IsEmpty()) {
    return;
  }
  if (IsEmpty()) {
    *this = other;
    return;
  }
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

bool Rect::Contains(const Point& p) const {
  return !IsEmpty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
         p.y <= max_y;
}

bool Rect::Contains(const Rect& other) const {
  if (other.IsEmpty()) {
    return true;
  }
  return !IsEmpty() && other.min_x >= min_x && other.max_x <= max_x &&
         other.min_y >= min_y && other.max_y <= max_y;
}

bool Rect::Intersects(const Rect& other) const {
  if (IsEmpty() || other.IsEmpty()) {
    return false;
  }
  return min_x <= other.max_x && other.min_x <= max_x && min_y <= other.max_y &&
         other.min_y <= max_y;
}

double Rect::MinDistance(const Point& p) const {
  if (IsEmpty()) {
    return 0.0;
  }
  const double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
  const double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::MaxDistance(const Point& p) const {
  if (IsEmpty()) {
    return 0.0;
  }
  const double dx = std::max(std::abs(p.x - min_x), std::abs(p.x - max_x));
  const double dy = std::max(std::abs(p.y - min_y), std::abs(p.y - max_y));
  return std::sqrt(dx * dx + dy * dy);
}

double Rect::IntersectionArea(const Rect& other) const {
  if (!Intersects(other)) {
    return 0.0;
  }
  const double w = std::min(max_x, other.max_x) - std::max(min_x, other.min_x);
  const double h = std::min(max_y, other.max_y) - std::max(min_y, other.min_y);
  return w * h;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  if (IsEmpty()) {
    os << "[empty]";
  } else {
    os << "[" << min_x << ", " << min_y << "; " << max_x << ", " << max_y
       << "]";
  }
  return os.str();
}

}  // namespace coskq
