#ifndef COSKQ_GEO_CIRCLE_H_
#define COSKQ_GEO_CIRCLE_H_

#include <string>

#include "geo/point.h"
#include "geo/rect.h"

namespace coskq {

/// A closed disk C(center, radius). The distance owner-driven algorithms
/// reason entirely in terms of disks around the query location and around
/// candidate distance owners, and in terms of the "lens" intersection of two
/// disks (the region that may host additional objects once the pairwise
/// distance owners are fixed).
struct Circle {
  Point center;
  double radius = 0.0;

  Circle() = default;
  Circle(const Point& center_in, double radius_in)
      : center(center_in), radius(radius_in) {}

  /// True iff `p` lies inside or on the boundary of the disk.
  bool Contains(const Point& p) const {
    return SquaredDistance(center, p) <= radius * radius;
  }

  /// True iff the two closed disks share at least one point.
  bool Intersects(const Circle& other) const;

  /// True iff `other` lies entirely inside this disk.
  bool Contains(const Circle& other) const;

  /// True iff the disk and the rectangle share at least one point. This is
  /// the pruning predicate for R-tree traversal of disk range queries.
  bool Intersects(const Rect& rect) const {
    return rect.MinDistance(center) <= radius;
  }

  /// True iff the rectangle lies entirely inside the disk.
  bool Contains(const Rect& rect) const {
    return !rect.IsEmpty() && rect.MaxDistance(center) <= radius;
  }

  /// Tight axis-aligned bounding rectangle of the disk.
  Rect BoundingRect() const;

  std::string ToString() const;
};

/// True iff `p` lies in the lens C(a, r) ∩ C(b, r), the intersection of two
/// equal-radius disks. With r = d(a, b) this is the region that can host the
/// remaining members of a set whose pairwise distance owners are a and b.
bool LensContains(const Point& a, const Point& b, double r, const Point& p);

/// Maximum distance between any two points of the lens C(a, r) ∩ C(b, r)
/// where r >= d(a, b) (the lens "diameter"). For r = d(a,b) this equals
/// sqrt(3) * r, the worst-case pairwise spread inside the owner lens and the
/// source of the sqrt(3) term in the Dia approximation bound.
double LensDiameter(const Point& a, const Point& b, double r);

/// Length of the chord cut from circle C(q, r2)'s boundary by circle
/// C(o, r1), i.e. the distance |ab| between the two boundary intersection
/// points, assuming the boundaries intersect. Used in the 1.375-ratio
/// analysis of MaxSum-Appro: d(a,b) = r2 * sqrt(4 - r2^2 / r1^2) when the
/// configuration of the proof holds. Returns 0 if the boundaries do not
/// intersect.
double CircleBoundaryChord(const Circle& a, const Circle& b);

}  // namespace coskq

#endif  // COSKQ_GEO_CIRCLE_H_
