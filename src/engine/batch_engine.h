#ifndef COSKQ_ENGINE_BATCH_ENGINE_H_
#define COSKQ_ENGINE_BATCH_ENGINE_H_

#include <stddef.h>
#include <stdint.h>

#include <string>
#include <vector>

#include "core/solver.h"
#include "core/solvers.h"
#include "data/query.h"
#include "util/stats.h"
#include "util/status.h"

namespace coskq {

/// Sanity cap on BatchOptions::num_threads: far above any real machine, low
/// enough that a corrupt or hostile request cannot ask the engine to spawn
/// an unbounded number of threads.
inline constexpr int kMaxBatchThreads = 4096;

/// Configuration of one batch execution. Validated at Run entry: a negative
/// or NaN deadline, a negative thread count, or a thread count above
/// kMaxBatchThreads makes Run return InvalidArgument with nothing executed.
struct BatchOptions {
  /// Registry name of the solver answering every query in the batch
  /// (see MakeSolver).
  std::string solver_name = "maxsum-appro";
  /// Worker threads; 0 picks std::thread::hardware_concurrency(). Each
  /// worker owns a private solver instance, so any registry solver works
  /// under concurrency (solvers are thread-compatible by contract:
  /// concurrent Solve calls on distinct instances over one immutable
  /// context are safe).
  int num_threads = 0;
  /// Per-query wall-clock deadline in milliseconds, propagated to solvers
  /// with deadline support (0 = none). A deadline-hit solve returns its
  /// incumbent with stats.truncated set; it is not an error and does not
  /// cancel the batch.
  double deadline_ms = 0.0;
  /// Treat an infeasible query (a keyword no object carries) as a batch
  /// error: the failing query's result is kept, the remaining un-started
  /// queries are cancelled, and the outcome status reports the first
  /// offending query index. Off by default — mixed workloads legitimately
  /// contain infeasible queries.
  bool cancel_on_infeasible = false;
  /// Query-scoped keyword bitmasks + pooled per-worker scratch + distance
  /// memo (the hot path; on by default). Disabling reproduces the baseline
  /// execution bit-for-bit — the A/B switch for the hot-path benchmark and
  /// the differential tests.
  bool use_query_masks = true;
};

/// Aggregated statistics of one batch execution. All aggregation happens
/// after the workers join, in query order, so the numbers are deterministic
/// for a fixed set of per-query results (latencies excepted — they are wall
/// clock by nature).
struct BatchStats {
  /// Worker threads actually used.
  int threads = 0;
  /// End-to-end wall clock of the batch, including worker startup/join.
  double wall_ms = 0.0;
  /// Queries executed / cancelled before starting / infeasible / truncated
  /// by the per-query deadline.
  size_t executed = 0;
  size_t cancelled = 0;
  size_t infeasible = 0;
  size_t truncated = 0;
  /// Latency distribution of the executed solves (solver-reported
  /// elapsed_ms): streaming avg/min/max plus interpolated percentiles.
  RunningStat solve_ms;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  /// Solver work counters summed over the executed solves.
  uint64_t candidates = 0;
  uint64_t pairs_examined = 0;
  uint64_t sets_evaluated = 0;
  /// Distance-memo hits/misses summed over the executed solves (0 when the
  /// batch ran with use_query_masks off).
  uint64_t dist_cache_hits = 0;
  uint64_t dist_cache_misses = 0;
  /// Pooled scratch buffers that grew, summed over the executed solves.
  /// Nonzero only during warm-up: each worker's solver allocates on its
  /// first queries and then reuses, so per-worker steady state adds 0.
  uint64_t scratch_reallocs = 0;
  /// Approximation-ratio summary vs. the reference costs passed to Run
  /// (empty when none were given), matching the bench_ratio_summary
  /// conventions: per-query ratio cost/reference over queries whose
  /// reference is finite and positive, and the count answered optimally
  /// (ratio <= 1 + 1e-9).
  RunningStat ratio;
  double ratio_p95 = 0.0;
  size_t optimal_count = 0;

  /// Executed queries per second (0 when nothing executed).
  double QueriesPerSecond() const;

  /// One-line human rendering for logs and the CLI.
  std::string ToString() const;
};

/// The outcome of one batch: per-query results in *input order* regardless
/// of which worker answered which query, plus aggregate statistics.
struct BatchOutcome {
  /// OK unless the batch was cancelled (see BatchOptions) or could not run
  /// at all (unknown solver name, in which case nothing executed).
  Status status;
  /// results[i] answers queries[i]. For a cancelled (never started) query
  /// the slot holds a default-constructed CoskqResult and executed[i] == 0.
  std::vector<CoskqResult> results;
  /// executed[i] == 1 iff queries[i] was actually solved.
  std::vector<uint8_t> executed;
  BatchStats stats;
};

/// Fixed-size worker pool executing batches of CoSKQ queries concurrently
/// over one immutable CoskqContext.
///
/// Determinism: every registry solver is deterministic, and each query is
/// solved exactly once by some worker's private solver instance, so the
/// per-query results (set, cost, feasibility) of an N-thread run are
/// bit-identical to a sequential run — only timings and the aggregate
/// wall clock differ. Queries are claimed from a shared atomic cursor
/// (dynamic load balancing); results land in their input slot.
///
/// Thread safety of the shared read path: the engine relies on Dataset,
/// IrTree/RTree, and InvertedIndex being strictly immutable after
/// construction (see DESIGN.md "Immutability & threading"); building the
/// context or mutating the dataset while a batch is in flight is undefined.
class BatchEngine {
 public:
  /// The context must outlive the engine and every Run call.
  BatchEngine(const CoskqContext& context, const BatchOptions& options);

  /// Executes the batch and blocks until every query is answered or the
  /// batch is cancelled. When `reference_costs` is non-null, the i-th entry
  /// (for i < reference_costs->size()) is the reference (exact) cost used
  /// for the approximation-ratio summary; NaN/non-positive entries are
  /// skipped. Safe to call repeatedly and from multiple threads.
  BatchOutcome Run(const std::vector<CoskqQuery>& queries,
                   const std::vector<double>* reference_costs = nullptr) const;

  /// The worker count a Run call will use (options resolved against
  /// hardware_concurrency).
  int ResolvedThreads() const;

  const BatchOptions& options() const { return options_; }

 private:
  CoskqContext context_;
  BatchOptions options_;
};

}  // namespace coskq

#endif  // COSKQ_ENGINE_BATCH_ENGINE_H_
