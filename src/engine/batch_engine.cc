#include "engine/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

#include "index/irtree.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {

double BatchStats::QueriesPerSecond() const {
  if (executed == 0 || wall_ms <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(executed) / (wall_ms / 1e3);
}

std::string BatchStats::ToString() const {
  std::string s = "threads=" + std::to_string(threads) +
                  " executed=" + std::to_string(executed) +
                  " wall=" + FormatMillis(wall_ms) +
                  " qps=" + FormatDouble(QueriesPerSecond(), 1) +
                  " latency{avg=" + FormatMillis(solve_ms.mean()) +
                  " p50=" + FormatMillis(p50_ms) +
                  " p95=" + FormatMillis(p95_ms) +
                  " p99=" + FormatMillis(p99_ms) +
                  " max=" + FormatMillis(solve_ms.max()) + "}";
  if (cancelled > 0) {
    s += " cancelled=" + std::to_string(cancelled);
  }
  if (infeasible > 0) {
    s += " infeasible=" + std::to_string(infeasible);
  }
  if (truncated > 0) {
    s += " truncated=" + std::to_string(truncated);
  }
  if (dist_cache_hits + dist_cache_misses > 0) {
    const double total =
        static_cast<double>(dist_cache_hits + dist_cache_misses);
    s += " cache{hits=" + std::to_string(dist_cache_hits) +
         " misses=" + std::to_string(dist_cache_misses) + " hit_rate=" +
         FormatDouble(static_cast<double>(dist_cache_hits) / total, 3) +
         " reallocs=" + std::to_string(scratch_reallocs) + "}";
  }
  if (ratio.count() > 0) {
    s += " ratio{avg=" + FormatDouble(ratio.mean(), 4) +
         " max=" + FormatDouble(ratio.max(), 4) +
         " optimal=" + std::to_string(optimal_count) + "/" +
         std::to_string(ratio.count()) + "}";
  }
  return s;
}

BatchEngine::BatchEngine(const CoskqContext& context,
                         const BatchOptions& options)
    : context_(context), options_(options) {
  COSKQ_CHECK(context.dataset != nullptr);
  COSKQ_CHECK(context.index != nullptr);
}

int BatchEngine::ResolvedThreads() const {
  if (options_.num_threads > 0) {
    return options_.num_threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

// Run-entry validation of caller-supplied options. Everything here used to
// be undefined behavior (negative thread counts cast through size_t, NaN
// deadlines never firing); with the options now arriving over the wire from
// untrusted clients they must be clean errors instead.
Status ValidateBatchOptions(const BatchOptions& options) {
  if (options.num_threads < 0) {
    return Status::InvalidArgument(
        "num_threads must be >= 0, got " +
        std::to_string(options.num_threads));
  }
  if (options.num_threads > kMaxBatchThreads) {
    return Status::InvalidArgument(
        "num_threads " + std::to_string(options.num_threads) +
        " exceeds the sanity cap " + std::to_string(kMaxBatchThreads));
  }
  if (std::isnan(options.deadline_ms) || options.deadline_ms < 0.0) {
    return Status::InvalidArgument("deadline_ms must be >= 0 and not NaN");
  }
  return Status::OK();
}

}  // namespace

BatchOutcome BatchEngine::Run(
    const std::vector<CoskqQuery>& queries,
    const std::vector<double>* reference_costs) const {
  BatchOutcome outcome;
  const size_t n = queries.size();
  outcome.results.resize(n);
  outcome.executed.assign(n, 0);

  outcome.status = ValidateBatchOptions(options_);
  if (!outcome.status.ok()) {
    return outcome;
  }
  outcome.stats.threads = ResolvedThreads();

  SolverOptions solver_options;
  solver_options.deadline_ms = options_.deadline_ms;
  solver_options.use_query_masks = options_.use_query_masks;
  // Validate the solver name before spinning up workers so an unknown name
  // is a clean error, not a per-worker failure.
  if (MakeSolver(options_.solver_name, context_, solver_options) == nullptr) {
    outcome.status = Status::InvalidArgument("unknown solver '" +
                                             options_.solver_name + "'");
    return outcome;
  }

  WallTimer wall;
  // Shared cursor: workers claim the next un-started query; results land in
  // their input slot, so output order never depends on scheduling.
  std::atomic<size_t> next{0};
  std::atomic<bool> cancel{false};
  // Lowest input index that triggered cancellation (n = none); kept as an
  // index rather than a Status because Status is not atomically assignable.
  std::atomic<size_t> first_error{n};

  const auto worker = [&]() {
    const std::unique_ptr<CoskqSolver> solver =
        MakeSolver(options_.solver_name, context_, solver_options);
    COSKQ_CHECK(solver != nullptr);
    while (true) {
      if (cancel.load(std::memory_order_acquire)) {
        return;
      }
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      {
        // One pinned index view per query: every sub-query the solver runs
        // observes the same frozen body + delta, even across a concurrent
        // background refreeze swap.
        IrTree::ReadGuard guard(context_.index);
        outcome.results[i] = solver->Solve(queries[i]);
      }
      outcome.executed[i] = 1;
      if (options_.cancel_on_infeasible && !outcome.results[i].feasible) {
        // Keep the smallest offending index for a deterministic error
        // message under concurrency.
        size_t expected = first_error.load(std::memory_order_relaxed);
        while (i < expected && !first_error.compare_exchange_weak(
                                   expected, i, std::memory_order_relaxed)) {
        }
        cancel.store(true, std::memory_order_release);
        return;
      }
    }
  };

  const int threads =
      static_cast<int>(std::min<size_t>(n, outcome.stats.threads));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  outcome.stats.wall_ms = wall.ElapsedMillis();

  if (first_error.load() < n) {
    outcome.status = Status::InvalidArgument(
        "batch cancelled: query " + std::to_string(first_error.load()) +
        " is infeasible (some keyword matches no object)");
  }

  // Aggregate in input order after the join: deterministic given the
  // per-query results.
  std::vector<double> latencies;
  latencies.reserve(n);
  std::vector<double> ratios;
  for (size_t i = 0; i < n; ++i) {
    if (outcome.executed[i] == 0) {
      ++outcome.stats.cancelled;
      continue;
    }
    const CoskqResult& r = outcome.results[i];
    ++outcome.stats.executed;
    outcome.stats.solve_ms.Add(r.stats.elapsed_ms);
    latencies.push_back(r.stats.elapsed_ms);
    outcome.stats.candidates += r.stats.candidates;
    outcome.stats.pairs_examined += r.stats.pairs_examined;
    outcome.stats.sets_evaluated += r.stats.sets_evaluated;
    outcome.stats.dist_cache_hits += r.stats.dist_cache_hits;
    outcome.stats.dist_cache_misses += r.stats.dist_cache_misses;
    outcome.stats.scratch_reallocs += r.stats.scratch_reallocs;
    if (r.stats.truncated) {
      ++outcome.stats.truncated;
    }
    if (!r.feasible) {
      ++outcome.stats.infeasible;
      continue;
    }
    if (reference_costs != nullptr && i < reference_costs->size()) {
      const double ref = (*reference_costs)[i];
      if (std::isfinite(ref) && ref > 0.0) {
        const double ratio = r.cost / ref;
        outcome.stats.ratio.Add(ratio);
        ratios.push_back(ratio);
        if (ratio <= 1.0 + 1e-9) {
          ++outcome.stats.optimal_count;
        }
      }
    }
  }
  outcome.stats.p50_ms = Percentile(latencies, 50.0);
  outcome.stats.p95_ms = Percentile(latencies, 95.0);
  outcome.stats.p99_ms = Percentile(std::move(latencies), 99.0);
  outcome.stats.ratio_p95 = Percentile(std::move(ratios), 95.0);
  return outcome;
}

}  // namespace coskq
