#ifndef COSKQ_DATA_TERM_SET_H_
#define COSKQ_DATA_TERM_SET_H_

#include <stddef.h>
#include <stdint.h>

#include <vector>

namespace coskq {

/// Keywords are interned as dense integer ids; a keyword *set* is a sorted,
/// duplicate-free vector of TermIds. All set operations below require (and
/// preserve) that representation. Sorted vectors beat hash sets here because
/// object keyword sets are small and the hot operations are intersection
/// tests during index traversal.
using TermId = uint32_t;
using TermSet = std::vector<TermId>;

/// Sorts and deduplicates `terms` in place, establishing the TermSet
/// invariant.
void NormalizeTermSet(TermSet* terms);

/// True iff the sorted set `terms` contains `t` (binary search).
bool TermSetContains(const TermSet& terms, TermId t);

/// True iff the two sorted sets share at least one element (linear merge).
bool TermSetsIntersect(const TermSet& a, const TermSet& b);

/// Sorted union of two sorted sets.
TermSet TermSetUnion(const TermSet& a, const TermSet& b);

/// Sorted intersection of two sorted sets.
TermSet TermSetIntersection(const TermSet& a, const TermSet& b);

/// Sorted difference a \ b.
TermSet TermSetDifference(const TermSet& a, const TermSet& b);

/// True iff `sub` ⊆ `super` (both sorted).
bool TermSetIsSubset(const TermSet& sub, const TermSet& super);

/// Number of elements of `a` that are also in `b` (both sorted).
size_t TermSetIntersectionSize(const TermSet& a, const TermSet& b);

/// Merges `addition` into the sorted set `target` in place.
void TermSetMergeInto(TermSet* target, const TermSet& addition);

/// Span variants of the containment/intersection tests, for term sets stored
/// as raw (begin, count) slices of a term arena (the frozen IR-tree layout).
/// The spans obey the same sorted/deduplicated invariant as TermSet, and the
/// implementations run the identical comparison sequences, so outcomes match
/// the vector-based helpers bit for bit.
bool TermSpanContains(const TermId* terms, size_t count, TermId t);
bool TermSpanIntersects(const TermId* terms, size_t count, const TermSet& b);

}  // namespace coskq

#endif  // COSKQ_DATA_TERM_SET_H_
