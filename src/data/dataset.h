#ifndef COSKQ_DATA_DATASET_H_
#define COSKQ_DATA_DATASET_H_

#include <stdint.h>

#include <atomic>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/object.h"
#include "data/term_set.h"
#include "geo/rect.h"
#include "util/status.h"

namespace coskq {

/// Bidirectional mapping between keyword strings and dense TermIds.
/// TermIds are assigned in first-seen order starting at 0.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `word`, interning it if unseen.
  TermId GetOrAdd(const std::string& word);

  /// Returns the id of `word`, or kInvalidTermId if unknown.
  TermId Find(const std::string& word) const;

  /// Returns the string for a valid id.
  const std::string& TermString(TermId id) const;

  size_t size() const { return id_to_word_.size(); }

  static constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

 private:
  std::unordered_map<std::string, TermId> word_to_id_;
  std::vector<std::string> id_to_word_;
};

/// An in-memory collection of geo-textual objects plus derived statistics:
/// the spatial MBR, per-term document frequencies, and the frequency-ranked
/// vocabulary used by the paper's query generator. Objects are identified by
/// their index (ObjectId == position), which the indexes rely on.
class Dataset {
 public:
  Dataset() = default;

  // Movable but not copyable: datasets can be large, and accidental copies
  // would dominate benchmark timings. Moves are spelled out because the
  // checksum-memo atomics are not movable themselves.
  Dataset(Dataset&& other) noexcept { *this = std::move(other); }
  Dataset& operator=(Dataset&& other) noexcept {
    objects_ = std::move(other.objects_);
    vocab_ = std::move(other.vocab_);
    mbr_ = other.mbr_;
    term_frequency_ = std::move(other.term_frequency_);
    total_keyword_count_ = other.total_keyword_count_;
    checksum_cached_.store(
        other.checksum_cached_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    checksum_cache_.store(
        other.checksum_cache_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    concurrent_mode_.store(
        other.concurrent_mode_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    published_count_.store(
        other.published_count_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    append_capacity_ = other.append_capacity_;
    return *this;
  }
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Explicit deep copy for tests/tools that mutate a derived dataset.
  Dataset Clone() const;

  /// Appends an object with string keywords; returns its id.
  ObjectId AddObject(const Point& location,
                     const std::vector<std::string>& words);

  /// Appends an object with pre-interned keyword ids (need not be sorted;
  /// duplicates are removed); returns its id.
  ObjectId AddObjectWithTerms(const Point& location, TermSet terms);

  /// Number of published objects. In concurrent-append mode this is the
  /// release-published count — a reader that obtained an id below it (e.g.
  /// from a pinned index delta) can safely read that object.
  size_t NumObjects() const {
    return concurrent_mode_.load(std::memory_order_relaxed)
               ? published_count_.load(std::memory_order_acquire)
               : objects_.size();
  }
  const SpatialObject& object(ObjectId id) const;
  /// Direct storage access. Not meaningful in concurrent-append mode (the
  /// vector carries unpublished placeholder slots past NumObjects()).
  const std::vector<SpatialObject>& objects() const { return objects_; }

  /// Switches into concurrent-append mode with room for `max_extra` more
  /// objects (the live-update server's mutation capacity). The object array
  /// is resized up front, so a single writer thread can append via
  /// AppendObjectConcurrent while readers call NumObjects()/object() with no
  /// locking and no sanitizer findings — publication is a single
  /// release-store of the count, and the storage never reallocates.
  /// Derived statistics (mbr, term frequencies, checksum) are frozen at the
  /// corpus present when this is called; AddObject/AddObjectWithTerms/
  /// ReplaceKeywords must not be used afterwards.
  void EnableConcurrentAppends(size_t max_extra);
  bool concurrent_appends_enabled() const {
    return concurrent_mode_.load(std::memory_order_relaxed);
  }

  /// Single-writer append of an object with pre-interned keyword ids (the
  /// vocabulary is not thread-safe, so callers must intern on their own
  /// serialization — the query server restricts mutations to existing
  /// vocabulary words). OutOfRange once the capacity from
  /// EnableConcurrentAppends is exhausted.
  StatusOr<ObjectId> AppendObjectConcurrent(const Point& location,
                                            TermSet terms);

  const Vocabulary& vocabulary() const { return vocab_; }
  Vocabulary& mutable_vocabulary() { return vocab_; }

  /// Minimum bounding rectangle of all object locations.
  const Rect& mbr() const { return mbr_; }

  /// Number of objects whose keyword set contains `t` (document frequency).
  uint32_t TermFrequency(TermId t) const;

  /// Total number of keyword occurrences across all objects (Σ |o.ψ|).
  uint64_t TotalKeywordCount() const { return total_keyword_count_; }

  /// Mean keyword-set size, the "average |o.ψ|" knob of the evaluation.
  double AverageKeywordsPerObject() const;

  /// Term ids sorted by descending document frequency (ties by id). This is
  /// the ranking the paper's query generator draws keywords from.
  std::vector<TermId> TermsByFrequencyDesc() const;

  /// Replaces the keyword set of `id` (used by the dataset augmentation in
  /// the "effect of average |o.ψ|" experiment). Updates statistics.
  void ReplaceKeywords(ObjectId id, TermSet terms);

  /// Order-sensitive FNV-1a digest of the dataset content: object count,
  /// every object's coordinate bits, and every keyword id. Index snapshots
  /// embed it so a snapshot can only be loaded against the exact dataset it
  /// was built from (keyword ids are interning-order dependent, so even a
  /// re-ordered file with identical objects is a different dataset).
  /// Computed on first call and cached (mutators invalidate), so repeated
  /// callers — snapshot load, server provenance — pay the O(content) walk
  /// once. Safe to call from concurrent readers.
  uint64_t ContentChecksum() const;

  /// Serialization: one object per line, "x y word1 word2 ...".
  Status SaveToFile(const std::string& path) const;
  static StatusOr<Dataset> LoadFromFile(const std::string& path);

  /// Parses the SaveToFile format from a string (used by tests).
  static StatusOr<Dataset> ParseFromString(const std::string& text);

 private:
  std::vector<SpatialObject> objects_;
  Vocabulary vocab_;
  Rect mbr_;
  std::vector<uint32_t> term_frequency_;
  uint64_t total_keyword_count_ = 0;

  // ContentChecksum memo. Concurrent first calls may both compute (and
  // store the identical value); mutators reset the flag. Atomics keep the
  // read-mostly path sanitizer-clean without a lock. Concurrent appends do
  // NOT invalidate it: the cached digest keeps naming the base corpus,
  // which is exactly the provenance an index snapshot was built against.
  mutable std::atomic<bool> checksum_cached_{false};
  mutable std::atomic<uint64_t> checksum_cache_{0};

  // Concurrent-append mode (EnableConcurrentAppends). published_count_ is
  // the reader-visible object count; append_capacity_ the pre-sized bound.
  std::atomic<bool> concurrent_mode_{false};
  std::atomic<size_t> published_count_{0};
  size_t append_capacity_ = 0;
};

}  // namespace coskq

#endif  // COSKQ_DATA_DATASET_H_
