#ifndef COSKQ_DATA_AUGMENT_H_
#define COSKQ_DATA_AUGMENT_H_

#include <stddef.h>

#include <string>

#include "data/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace coskq {

/// Dataset augmentations used by the paper's evaluation.

/// Raises the average keyword-set size to (at least) `target_avg` by
/// repeatedly merging into each object the keyword set of a uniformly random
/// other object, exactly as the "effect of average |o.ψ|" experiment
/// constructs its derived datasets. Mutates `dataset` in place.
void AugmentAverageKeywords(Dataset* dataset, double target_avg, Rng* rng);

/// Grows the dataset to `target_count` objects by adding objects whose
/// location is that of a uniformly random existing object (preserving the
/// spatial distribution) and whose keyword set is copied from a uniformly
/// random existing object, exactly as the scalability experiment grows GN.
void AugmentToSize(Dataset* dataset, size_t target_count, Rng* rng);

/// Streams the AugmentToSize growth of `dataset` to `target_count` objects
/// straight to `path` in the Dataset::SaveToFile text format, without ever
/// materializing the grown dataset: generation memory stays O(|dataset|)
/// regardless of target_count, which is what lets the scalability bench
/// write its 2M-10M object files. Byte-equivalent to growing a copy of
/// `dataset` with AugmentToSize (same rng state) and calling SaveToFile —
/// AugmentToSize samples location and keyword-set donors uniformly from the
/// base objects only, so the appended lines depend on nothing but the base
/// dataset and the rng.
Status StreamAugmentedToFile(const Dataset& dataset, size_t target_count,
                             Rng* rng, const std::string& path);

}  // namespace coskq

#endif  // COSKQ_DATA_AUGMENT_H_
