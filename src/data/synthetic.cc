#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace coskq {

namespace {

// Draws a keyword-set size with mean `avg`, at least 1: 1 + Binomial-ish
// spread implemented as a geometric mixture so small averages stay small.
size_t SampleKeywordCount(double avg, Rng* rng) {
  COSKQ_CHECK_GE(avg, 1.0);
  const double extra_mean = avg - 1.0;
  if (extra_mean <= 0.0) {
    return 1;
  }
  // Geometric with mean extra_mean: p = 1 / (1 + mean).
  const double p = 1.0 / (1.0 + extra_mean);
  size_t extra = 0;
  while (!rng->Bernoulli(p)) {
    ++extra;
    if (extra > 64 * static_cast<size_t>(std::ceil(avg))) {
      break;  // Safety cap against pathological parameters.
    }
  }
  return 1 + extra;
}

Point SampleLocation(const SyntheticSpec& spec,
                     const std::vector<Point>& cluster_centers, Rng* rng) {
  if (!cluster_centers.empty() && rng->Bernoulli(spec.cluster_fraction)) {
    const Point& c =
        cluster_centers[rng->UniformUint64(cluster_centers.size())];
    double x = c.x + spec.cluster_sigma * rng->Gaussian();
    double y = c.y + spec.cluster_sigma * rng->Gaussian();
    x = std::clamp(x, 0.0, 1.0);
    y = std::clamp(y, 0.0, 1.0);
    return Point{x, y};
  }
  return Point{rng->UniformDouble(), rng->UniformDouble()};
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticSpec& spec, Rng* rng) {
  COSKQ_CHECK_GT(spec.num_objects, 0u);
  COSKQ_CHECK_GT(spec.vocab_size, 0u);

  Dataset dataset;
  // Pre-intern the whole vocabulary so TermId == Zipf rank: rank 0 is the
  // most frequent keyword, matching the ranking the query generator uses.
  for (size_t i = 0; i < spec.vocab_size; ++i) {
    std::string word = "t";
    word += std::to_string(i);
    dataset.mutable_vocabulary().GetOrAdd(word);
  }

  std::vector<Point> cluster_centers;
  cluster_centers.reserve(spec.num_clusters);
  for (size_t i = 0; i < spec.num_clusters; ++i) {
    cluster_centers.push_back(
        Point{rng->UniformDouble(0.1, 0.9), rng->UniformDouble(0.1, 0.9)});
  }

  ZipfSampler zipf(spec.vocab_size, spec.zipf_theta);
  TermSet terms;
  for (size_t i = 0; i < spec.num_objects; ++i) {
    const Point location = SampleLocation(spec, cluster_centers, rng);
    const size_t want = std::min(SampleKeywordCount(
                                     spec.avg_keywords_per_object, rng),
                                 spec.vocab_size);
    terms.clear();
    size_t attempts = 0;
    while (terms.size() < want && attempts < 32 * want + 64) {
      ++attempts;
      const TermId t = static_cast<TermId>(zipf.Sample(rng));
      if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
        terms.push_back(t);
      }
    }
    dataset.AddObjectWithTerms(location, terms);
  }
  return dataset;
}

SyntheticSpec HotelLikeSpec(double scale) {
  // Published statistics: 20,790 hotels, 602 unique words, 80,645 total
  // words (≈3.9 keywords/object). Hotels are strongly clustered.
  SyntheticSpec spec;
  spec.name = "Hotel";
  spec.num_objects = std::max<size_t>(100, (size_t)(20790 * scale));
  spec.vocab_size = std::max<size_t>(50, (size_t)(602 * scale));
  spec.avg_keywords_per_object = 3.9;
  spec.zipf_theta = 0.8;
  spec.cluster_fraction = 0.75;
  spec.num_clusters = 24;
  return spec;
}

SyntheticSpec GnLikeSpec(double scale) {
  // Published statistics: 1,868,821 geographic names, 222,409 unique words,
  // 18,374,228 total words (≈9.8 keywords/object).
  SyntheticSpec spec;
  spec.name = "GN";
  spec.num_objects = std::max<size_t>(1000, (size_t)(1868821 * scale));
  // Vocabulary scales linearly with the object count so the *per-keyword
  // object density* — which controls query hardness (d_f, candidate disk
  // sizes) — matches the published corpus at any scale.
  spec.vocab_size = std::max<size_t>(200, (size_t)(222409 * scale));
  spec.avg_keywords_per_object = 9.8;
  spec.zipf_theta = 1.0;
  spec.cluster_fraction = 0.5;
  spec.num_clusters = 48;
  return spec;
}

SyntheticSpec WebLikeSpec(double scale) {
  // Published statistics: 579,727 web objects over 2,899,175 unique words —
  // long documents. The average document length is capped at 40 unique
  // keywords here (the real corpus averages hundreds, which only inflates
  // irrelevant postings); see EXPERIMENTS.md for the substitution note.
  SyntheticSpec spec;
  spec.name = "Web";
  spec.num_objects = std::max<size_t>(1000, (size_t)(579727 * scale));
  // The real Web corpus averages ~430 words per document over a 2.9M-word
  // vocabulary (~86 documents per word). With the document length capped at
  // ~40 keywords, a vocabulary of ~0.47x the object count preserves that
  // per-keyword density.
  spec.vocab_size = std::max<size_t>(500, (size_t)(spec.num_objects * 0.465));
  spec.avg_keywords_per_object = 40.0;
  spec.zipf_theta = 1.0;
  spec.cluster_fraction = 0.4;
  spec.num_clusters = 32;
  return spec;
}

}  // namespace coskq
