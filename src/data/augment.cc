#include "data/augment.h"

#include "data/term_set.h"
#include "util/logging.h"

namespace coskq {

void AugmentAverageKeywords(Dataset* dataset, double target_avg, Rng* rng) {
  COSKQ_CHECK(dataset != nullptr);
  const size_t n = dataset->NumObjects();
  if (n < 2) {
    return;
  }
  int rounds = 0;
  while (dataset->AverageKeywordsPerObject() < target_avg && rounds < 64) {
    ++rounds;
    for (ObjectId id = 0; id < n; ++id) {
      if (dataset->AverageKeywordsPerObject() >= target_avg) {
        break;
      }
      ObjectId other = id;
      while (other == id) {
        other = static_cast<ObjectId>(rng->UniformUint64(n));
      }
      TermSet merged = TermSetUnion(dataset->object(id).keywords,
                                    dataset->object(other).keywords);
      dataset->ReplaceKeywords(id, std::move(merged));
    }
  }
}

void AugmentToSize(Dataset* dataset, size_t target_count, Rng* rng) {
  COSKQ_CHECK(dataset != nullptr);
  const size_t base = dataset->NumObjects();
  COSKQ_CHECK_GT(base, 0u);
  while (dataset->NumObjects() < target_count) {
    const ObjectId loc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    const ObjectId doc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    dataset->AddObjectWithTerms(dataset->object(loc_src).location,
                                dataset->object(doc_src).keywords);
  }
}

}  // namespace coskq
