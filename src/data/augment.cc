#include "data/augment.h"

#include <fstream>
#include <limits>

#include "data/term_set.h"
#include "util/logging.h"

namespace coskq {

void AugmentAverageKeywords(Dataset* dataset, double target_avg, Rng* rng) {
  COSKQ_CHECK(dataset != nullptr);
  const size_t n = dataset->NumObjects();
  if (n < 2) {
    return;
  }
  int rounds = 0;
  while (dataset->AverageKeywordsPerObject() < target_avg && rounds < 64) {
    ++rounds;
    for (ObjectId id = 0; id < n; ++id) {
      if (dataset->AverageKeywordsPerObject() >= target_avg) {
        break;
      }
      ObjectId other = id;
      while (other == id) {
        other = static_cast<ObjectId>(rng->UniformUint64(n));
      }
      TermSet merged = TermSetUnion(dataset->object(id).keywords,
                                    dataset->object(other).keywords);
      dataset->ReplaceKeywords(id, std::move(merged));
    }
  }
}

void AugmentToSize(Dataset* dataset, size_t target_count, Rng* rng) {
  COSKQ_CHECK(dataset != nullptr);
  const size_t base = dataset->NumObjects();
  COSKQ_CHECK_GT(base, 0u);
  while (dataset->NumObjects() < target_count) {
    const ObjectId loc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    const ObjectId doc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    dataset->AddObjectWithTerms(dataset->object(loc_src).location,
                                dataset->object(doc_src).keywords);
  }
}

Status StreamAugmentedToFile(const Dataset& dataset, size_t target_count,
                             Rng* rng, const std::string& path) {
  const size_t base = dataset.NumObjects();
  COSKQ_CHECK_GT(base, 0u);
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  // Same precision as SaveToFile: coordinates round-trip bit-exact.
  out.precision(std::numeric_limits<double>::max_digits10);
  const auto write_line = [&](const Point& location, const TermSet& terms) {
    out << location.x << ' ' << location.y;
    for (TermId t : terms) {
      out << ' ' << dataset.vocabulary().TermString(t);
    }
    out << '\n';
  };
  for (size_t i = 0; i < base; ++i) {
    const SpatialObject& obj = dataset.object(static_cast<ObjectId>(i));
    write_line(obj.location, obj.keywords);
  }
  // Exactly AugmentToSize's sampling: location and keyword donors drawn
  // uniformly from the base objects, one rng pair per appended object.
  for (size_t i = base; i < target_count; ++i) {
    const ObjectId loc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    const ObjectId doc_src = static_cast<ObjectId>(rng->UniformUint64(base));
    write_line(dataset.object(loc_src).location,
               dataset.object(doc_src).keywords);
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace coskq
