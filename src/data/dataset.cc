#include "data/dataset.h"

#include <string.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace coskq {

TermId Vocabulary::GetOrAdd(const std::string& word) {
  auto [it, inserted] =
      word_to_id_.emplace(word, static_cast<TermId>(id_to_word_.size()));
  if (inserted) {
    id_to_word_.push_back(word);
  }
  return it->second;
}

TermId Vocabulary::Find(const std::string& word) const {
  auto it = word_to_id_.find(word);
  return it == word_to_id_.end() ? kInvalidTermId : it->second;
}

const std::string& Vocabulary::TermString(TermId id) const {
  COSKQ_CHECK_LT(id, id_to_word_.size());
  return id_to_word_[id];
}

Dataset Dataset::Clone() const {
  COSKQ_CHECK(!concurrent_appends_enabled())
      << "Clone of a concurrent-append dataset";
  Dataset copy;
  copy.objects_ = objects_;
  copy.vocab_ = vocab_;
  copy.mbr_ = mbr_;
  copy.term_frequency_ = term_frequency_;
  copy.total_keyword_count_ = total_keyword_count_;
  return copy;
}

ObjectId Dataset::AddObject(const Point& location,
                            const std::vector<std::string>& words) {
  TermSet terms;
  terms.reserve(words.size());
  for (const std::string& word : words) {
    terms.push_back(vocab_.GetOrAdd(word));
  }
  return AddObjectWithTerms(location, std::move(terms));
}

ObjectId Dataset::AddObjectWithTerms(const Point& location, TermSet terms) {
  COSKQ_CHECK(!concurrent_appends_enabled())
      << "use AppendObjectConcurrent in concurrent-append mode";
  NormalizeTermSet(&terms);
  checksum_cached_.store(false, std::memory_order_relaxed);
  const ObjectId id = static_cast<ObjectId>(objects_.size());
  mbr_.ExpandToInclude(location);
  total_keyword_count_ += terms.size();
  for (TermId t : terms) {
    if (t >= term_frequency_.size()) {
      term_frequency_.resize(t + 1, 0);
    }
    ++term_frequency_[t];
  }
  objects_.push_back(SpatialObject{id, location, std::move(terms)});
  return id;
}

const SpatialObject& Dataset::object(ObjectId id) const {
  COSKQ_CHECK_LT(id, NumObjects());
  return objects_[id];
}

void Dataset::EnableConcurrentAppends(size_t max_extra) {
  COSKQ_CHECK(!concurrent_appends_enabled());
  const size_t base = objects_.size();
  published_count_.store(base, std::memory_order_relaxed);
  append_capacity_ = base + max_extra;
  // All reallocation happens here, before any reader exists: appends only
  // ever write one placeholder slot and bump the published count, so the
  // storage (and every reference a reader holds) stays put.
  objects_.resize(append_capacity_);
  concurrent_mode_.store(true, std::memory_order_release);
}

StatusOr<ObjectId> Dataset::AppendObjectConcurrent(const Point& location,
                                                   TermSet terms) {
  COSKQ_CHECK(concurrent_appends_enabled());
  NormalizeTermSet(&terms);
  const size_t n = published_count_.load(std::memory_order_relaxed);
  if (n >= append_capacity_) {
    return Status::OutOfRange("append capacity exhausted (" +
                              std::to_string(append_capacity_) + " objects)");
  }
  const ObjectId id = static_cast<ObjectId>(n);
  objects_[n] = SpatialObject{id, location, std::move(terms)};
  // Release: a reader that observes the new count sees the full object.
  published_count_.store(n + 1, std::memory_order_release);
  return id;
}

uint32_t Dataset::TermFrequency(TermId t) const {
  return t < term_frequency_.size() ? term_frequency_[t] : 0;
}

double Dataset::AverageKeywordsPerObject() const {
  if (objects_.empty()) {
    return 0.0;
  }
  return static_cast<double>(total_keyword_count_) /
         static_cast<double>(objects_.size());
}

std::vector<TermId> Dataset::TermsByFrequencyDesc() const {
  std::vector<TermId> terms;
  terms.reserve(term_frequency_.size());
  for (TermId t = 0; t < term_frequency_.size(); ++t) {
    if (term_frequency_[t] > 0) {
      terms.push_back(t);
    }
  }
  std::stable_sort(terms.begin(), terms.end(), [this](TermId a, TermId b) {
    if (term_frequency_[a] != term_frequency_[b]) {
      return term_frequency_[a] > term_frequency_[b];
    }
    return a < b;
  });
  return terms;
}

void Dataset::ReplaceKeywords(ObjectId id, TermSet terms) {
  COSKQ_CHECK_LT(id, objects_.size());
  NormalizeTermSet(&terms);
  checksum_cached_.store(false, std::memory_order_relaxed);
  SpatialObject& obj = objects_[id];
  total_keyword_count_ -= obj.keywords.size();
  for (TermId t : obj.keywords) {
    COSKQ_DCHECK(t < term_frequency_.size() && term_frequency_[t] > 0);
    --term_frequency_[t];
  }
  total_keyword_count_ += terms.size();
  for (TermId t : terms) {
    if (t >= term_frequency_.size()) {
      term_frequency_.resize(t + 1, 0);
    }
    ++term_frequency_[t];
  }
  obj.keywords = std::move(terms);
}

uint64_t Dataset::ContentChecksum() const {
  if (checksum_cached_.load(std::memory_order_acquire)) {
    return checksum_cache_.load(std::memory_order_relaxed);
  }
  // FNV-1a over a canonical little-endian u64 stream. Coordinates are
  // hashed by bit pattern, so the digest is exact (no formatting round
  // trip) and any content difference changes it with high probability.
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&mix](double value) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
    memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  const size_t n = NumObjects();
  mix(n);
  for (size_t i = 0; i < n; ++i) {
    const SpatialObject& obj = objects_[i];
    mix_double(obj.location.x);
    mix_double(obj.location.y);
    mix(obj.keywords.size());
    for (TermId t : obj.keywords) {
      mix(t);
    }
  }
  checksum_cache_.store(h, std::memory_order_relaxed);
  checksum_cached_.store(true, std::memory_order_release);
  return h;
}

Status Dataset::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  // max_digits10 makes the coordinate round-trip bit-exact.
  out.precision(std::numeric_limits<double>::max_digits10);
  const size_t n = NumObjects();
  for (size_t i = 0; i < n; ++i) {
    const SpatialObject& obj = objects_[i];
    out << obj.location.x << ' ' << obj.location.y;
    for (TermId t : obj.keywords) {
      out << ' ' << vocab_.TermString(t);
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

namespace {

StatusOr<Dataset> ParseLines(std::istream& in, const std::string& origin) {
  Dataset dataset;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    std::vector<std::string> fields = SplitString(trimmed, ' ');
    if (fields.size() < 2) {
      return Status::Corruption(origin + ":" + std::to_string(line_number) +
                                ": expected 'x y [words...]'");
    }
    double x = 0.0;
    double y = 0.0;
    if (!ParseDouble(fields[0], &x) || !ParseDouble(fields[1], &y)) {
      return Status::Corruption(origin + ":" + std::to_string(line_number) +
                                ": malformed coordinates");
    }
    // strtod happily parses "nan"/"inf"; a non-finite location would poison
    // every distance computed against it, so reject it here with the same
    // file:line provenance as a parse failure.
    if (!std::isfinite(x) || !std::isfinite(y)) {
      return Status::Corruption(origin + ":" + std::to_string(line_number) +
                                ": non-finite coordinates");
    }
    std::vector<std::string> words(fields.begin() + 2, fields.end());
    dataset.AddObject(Point{x, y}, words);
  }
  return dataset;
}

}  // namespace

StatusOr<Dataset> Dataset::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ParseLines(in, path);
}

StatusOr<Dataset> Dataset::ParseFromString(const std::string& text) {
  std::istringstream in(text);
  return ParseLines(in, "<string>");
}

}  // namespace coskq
