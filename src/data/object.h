#ifndef COSKQ_DATA_OBJECT_H_
#define COSKQ_DATA_OBJECT_H_

#include <stdint.h>

#include <limits>
#include <string>
#include <vector>

#include "data/term_set.h"
#include "geo/point.h"

namespace coskq {

/// Dense object identifier: the object's index in its owning Dataset.
using ObjectId = uint32_t;

inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// A geo-textual object: a spatial location `λ` plus a keyword set `ψ`.
/// This is the `o ∈ O` of the CoSKQ problem definition.
struct SpatialObject {
  ObjectId id = kInvalidObjectId;
  Point location;
  /// Sorted, duplicate-free keyword ids (the TermSet invariant).
  TermSet keywords;

  /// True iff the object's keyword set contains `t`.
  bool ContainsTerm(TermId t) const { return TermSetContains(keywords, t); }

  /// True iff the object covers at least one of the given query keywords,
  /// i.e. the object is *relevant* to a query with keyword set `terms`.
  bool ContainsAnyOf(const TermSet& terms) const {
    return TermSetsIntersect(keywords, terms);
  }

  std::string ToString() const;
};

}  // namespace coskq

#endif  // COSKQ_DATA_OBJECT_H_
