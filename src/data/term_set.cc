#include "data/term_set.h"

#include <algorithm>

namespace coskq {

void NormalizeTermSet(TermSet* terms) {
  std::sort(terms->begin(), terms->end());
  terms->erase(std::unique(terms->begin(), terms->end()), terms->end());
}

bool TermSetContains(const TermSet& terms, TermId t) {
  return std::binary_search(terms.begin(), terms.end(), t);
}

bool TermSetsIntersect(const TermSet& a, const TermSet& b) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

TermSet TermSetUnion(const TermSet& a, const TermSet& b) {
  TermSet result;
  result.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(result));
  return result;
}

TermSet TermSetIntersection(const TermSet& a, const TermSet& b) {
  TermSet result;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(result));
  return result;
}

TermSet TermSetDifference(const TermSet& a, const TermSet& b) {
  TermSet result;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(result));
  return result;
}

bool TermSetIsSubset(const TermSet& sub, const TermSet& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

size_t TermSetIntersectionSize(const TermSet& a, const TermSet& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool TermSpanContains(const TermId* terms, size_t count, TermId t) {
  return std::binary_search(terms, terms + count, t);
}

bool TermSpanIntersects(const TermId* terms, size_t count, const TermSet& b) {
  // Asymmetric inputs — a handful of query terms against a node summary
  // that can span hundreds of thousands of ids — make the classic linear
  // merge O(count): it walks (and on an mmap-cold index, pages in) the
  // whole span. Probe with narrowing binary searches instead: b is sorted,
  // so each lower_bound restarts where the previous one landed, giving
  // O(|b| log count) touches of the span. Fall back to the merge walk when
  // the sides are comparable (both small in practice: leaf documents).
  const size_t b_size = b.size();
  if (b_size == 0 || count == 0) {
    return false;
  }
  if (count / 8 > b_size) {
    const TermId* lo = terms;
    const TermId* end = terms + count;
    for (TermId t : b) {
      lo = std::lower_bound(lo, end, t);
      if (lo == end) {
        return false;
      }
      if (*lo == t) {
        return true;
      }
    }
    return false;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < count && j < b_size) {
    if (terms[i] < b[j]) {
      ++i;
    } else if (b[j] < terms[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

void TermSetMergeInto(TermSet* target, const TermSet& addition) {
  if (addition.empty()) {
    return;
  }
  TermSet merged = TermSetUnion(*target, addition);
  target->swap(merged);
}

}  // namespace coskq
