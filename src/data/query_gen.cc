#include "data/query_gen.h"

#include <algorithm>

#include "util/logging.h"

namespace coskq {

QueryGenerator::QueryGenerator(const Dataset* dataset, const Options& options)
    : dataset_(dataset) {
  COSKQ_CHECK(dataset != nullptr);
  COSKQ_CHECK_GE(options.percentile_lo, 0.0);
  COSKQ_CHECK_LE(options.percentile_hi, 1.0);
  COSKQ_CHECK_LT(options.percentile_lo, options.percentile_hi);
  const std::vector<TermId> ranked = dataset->TermsByFrequencyDesc();
  const size_t lo = static_cast<size_t>(options.percentile_lo *
                                        static_cast<double>(ranked.size()));
  size_t hi = static_cast<size_t>(options.percentile_hi *
                                  static_cast<double>(ranked.size()));
  hi = std::max(hi, std::min(ranked.size(), lo + 1));
  band_.assign(ranked.begin() + lo, ranked.begin() + hi);
}

CoskqQuery QueryGenerator::Generate(size_t num_keywords, Rng* rng) const {
  CoskqQuery query;
  const Rect& mbr = dataset_->mbr();
  if (mbr.IsEmpty()) {
    query.location = Point{0.0, 0.0};
  } else {
    // Degenerate (zero-width/height) MBRs pin the coordinate.
    query.location.x = mbr.min_x < mbr.max_x
                           ? rng->UniformDouble(mbr.min_x, mbr.max_x)
                           : mbr.min_x;
    query.location.y = mbr.min_y < mbr.max_y
                           ? rng->UniformDouble(mbr.min_y, mbr.max_y)
                           : mbr.min_y;
  }
  const size_t want = std::min(num_keywords, band_.size());
  // Partial Fisher-Yates over a copy of the band: uniform without
  // replacement.
  TermSet pool = band_;
  for (size_t i = 0; i < want; ++i) {
    const size_t j = i + static_cast<size_t>(rng->UniformUint64(
                             pool.size() - i));
    std::swap(pool[i], pool[j]);
    query.keywords.push_back(pool[i]);
  }
  NormalizeTermSet(&query.keywords);
  return query;
}

}  // namespace coskq
