#include "data/object.h"

#include <sstream>

namespace coskq {

std::string SpatialObject::ToString() const {
  std::ostringstream os;
  os << "o" << id << "@" << location.ToString() << " ψ={";
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << keywords[i];
  }
  os << "}";
  return os.str();
}

}  // namespace coskq
