#ifndef COSKQ_DATA_QUERY_GEN_H_
#define COSKQ_DATA_QUERY_GEN_H_

#include <stddef.h>

#include "data/dataset.h"
#include "data/query.h"
#include "data/term_set.h"
#include "geo/point.h"
#include "util/random.h"

namespace coskq {

/// Generates queries the way the paper does: the location is drawn uniformly
/// from the MBR of the dataset, and the keywords are drawn from a percentile
/// band of the frequency-ranked vocabulary (default [0%, 40%] — the most
/// frequent 40% of distinct keywords), without replacement.
class QueryGenerator {
 public:
  struct Options {
    /// Percentile band [lo, hi) of the descending-frequency term ranking to
    /// draw keywords from, as fractions in [0, 1].
    double percentile_lo = 0.0;
    double percentile_hi = 0.4;
  };

  QueryGenerator(const Dataset* dataset, const Options& options);
  explicit QueryGenerator(const Dataset* dataset)
      : QueryGenerator(dataset, Options()) {}

  /// Generates one query with `num_keywords` distinct keywords. If the band
  /// holds fewer distinct terms than requested, all of them are used.
  CoskqQuery Generate(size_t num_keywords, Rng* rng) const;

  /// Number of distinct terms in the configured percentile band.
  size_t BandSize() const { return band_.size(); }

 private:
  const Dataset* dataset_;
  TermSet band_;  // Candidate terms (unsorted ranking slice).
};

}  // namespace coskq

#endif  // COSKQ_DATA_QUERY_GEN_H_
