#ifndef COSKQ_DATA_QUERY_H_
#define COSKQ_DATA_QUERY_H_

#include "data/term_set.h"
#include "geo/point.h"

namespace coskq {

/// A CoSKQ query q: a location q.λ and a keyword set q.ψ. The answer is a
/// *feasible* object set (one covering q.ψ) of minimum cost.
struct CoskqQuery {
  Point location;
  /// Sorted, duplicate-free query keywords (the TermSet invariant).
  TermSet keywords;
};

}  // namespace coskq

#endif  // COSKQ_DATA_QUERY_H_
