#ifndef COSKQ_DATA_SYNTHETIC_H_
#define COSKQ_DATA_SYNTHETIC_H_

#include <stddef.h>

#include <string>

#include "data/dataset.h"
#include "util/random.h"

namespace coskq {

/// Parameters of the synthetic geo-textual dataset generator.
///
/// The paper evaluates on three real datasets (Hotel, GN, Web) that are not
/// redistributable. The generator below produces datasets with matched
/// *published statistics* — object count, vocabulary size, average keywords
/// per object — with Zipf-distributed keyword frequencies (word frequencies
/// in geo-textual corpora are heavy-tailed) and a mixture of uniform and
/// clustered locations (POI datasets are spatially clustered around cities).
/// See EXPERIMENTS.md for the substitution rationale.
struct SyntheticSpec {
  /// Number of objects to generate.
  size_t num_objects = 10000;
  /// Vocabulary size; term ids coincide with frequency rank (0 = most
  /// frequent) because keywords are drawn from a Zipf over ranks.
  size_t vocab_size = 1000;
  /// Mean keyword-set size per object (geometric-ish spread around it).
  double avg_keywords_per_object = 4.0;
  /// Zipf skew of the keyword frequency distribution (0 = uniform).
  double zipf_theta = 0.9;
  /// Fraction of objects placed in Gaussian clusters; the rest is uniform.
  double cluster_fraction = 0.7;
  /// Number of Gaussian clusters.
  size_t num_clusters = 16;
  /// Standard deviation of each cluster, in units of the unit square.
  double cluster_sigma = 0.03;

  /// Human-readable name used by benches and reports.
  std::string name = "synthetic";
};

/// Generates a dataset according to `spec`, deterministically for a given
/// seed. Keyword strings are "t<id>".
Dataset GenerateSynthetic(const SyntheticSpec& spec, Rng* rng);

/// Specs mirroring the published statistics of the paper's real datasets,
/// scaled by `scale` (1.0 = published size). Scaling multiplies the object
/// count and vocabulary size, keeping the average keywords per object.
SyntheticSpec HotelLikeSpec(double scale);
SyntheticSpec GnLikeSpec(double scale);
SyntheticSpec WebLikeSpec(double scale);

}  // namespace coskq

#endif  // COSKQ_DATA_SYNTHETIC_H_
