#ifndef COSKQ_CACHE_RESULT_CACHE_H_
#define COSKQ_CACHE_RESULT_CACHE_H_

#include <stdint.h>

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace coskq {

/// Statistics snapshot of a ResultCache (summed across shards). The fields
/// mirror the protocol-v6 STATS tail one-to-one.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          // includes invalidation misses
  uint64_t evictions = 0;       // LRU byte-budget evictions
  uint64_t invalidations = 0;   // stale-stamp entries dropped at lookup
  uint64_t resident_bytes = 0;  // approximate bytes held right now
  uint64_t budget_bytes = 0;    // configured ceiling
  uint64_t entries = 0;         // live entry count
};

/// The canonical form of a query for caching purposes (DESIGN.md §16).
///
///  * `cell`       — the quantized location cell. Quantization drops low
///                   mantissa bits of each coordinate (cell_bits kept), so
///                   nearby queries fall into the same cell and contend for
///                   the same slot; coarser cells bound cache cardinality.
///  * `keywords`   — the canonical keyword set: sorted, de-duplicated term
///                   ids (single server: dataset TermIds after
///                   NormalizeTermSet; router: global vocabulary ids). The
///                   full set is compared on lookup, never just its hash.
///  * `solver`/`cost_type` — raw SolverKind/CostType values; answers from
///                   different solvers are never interchangeable.
///
/// A hit additionally requires the entry's exact query coordinates to match
/// bit-for-bit (the cell is a slot address, not an equivalence class), so a
/// cached answer is always bit-identical to re-solving the same request.
struct ResultCacheKey {
  uint64_t cell = 0;
  std::vector<uint32_t> keywords;
  uint8_t solver = 0;
  uint8_t cost_type = 0;
  double x = 0.0;  // exact-coordinate guard, not part of the slot identity
  double y = 0.0;
};

/// The cached answer: exactly the bits the serving layers put into a
/// QueryResult wire reply. Deadline-truncated solves are never inserted
/// (their answer depends on the deadline, not just the query); infeasible
/// answers are cached like any other.
struct CachedAnswer {
  uint8_t outcome = 0;  // QueryOutcome as encoded on the wire
  double cost = 0.0;
  double solve_ms = 0.0;  // original solve cost, echoed on hits
  std::vector<uint32_t> set;
};

/// Sharded, bounded-memory, epoch-invalidated LRU cache for solved CoSKQ
/// answers (DESIGN.md §16).
///
/// Concurrency: the key hash picks one of kNumShards shards; each shard has
/// its own mutex, hash map and LRU list, so lookups/inserts on different
/// shards never contend. No lock is ever held while another cache (or any
/// other) lock is taken — the per-shard mutex is a leaf in the server's lock
/// order.
///
/// Invalidation: every entry is stamped with the index epoch and the
/// cumulative mutation count observed *before* its solve began. A lookup
/// passes the current (epoch, mutations) pair; any entry whose stamp differs
/// is dropped on the spot and reported as a miss (counted as an
/// invalidation). Because the single server reads the stamp on the event-loop
/// thread — the sole mutation applier — a query admitted after a MUTATE ack
/// always carries the post-mutation stamp and can never hit a pre-mutation
/// entry.
class ResultCache {
 public:
  struct Options {
    size_t budget_bytes = 64u << 20;
    int cell_bits = 12;  // mantissa bits kept per coordinate, clamped [0,52]
  };

  explicit ResultCache(const Options& options);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Quantizes a coordinate pair into a cell id by keeping `cell_bits` high
  /// mantissa bits of each coordinate (sign/exponent always kept), then
  /// mixing the two truncated bit patterns.
  static uint64_t CellOf(double x, double y, int cell_bits);

  /// Looks `key` up under the caller's current invalidation stamp. Returns
  /// true and fills `out` on a fresh hit. A stale-stamp entry is erased and
  /// counted as both an invalidation and a miss. A same-slot entry whose
  /// exact coordinates differ is left in place and reported as a miss.
  bool Lookup(const ResultCacheKey& key, uint64_t epoch, uint64_t mutations,
              CachedAnswer* out);

  /// Inserts (or replaces) the slot for `key`, stamped with the
  /// (epoch, mutations) pair the caller read before solving, then evicts
  /// from the shard's LRU tail until the shard is back under budget. An
  /// answer larger than a whole shard's budget is not admitted.
  void Insert(const ResultCacheKey& key, uint64_t epoch, uint64_t mutations,
              const CachedAnswer& answer);

  /// Counter + occupancy snapshot summed across shards.
  ResultCacheStats Snapshot() const;

  size_t budget_bytes() const { return budget_bytes_; }
  int cell_bits() const { return cell_bits_; }

  /// True when the COSKQ_RESULT_CACHE environment variable force-disables
  /// caching ("off" or "0"), regardless of --result-cache-mb. Lets CI prove
  /// the cache-off path stays green without rebuilding command lines.
  static bool ForceDisabledByEnv();

 private:
  static constexpr size_t kNumShards = 16;

  struct SlotKey {
    uint64_t cell;
    std::vector<uint32_t> keywords;
    uint8_t solver;
    uint8_t cost_type;

    bool operator==(const SlotKey& other) const {
      return cell == other.cell && solver == other.solver &&
             cost_type == other.cost_type && keywords == other.keywords;
    }
  };

  struct SlotKeyHash {
    size_t operator()(const SlotKey& key) const;
  };

  struct Entry {
    SlotKey slot;
    double x;
    double y;
    uint64_t epoch;
    uint64_t mutations;
    CachedAnswer answer;
    size_t bytes;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<SlotKey, std::list<Entry>::iterator, SlotKeyHash> map;
    size_t resident_bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  static size_t EntryBytes(const SlotKey& slot, const CachedAnswer& answer);
  Shard& ShardFor(const SlotKey& slot, size_t* hash_out);

  const size_t budget_bytes_;
  const size_t shard_budget_bytes_;
  const int cell_bits_;
  Shard shards_[kNumShards];
};

}  // namespace coskq

#endif  // COSKQ_CACHE_RESULT_CACHE_H_
