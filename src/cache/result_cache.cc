#include "cache/result_cache.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace coskq {
namespace {

// 64-bit FNV-1a over raw bytes — the same digest family the snapshot and
// manifest checksums use, cheap and stable across platforms.
uint64_t Fnv1a(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

}  // namespace

ResultCache::ResultCache(const Options& options)
    : budget_bytes_(std::max<size_t>(options.budget_bytes, kNumShards)),
      shard_budget_bytes_(budget_bytes_ / kNumShards),
      cell_bits_(std::min(52, std::max(0, options.cell_bits))) {}

uint64_t ResultCache::CellOf(double x, double y, int cell_bits) {
  const int kept = std::min(52, std::max(0, cell_bits));
  const uint64_t drop = 52 - static_cast<uint64_t>(kept);
  const uint64_t mask = drop >= 64 ? 0 : ~((1ull << drop) - 1);
  uint64_t xb;
  uint64_t yb;
  std::memcpy(&xb, &x, sizeof(xb));
  std::memcpy(&yb, &y, sizeof(yb));
  xb &= mask;
  yb &= mask;
  uint64_t h = Fnv1a(&xb, sizeof(xb), kFnvOffset);
  return Fnv1a(&yb, sizeof(yb), h);
}

size_t ResultCache::SlotKeyHash::operator()(const SlotKey& key) const {
  uint64_t h = Fnv1a(&key.cell, sizeof(key.cell), kFnvOffset);
  h = Fnv1a(key.keywords.data(), key.keywords.size() * sizeof(uint32_t), h);
  const unsigned char tail[2] = {key.solver, key.cost_type};
  return static_cast<size_t>(Fnv1a(tail, sizeof(tail), h));
}

size_t ResultCache::EntryBytes(const SlotKey& slot,
                               const CachedAnswer& answer) {
  // Approximate resident cost: list node + map node bookkeeping plus the
  // two keyword vectors (one in the map key, one in the entry's slot copy)
  // and the answer set. The constant covers node headers, hashes and the
  // fixed fields; what matters is that it is monotone in payload size so
  // the byte budget bounds true memory within a small constant factor.
  return 160 + 2 * slot.keywords.size() * sizeof(uint32_t) +
         answer.set.size() * sizeof(uint32_t);
}

ResultCache::Shard& ResultCache::ShardFor(const SlotKey& slot,
                                          size_t* hash_out) {
  const size_t h = SlotKeyHash()(slot);
  if (hash_out != nullptr) {
    *hash_out = h;
  }
  // The map uses the low hash bits for buckets; pick the shard from the
  // high bits so shard choice and in-shard placement stay independent.
  return shards_[(h >> 57) % kNumShards];
}

bool ResultCache::Lookup(const ResultCacheKey& key, uint64_t epoch,
                         uint64_t mutations, CachedAnswer* out) {
  SlotKey slot{key.cell, key.keywords, key.solver, key.cost_type};
  Shard& shard = ShardFor(slot, nullptr);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(slot);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  Entry& entry = *it->second;
  if (entry.epoch != epoch || entry.mutations != mutations) {
    // The index advanced since this answer was solved: drop it so the slot
    // cannot serve a stale answer even if the stamp ever wrapped around.
    shard.resident_bytes -= entry.bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
    ++shard.invalidations;
    ++shard.misses;
    return false;
  }
  if (std::memcmp(&entry.x, &key.x, sizeof(double)) != 0 ||
      std::memcmp(&entry.y, &key.y, sizeof(double)) != 0) {
    // Same cell, different exact location: the slot stays (last writer
    // wins on insert), but serving it would not be bit-identical.
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = entry.answer;
  ++shard.hits;
  return true;
}

void ResultCache::Insert(const ResultCacheKey& key, uint64_t epoch,
                         uint64_t mutations, const CachedAnswer& answer) {
  SlotKey slot{key.cell, key.keywords, key.solver, key.cost_type};
  const size_t bytes = EntryBytes(slot, answer);
  if (bytes > shard_budget_bytes_) {
    return;  // Larger than a whole shard: not admissible.
  }
  Shard& shard = ShardFor(slot, nullptr);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(slot);
  if (it != shard.map.end()) {
    shard.resident_bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{slot, key.x, key.y, epoch, mutations, answer,
                             bytes});
  shard.map.emplace(std::move(slot), shard.lru.begin());
  shard.resident_bytes += bytes;
  while (shard.resident_bytes > shard_budget_bytes_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.resident_bytes -= victim.bytes;
    shard.map.erase(victim.slot);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCacheStats ResultCache::Snapshot() const {
  ResultCacheStats stats;
  stats.budget_bytes = budget_bytes_;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.resident_bytes += shard.resident_bytes;
    stats.entries += shard.lru.size();
  }
  return stats;
}

bool ResultCache::ForceDisabledByEnv() {
  const char* value = std::getenv("COSKQ_RESULT_CACHE");
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "off") == 0 || std::strcmp(value, "0") == 0;
}

}  // namespace coskq
