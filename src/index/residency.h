#ifndef COSKQ_INDEX_RESIDENCY_H_
#define COSKQ_INDEX_RESIDENCY_H_

#include <stddef.h>
#include <stdint.h>

#include <string>

#include "util/status.h"

namespace coskq {
namespace internal_index {

/// Page-cache / resident-set instrumentation and advice for the out-of-core
/// frozen index (DESIGN.md §14). Everything here is best-effort: on
/// platforms or filesystems where a syscall is unavailable or fails, the
/// advice calls are no-ops and the counters return 0 — cold-mode loading
/// must degrade to plain (correct) mmap behavior, never fail.

/// Page size used for range rounding. Queried once from sysconf; falls back
/// to 4096 when unavailable (the snapshot format's own page-group size).
size_t PageBytes();

/// Process page-fault counters from getrusage(RUSAGE_SELF): `major` faults
/// required I/O (the number a cold mmap traversal is judged by), `minor`
/// were satisfied from the page cache.
struct FaultCounters {
  uint64_t major = 0;
  uint64_t minor = 0;
};
FaultCounters ProcessFaultCounters();

/// Process resident-set size in bytes from /proc/self/statm (0 when
/// unreadable).
uint64_t ProcessResidentBytes();

/// Resident bytes of one mapping, counted page-by-page via mincore (0 on
/// error). O(len / page); callers rate-limit.
uint64_t MappingResidentBytes(const void* base, size_t len);

/// madvise wrappers over the page-aligned hull of [p, p + len). Advisory;
/// errors ignored.
void AdviseRandom(const void* p, size_t len);
void AdviseWillNeed(const void* p, size_t len);
void AdviseDontNeed(const void* p, size_t len);

/// Asks the kernel to drop the page cache for `path`
/// (posix_fadvise(POSIX_FADV_DONTNEED) over the whole file, after an
/// fdatasync-free best-effort flush of nothing — the file is read-only
/// here). Used by the cold-start benches so "cold" rounds actually touch
/// the disk instead of the page cache, and by cold snapshot loads so the
/// checksum verification pass does not pre-warm the mapping.
Status DropFileCache(const std::string& path);

}  // namespace internal_index
}  // namespace coskq

#endif  // COSKQ_INDEX_RESIDENCY_H_
