#include "index/residency.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

namespace coskq {
namespace internal_index {
namespace {

size_t QueryPageBytes() {
  long page = sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096u;
}

// Rounds [p, p + len) out to its page-aligned hull and applies `advice`.
void AdviseHull(const void* p, size_t len, int advice) {
  if (p == nullptr || len == 0) return;
  const size_t page = PageBytes();
  uintptr_t begin = reinterpret_cast<uintptr_t>(p);
  uintptr_t end = begin + len;
  begin &= ~(static_cast<uintptr_t>(page) - 1);
  end = (end + page - 1) & ~(static_cast<uintptr_t>(page) - 1);
  // madvise takes a non-const pointer but MADV_* read hints do not mutate.
  (void)madvise(reinterpret_cast<void*>(begin), end - begin, advice);
}

}  // namespace

size_t PageBytes() {
  static const size_t kPage = QueryPageBytes();
  return kPage;
}

FaultCounters ProcessFaultCounters() {
  FaultCounters out;
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    out.major = static_cast<uint64_t>(ru.ru_majflt);
    out.minor = static_cast<uint64_t>(ru.ru_minflt);
  }
  return out;
}

uint64_t ProcessResidentBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size_pages = 0, resident_pages = 0;
  const int parsed = std::fscanf(f, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(f);
  if (parsed != 2) return 0;
  return static_cast<uint64_t>(resident_pages) * PageBytes();
}

uint64_t MappingResidentBytes(const void* base, size_t len) {
  if (base == nullptr || len == 0) return 0;
  const size_t page = PageBytes();
  const size_t num_pages = (len + page - 1) / page;
  // Bounded scratch: walk the mapping 4096 pages (16 MiB of body) at a time
  // so huge bodies don't need a proportional status-vector allocation.
  static thread_local unsigned char vec[4096];
  const size_t chunk = sizeof(vec);
  uint64_t resident = 0;
  const uint8_t* p = static_cast<const uint8_t*>(base);
  for (size_t i = 0; i < num_pages; i += chunk) {
    const size_t n = (num_pages - i) < chunk ? (num_pages - i) : chunk;
    if (mincore(const_cast<uint8_t*>(p) + i * page, n * page, vec) != 0) {
      return 0;
    }
    for (size_t j = 0; j < n; ++j) resident += (vec[j] & 1u);
  }
  return resident * page;
}

void AdviseRandom(const void* p, size_t len) {
  AdviseHull(p, len, MADV_RANDOM);
}

void AdviseWillNeed(const void* p, size_t len) {
  AdviseHull(p, len, MADV_WILLNEED);
}

void AdviseDontNeed(const void* p, size_t len) {
  AdviseHull(p, len, MADV_DONTNEED);
}

Status DropFileCache(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("DropFileCache: open failed for " + path + ": " +
                           strerror(errno));
  }
  const int rc = posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  close(fd);
  if (rc != 0) {
    return Status::IoError("DropFileCache: posix_fadvise failed for " + path +
                           ": " + strerror(rc));
  }
  return Status::OK();
}

}  // namespace internal_index
}  // namespace coskq
