#ifndef COSKQ_INDEX_SEARCH_SCRATCH_H_
#define COSKQ_INDEX_SEARCH_SCRATCH_H_

#include <stdint.h>

#include <vector>

#include "data/object.h"
#include "data/term_set.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "index/query_mask.h"

namespace coskq {

namespace internal_index {

/// Best-first queue entry pooled in SearchScratch. Field layout and
/// comparator mirror the IR-tree's internal QueueEntry exactly, so a pooled
/// std::push_heap/pop_heap loop pops entries in the same order (ties
/// included) as the baseline std::priority_queue.
struct HeapEntry {
  double distance;
  const void* node;  // nullptr for object entries.
  ObjectId id;
  /// Prefetch hint for frozen-tree entries (see kernels.h PrefetchHint):
  /// child-slot or leaf-entry base with the leaf flag in the MSB. Occupies
  /// what was tail padding, is ignored by the comparator, and carries no
  /// traversal semantics — heap order and results are unaffected.
  uint32_t aux = 0;
  bool operator>(const HeapEntry& other) const {
    return distance > other.distance;
  }
};
static_assert(sizeof(HeapEntry) == 24, "aux must fit in former padding");

}  // namespace internal_index

/// Per-query search state pooled across a batch: query-keyword bitmask
/// caches for IR-tree nodes and objects, memoized query-to-object and
/// query-to-node distances, and reusable traversal buffers. (Pairwise
/// object distances are deliberately NOT memoized: a 2-D Euclidean
/// distance costs less than the table probe that would replace it.) One SearchScratch belongs to exactly one
/// solver instance (and therefore to one thread under the BatchEngine's
/// one-solver-per-worker contract); it is never shared.
///
/// Lifecycle per query:
///   scratch.BeginQuery(q.λ, q.ψ, tree.node_id_limit(), dataset.NumObjects());
///   ... masked traversals / cached distance lookups ...
///   scratch.FinishQuery();   // audits pooled-buffer growth
///
/// Caches are invalidated by a per-query epoch stamp instead of clearing, so
/// BeginQuery is O(1) in the cache sizes once the arrays are grown. After
/// the first few queries of a batch every pooled buffer has reached its
/// steady-state capacity and `realloc_events()` stays 0 — the property the
/// batch tests assert.
///
/// With `set_enabled(false)` (the A/B baseline switch) `mask_active()` is
/// false and the distance memo is bypassed: every scratch-aware overload in
/// the index and the solvers then behaves exactly like the baseline path.
class SearchScratch {
 public:
  SearchScratch() = default;

  SearchScratch(const SearchScratch&) = delete;
  SearchScratch& operator=(const SearchScratch&) = delete;

  /// Master switch; disabling reproduces the pre-mask baseline behavior.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Starts a new query: bumps the cache epoch, rebinds the keyword mask,
  /// sizes the cache arrays, and resets the per-query counters. Capacity
  /// snapshots for the realloc audit are taken *before* any sizing, so
  /// first-query warm-up growth is visible in realloc_events().
  void BeginQuery(const Point& origin, const TermSet& keywords,
                  size_t node_id_limit, size_t num_objects);

  /// Ends the query: counts pooled buffers whose capacity changed since
  /// BeginQuery into realloc_events() / total_realloc_events().
  void FinishQuery();

  const QueryTermMask& mask() const { return mask_; }

  /// True iff masked traversal applies: scratch enabled and 1..64 query
  /// keywords bound by BeginQuery.
  bool mask_active() const { return enabled_ && mask_.active(); }

  const Point& origin() const { return origin_; }

  /// Cached query-keyword mask of IR-tree node `node_id` (computed from
  /// `node_terms` on first access this query).
  uint64_t NodeMask(uint32_t node_id, const TermSet& node_terms);

  /// Span variant for the frozen IR-tree layout, where a node's term summary
  /// is an arena slice. Cache semantics and computed values are identical to
  /// the TermSet overload (same node id keys the same slot).
  uint64_t NodeMask(uint32_t node_id, const TermId* node_terms, size_t count);

  /// Cached query-keyword mask of object `id` (computed from `keywords` on
  /// first access this query).
  uint64_t ObjectMask(ObjectId id, const TermSet& keywords);

  /// Reads object `id`'s cached mask without computing it: true and sets
  /// `*mask` when the entry is warm this query. Lets traversals use the
  /// cached mask when present but fall back to a cheaper one-shot exact
  /// test (with no cache fill) when cold.
  bool CachedObjectMask(ObjectId id, uint64_t* mask) const;

  /// Same read-only lookup for node masks.
  bool CachedNodeMask(uint32_t node_id, uint64_t* mask) const;

  /// Memoized MinDistance(origin, node MBR), keyed by node id and valid for
  /// this query's epoch. The value is computed with the same
  /// Rect::MinDistance call as the baseline, so reads are bit-identical;
  /// the k per-keyword searches of one NnSet hit this cache k-1 times per
  /// shared node. Only valid for traversals anchored at origin().
  double NodeMinDistance(uint32_t node_id, const Rect& mbr);

  /// Memoized d(origin, o). `location` must be object `id`'s location; the
  /// value is computed with the same Distance() call as the baseline, so
  /// cached reads are bit-identical. Bypasses the memo when disabled.
  double QueryDistance(ObjectId id, const Point& location);

  /// Pooled best-first heap storage. Exclusively owned by one traversal at
  /// a time; traversals clear it on entry.
  std::vector<internal_index::HeapEntry>& heap() { return heap_; }

  /// Pooled object-id buffer (range-query hits etc.). Same ownership rule.
  std::vector<ObjectId>& id_buffer() { return id_buffer_; }

  /// Pooled survivor buffers the SIMD child/leaf scan kernels write into
  /// (indices relative to the scanned range, plus squared distances for
  /// child scans). Exclusively owned by one node/leaf scan at a time: every
  /// scan consumes its survivors before the traversal touches another node,
  /// so a single pair per scratch suffices.
  std::vector<uint32_t>& survivor_idx() { return survivor_idx_; }
  std::vector<double>& survivor_dist() { return survivor_dist_; }

  /// Distance-memo hits/misses of the current query (valid any time between
  /// BeginQuery calls; zero while disabled).
  uint64_t dist_cache_hits() const { return dist_hits_; }
  uint64_t dist_cache_misses() const { return dist_misses_; }

  /// Pooled buffers that changed capacity during the last
  /// BeginQuery..FinishQuery window.
  uint64_t realloc_events() const { return realloc_events_; }
  uint64_t total_realloc_events() const { return total_realloc_events_; }
  uint64_t queries_started() const { return queries_started_; }

  /// Test instrumentation: when non-null, masked IR-tree traversals append
  /// the id of every node they expand. Not owned; callers manage lifetime
  /// and clearing.
  void set_visit_log(std::vector<uint32_t>* log) { visit_log_ = log; }
  std::vector<uint32_t>* visit_log() const { return visit_log_; }

 private:
  /// Epoch-stamped cache entries packed value-next-to-stamp so a lookup
  /// touches one cache line, not one per array.
  struct MaskSlot {
    uint64_t epoch = 0;
    uint64_t mask = 0;
  };
  struct DistSlot {
    uint64_t epoch = 0;
    double distance = 0.0;
  };

  bool enabled_ = true;
  QueryTermMask mask_;
  Point origin_;
  uint64_t epoch_ = 0;

  std::vector<MaskSlot> node_masks_;
  std::vector<DistSlot> node_dists_;
  std::vector<MaskSlot> obj_masks_;
  std::vector<DistSlot> dists_;

  std::vector<internal_index::HeapEntry> heap_;
  std::vector<ObjectId> id_buffer_;
  std::vector<uint32_t> survivor_idx_;
  std::vector<double> survivor_dist_;

  uint64_t dist_hits_ = 0;
  uint64_t dist_misses_ = 0;
  uint64_t realloc_events_ = 0;
  uint64_t total_realloc_events_ = 0;
  uint64_t queries_started_ = 0;
  std::vector<size_t> capacity_snapshot_;

  std::vector<uint32_t>* visit_log_ = nullptr;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_SEARCH_SCRATCH_H_
