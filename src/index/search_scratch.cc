#include "index/search_scratch.h"

namespace coskq {

void SearchScratch::BeginQuery(const Point& origin, const TermSet& keywords,
                               size_t node_id_limit, size_t num_objects) {
  // Snapshot capacities before sizing so warm-up growth is audited too.
  capacity_snapshot_.clear();
  capacity_snapshot_.push_back(node_masks_.capacity());
  capacity_snapshot_.push_back(node_dists_.capacity());
  capacity_snapshot_.push_back(obj_masks_.capacity());
  capacity_snapshot_.push_back(dists_.capacity());
  capacity_snapshot_.push_back(heap_.capacity());
  capacity_snapshot_.push_back(id_buffer_.capacity());
  capacity_snapshot_.push_back(survivor_idx_.capacity());
  capacity_snapshot_.push_back(survivor_dist_.capacity());

  origin_ = origin;
  ++epoch_;
  ++queries_started_;
  dist_hits_ = 0;
  dist_misses_ = 0;
  realloc_events_ = 0;
  if (!enabled_) {
    mask_.Reset(TermSet{});
    return;
  }
  mask_.Reset(keywords);
  if (node_masks_.size() < node_id_limit) {
    node_masks_.resize(node_id_limit);
    node_dists_.resize(node_id_limit);
  }
  if (obj_masks_.size() < num_objects) {
    obj_masks_.resize(num_objects);
    dists_.resize(num_objects);
  }
}

void SearchScratch::FinishQuery() {
  if (capacity_snapshot_.size() != 8) {
    return;  // FinishQuery without a matching BeginQuery.
  }
  const size_t capacities[8] = {
      node_masks_.capacity(),    node_dists_.capacity(),
      obj_masks_.capacity(),     dists_.capacity(),
      heap_.capacity(),          id_buffer_.capacity(),
      survivor_idx_.capacity(),  survivor_dist_.capacity()};
  for (size_t i = 0; i < 8; ++i) {
    if (capacities[i] != capacity_snapshot_[i]) {
      ++realloc_events_;
    }
  }
  total_realloc_events_ += realloc_events_;
  capacity_snapshot_.clear();
}

uint64_t SearchScratch::NodeMask(uint32_t node_id, const TermSet& node_terms) {
  return NodeMask(node_id, node_terms.data(), node_terms.size());
}

uint64_t SearchScratch::NodeMask(uint32_t node_id, const TermId* node_terms,
                                 size_t count) {
  if (node_id < node_masks_.size()) {
    MaskSlot& slot = node_masks_[node_id];
    if (slot.epoch == epoch_) {
      return slot.mask;
    }
    slot.epoch = epoch_;
    slot.mask = mask_.MaskOf(node_terms, count);
    return slot.mask;
  }
  return mask_.MaskOf(node_terms, count);
}

bool SearchScratch::CachedObjectMask(ObjectId id, uint64_t* mask) const {
  if (id < obj_masks_.size() && obj_masks_[id].epoch == epoch_) {
    *mask = obj_masks_[id].mask;
    return true;
  }
  return false;
}

bool SearchScratch::CachedNodeMask(uint32_t node_id, uint64_t* mask) const {
  if (node_id < node_masks_.size() && node_masks_[node_id].epoch == epoch_) {
    *mask = node_masks_[node_id].mask;
    return true;
  }
  return false;
}

double SearchScratch::NodeMinDistance(uint32_t node_id, const Rect& mbr) {
  if (node_id < node_dists_.size()) {
    DistSlot& slot = node_dists_[node_id];
    if (slot.epoch == epoch_) {
      return slot.distance;
    }
    slot.epoch = epoch_;
    slot.distance = mbr.MinDistance(origin_);
    return slot.distance;
  }
  return mbr.MinDistance(origin_);
}

uint64_t SearchScratch::ObjectMask(ObjectId id, const TermSet& keywords) {
  if (id < obj_masks_.size()) {
    MaskSlot& slot = obj_masks_[id];
    if (slot.epoch == epoch_) {
      return slot.mask;
    }
    slot.epoch = epoch_;
    slot.mask = mask_.MaskOf(keywords);
    return slot.mask;
  }
  return mask_.MaskOf(keywords);
}

double SearchScratch::QueryDistance(ObjectId id, const Point& location) {
  if (!enabled_) {
    return Distance(origin_, location);
  }
  if (id < dists_.size()) {
    DistSlot& slot = dists_[id];
    if (slot.epoch == epoch_) {
      ++dist_hits_;
      return slot.distance;
    }
    slot.epoch = epoch_;
    slot.distance = Distance(origin_, location);
    ++dist_misses_;
    return slot.distance;
  }
  return Distance(origin_, location);
}

}  // namespace coskq
