#include "index/query_mask.h"

#include <algorithm>

namespace coskq {

void QueryTermMask::Reset(const TermSet& query_keywords) {
  keywords_ = query_keywords;
  active_ = !keywords_.empty() && keywords_.size() <= 64;
  if (!active_) {
    full_mask_ = 0;
    return;
  }
  full_mask_ = keywords_.size() == 64
                   ? ~uint64_t{0}
                   : (uint64_t{1} << keywords_.size()) - 1;
}

int QueryTermMask::SlotOf(TermId t) const {
  const auto it = std::lower_bound(keywords_.begin(), keywords_.end(), t);
  if (it == keywords_.end() || *it != t) {
    return -1;
  }
  return static_cast<int>(it - keywords_.begin());
}

uint64_t QueryTermMask::MaskOf(const TermId* terms, size_t count) const {
  uint64_t mask = 0;
  // Iterate whichever side is smaller: probing each member of a short set
  // (a leaf object's handful of keywords) into q.ψ beats running |q.ψ|
  // progressive searches through it, and vice versa for the wide term
  // summaries of upper tree nodes. Either direction computes the same mask.
  if (count < keywords_.size()) {
    for (size_t i = 0; i < count; ++i) {
      const int slot = SlotOf(terms[i]);
      if (slot >= 0) {
        mask |= uint64_t{1} << slot;
      }
    }
    return mask;
  }
  const TermId* it = terms;
  const TermId* end = terms + count;
  for (size_t k = 0; k < keywords_.size() && it != end; ++k) {
    it = std::lower_bound(it, end, keywords_[k]);
    if (it == end) {
      break;
    }
    if (*it == keywords_[k]) {
      mask |= uint64_t{1} << k;
      ++it;
    }
  }
  return mask;
}

bool QueryTermMask::SubmaskOf(const TermSet& terms, uint64_t* submask) const {
  uint64_t mask = 0;
  for (TermId t : terms) {
    const int slot = SlotOf(t);
    if (slot < 0) {
      return false;
    }
    mask |= uint64_t{1} << slot;
  }
  *submask = mask;
  return true;
}

}  // namespace coskq
