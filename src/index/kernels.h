#ifndef COSKQ_INDEX_KERNELS_H_
#define COSKQ_INDEX_KERNELS_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "index/frozen_layout.h"
#include "util/status.h"

namespace coskq {
namespace internal_index {

/// Data-parallel kernels for the frozen fast paths (see DESIGN.md §12).
///
/// Every operation has a scalar reference implementation plus SSE2 and AVX2
/// variants compiled with function-level target attributes (no global
/// `-march`), and the table in use is chosen once per process: from the
/// `COSKQ_KERNEL` environment variable (`scalar`, `sse2`, `avx2`, or `auto`)
/// when set to a usable value, else by CPUID feature detection.
///
/// Bit-identity contract: for identical inputs, every implementation of an
/// operation produces byte-identical outputs — the same squared distances
/// (the deferred sqrt is applied by callers to survivors only, exactly like
/// the scalar frozen path) and the same survivor index sequences, in the
/// same ascending order. The SIMD MINDIST arithmetic mirrors
/// Rect::MinDistance's max/max/mul/add sequence: `maxpd` and `std::max`
/// agree on every finite input except the sign of a zero, which cannot
/// survive the squaring, and the kernels are compiled without FMA so the
/// two products and the sum are rounded separately, exactly as the scalar
/// code rounds them. All vector loads are unaligned: the snapshot body only
/// guarantees 8-byte section alignment and callers pass arbitrary child
/// offsets into the SoA arrays. `tests/index_kernels_test` sweeps every
/// vector-width tail (N = 0..33), unaligned base offsets, and degenerate /
/// touching / containing MBR geometry against the scalar reference.
struct KernelOps {
  /// Dispatch-table name: "scalar", "sse2", or "avx2".
  const char* name;

  /// Squared MINDIST from (px, py) to each of `count` MBRs read from the
  /// four SoA coordinate arrays; out[i] receives dx*dx + dy*dy with
  /// dx = max(max(min_x[i] - px, 0), px - max_x[i]) (same for dy). The
  /// sqrt is deferred to callers, which apply it only to children that
  /// survive the keyword filter.
  void (*child_squared_distances)(const double* min_x, const double* min_y,
                                  const double* max_x, const double* max_y,
                                  uint32_t count, double px, double py,
                                  double* out);

  /// Fused child scan for the masked best-first paths: squared MINDIST as
  /// above plus the Bloom-signature pre-filter
  /// `(children[i].sig & query_sig) != 0` over the AoS node records.
  /// Surviving children are appended in ascending i as (out_idx[k] = i,
  /// out_dist[k] = squared distance); returns the survivor count. Children
  /// pruned by the signature never reach the term arena. Both output
  /// buffers must hold `count` entries.
  uint32_t (*child_scan_sig)(const double* min_x, const double* min_y,
                             const double* max_x, const double* max_y,
                             const FrozenNodeRecord* children, uint32_t count,
                             double px, double py, uint64_t query_sig,
                             uint32_t* out_idx, double* out_dist);

  /// Bloom-signature intersection filter over a contiguous run of
  /// signatures (the frozen leaf-entry `leaf_sigs` stripe): appends every i
  /// with `(sigs[i] & query_sig) != 0` to out_idx in ascending order and
  /// returns the survivor count. out_idx must hold `count` entries.
  uint32_t (*sig_any_filter)(const uint64_t* sigs, uint32_t count,
                             uint64_t query_sig, uint32_t* out_idx);
};

/// The process-wide kernel table. First call resolves the choice: a usable
/// `COSKQ_KERNEL` override wins, otherwise the best CPUID-supported table.
/// An unusable override value (unknown name or unsupported hardware) logs a
/// warning and falls back to auto-detection — library initialisation must
/// not crash on a bad environment; callers that need the failure as data
/// use SelectKernels().
const KernelOps& ActiveKernels();

/// Name of the table ActiveKernels() currently returns.
const char* ActiveKernelName();

/// Forces the process-wide table (test / benchmark / CLI hook). Accepts
/// "scalar", "sse2", "avx2", or "auto" (re-runs the default resolution,
/// honouring COSKQ_KERNEL). Returns InvalidArgument for an unknown name and
/// Unimplemented when the hardware lacks the instruction set; the active
/// table is unchanged on error.
Status SelectKernels(const std::string& name);

/// Looks up a table by name without changing the process-wide choice (the
/// benchmark A/B hook). Same error contract as SelectKernels.
Status KernelsForName(const std::string& name, const KernelOps** out);

/// Kernel names this build supports on this machine, in ascending
/// capability order ("scalar" always first).
std::vector<std::string> SupportedKernelNames();

/// Advisory software prefetch (no-op target address faults are impossible:
/// prefetch instructions never trap).
inline void PrefetchForRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Prefetch hint carried in best-first heap entries: the node's child-slot
/// base (internal) or leaf-entry base (leaf), with the leaf flag in the
/// MSB. Lets the pop loop start fetching the *next* pop's record and its
/// child MBR / leaf-entry stripe without dereferencing the record.
constexpr uint32_t kPrefetchLeafFlag = 0x80000000u;

inline uint32_t PrefetchHint(const FrozenNodeRecord& rec) {
  return rec.is_leaf() ? (rec.entry_begin | kPrefetchLeafFlag)
                       : rec.first_child;
}

/// Page-granular prefetch for cold (non-populated) mappings: asks the
/// kernel to start reading the page(s) holding [p, p + len) ahead of the
/// fault. A small thread-local ring of recently advised pages swallows
/// duplicate madvise syscalls — on the level-grouped layout a child block's
/// record AND MBR lanes share one page, so one advise covers them all.
void ColdPrefetch(const void* p, size_t len);

/// Issues prefetches for the heap entry that will pop next: its node
/// record, plus the stripe the hint names (child MBR columns for internal
/// nodes, the signature/location columns for leaves). On a warm body these
/// are cache-line software prefetches; on a cold mmap they become
/// page-granular madvise(MADV_WILLNEED) hints, since a cache-line prefetch
/// cannot start the disk read a fault would need. Purely advisory —
/// traversal behavior and results are unaffected.
inline void PrefetchNextPop(const FrozenView& v, const void* node,
                            uint32_t hint) {
  if (node == nullptr) {
    return;
  }
  const uint32_t base = hint & ~kPrefetchLeafFlag;
  const bool leaf = (hint & kPrefetchLeafFlag) != 0;
  if (v.cold) {
    ColdPrefetch(node, sizeof(FrozenNodeRecord));
    if (leaf) {
      ColdPrefetch(v.leaf_sigs + base, kGroupSlots * sizeof(uint64_t));
      ColdPrefetch(v.leaf_x + base, kGroupSlots * sizeof(double));
      ColdPrefetch(v.leaf_y + base, kGroupSlots * sizeof(double));
    } else {
      // The dedup ring collapses these to a single syscall when the lanes
      // share the child block's page (level-grouped layout).
      ColdPrefetch(v.node_ptr(base), sizeof(FrozenNodeRecord));
      ColdPrefetch(v.min_x_ptr(base), sizeof(double));
      ColdPrefetch(v.min_y_ptr(base), sizeof(double));
      ColdPrefetch(v.max_x_ptr(base), sizeof(double));
      ColdPrefetch(v.max_y_ptr(base), sizeof(double));
    }
    return;
  }
  PrefetchForRead(node);
  if (leaf) {
    PrefetchForRead(v.leaf_sigs + base);
    PrefetchForRead(v.leaf_x + base);
    PrefetchForRead(v.leaf_y + base);
  } else {
    PrefetchForRead(v.node_ptr(base));
    PrefetchForRead(v.min_x_ptr(base));
    PrefetchForRead(v.min_y_ptr(base));
    PrefetchForRead(v.max_x_ptr(base));
    PrefetchForRead(v.max_y_ptr(base));
  }
}

}  // namespace internal_index
}  // namespace coskq

#endif  // COSKQ_INDEX_KERNELS_H_
