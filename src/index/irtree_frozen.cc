// Frozen flat IR-tree: IrTree::Freeze() and the frozen fast paths.
//
// The frozen representation stores the tree as contiguous arrays (see
// frozen_layout.h): breadth-first node records, structure-of-arrays node
// MBRs so a parent's per-child MINDIST scan reads four contiguous double
// ranges, a term arena holding every node summary and leaf object keyword
// set as sorted spans, and leaf entries (id, location, Bloom signature,
// keyword span) packed in traversal order so leaf scans never touch the
// Dataset.
//
// Bit-identity contract: every frozen traversal mirrors its pointer-tree
// counterpart exactly — same child visit order (BFS slots preserve the
// pointer tree's child order), same pruning predicates evaluated in the same
// short-circuit order, the same best-first heap discipline over entries
// compared by distance only, and the same floating-point arithmetic
// (Rect::MinDistance's max/max/sqrt sequence reproduced over the SoA
// arrays). Node records keep the pointer tree's preorder ids, so visit logs
// and the SearchScratch per-node caches are keyed identically. The
// index_frozen_diff_test suite proves the contract over 50 seeds.

#include <string.h>
#include <sys/mman.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <iterator>
#include <limits>
#include <queue>

#include "index/frozen_layout.h"
#include "index/irtree.h"
#include "index/irtree_node.h"
#include "index/kernels.h"
#include "index/residency.h"
#include "index/search_scratch.h"
#include "index/term_signature.h"
#include "util/logging.h"

namespace coskq {

using internal_index::ActiveKernels;
using internal_index::BodyLayout;
using internal_index::FrozenNodeRecord;
using internal_index::FrozenStore;
using internal_index::FrozenView;
using internal_index::KernelOps;
using internal_index::kGroupBytes;
using internal_index::kGroupMask;
using internal_index::kGroupShift;
using internal_index::kGroupSlots;
using internal_index::PrefetchHint;
using internal_index::PrefetchNextPop;

const char* FrozenLayoutName(FrozenLayout layout) {
  switch (layout) {
    case FrozenLayout::kBfs:
      return "bfs";
    case FrozenLayout::kLevelGrouped:
      return "level-grouped";
  }
  return "unknown";
}

bool FrozenLayoutFromName(const std::string& name, FrozenLayout* out) {
  if (name == "bfs") {
    *out = FrozenLayout::kBfs;
    return true;
  }
  if (name == "level-grouped" || name == "lg") {
    *out = FrozenLayout::kLevelGrouped;
    return true;
  }
  return false;
}

namespace internal_index {

namespace {

constexpr size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

}  // namespace

BodyLayout BodyLayout::Make(FrozenLayout layout, uint32_t num_nodes,
                            uint32_t num_leaf_entries, uint32_t num_terms) {
  BodyLayout lay;
  lay.layout = layout;
  size_t off = 0;
  const auto section = [&off](size_t bytes) {
    const size_t begin = off;
    off += Align8(bytes);
    return begin;
  };
  if (layout == FrozenLayout::kBfs) {
    // The snapshot-v1 byte layout, expressed as lane descriptors: each lane
    // a flat section, stride = one group's worth of elements, so
    // off + (slot>>6)*stride + (slot&63)*elt == off + slot*elt exactly.
    lay.rec_off = section(size_t{num_nodes} * sizeof(FrozenNodeRecord));
    lay.rec_stride = kGroupSlots * sizeof(FrozenNodeRecord);
    lay.min_x_off = section(size_t{num_nodes} * sizeof(double));
    lay.min_y_off = section(size_t{num_nodes} * sizeof(double));
    lay.max_x_off = section(size_t{num_nodes} * sizeof(double));
    lay.max_y_off = section(size_t{num_nodes} * sizeof(double));
    lay.mbr_stride = kGroupSlots * sizeof(double);
  } else {
    // Level-grouped: the node region is a sequence of 4096-byte groups,
    // each holding 64 records followed by their four MBR lanes. The tail
    // group is zero-padded to full size so the body is deterministic.
    const size_t groups =
        (size_t{num_nodes} + kGroupSlots - 1) / kGroupSlots;
    lay.rec_off = 0;
    lay.rec_stride = kGroupBytes;
    lay.min_x_off = kGroupSlots * sizeof(FrozenNodeRecord);
    lay.min_y_off = lay.min_x_off + kGroupSlots * sizeof(double);
    lay.max_x_off = lay.min_y_off + kGroupSlots * sizeof(double);
    lay.max_y_off = lay.max_x_off + kGroupSlots * sizeof(double);
    lay.mbr_stride = kGroupBytes;
    off = groups * kGroupBytes;
  }
  lay.node_region_bytes = off;
  lay.terms_off = section(size_t{num_terms} * sizeof(TermId));
  lay.leaf_ids_off = section(size_t{num_leaf_entries} * sizeof(ObjectId));
  lay.leaf_x_off = section(size_t{num_leaf_entries} * sizeof(double));
  lay.leaf_y_off = section(size_t{num_leaf_entries} * sizeof(double));
  lay.leaf_sigs_off = section(size_t{num_leaf_entries} * sizeof(uint64_t));
  lay.leaf_term_begin_off =
      section(size_t{num_leaf_entries} * sizeof(uint32_t));
  lay.leaf_term_count_off =
      section(size_t{num_leaf_entries} * sizeof(uint32_t));
  lay.total_bytes = off;
  return lay;
}

FrozenStore::~FrozenStore() {
  if (mapped != nullptr) {
    munmap(mapped, mapped_size);
  }
}

size_t FrozenStore::BodyBytes(FrozenLayout layout, uint32_t num_nodes,
                              uint32_t num_leaf_entries, uint32_t num_terms) {
  return BodyLayout::Make(layout, num_nodes, num_leaf_entries, num_terms)
      .total_bytes;
}

void FrozenStore::BindView(FrozenLayout lay_kind, const uint8_t* body_ptr,
                           uint32_t num_nodes, uint32_t num_leaf_entries,
                           uint32_t num_terms, uint32_t height) {
  COSKQ_CHECK_EQ(reinterpret_cast<uintptr_t>(body_ptr) % 8, 0u)
      << "frozen body must be 8-byte aligned";
  const BodyLayout lay =
      BodyLayout::Make(lay_kind, num_nodes, num_leaf_entries, num_terms);
  layout = lay_kind;
  body = body_ptr;
  body_bytes = lay.total_bytes;
  view.body = body_ptr;
  view.rec_off = lay.rec_off;
  view.rec_stride = lay.rec_stride;
  view.min_x_off = lay.min_x_off;
  view.min_y_off = lay.min_y_off;
  view.max_x_off = lay.max_x_off;
  view.max_y_off = lay.max_y_off;
  view.mbr_stride = lay.mbr_stride;
  view.terms = reinterpret_cast<const TermId*>(body_ptr + lay.terms_off);
  view.leaf_ids =
      reinterpret_cast<const ObjectId*>(body_ptr + lay.leaf_ids_off);
  view.leaf_x = reinterpret_cast<const double*>(body_ptr + lay.leaf_x_off);
  view.leaf_y = reinterpret_cast<const double*>(body_ptr + lay.leaf_y_off);
  view.leaf_sigs =
      reinterpret_cast<const uint64_t*>(body_ptr + lay.leaf_sigs_off);
  view.leaf_term_begin =
      reinterpret_cast<const uint32_t*>(body_ptr + lay.leaf_term_begin_off);
  view.leaf_term_count =
      reinterpret_cast<const uint32_t*>(body_ptr + lay.leaf_term_count_off);
  view.num_nodes = num_nodes;
  view.num_leaf_entries = num_leaf_entries;
  view.num_terms = num_terms;
  view.height = height;
  view.layout = lay_kind;
}

void FrozenStore::MaybeEnforceBudget() {
  if (memory_budget_bytes == 0 || mapped == nullptr || body == nullptr) {
    return;
  }
  // Sampling residency costs a mincore walk over the body; do it on a
  // sparse subsample of guard acquires and let one thread at a time trim.
  constexpr uint32_t kBudgetCheckPeriod = 64;
  if (budget_ticker_.fetch_add(1, std::memory_order_relaxed) %
          kBudgetCheckPeriod !=
      0) {
    return;
  }
  std::unique_lock<std::mutex> lock(trim_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    return;
  }
  const uint64_t resident = MappingResidentBytes(body, body_bytes);
  budget_resident_bytes.store(resident, std::memory_order_relaxed);
  if (resident <= memory_budget_bytes) {
    return;
  }
  // Over budget: give the tail of the body back to the kernel, protecting a
  // prefix of the node region (the upper levels every traversal re-reads)
  // up to half the budget. Purely advisory — dropped pages refault from the
  // read-only snapshot file, so results are unaffected.
  const BodyLayout lay = BodyLayout::Make(
      layout, view.num_nodes, view.num_leaf_entries, view.num_terms);
  const size_t keep =
      std::min<size_t>(lay.node_region_bytes, memory_budget_bytes / 2);
  AdviseDontNeed(body + keep, body_bytes - keep);
  budget_trims.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal_index

namespace {

/// Per-child squared MINDIST over the contiguous SoA slot range
/// [first, first + count), dispatched to the active SIMD kernel table
/// (kernels.h): the sub/max/mul part of Rect::MinDistance's arithmetic for
/// non-empty rectangles (every node of a non-empty tree has one). The sqrt
/// is deferred to the children that survive the keyword filter — callers
/// apply std::sqrt(out[i]) there, which reproduces Rect::MinDistance bit for
/// bit: std::max(std::max(a, 0.0), b) selects the same value as its
/// std::max({a, 0.0, b}) for every input, a -0.0 difference cannot survive
/// the squaring, and sqrt of the identical sum is the identical double. The
/// kernel table's own bit-identity contract covers the vectorized variants.
inline void ScanChildSquaredDistances(const KernelOps& kernels,
                                      const FrozenView& v, uint32_t first,
                                      uint32_t count, const Point& p,
                                      double* out) {
  // [first, first + count) must lie within one slot group (see
  // FrozenView::span): that is the contiguity unit of the SoA lanes under
  // both layouts.
  kernels.child_squared_distances(v.min_x_ptr(first), v.min_y_ptr(first),
                                  v.max_x_ptr(first), v.max_y_ptr(first),
                                  count, p.x, p.y, out);
}

/// MINDIST from `p` to the MBR of the node at `slot` (same arithmetic).
inline double NodeMinDist(const FrozenView& v, uint32_t slot, const Point& p) {
  const double dx =
      std::max(std::max(v.min_x(slot) - p.x, 0.0), p.x - v.max_x(slot));
  const double dy =
      std::max(std::max(v.min_y(slot) - p.y, 0.0), p.y - v.max_y(slot));
  return std::sqrt(dx * dx + dy * dy);
}

/// Stack buffer size of the child-distance scans. Chunks come from
/// FrozenView::span, which never exceeds one slot group.
constexpr uint32_t kScanChunk = kGroupSlots;

}  // namespace

void IrTree::Freeze() {
  if (frozen_ != nullptr) {
    // Already frozen: folding the pending delta (if any) into the flat
    // arrays is exactly a refreeze; with an empty delta this is a no-op.
    const Status status = Refreeze();
    COSKQ_CHECK(status.ok()) << status.ToString();
    return;
  }
  COSKQ_CHECK(root_ != nullptr);

  // Breadth-first node order: children of every node end up in a contiguous
  // slot range, in the pointer tree's child order.
  std::vector<const Node*> order;
  order.push_back(root_.get());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    if (!n->is_leaf) {
      for (const auto& child : n->children) {
        order.push_back(child.get());
      }
    }
  }

  uint64_t term_total = 0;
  uint64_t leaf_total = 0;
  for (const Node* n : order) {
    term_total += n->terms.size();
    if (n->is_leaf) {
      leaf_total += n->objects.size();
      for (ObjectId id : n->objects) {
        term_total += dataset_->object(id).keywords.size();
      }
    }
    COSKQ_CHECK_LE(n->EntryCount(), size_t{65535})
        << "fan-out exceeds FrozenNodeRecord::entry_count";
  }
  COSKQ_CHECK_LE(order.size(),
                 size_t{std::numeric_limits<uint32_t>::max()});
  COSKQ_CHECK_LE(term_total, uint64_t{std::numeric_limits<uint32_t>::max()});
  const uint32_t num_nodes = static_cast<uint32_t>(order.size());
  const uint32_t num_leaf_entries = static_cast<uint32_t>(leaf_total);
  const uint32_t num_terms = static_cast<uint32_t>(term_total);

  const FrozenLayout layout = options_.frozen_layout;
  auto store = std::make_unique<FrozenStore>();
  // Zero-filled so section padding bytes (and the level-grouped tail group)
  // are deterministic: snapshots of the same tree are byte-for-byte
  // identical.
  store->owned.assign(
      FrozenStore::BodyBytes(layout, num_nodes, num_leaf_entries, num_terms),
      0);
  uint8_t* body = store->owned.data();
  const BodyLayout lay =
      BodyLayout::Make(layout, num_nodes, num_leaf_entries, num_terms);
  // Mutable mirrors of the FrozenView lane accessors.
  const auto rec_at = [&](uint32_t slot) -> FrozenNodeRecord* {
    return reinterpret_cast<FrozenNodeRecord*>(
        body + lay.rec_off +
        static_cast<size_t>(slot >> kGroupShift) * lay.rec_stride +
        static_cast<size_t>(slot & kGroupMask) * sizeof(FrozenNodeRecord));
  };
  const auto lane_at = [&](size_t lane_off, uint32_t slot) -> double* {
    return reinterpret_cast<double*>(
        body + lane_off +
        static_cast<size_t>(slot >> kGroupShift) * lay.mbr_stride +
        static_cast<size_t>(slot & kGroupMask) * sizeof(double));
  };
  auto* terms = reinterpret_cast<TermId*>(body + lay.terms_off);
  auto* leaf_ids = reinterpret_cast<ObjectId*>(body + lay.leaf_ids_off);
  auto* leaf_x = reinterpret_cast<double*>(body + lay.leaf_x_off);
  auto* leaf_y = reinterpret_cast<double*>(body + lay.leaf_y_off);
  auto* leaf_sigs = reinterpret_cast<uint64_t*>(body + lay.leaf_sigs_off);
  auto* leaf_term_begin =
      reinterpret_cast<uint32_t*>(body + lay.leaf_term_begin_off);
  auto* leaf_term_count =
      reinterpret_cast<uint32_t*>(body + lay.leaf_term_count_off);

  uint32_t next_child = 1;
  uint32_t next_term = 0;
  uint32_t next_leaf = 0;
  for (uint32_t slot = 0; slot < num_nodes; ++slot) {
    const Node* n = order[slot];
    FrozenNodeRecord rec{};
    rec.id = n->id;
    rec.sig = n->sig;
    rec.term_begin = next_term;
    rec.term_count = static_cast<uint32_t>(n->terms.size());
    std::copy(n->terms.begin(), n->terms.end(), terms + next_term);
    next_term += rec.term_count;
    *lane_at(lay.min_x_off, slot) = n->mbr.min_x;
    *lane_at(lay.min_y_off, slot) = n->mbr.min_y;
    *lane_at(lay.max_x_off, slot) = n->mbr.max_x;
    *lane_at(lay.max_y_off, slot) = n->mbr.max_y;
    if (n->is_leaf) {
      rec.flags = 1;
      rec.entry_begin = next_leaf;
      rec.entry_count = static_cast<uint16_t>(n->objects.size());
      for (ObjectId id : n->objects) {
        const SpatialObject& obj = dataset_->object(id);
        leaf_ids[next_leaf] = id;
        leaf_x[next_leaf] = obj.location.x;
        leaf_y[next_leaf] = obj.location.y;
        leaf_sigs[next_leaf] = obj_sigs_[id];
        leaf_term_begin[next_leaf] = next_term;
        leaf_term_count[next_leaf] =
            static_cast<uint32_t>(obj.keywords.size());
        std::copy(obj.keywords.begin(), obj.keywords.end(),
                  terms + next_term);
        next_term += static_cast<uint32_t>(obj.keywords.size());
        ++next_leaf;
      }
    } else {
      rec.first_child = next_child;
      rec.entry_count = static_cast<uint16_t>(n->children.size());
      next_child += static_cast<uint32_t>(n->children.size());
    }
    *rec_at(slot) = rec;
  }
  COSKQ_CHECK_EQ(next_child, num_nodes);
  COSKQ_CHECK_EQ(next_term, num_terms);
  COSKQ_CHECK_EQ(next_leaf, num_leaf_entries);

  store->BindView(layout, body, num_nodes, num_leaf_entries, num_terms,
                  static_cast<uint32_t>(Height()));
  frozen_ = std::move(store);
  RebuildFrozenLive();
}

void IrTree::RebuildFrozenLive() {
  const FrozenView& v = frozen_->view;
  frozen_live_.assign(dataset_->NumObjects(), 0);
  for (uint32_t e = 0; e < v.num_leaf_entries; ++e) {
    frozen_live_[v.leaf_ids[e]] = 1;
  }
}

Status IrTree::Refreeze() {
  std::lock_guard<std::mutex> refreeze_lock(refreeze_mutex_);
  if (frozen_ == nullptr) {
    return Status::InvalidArgument(
        "Refreeze requires a frozen tree (call Freeze() first)");
  }

  // Capture: the delta to fold (d0) and the post-fold live set L0, under the
  // mutation lock so both are one consistent cut. Everything applied after
  // this cut survives into the post-swap delta.
  std::shared_ptr<const DeltaTree> d0;
  std::vector<ObjectId> live;
  {
    std::lock_guard<std::mutex> mutate_lock(mutate_mutex_);
    {
      std::lock_guard<std::mutex> delta_lock(delta_mutex_);
      d0 = delta_;
    }
    if (d0 == nullptr || d0->empty()) {
      return Status::OK();
    }
    live.reserve(size_.load(std::memory_order_relaxed));
    for (ObjectId id = 0; id < frozen_live_.size(); ++id) {
      if (frozen_live_[id] != 0 && !d0->IsTombstoned(id)) {
        live.push_back(id);
      }
    }
    // Inserts are disjoint from the base, so appending and sorting yields
    // the ascending live set.
    live.insert(live.end(), d0->inserts.begin(), d0->inserts.end());
    std::sort(live.begin(), live.end());
  }

  // Build: a from-scratch tree over L0, outside every lock — queries and
  // mutations proceed untouched against the old body while this runs. The
  // dataset records for L0 are immutable (append-only dataset), so the
  // unlocked read is safe.
  auto fresh = std::make_unique<IrTree>(dataset_, options_, live);
  fresh->Freeze();

  // Swap: splice the new body in and rewrite the delta so that
  // (base − tombstones) ∪ inserts names the same logical set before and
  // after. With B0/B1 the old/new base and (insC, tombC) the current delta:
  //   tombN = (tombC ∖ tomb0) ∪ (ins0 ∖ insC)   — folded-in inserts that
  //            were removed again while the build ran, plus tombstones newer
  //            than the cut (both ⊆ B1);
  //   insN  = (insC ∖ ins0) ∪ (tomb0 ∖ tombC)   — inserts newer than the
  //            cut, plus folded-out tombstones that were resurrected (both
  //            disjoint from B1).
  {
    std::lock_guard<std::mutex> mutate_lock(mutate_mutex_);
    std::shared_ptr<const DeltaTree> cur;
    {
      std::lock_guard<std::mutex> delta_lock(delta_mutex_);
      cur = delta_;
    }
    static const DeltaTree kEmptyDelta;
    const DeltaTree& c = cur != nullptr ? *cur : kEmptyDelta;
    auto next = std::make_shared<DeltaTree>();
    std::vector<ObjectId> part_a;
    std::vector<ObjectId> part_b;
    std::set_difference(c.tombstones.begin(), c.tombstones.end(),
                        d0->tombstones.begin(), d0->tombstones.end(),
                        std::back_inserter(part_a));
    std::set_difference(d0->inserts.begin(), d0->inserts.end(),
                        c.inserts.begin(), c.inserts.end(),
                        std::back_inserter(part_b));
    std::set_union(part_a.begin(), part_a.end(), part_b.begin(), part_b.end(),
                   std::back_inserter(next->tombstones));
    part_a.clear();
    part_b.clear();
    std::set_difference(c.inserts.begin(), c.inserts.end(),
                        d0->inserts.begin(), d0->inserts.end(),
                        std::back_inserter(part_a));
    std::set_difference(d0->tombstones.begin(), d0->tombstones.end(),
                        c.tombstones.begin(), c.tombstones.end(),
                        std::back_inserter(part_b));
    std::set_union(part_a.begin(), part_a.end(), part_b.begin(), part_b.end(),
                   std::back_inserter(next->inserts));
    next->insert_sigs.reserve(next->inserts.size());
    for (ObjectId id : next->inserts) {
      next->insert_sigs.push_back(
          TermSetSignature(dataset_->object(id).keywords));
    }
    next->CheckWellFormed();
    // The logical set is untouched by the swap.
    COSKQ_CHECK_EQ(static_cast<int64_t>(live.size()) + next->LiveDelta(),
                   static_cast<int64_t>(size_.load(std::memory_order_relaxed)));

    std::unique_lock<std::shared_mutex> swap_lock(swap_mutex_);
    root_ = std::move(fresh->root_);
    obj_sigs_ = std::move(fresh->obj_sigs_);
    obj_sig_bits_sum_ = fresh->obj_sig_bits_sum_;
    next_node_id_ = fresh->next_node_id_;
    frozen_ = std::move(fresh->frozen_);
    RebuildFrozenLive();
    PublishDelta(std::move(next));
    epoch_.fetch_add(1, std::memory_order_release);
  }
  refreezes_completed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void IrTree::RefreezeAsync() {
  std::lock_guard<std::mutex> launch_lock(refreeze_launch_mutex_);
  if (refreeze_running_.load(std::memory_order_acquire)) {
    return;
  }
  if (refreeze_thread_.joinable()) {
    refreeze_thread_.join();
  }
  refreeze_running_.store(true, std::memory_order_release);
  refreeze_thread_ = std::thread([this] {
    const Status status = Refreeze();
    COSKQ_CHECK(status.ok()) << status.ToString();
    refreeze_running_.store(false, std::memory_order_release);
  });
}

void IrTree::WaitForRefreeze() {
  std::lock_guard<std::mutex> launch_lock(refreeze_launch_mutex_);
  if (refreeze_thread_.joinable()) {
    refreeze_thread_.join();
  }
}

IrTree::IrTree(const Dataset* dataset, const Options& options,
               std::unique_ptr<internal_index::FrozenStore> store)
    : dataset_(dataset), options_(options), frozen_(std::move(store)) {
  COSKQ_CHECK(dataset != nullptr);
  COSKQ_CHECK(frozen_ != nullptr);
  size_ = frozen_->view.num_leaf_entries;
  next_node_id_ = frozen_->view.num_nodes;
  // leaf_sigs holds the same signature multiset obj_sigs_ would, so the
  // masked-range prune-rate estimate matches a dataset-built tree exactly.
  for (uint32_t i = 0; i < frozen_->view.num_leaf_entries; ++i) {
    obj_sig_bits_sum_ +=
        static_cast<uint64_t>(std::popcount(frozen_->view.leaf_sigs[i]));
  }
  RebuildFrozenLive();
}

ObjectId IrTree::FrozenKeywordNn(const Point& p, TermId t, double* distance,
                                 std::vector<uint32_t>* visit_log,
                                 const DeltaTree* delta) const {
  const FrozenView& v = frozen_->view;
  const KernelOps& kernels = ActiveKernels();
  struct QueueEntry {
    double distance;
    const FrozenNodeRecord* node;  // nullptr for object entries.
    ObjectId id;
    uint32_t aux = 0;  // PrefetchHint(*node); ignored by the comparator.
    bool operator>(const QueueEntry& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  if (size_ > 0 &&
      TermSpanContains(v.node_terms(v.node(0)), v.node(0).term_count, t)) {
    queue.push(QueueEntry{NodeMinDist(v, 0, p), v.node_ptr(0),
                          kInvalidObjectId, PrefetchHint(v.node(0))});
  }
  double dist_buf[kScanChunk];
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (!queue.empty()) {
      // Start pulling the likely next pop while this node is processed.
      PrefetchNextPop(v, queue.top().node, queue.top().aux);
    }
    if (top.node == nullptr) {
      if (distance != nullptr) {
        *distance = top.distance;
      }
      return top.id;
    }
    const FrozenNodeRecord& node = *top.node;
    if (visit_log != nullptr) {
      visit_log->push_back(node.id);
    }
    if (node.is_leaf()) {
      const uint32_t begin = node.entry_begin;
      const uint32_t end = begin + node.entry_count;
      for (uint32_t e = begin; e < end; ++e) {
        if (delta != nullptr && delta->IsTombstoned(v.leaf_ids[e])) {
          continue;
        }
        if (TermSpanContains(v.terms + v.leaf_term_begin[e],
                             v.leaf_term_count[e], t)) {
          queue.push(QueueEntry{
              Distance(p, Point{v.leaf_x[e], v.leaf_y[e]}), nullptr,
              v.leaf_ids[e]});
        }
      }
    } else {
      const uint32_t first = node.first_child;
      const uint32_t count = node.entry_count;
      // Group-aligned chunks: each chunk is contiguous in every lane under
      // both layouts, and chunk boundaries don't affect push order (chunks
      // and survivors both ascend in slot order).
      for (uint32_t c0 = 0; c0 < count;) {
        const uint32_t n = v.span(first + c0, count - c0);
        ScanChildSquaredDistances(kernels, v, first + c0, n, p, dist_buf);
        for (uint32_t i = 0; i < n; ++i) {
          const FrozenNodeRecord& child = v.node(first + c0 + i);
          if (TermSpanContains(v.node_terms(child), child.term_count, t)) {
            queue.push(QueueEntry{std::sqrt(dist_buf[i]), &child,
                                  kInvalidObjectId, PrefetchHint(child)});
          }
        }
        c0 += n;
      }
    }
  }
  if (distance != nullptr) {
    *distance = std::numeric_limits<double>::infinity();
  }
  return kInvalidObjectId;
}

ObjectId IrTree::FrozenKeywordNnMasked(const Point& p, TermId t, int slot,
                                       double* distance,
                                       SearchScratch* scratch,
                                       const DeltaTree* delta) const {
  const FrozenView& v = frozen_->view;
  const KernelOps& kernels = ActiveKernels();
  const uint64_t bit = uint64_t{1} << slot;
  const uint64_t kw_sig = TermSignature(t);
  using internal_index::HeapEntry;
  std::vector<HeapEntry>& heap = scratch->heap();
  heap.clear();
  const auto push = [&heap](HeapEntry entry) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), std::greater<HeapEntry>());
  };
  std::vector<uint32_t>* visit_log = scratch->visit_log();
  // Node MINDISTs are recomputed from the SoA arrays instead of read through
  // the scratch memo: the scan produces the identical values (same inputs,
  // same arithmetic as the memo's Rect::MinDistance fill), so pruning and
  // heap order are unchanged. Object distances still go through the
  // QueryDistance memo when anchored at the query origin, exactly like the
  // pointer path (same calls, same hit/miss counters).
  const bool from_origin = p == scratch->origin();
  if (size_ > 0 && (v.node(0).sig & kw_sig) != 0 &&
      (scratch->NodeMask(v.node(0).id, v.node_terms(v.node(0)),
                         v.node(0).term_count) &
       bit) != 0) {
    push(HeapEntry{NodeMinDist(v, 0, p), v.node_ptr(0), kInvalidObjectId,
                   PrefetchHint(v.node(0))});
  }
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<HeapEntry>());
    const HeapEntry top = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
      // Start pulling the likely next pop while this node is processed.
      PrefetchNextPop(v, heap.front().node, heap.front().aux);
    }
    if (top.node == nullptr) {
      if (distance != nullptr) {
        *distance = top.distance;
      }
      return top.id;
    }
    const FrozenNodeRecord& node =
        *static_cast<const FrozenNodeRecord*>(top.node);
    if (visit_log != nullptr) {
      visit_log->push_back(node.id);
    }
    if (node.is_leaf()) {
      const uint32_t begin = node.entry_begin;
      const uint32_t count = node.entry_count;
      // Vectorized signature pass over the contiguous leaf_sigs stripe; the
      // survivors are exactly the entries the scalar `continue` kept, in
      // the same order, so the exact-filter loop below is unchanged.
      std::vector<uint32_t>& sidx = scratch->survivor_idx();
      if (sidx.size() < count) {
        sidx.resize(count);
      }
      const uint32_t n =
          kernels.sig_any_filter(v.leaf_sigs + begin, count, kw_sig,
                                 sidx.data());
      for (uint32_t k = 0; k < n; ++k) {
        const uint32_t e = begin + sidx[k];
        const ObjectId id = v.leaf_ids[e];
        if (delta != nullptr && delta->IsTombstoned(id)) {
          continue;
        }
        uint64_t obj_mask = 0;
        const bool contains =
            scratch->CachedObjectMask(id, &obj_mask)
                ? (obj_mask & bit) != 0
                : TermSpanContains(v.terms + v.leaf_term_begin[e],
                                   v.leaf_term_count[e], t);
        if (contains) {
          const Point location{v.leaf_x[e], v.leaf_y[e]};
          const double d = from_origin
                               ? scratch->QueryDistance(id, location)
                               : Distance(p, location);
          push(HeapEntry{d, nullptr, id});
        }
      }
    } else {
      const uint32_t first = node.first_child;
      const uint32_t count = node.entry_count;
      // Fused kernel: batched squared MINDIST + the Bloom pre-filter in one
      // pass, survivors written to the pooled scratch buffers. The fusion
      // mirrors the scalar short-circuit exactly — signature-pruned
      // children never reached NodeMask (or the term arena) before either.
      std::vector<uint32_t>& sidx = scratch->survivor_idx();
      std::vector<double>& sdist = scratch->survivor_dist();
      if (sidx.size() < count) {
        sidx.resize(count);
      }
      if (sdist.size() < count) {
        sdist.resize(count);
      }
      // Group-aligned chunks keep every kernel input contiguous under both
      // layouts; survivors still ascend in slot order across chunks.
      for (uint32_t c0 = 0; c0 < count;) {
        const uint32_t chunk = v.span(first + c0, count - c0);
        const uint32_t n = kernels.child_scan_sig(
            v.min_x_ptr(first + c0), v.min_y_ptr(first + c0),
            v.max_x_ptr(first + c0), v.max_y_ptr(first + c0),
            v.node_ptr(first + c0), chunk, p.x, p.y, kw_sig, sidx.data(),
            sdist.data());
        for (uint32_t k = 0; k < n; ++k) {
          const FrozenNodeRecord& child = v.node(first + c0 + sidx[k]);
          if ((scratch->NodeMask(child.id, v.node_terms(child),
                                 child.term_count) &
               bit) != 0) {
            push(HeapEntry{std::sqrt(sdist[k]), &child, kInvalidObjectId,
                           PrefetchHint(child)});
          }
        }
        c0 += chunk;
      }
    }
  }
  if (distance != nullptr) {
    *distance = std::numeric_limits<double>::infinity();
  }
  return kInvalidObjectId;
}

void IrTree::FrozenRangeRelevant(const Circle& circle,
                                 const TermSet& query_terms,
                                 std::vector<ObjectId>* out,
                                 std::vector<uint32_t>* visit_log,
                                 const DeltaTree* delta) const {
  if (frozen_->view.num_leaf_entries == 0) {
    return;
  }
  const FrozenView& v = frozen_->view;
  struct Searcher {
    const FrozenView& v;
    const Circle& circle;
    const TermSet& query_terms;
    const DeltaTree* delta;
    std::vector<ObjectId>* out;
    std::vector<uint32_t>* visit_log;

    void Run(uint32_t slot) {
      const FrozenNodeRecord& node = v.node(slot);
      const Rect mbr{v.min_x(slot), v.min_y(slot), v.max_x(slot),
                     v.max_y(slot)};
      if (!circle.Intersects(mbr) ||
          !TermSpanIntersects(v.node_terms(node), node.term_count,
                              query_terms)) {
        return;
      }
      if (visit_log != nullptr) {
        visit_log->push_back(node.id);
      }
      if (node.is_leaf()) {
        const uint32_t begin = node.entry_begin;
        const uint32_t end = begin + node.entry_count;
        for (uint32_t e = begin; e < end; ++e) {
          if (delta != nullptr && delta->IsTombstoned(v.leaf_ids[e])) {
            continue;
          }
          if (circle.Contains(Point{v.leaf_x[e], v.leaf_y[e]}) &&
              TermSpanIntersects(v.terms + v.leaf_term_begin[e],
                                 v.leaf_term_count[e], query_terms)) {
            out->push_back(v.leaf_ids[e]);
          }
        }
        return;
      }
      const uint32_t first = node.first_child;
      const uint32_t last = first + node.entry_count;
      for (uint32_t c = first; c < last; ++c) {
        Run(c);
      }
    }
  };
  Searcher searcher{v, circle, query_terms, delta, out, visit_log};
  searcher.Run(0);
}

void IrTree::FrozenRangeRelevantMasked(const Circle& circle,
                                       const TermSet& query_terms,
                                       uint64_t submask,
                                       std::vector<ObjectId>* out,
                                       SearchScratch* scratch,
                                       const DeltaTree* delta) const {
  if (frozen_->view.num_leaf_entries == 0) {
    return;
  }
  const FrozenView& v = frozen_->view;
  const uint64_t sub_sig = TermSetSignature(query_terms);
  struct Searcher {
    const FrozenView& v;
    const KernelOps& kernels;
    const Circle& circle;
    const TermSet& query_terms;
    uint64_t submask;
    uint64_t sub_sig;
    SearchScratch* scratch;
    const DeltaTree* delta;
    std::vector<ObjectId>* out;
    std::vector<uint32_t>* visit_log;

    void Run(uint32_t slot) {
      const FrozenNodeRecord& node = v.node(slot);
      const Rect mbr{v.min_x(slot), v.min_y(slot), v.max_x(slot),
                     v.max_y(slot)};
      // Same short-circuit order as the pointer path: geometry, signature,
      // then the cached mask when warm, else the exact early-exit merge
      // with no cache fill.
      if (!circle.Intersects(mbr) || (node.sig & sub_sig) == 0) {
        return;
      }
      uint64_t node_mask = 0;
      const bool relevant =
          scratch->CachedNodeMask(node.id, &node_mask)
              ? (node_mask & submask) != 0
              : TermSpanIntersects(v.node_terms(node), node.term_count,
                                   query_terms);
      if (!relevant) {
        return;
      }
      if (visit_log != nullptr) {
        visit_log->push_back(node.id);
      }
      if (node.is_leaf()) {
        const uint32_t begin = node.entry_begin;
        const uint32_t count = node.entry_count;
        // Vectorized signature pass first (the scalar loop tested geometry
        // first): both predicates are pure and the result is their
        // conjunction, so hoisting the signature filter keeps the output —
        // and the visit log, which records nodes only — unchanged.
        std::vector<uint32_t>& sidx = scratch->survivor_idx();
        if (sidx.size() < count) {
          sidx.resize(count);
        }
        const uint32_t n = kernels.sig_any_filter(v.leaf_sigs + begin, count,
                                                  sub_sig, sidx.data());
        for (uint32_t k = 0; k < n; ++k) {
          const uint32_t e = begin + sidx[k];
          const ObjectId id = v.leaf_ids[e];
          if (delta != nullptr && delta->IsTombstoned(id)) {
            continue;
          }
          if (!circle.Contains(Point{v.leaf_x[e], v.leaf_y[e]})) {
            continue;
          }
          uint64_t obj_mask = 0;
          const bool obj_relevant =
              scratch->CachedObjectMask(id, &obj_mask)
                  ? (obj_mask & submask) != 0
                  : TermSpanIntersects(v.terms + v.leaf_term_begin[e],
                                       v.leaf_term_count[e], query_terms);
          if (obj_relevant) {
            out->push_back(id);
          }
        }
        return;
      }
      const uint32_t first = node.first_child;
      const uint32_t last = first + node.entry_count;
      for (uint32_t c = first; c < last; ++c) {
        Run(c);
      }
    }
  };
  Searcher searcher{v,       ActiveKernels(), circle, query_terms,
                    submask, sub_sig,         scratch, delta,
                    out,     scratch->visit_log()};
  searcher.Run(0);
}

void IrTree::CheckFrozenInvariants() const {
  COSKQ_CHECK(frozen_ != nullptr);
  const FrozenView& v = frozen_->view;
  COSKQ_CHECK_GE(v.num_nodes, 1u);

  // Pass 1: BFS structure. Child blocks of internal nodes must tile
  // [1, num_nodes) in slot order; leaf entry blocks must tile
  // [0, num_leaf_entries) in slot order; term spans are in-bounds.
  std::vector<uint32_t> depth(v.num_nodes, 0);
  std::vector<bool> id_seen(v.num_nodes, false);
  uint32_t expected_child = 1;
  uint32_t expected_leaf_entry = 0;
  int leaf_depth = -1;
  size_t object_count = 0;
  for (uint32_t slot = 0; slot < v.num_nodes; ++slot) {
    const FrozenNodeRecord& node = v.node(slot);
    COSKQ_CHECK_LT(node.id, v.num_nodes);
    COSKQ_CHECK(!id_seen[node.id]) << "duplicate preorder id";
    id_seen[node.id] = true;
    COSKQ_CHECK_LE(static_cast<int>(node.entry_count), options_.max_entries);
    if (slot != 0) {
      COSKQ_CHECK_GE(node.entry_count, 1u);
    }
    COSKQ_CHECK_LE(uint64_t{node.term_begin} + node.term_count,
                   uint64_t{v.num_terms});
    if (node.is_leaf()) {
      if (leaf_depth < 0) {
        leaf_depth = static_cast<int>(depth[slot]);
      }
      COSKQ_CHECK_EQ(leaf_depth, static_cast<int>(depth[slot]))
          << "leaves at unequal depth";
      COSKQ_CHECK_EQ(node.entry_begin, expected_leaf_entry);
      expected_leaf_entry += node.entry_count;
      object_count += node.entry_count;
    } else {
      COSKQ_CHECK_EQ(node.first_child, expected_child);
      expected_child += node.entry_count;
      COSKQ_CHECK_LE(expected_child, v.num_nodes);
      for (uint32_t c = node.first_child;
           c < node.first_child + node.entry_count; ++c) {
        depth[c] = depth[slot] + 1;
      }
    }
  }
  COSKQ_CHECK_EQ(expected_child, v.num_nodes);
  COSKQ_CHECK_EQ(expected_leaf_entry, v.num_leaf_entries);
  COSKQ_CHECK_EQ(object_count, static_cast<size_t>(v.num_leaf_entries));
  // Guard on the base count, not size_: a non-empty delta over an empty
  // frozen base leaves the recorded height 0.
  if (v.num_leaf_entries > 0) {
    COSKQ_CHECK_EQ(static_cast<int>(v.height), leaf_depth + 1);
  }

  // Pass 2 (bottom-up, slots in reverse BFS order): every node's MBR, term
  // summary, and signature must equal what its children / leaf entries
  // imply, and leaf entries must match the dataset.
  std::vector<Rect> expected_mbr(v.num_nodes);
  std::vector<TermSet> expected_terms(v.num_nodes);
  for (uint32_t i = v.num_nodes; i-- > 0;) {
    const FrozenNodeRecord& node = v.node(i);
    Rect mbr;
    TermSet terms;
    if (node.is_leaf()) {
      for (uint32_t e = node.entry_begin;
           e < node.entry_begin + node.entry_count; ++e) {
        const ObjectId id = v.leaf_ids[e];
        const SpatialObject& obj = dataset_->object(id);
        COSKQ_CHECK_EQ(v.leaf_x[e], obj.location.x);
        COSKQ_CHECK_EQ(v.leaf_y[e], obj.location.y);
        COSKQ_CHECK_EQ(v.leaf_sigs[e], TermSetSignature(obj.keywords));
        COSKQ_CHECK_EQ(static_cast<size_t>(v.leaf_term_count[e]),
                       obj.keywords.size());
        COSKQ_CHECK(std::equal(obj.keywords.begin(), obj.keywords.end(),
                               v.terms + v.leaf_term_begin[e]))
            << "leaf keyword span mismatch";
        mbr.ExpandToInclude(obj.location);
        TermSetMergeInto(&terms, obj.keywords);
      }
    } else {
      for (uint32_t c = node.first_child;
           c < node.first_child + node.entry_count; ++c) {
        mbr.ExpandToInclude(expected_mbr[c]);
        TermSetMergeInto(&terms, expected_terms[c]);
      }
    }
    COSKQ_CHECK(mbr == Rect(v.min_x(i), v.min_y(i), v.max_x(i), v.max_y(i)))
        << "frozen MBR mismatch";
    COSKQ_CHECK_EQ(terms.size(), static_cast<size_t>(node.term_count));
    COSKQ_CHECK(
        std::equal(terms.begin(), terms.end(), v.terms + node.term_begin))
        << "frozen term summary mismatch";
    COSKQ_CHECK_EQ(node.sig, TermSetSignature(terms));
    expected_mbr[i] = mbr;
    expected_terms[i] = std::move(terms);
  }

  // Cross-check against the pointer tree when both representations exist.
  if (root_ != nullptr) {
    struct Walker {
      const FrozenView& v;
      uint32_t next_leaf_entry = 0;
      void Run(const Node* node, uint32_t slot) {
        const FrozenNodeRecord& rec = v.node(slot);
        COSKQ_CHECK_EQ(rec.id, node->id);
        COSKQ_CHECK_EQ(rec.is_leaf(), node->is_leaf);
        COSKQ_CHECK_EQ(static_cast<size_t>(rec.entry_count),
                       node->EntryCount());
        if (node->is_leaf) {
          for (size_t k = 0; k < node->objects.size(); ++k) {
            COSKQ_CHECK_EQ(v.leaf_ids[rec.entry_begin + k],
                           node->objects[k]);
          }
        } else {
          for (size_t k = 0; k < node->children.size(); ++k) {
            Run(node->children[k].get(),
                rec.first_child + static_cast<uint32_t>(k));
          }
        }
      }
    };
    Walker walker{v};
    walker.Run(root_.get(), 0);
  }
}

}  // namespace coskq
