#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "index/quadratic_split.h"
#include "util/logging.h"

namespace coskq {

struct RTree::Node {
  bool is_leaf = true;
  Rect mbr;
  std::vector<std::unique_ptr<Node>> children;  // When !is_leaf.
  std::vector<Item> items;                      // When is_leaf.

  size_t EntryCount() const {
    return is_leaf ? items.size() : children.size();
  }

  void RecomputeMbr() {
    mbr = Rect();
    if (is_leaf) {
      for (const Item& item : items) {
        mbr.ExpandToInclude(item.point);
      }
    } else {
      for (const auto& child : children) {
        mbr.ExpandToInclude(child->mbr);
      }
    }
  }
};

using internal_index::QuadraticSplit;
using internal_index::RectEnlargement;

RTree::RTree(const Options& options) : options_(options) {
  COSKQ_CHECK_GE(options_.max_entries, 4);
  if (options_.min_entries <= 0) {
    options_.min_entries = std::max(2, options_.max_entries * 2 / 5);
  }
  COSKQ_CHECK_LE(options_.min_entries, options_.max_entries / 2);
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;

void RTree::Insert(ObjectId id, const Point& point) {
  // Recursive insert; lambdas cannot recurse cleanly, so use an explicit
  // helper function object.
  struct Inserter {
    const Options& options;
    Item item;

    // Returns a sibling produced by a split, if any.
    std::unique_ptr<Node> Run(Node* node) {
      if (node->is_leaf) {
        node->items.push_back(item);
        node->mbr.ExpandToInclude(item.point);
        if (static_cast<int>(node->items.size()) <= options.max_entries) {
          return nullptr;
        }
        // Split the leaf.
        std::vector<Item> group_a;
        std::vector<Item> group_b;
        QuadraticSplit(
            std::move(node->items), options.min_entries, &group_a, &group_b,
            [](const Item& it) { return Rect::FromPoint(it.point); });
        node->items = std::move(group_a);
        node->RecomputeMbr();
        auto sibling = std::make_unique<Node>();
        sibling->is_leaf = true;
        sibling->items = std::move(group_b);
        sibling->RecomputeMbr();
        return sibling;
      }

      // ChooseSubtree: least enlargement, ties by smallest area.
      const Rect item_rect = Rect::FromPoint(item.point);
      Node* best = nullptr;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (const auto& child : node->children) {
        const double e = RectEnlargement(child->mbr, item_rect);
        const double a = child->mbr.Area();
        if (e < best_enlargement ||
            (e == best_enlargement && a < best_area)) {
          best_enlargement = e;
          best_area = a;
          best = child.get();
        }
      }
      COSKQ_CHECK(best != nullptr);
      std::unique_ptr<Node> sibling = Run(best);
      node->mbr.ExpandToInclude(item_rect);
      if (sibling == nullptr) {
        return nullptr;
      }
      node->children.push_back(std::move(sibling));
      if (static_cast<int>(node->children.size()) <= options.max_entries) {
        return nullptr;
      }
      // Split the internal node.
      std::vector<std::unique_ptr<Node>> group_a;
      std::vector<std::unique_ptr<Node>> group_b;
      QuadraticSplit(
          std::move(node->children), options.min_entries, &group_a, &group_b,
          [](const std::unique_ptr<Node>& child) { return child->mbr; });
      node->children = std::move(group_a);
      node->RecomputeMbr();
      auto new_sibling = std::make_unique<Node>();
      new_sibling->is_leaf = false;
      new_sibling->children = std::move(group_b);
      new_sibling->RecomputeMbr();
      return new_sibling;
    }
  };

  Inserter inserter{options_, Item{id, point}};
  std::unique_ptr<Node> sibling = inserter.Run(root_.get());
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeMbr();
    root_ = std::move(new_root);
  }
  ++size_;
}

bool RTree::Delete(ObjectId id, const Point& point) {
  std::vector<Item> orphans;

  struct Deleter {
    const Options& options;
    ObjectId id;
    Point point;
    std::vector<Item>* orphans;

    static void CollectItems(Node* node, std::vector<Item>* out) {
      if (node->is_leaf) {
        out->insert(out->end(), node->items.begin(), node->items.end());
        return;
      }
      for (auto& child : node->children) {
        CollectItems(child.get(), out);
      }
    }

    // Returns true if the item was removed somewhere under `node`.
    bool Run(Node* node) {
      if (node->is_leaf) {
        for (size_t i = 0; i < node->items.size(); ++i) {
          if (node->items[i].id == id && node->items[i].point == point) {
            node->items.erase(node->items.begin() +
                              static_cast<ptrdiff_t>(i));
            node->RecomputeMbr();
            return true;
          }
        }
        return false;
      }
      for (size_t i = 0; i < node->children.size(); ++i) {
        Node* child = node->children[i].get();
        if (!child->mbr.Contains(point)) {
          continue;
        }
        if (!Run(child)) {
          continue;
        }
        // Condense: absorb an underfull child by orphaning its contents.
        if (static_cast<int>(child->EntryCount()) < options.min_entries) {
          CollectItems(child, orphans);
          node->children.erase(node->children.begin() +
                               static_cast<ptrdiff_t>(i));
        }
        node->RecomputeMbr();
        return true;
      }
      return false;
    }
  };

  Deleter deleter{options_, id, point, &orphans};
  if (!deleter.Run(root_.get())) {
    return false;
  }
  --size_;
  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (!root_->is_leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>();
  }
  // Reinsert orphaned items. size_ is decremented by the orphan count first
  // because Insert() increments it back.
  size_ -= orphans.size();
  for (const Item& item : orphans) {
    Insert(item.id, item.point);
  }
  return true;
}

void RTree::BulkLoad(std::vector<Item> items) {
  size_ = items.size();
  if (items.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }
  const size_t cap = static_cast<size_t>(options_.max_entries);

  // Build the leaf level with Sort-Tile-Recursive tiling.
  const size_t leaf_count = (items.size() + cap - 1) / cap;
  const size_t slab_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slab_size =
      (items.size() + slab_count - 1) / slab_count;

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.point.x < b.point.x;
  });

  std::vector<std::unique_ptr<Node>> level;
  for (size_t slab_begin = 0; slab_begin < items.size();
       slab_begin += slab_size) {
    const size_t slab_end = std::min(items.size(), slab_begin + slab_size);
    std::sort(items.begin() + static_cast<ptrdiff_t>(slab_begin),
              items.begin() + static_cast<ptrdiff_t>(slab_end),
              [](const Item& a, const Item& b) {
                return a.point.y < b.point.y;
              });
    for (size_t begin = slab_begin; begin < slab_end; begin += cap) {
      const size_t end = std::min(slab_end, begin + cap);
      auto leaf = std::make_unique<Node>();
      leaf->is_leaf = true;
      leaf->items.assign(items.begin() + static_cast<ptrdiff_t>(begin),
                         items.begin() + static_cast<ptrdiff_t>(end));
      leaf->RecomputeMbr();
      level.push_back(std::move(leaf));
    }
  }

  // Build upper levels by tiling node centers until one root remains.
  while (level.size() > 1) {
    const size_t parent_count = (level.size() + cap - 1) / cap;
    const size_t upper_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t upper_slab_size =
        (level.size() + upper_slabs - 1) / upper_slabs;
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a,
                 const std::unique_ptr<Node>& b) {
                return a->mbr.Center().x < b->mbr.Center().x;
              });
    std::vector<std::unique_ptr<Node>> next;
    for (size_t slab_begin = 0; slab_begin < level.size();
         slab_begin += upper_slab_size) {
      const size_t slab_end =
          std::min(level.size(), slab_begin + upper_slab_size);
      std::sort(level.begin() + static_cast<ptrdiff_t>(slab_begin),
                level.begin() + static_cast<ptrdiff_t>(slab_end),
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->mbr.Center().y < b->mbr.Center().y;
                });
      for (size_t begin = slab_begin; begin < slab_end; begin += cap) {
        const size_t end = std::min(slab_end, begin + cap);
        auto parent = std::make_unique<Node>();
        parent->is_leaf = false;
        for (size_t i = begin; i < end; ++i) {
          parent->children.push_back(std::move(level[i]));
        }
        parent->RecomputeMbr();
        next.push_back(std::move(parent));
      }
    }
    level = std::move(next);
  }
  root_ = std::move(level.front());
}

void RTree::Search(const Rect& rect, std::vector<ObjectId>* out) const {
  Visit(rect, [out](ObjectId id, const Point&) {
    out->push_back(id);
    return true;
  });
}

void RTree::Search(const Circle& circle, std::vector<ObjectId>* out) const {
  // Filter on the disk's bounding rectangle, refine by exact distance.
  Visit(circle.BoundingRect(), [&circle, out](ObjectId id, const Point& p) {
    if (circle.Contains(p)) {
      out->push_back(id);
    }
    return true;
  });
}

void RTree::Visit(
    const Rect& rect,
    const std::function<bool(ObjectId, const Point&)>& visitor) const {
  struct Visitor {
    const Rect& rect;
    const std::function<bool(ObjectId, const Point&)>& fn;

    bool Run(const Node* node) {  // Returns false to abort.
      if (!node->mbr.Intersects(rect)) {
        return true;
      }
      if (node->is_leaf) {
        for (const Item& item : node->items) {
          if (rect.Contains(item.point) && !fn(item.id, item.point)) {
            return false;
          }
        }
        return true;
      }
      for (const auto& child : node->children) {
        if (!Run(child.get())) {
          return false;
        }
      }
      return true;
    }
  };
  Visitor v{rect, visitor};
  v.Run(root_.get());
}

ObjectId RTree::NearestNeighbor(const Point& p, double* distance) const {
  auto result = KNearest(p, 1);
  if (result.empty()) {
    if (distance != nullptr) {
      *distance = std::numeric_limits<double>::infinity();
    }
    return kInvalidObjectId;
  }
  if (distance != nullptr) {
    *distance = result.front().second;
  }
  return result.front().first;
}

std::vector<std::pair<ObjectId, double>> RTree::KNearest(const Point& p,
                                                         size_t k) const {
  std::vector<std::pair<ObjectId, double>> result;
  if (size_ == 0 || k == 0) {
    return result;
  }
  struct QueueEntry {
    double distance;
    const Node* node;  // nullptr for item entries.
    ObjectId id;

    bool operator>(const QueueEntry& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push(QueueEntry{root_->mbr.MinDistance(p), root_.get(),
                        kInvalidObjectId});
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      result.emplace_back(top.id, top.distance);
      if (result.size() == k) {
        break;
      }
      continue;
    }
    const Node* node = top.node;
    if (node->is_leaf) {
      for (const Item& item : node->items) {
        queue.push(
            QueueEntry{Distance(p, item.point), nullptr, item.id});
      }
    } else {
      for (const auto& child : node->children) {
        queue.push(QueueEntry{child->mbr.MinDistance(p), child.get(),
                              kInvalidObjectId});
      }
    }
  }
  return result;
}

int RTree::Height() const {
  if (size_ == 0) {
    return 0;
  }
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->children.front().get();
  }
  return height;
}

Rect RTree::BoundingRect() const { return root_->mbr; }

void RTree::CheckInvariants() const {
  struct Checker {
    const Options& options;
    size_t item_count = 0;
    int leaf_depth = -1;

    void Run(const Node* node, int depth, bool is_root) {
      COSKQ_CHECK_LE(static_cast<int>(node->EntryCount()),
                     options.max_entries);
      if (!is_root) {
        COSKQ_CHECK_GE(node->EntryCount(), 1u);
      }
      if (node->is_leaf) {
        if (leaf_depth < 0) {
          leaf_depth = depth;
        }
        COSKQ_CHECK_EQ(leaf_depth, depth) << "leaves at unequal depth";
        Rect expected;
        for (const Item& item : node->items) {
          expected.ExpandToInclude(item.point);
          ++item_count;
        }
        COSKQ_CHECK(expected == node->mbr) << "leaf MBR mismatch";
        return;
      }
      COSKQ_CHECK(node->items.empty());
      Rect expected;
      for (const auto& child : node->children) {
        expected.ExpandToInclude(child->mbr);
        Run(child.get(), depth + 1, /*is_root=*/false);
      }
      COSKQ_CHECK(expected == node->mbr) << "internal MBR mismatch";
    }
  };
  Checker checker{options_};
  checker.Run(root_.get(), 0, /*is_root=*/true);
  COSKQ_CHECK_EQ(checker.item_count, size_);
}

size_t RTree::NodeCount() const {
  struct Counter {
    size_t count = 0;
    void Run(const Node* node) {
      ++count;
      if (!node->is_leaf) {
        for (const auto& child : node->children) {
          Run(child.get());
        }
      }
    }
  };
  Counter counter;
  counter.Run(root_.get());
  return counter.count;
}

}  // namespace coskq
