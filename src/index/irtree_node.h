#ifndef COSKQ_INDEX_IRTREE_NODE_H_
#define COSKQ_INDEX_IRTREE_NODE_H_

#include <stdint.h>

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/object.h"
#include "data/term_set.h"
#include "geo/rect.h"
#include "index/irtree.h"
#include "index/term_signature.h"

namespace coskq {

/// The pointer-tree node, shared between the dynamic tree code (irtree.cc)
/// and the freeze path (irtree_frozen.cc). Private to the index library.
struct IrTree::Node {
  bool is_leaf = true;
  /// Dense preorder id (see AssignNodeIds), indexing the per-node caches of
  /// SearchScratch.
  uint32_t id = 0;
  Rect mbr;
  /// Sorted union of all keywords appearing in the subtree — the node-level
  /// inverted-file summary that keyword-aware traversal prunes on.
  TermSet terms;
  /// Bloom signature of `terms` (see term_signature.h): a clear AND against
  /// a query-side signature proves the subtree lacks the tested keywords.
  uint64_t sig = 0;
  std::vector<std::unique_ptr<Node>> children;  // When !is_leaf.
  std::vector<ObjectId> objects;                // When is_leaf.

  size_t EntryCount() const {
    return is_leaf ? objects.size() : children.size();
  }

  void Recompute(const Dataset& dataset) {
    mbr = Rect();
    terms.clear();
    if (is_leaf) {
      for (ObjectId id : objects) {
        const SpatialObject& obj = dataset.object(id);
        mbr.ExpandToInclude(obj.location);
        TermSetMergeInto(&terms, obj.keywords);
      }
    } else {
      for (const auto& child : children) {
        mbr.ExpandToInclude(child->mbr);
        TermSetMergeInto(&terms, child->terms);
      }
    }
    sig = TermSetSignature(terms);
  }
};

}  // namespace coskq

#endif  // COSKQ_INDEX_IRTREE_NODE_H_
