#include "index/inverted_index.h"

#include <algorithm>

namespace coskq {

InvertedIndex::InvertedIndex(const Dataset& dataset) {
  postings_.resize(dataset.vocabulary().size());
  for (const SpatialObject& obj : dataset.objects()) {
    for (TermId t : obj.keywords) {
      if (t >= postings_.size()) {
        postings_.resize(t + 1);
      }
      postings_[t].push_back(obj.id);
      ++total_postings_;
    }
  }
  // Objects are scanned in id order, so posting lists are already sorted.
}

const std::vector<ObjectId>& InvertedIndex::Postings(TermId t) const {
  if (t >= postings_.size()) {
    return empty_;
  }
  return postings_[t];
}

std::vector<ObjectId> InvertedIndex::RelevantObjects(
    const TermSet& terms) const {
  std::vector<ObjectId> result;
  for (TermId t : terms) {
    const std::vector<ObjectId>& list = Postings(t);
    result.insert(result.end(), list.begin(), list.end());
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

size_t InvertedIndex::NumTerms() const {
  size_t count = 0;
  for (const auto& list : postings_) {
    if (!list.empty()) {
      ++count;
    }
  }
  return count;
}

}  // namespace coskq
