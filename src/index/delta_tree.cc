#include "index/delta_tree.h"

#include <algorithm>

#include "util/logging.h"

namespace coskq {

bool DeltaTree::IsTombstoned(ObjectId id) const {
  return std::binary_search(tombstones.begin(), tombstones.end(), id);
}

bool DeltaTree::IsInserted(ObjectId id) const {
  return std::binary_search(inserts.begin(), inserts.end(), id);
}

void DeltaTree::AddInsert(ObjectId id, uint64_t sig) {
  const auto it = std::lower_bound(inserts.begin(), inserts.end(), id);
  COSKQ_CHECK(it == inserts.end() || *it != id);
  const size_t pos = static_cast<size_t>(it - inserts.begin());
  inserts.insert(it, id);
  insert_sigs.insert(insert_sigs.begin() + static_cast<ptrdiff_t>(pos), sig);
}

bool DeltaTree::EraseInsert(ObjectId id) {
  const auto it = std::lower_bound(inserts.begin(), inserts.end(), id);
  if (it == inserts.end() || *it != id) {
    return false;
  }
  const size_t pos = static_cast<size_t>(it - inserts.begin());
  inserts.erase(it);
  insert_sigs.erase(insert_sigs.begin() + static_cast<ptrdiff_t>(pos));
  return true;
}

void DeltaTree::AddTombstone(ObjectId id) {
  const auto it = std::lower_bound(tombstones.begin(), tombstones.end(), id);
  COSKQ_CHECK(it == tombstones.end() || *it != id);
  tombstones.insert(it, id);
}

bool DeltaTree::EraseTombstone(ObjectId id) {
  const auto it = std::lower_bound(tombstones.begin(), tombstones.end(), id);
  if (it == tombstones.end() || *it != id) {
    return false;
  }
  tombstones.erase(it);
  return true;
}

void DeltaTree::CheckWellFormed() const {
  COSKQ_CHECK_EQ(inserts.size(), insert_sigs.size());
  for (size_t i = 1; i < inserts.size(); ++i) {
    COSKQ_CHECK_LT(inserts[i - 1], inserts[i]);
  }
  for (size_t i = 1; i < tombstones.size(); ++i) {
    COSKQ_CHECK_LT(tombstones[i - 1], tombstones[i]);
  }
}

}  // namespace coskq
