#ifndef COSKQ_INDEX_RTREE_H_
#define COSKQ_INDEX_RTREE_H_

#include <stdint.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "data/object.h"
#include "geo/circle.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace coskq {

/// An in-memory R-tree over 2-D points. Supports dynamic insertion
/// (Guttman's quadratic split), deletion (condense-tree with reinsertion),
/// STR bulk loading, rectangle/disk range search, and best-first (k-)nearest
/// neighbor search. This is the purely spatial substrate; the IR-tree reuses
/// the same structure with per-node keyword summaries.
class RTree {
 public:
  struct Options {
    /// Maximum entries per node; nodes split when exceeded.
    int max_entries = 32;
    /// Minimum entries after a split; defaults to max_entries * 0.4.
    int min_entries = 0;
  };

  /// One indexed point with its caller-provided id.
  struct Item {
    ObjectId id = kInvalidObjectId;
    Point point;
  };

  explicit RTree(const Options& options);
  RTree() : RTree(Options()) {}
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Inserts one item (dynamic path).
  void Insert(ObjectId id, const Point& point);

  /// Removes one item previously inserted with exactly this (id, point).
  /// Returns false if no such item exists. Underfull nodes are condensed
  /// and their remaining entries reinserted (Guttman's CondenseTree).
  bool Delete(ObjectId id, const Point& point);

  /// Discards current contents and rebuilds the tree with Sort-Tile-
  /// Recursive bulk loading over `items` (the fast path for static data).
  void BulkLoad(std::vector<Item> items);

  /// Appends the ids of all items inside `rect` (closed) to `out`.
  void Search(const Rect& rect, std::vector<ObjectId>* out) const;

  /// Appends the ids of all items inside the closed disk to `out`.
  void Search(const Circle& circle, std::vector<ObjectId>* out) const;

  /// Visits every item inside `rect`; the visitor returns false to stop.
  void Visit(const Rect& rect,
             const std::function<bool(ObjectId, const Point&)>& visitor) const;

  /// Returns the id and distance of the item nearest to `p`, or
  /// kInvalidObjectId if the tree is empty. Best-first search with MINDIST
  /// pruning.
  ObjectId NearestNeighbor(const Point& p, double* distance) const;

  /// Returns up to k nearest items as (id, distance) sorted by ascending
  /// distance.
  std::vector<std::pair<ObjectId, double>> KNearest(const Point& p,
                                                    size_t k) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (leaf = 1, empty = 0).
  int Height() const;

  /// MBR of everything in the tree.
  Rect BoundingRect() const;

  /// Validates structural invariants (MBR containment, fan-out bounds,
  /// uniform leaf depth, item count). Aborts on violation; test-only.
  void CheckInvariants() const;

  /// Number of nodes (diagnostics).
  size_t NodeCount() const;

 private:
  struct Node;

  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_RTREE_H_
