#ifndef COSKQ_INDEX_FROZEN_LAYOUT_H_
#define COSKQ_INDEX_FROZEN_LAYOUT_H_

#include <stddef.h>
#include <stdint.h>

#include <type_traits>
#include <vector>

#include "data/object.h"
#include "data/term_set.h"

namespace coskq {
namespace internal_index {

/// One node of the frozen (flat) IR-tree. Nodes are stored in breadth-first
/// "slot" order (root = slot 0), so the children of any node occupy a
/// contiguous slot range and the per-child MINDIST scan reads contiguous
/// stretches of the structure-of-arrays MBR blocks below.
///
/// The record is a fixed 32-byte POD written verbatim (little-endian) into
/// index snapshots, so its layout is part of the snapshot format: any field
/// change requires a snapshot version bump (see snapshot.h).
struct FrozenNodeRecord {
  /// Dense preorder id carried over from the pointer tree. Visit logs and
  /// the per-node caches of SearchScratch are keyed by this id, which is why
  /// frozen traversal is observationally identical to the pointer tree even
  /// though storage order (BFS) differs from id order (preorder).
  uint32_t id;
  /// Internal nodes: slot of the first child; children occupy
  /// [first_child, first_child + entry_count). Unused (0) for leaves.
  uint32_t first_child;
  /// Leaves: index of the first entry in the leaf-entry arrays; entries
  /// occupy [entry_begin, entry_begin + entry_count). Unused (0) otherwise.
  uint32_t entry_begin;
  /// Number of children (internal) or leaf entries (leaf).
  uint16_t entry_count;
  /// Bit 0: leaf. Remaining bits reserved (zero).
  uint16_t flags;
  /// Term-summary span [term_begin, term_begin + term_count) in the arena:
  /// the node's sorted keyword-union summary.
  uint32_t term_begin;
  uint32_t term_count;
  /// One-bit Bloom signature of the term summary (see term_signature.h).
  uint64_t sig;

  bool is_leaf() const { return (flags & 1u) != 0; }
};

static_assert(sizeof(FrozenNodeRecord) == 32,
              "FrozenNodeRecord is part of the snapshot format");
static_assert(std::is_trivially_copyable<FrozenNodeRecord>::value,
              "FrozenNodeRecord must be memcpy-safe");

/// The frozen IR-tree: every array the flat traversals touch, as raw
/// pointers into one contiguous, 8-byte-aligned body buffer. The buffer is
/// laid out exactly like the body of an index snapshot (see snapshot.cc), so
/// saving is a single write and loading can point straight into an mmap.
///
/// Array groups, all indexed as described:
///  * nodes[slot]                     — BFS-ordered node records.
///  * min_x/min_y/max_x/max_y[slot]   — node MBRs, structure-of-arrays form;
///    a parent's per-child MINDIST scan reads four contiguous ranges.
///  * terms[...]                      — term arena: node summaries and leaf
///    objects' keyword sets as sorted spans.
///  * leaf_ids/leaf_x/leaf_y/leaf_sigs/leaf_term_begin/leaf_term_count[i]
///    — leaf entries packed in traversal order: object id, location,
///    Bloom signature, and keyword span, so a leaf scan never touches the
///    Dataset.
struct FrozenView {
  const FrozenNodeRecord* nodes = nullptr;
  const double* min_x = nullptr;
  const double* min_y = nullptr;
  const double* max_x = nullptr;
  const double* max_y = nullptr;
  const TermId* terms = nullptr;
  const ObjectId* leaf_ids = nullptr;
  const double* leaf_x = nullptr;
  const double* leaf_y = nullptr;
  const uint64_t* leaf_sigs = nullptr;
  const uint32_t* leaf_term_begin = nullptr;
  const uint32_t* leaf_term_count = nullptr;

  uint32_t num_nodes = 0;
  uint32_t num_leaf_entries = 0;
  uint32_t num_terms = 0;
  uint32_t height = 0;

  const TermId* node_terms(const FrozenNodeRecord& n) const {
    return terms + n.term_begin;
  }
};

/// Owns the storage behind a FrozenView: either a heap buffer (built by
/// IrTree::Freeze or by a read-based snapshot load) or an mmap of a snapshot
/// file. Exactly one of the two is active.
struct FrozenStore {
  FrozenStore() = default;
  ~FrozenStore();

  FrozenStore(const FrozenStore&) = delete;
  FrozenStore& operator=(const FrozenStore&) = delete;

  FrozenView view;

  /// Heap-owned body buffer (layout identical to the snapshot body).
  std::vector<uint8_t> owned;

  /// When loaded via mmap: base and length of the whole mapped file (the
  /// body starts at the snapshot header size). Unmapped on destruction.
  void* mapped = nullptr;
  size_t mapped_size = 0;

  /// Body size in bytes for the given array counts (each section 8-aligned).
  static size_t BodyBytes(uint32_t num_nodes, uint32_t num_leaf_entries,
                          uint32_t num_terms);

  /// Points `view` at the arrays inside `body` (which must hold BodyBytes
  /// bytes, 8-byte aligned) and records the counts.
  void BindView(const uint8_t* body, uint32_t num_nodes,
                uint32_t num_leaf_entries, uint32_t num_terms,
                uint32_t height);
};

}  // namespace internal_index
}  // namespace coskq

#endif  // COSKQ_INDEX_FROZEN_LAYOUT_H_
