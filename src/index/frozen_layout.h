#ifndef COSKQ_INDEX_FROZEN_LAYOUT_H_
#define COSKQ_INDEX_FROZEN_LAYOUT_H_

#include <stddef.h>
#include <stdint.h>

#include <atomic>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "data/object.h"
#include "data/term_set.h"

namespace coskq {

/// Physical placement of the frozen body's node region (DESIGN.md §14).
/// Both layouts keep the same BFS *slot numbering* — slot k means the same
/// node either way, children stay a contiguous slot range, and every
/// traversal visits identical nodes in identical order — they differ only in
/// where slot k's bytes live:
///
///  * kBfs: the snapshot-v1 byte layout. Five flat sections (records, then
///    the four MBR lanes), each a plain array indexed by slot.
///  * kLevelGrouped: slots are tiled into groups of 64; each group is one
///    4096-byte page holding its 64 records AND their four MBR lanes.
///    A parent's child block (fan-out <= 64 after a level-grouped freeze
///    touches at most 2 groups) is then 1-2 page faults on a cold mapping
///    instead of 5 (records + 4 scattered MBR sections).
///
/// The layout id is carried in the snapshot header (v2+); v1 snapshots are
/// implicitly kBfs.
enum class FrozenLayout : uint32_t {
  kBfs = 0,
  kLevelGrouped = 1,
};

/// "bfs" / "level-grouped".
const char* FrozenLayoutName(FrozenLayout layout);

/// Parses FrozenLayoutName output (also accepts "lg"). Returns false and
/// leaves *out untouched on an unknown name.
bool FrozenLayoutFromName(const std::string& name, FrozenLayout* out);

namespace internal_index {

/// One node of the frozen (flat) IR-tree. Nodes are numbered in
/// breadth-first "slot" order (root = slot 0), so the children of any node
/// occupy a contiguous slot range and the per-child MINDIST scan reads
/// contiguous stretches of the structure-of-arrays MBR lanes.
///
/// The record is a fixed 32-byte POD written verbatim (little-endian) into
/// index snapshots, so its layout is part of the snapshot format: any field
/// change requires a snapshot version bump (see snapshot.h).
struct FrozenNodeRecord {
  /// Dense preorder id carried over from the pointer tree. Visit logs and
  /// the per-node caches of SearchScratch are keyed by this id, which is why
  /// frozen traversal is observationally identical to the pointer tree even
  /// though storage order (BFS) differs from id order (preorder).
  uint32_t id;
  /// Internal nodes: slot of the first child; children occupy
  /// [first_child, first_child + entry_count). Unused (0) for leaves.
  uint32_t first_child;
  /// Leaves: index of the first entry in the leaf-entry arrays; entries
  /// occupy [entry_begin, entry_begin + entry_count). Unused (0) otherwise.
  uint32_t entry_begin;
  /// Number of children (internal) or leaf entries (leaf).
  uint16_t entry_count;
  /// Bit 0: leaf. Remaining bits reserved (zero).
  uint16_t flags;
  /// Term-summary span [term_begin, term_begin + term_count) in the arena:
  /// the node's sorted keyword-union summary.
  uint32_t term_begin;
  uint32_t term_count;
  /// One-bit Bloom signature of the term summary (see term_signature.h).
  uint64_t sig;

  bool is_leaf() const { return (flags & 1u) != 0; }
};

static_assert(sizeof(FrozenNodeRecord) == 32,
              "FrozenNodeRecord is part of the snapshot format");
static_assert(std::is_trivially_copyable<FrozenNodeRecord>::value,
              "FrozenNodeRecord must be memcpy-safe");

/// Node-region tiling: 64 slots per group. One level-grouped group is
/// 64 records (2048 B) + 4 MBR lanes of 64 doubles (512 B each) = exactly
/// 4096 B — one page on every platform we target.
inline constexpr uint32_t kGroupShift = 6;
inline constexpr uint32_t kGroupSlots = 1u << kGroupShift;  // 64
inline constexpr uint32_t kGroupMask = kGroupSlots - 1;
inline constexpr size_t kGroupBytes =
    kGroupSlots * sizeof(FrozenNodeRecord) + 4 * kGroupSlots * sizeof(double);
static_assert(kGroupBytes == 4096, "one level-grouped group is one page");

/// Byte offsets of every section inside a frozen body, for either layout.
/// The node region (records + MBR lanes) is addressed through per-lane
/// (offset, stride) descriptors with the single formula
///
///   addr = body + lane_off + (slot >> kGroupShift) * stride
///               + (slot & kGroupMask) * element_size
///
/// kBfs is the degenerate case (each lane its own flat section; stride =
/// bytes of 64 elements), kLevelGrouped the paged case (all lanes share
/// stride kGroupBytes and interleave within each group). The term arena and
/// the leaf-entry arrays are flat contiguous sections in both layouts.
struct BodyLayout {
  FrozenLayout layout = FrozenLayout::kBfs;

  // Node region: [0, node_region_bytes).
  size_t node_region_bytes = 0;
  size_t rec_off = 0;
  size_t rec_stride = 0;
  size_t min_x_off = 0;
  size_t min_y_off = 0;
  size_t max_x_off = 0;
  size_t max_y_off = 0;
  size_t mbr_stride = 0;  // shared by the four MBR lanes

  // Flat tail sections (each 8-byte aligned).
  size_t terms_off = 0;
  size_t leaf_ids_off = 0;
  size_t leaf_x_off = 0;
  size_t leaf_y_off = 0;
  size_t leaf_sigs_off = 0;
  size_t leaf_term_begin_off = 0;
  size_t leaf_term_count_off = 0;

  size_t total_bytes = 0;

  static BodyLayout Make(FrozenLayout layout, uint32_t num_nodes,
                         uint32_t num_leaf_entries, uint32_t num_terms);
};

/// The frozen IR-tree: every array the flat traversals touch, resolved
/// against one contiguous 8-byte-aligned body buffer laid out exactly like
/// the body of an index snapshot (see snapshot.cc), so saving is a single
/// write and loading can point straight into an mmap.
///
/// Node records and their MBR lanes are reached through the inline slot
/// accessors below (layout-dependent placement); the term arena and the
/// leaf-entry arrays stay plain flat pointers:
///  * terms[...]                      — term arena: node summaries and leaf
///    objects' keyword sets as sorted spans.
///  * leaf_ids/leaf_x/leaf_y/leaf_sigs/leaf_term_begin/leaf_term_count[i]
///    — leaf entries packed in traversal order: object id, location,
///    Bloom signature, and keyword span, so a leaf scan never touches the
///    Dataset.
struct FrozenView {
  /// Start of the body buffer (node region is at offset 0).
  const uint8_t* body = nullptr;

  // Node-region lane descriptors (see BodyLayout).
  size_t rec_off = 0;
  size_t rec_stride = 0;
  size_t min_x_off = 0;
  size_t min_y_off = 0;
  size_t max_x_off = 0;
  size_t max_y_off = 0;
  size_t mbr_stride = 0;

  const TermId* terms = nullptr;
  const ObjectId* leaf_ids = nullptr;
  const double* leaf_x = nullptr;
  const double* leaf_y = nullptr;
  const uint64_t* leaf_sigs = nullptr;
  const uint32_t* leaf_term_begin = nullptr;
  const uint32_t* leaf_term_count = nullptr;

  uint32_t num_nodes = 0;
  uint32_t num_leaf_entries = 0;
  uint32_t num_terms = 0;
  uint32_t height = 0;

  FrozenLayout layout = FrozenLayout::kBfs;
  /// True when the body is a cold (non-populated) mapping; traversals swap
  /// the blind cache-line prefetch for page-granular madvise hints.
  bool cold = false;

  /// Pointer to slot's record; *contiguous* only for span(slot, n) records.
  const FrozenNodeRecord* node_ptr(uint32_t slot) const {
    return reinterpret_cast<const FrozenNodeRecord*>(
        body + rec_off +
        static_cast<size_t>(slot >> kGroupShift) * rec_stride +
        static_cast<size_t>(slot & kGroupMask) * sizeof(FrozenNodeRecord));
  }
  const FrozenNodeRecord& node(uint32_t slot) const { return *node_ptr(slot); }

  const double* min_x_ptr(uint32_t slot) const { return lane(min_x_off, slot); }
  const double* min_y_ptr(uint32_t slot) const { return lane(min_y_off, slot); }
  const double* max_x_ptr(uint32_t slot) const { return lane(max_x_off, slot); }
  const double* max_y_ptr(uint32_t slot) const { return lane(max_y_off, slot); }
  double min_x(uint32_t slot) const { return *min_x_ptr(slot); }
  double min_y(uint32_t slot) const { return *min_y_ptr(slot); }
  double max_x(uint32_t slot) const { return *max_x_ptr(slot); }
  double max_y(uint32_t slot) const { return *max_y_ptr(slot); }

  /// How many slots starting at `slot` (capped at `remaining`) are
  /// guaranteed contiguous in every node lane: the rest of slot's group.
  /// Chunking scans by span() makes kernel calls layout-agnostic.
  uint32_t span(uint32_t slot, uint32_t remaining) const {
    const uint32_t in_group = kGroupSlots - (slot & kGroupMask);
    return remaining < in_group ? remaining : in_group;
  }

  const TermId* node_terms(const FrozenNodeRecord& n) const {
    return terms + n.term_begin;
  }

 private:
  const double* lane(size_t lane_off, uint32_t slot) const {
    return reinterpret_cast<const double*>(
        body + lane_off +
        static_cast<size_t>(slot >> kGroupShift) * mbr_stride +
        static_cast<size_t>(slot & kGroupMask) * sizeof(double));
  }
};

/// Owns the storage behind a FrozenView: either a heap buffer (built by
/// IrTree::Freeze or by a read-based snapshot load) or an mmap of a snapshot
/// file. Exactly one of the two is active.
struct FrozenStore {
  FrozenStore() = default;
  ~FrozenStore();

  FrozenStore(const FrozenStore&) = delete;
  FrozenStore& operator=(const FrozenStore&) = delete;

  FrozenView view;

  /// Heap-owned body buffer (layout identical to the snapshot body).
  std::vector<uint8_t> owned;

  /// When loaded via mmap: base and length of the whole mapped file (the
  /// body starts at the snapshot header region size). Unmapped on
  /// destruction.
  void* mapped = nullptr;
  size_t mapped_size = 0;

  /// Start and length of the body inside `owned` or `mapped`. SaveSnapshot
  /// writes exactly these bytes.
  const uint8_t* body = nullptr;
  size_t body_bytes = 0;

  FrozenLayout layout = FrozenLayout::kBfs;

  /// Out-of-core mode (cold mmap loads only): when memory_budget_bytes is
  /// non-zero, readers periodically sample the body's resident pages via
  /// mincore and madvise(MADV_DONTNEED) the non-node tail back to the
  /// kernel whenever residency exceeds the budget. Purely advisory — the
  /// mapping is read-only and file-backed, so dropped pages refault from
  /// the snapshot; results never change, only paging behavior.
  uint64_t memory_budget_bytes = 0;
  std::atomic<uint64_t> budget_trims{0};
  std::atomic<uint64_t> budget_resident_bytes{0};

  /// Cheap call sites invoke this on every read-guard acquire; it samples
  /// residency only every kBudgetCheckPeriod-th call and lets one thread at
  /// a time do the trim.
  void MaybeEnforceBudget();

  /// Body size in bytes for the given layout and array counts.
  static size_t BodyBytes(FrozenLayout layout, uint32_t num_nodes,
                          uint32_t num_leaf_entries, uint32_t num_terms);

  /// Points `view` at the arrays inside `body_bytes_ptr` (which must hold
  /// BodyBytes bytes, 8-byte aligned), records the counts, and remembers
  /// the body extent for SaveSnapshot.
  void BindView(FrozenLayout layout, const uint8_t* body_bytes_ptr,
                uint32_t num_nodes, uint32_t num_leaf_entries,
                uint32_t num_terms, uint32_t height);

 private:
  std::atomic<uint32_t> budget_ticker_{0};
  std::mutex trim_mutex_;
};

}  // namespace internal_index
}  // namespace coskq

#endif  // COSKQ_INDEX_FROZEN_LAYOUT_H_
