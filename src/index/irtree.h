#ifndef COSKQ_INDEX_IRTREE_H_
#define COSKQ_INDEX_IRTREE_H_

#include <stdint.h>

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/object.h"
#include "data/term_set.h"
#include "geo/circle.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "index/delta_tree.h"
#include "index/frozen_layout.h"
#include "util/status.h"

namespace coskq {

class SearchScratch;

namespace internal_index {
class SnapshotAccess;
}  // namespace internal_index

/// Paging / residency statistics of the frozen body (DESIGN.md §14). For a
/// heap-built (non-mmap) tree only the process-wide fields are meaningful.
struct IndexMemoryStats {
  /// Layout of the frozen body ("bfs" until Freeze() ran).
  FrozenLayout layout = FrozenLayout::kBfs;
  /// True for a cold (non-populated) snapshot mapping.
  bool cold = false;
  /// Frozen body size in bytes (0 until frozen).
  uint64_t body_bytes = 0;
  /// Resident bytes of the mapped body (mincore; 0 for heap bodies). For
  /// budget-capped trees this is the last reading the budget enforcement
  /// took, refreshed on its sampling cadence; otherwise sampled on call.
  uint64_t body_resident_bytes = 0;
  /// Memory budget (0 = uncapped) and how many times the enforcement
  /// trimmed the body back under it.
  uint64_t memory_budget_bytes = 0;
  uint64_t budget_trims = 0;
  /// Process-wide counters: resident set (/proc/self/statm) and cumulative
  /// page faults (getrusage) — major faults are the disk reads cold
  /// traversals are judged by.
  uint64_t process_resident_bytes = 0;
  uint64_t major_faults = 0;
  uint64_t minor_faults = 0;
};

/// The IR-tree (Cong et al., VLDB 2009): an R-tree whose every node carries
/// a summary of the keywords present in its subtree, enabling
/// keyword-constrained spatial search — the access method all CoSKQ
/// algorithms in the paper are built on.
///
/// The classical IR-tree attaches a per-node inverted file (term → child
/// entries). This implementation stores a sorted term set per node, which
/// supports exactly the pruning decision the CoSKQ algorithms need ("can
/// this subtree contain an object with term t / with any query term?") with
/// one binary search per node visit; children are then tested via their own
/// summaries. The traversal order and pruned node sets are identical to a
/// per-node inverted file.
///
/// Supported queries:
///  * `KeywordNn(p, t)`        — nearest object containing keyword t.
///  * `NnSet(p, terms)`        — the paper's N(q): per-keyword nearest
///                               neighbors of a query location.
///  * `RangeRelevant(c, ψ)`    — all objects in a closed disk containing at
///                               least one query keyword.
///  * `RelevantStream`         — incremental best-first stream of relevant
///                               objects in ascending distance from a point.
///
/// Live updates (DESIGN.md §13): once Freeze()-d, the tree accepts
/// Insert/Remove concurrently with queries. Mutations land in a small
/// copy-on-write DeltaTree (tombstones for deletes); every query path merges
/// the frozen body with the delta it pinned at entry, and a background
/// Refreeze() periodically folds the delta into a fresh frozen body, swapped
/// in atomically while in-flight queries finish on the old view. Threading
/// contract: queries (any thread, under an implicit or explicit ReadGuard),
/// Insert/Remove (any thread, internally serialized), Refreeze[Async] (one
/// at a time) may all overlap — but a thread holding a ReadGuard must not
/// call Insert/Remove/Refreeze on the same tree (lock-order deadlock with
/// the swap).
class IrTree {
 public:
  struct Options {
    /// Maximum fan-out per node.
    int max_entries = 32;
    /// Physical layout Freeze() emits for the frozen body (and thus for
    /// snapshots saved from this tree). Refreeze() inherits it, and
    /// snapshot-loaded trees adopt the layout recorded in the file so a
    /// later refreeze preserves it. Query results are layout-independent.
    FrozenLayout frozen_layout = FrozenLayout::kBfs;
  };

  /// Builds the tree over all objects of `dataset` with STR bulk loading.
  /// The dataset must outlive the tree; objects may be appended to it while
  /// the tree is alive (Dataset concurrent-append mode), but existing
  /// objects must never change (object ids are stored, object data is
  /// re-read on use).
  IrTree(const Dataset* dataset, const Options& options);
  explicit IrTree(const Dataset* dataset) : IrTree(dataset, Options()) {}

  /// Builds the tree over the given subset of the dataset's objects
  /// (`object_ids` need not be sorted). This is how Refreeze() rebuilds the
  /// frozen body over the post-mutation live set, and how the differential
  /// harness constructs its from-scratch reference trees.
  IrTree(const Dataset* dataset, const Options& options,
         const std::vector<ObjectId>& object_ids);

  ~IrTree();

  IrTree(const IrTree&) = delete;
  IrTree& operator=(const IrTree&) = delete;

  /// Makes one object of the dataset (by id) live in the index.
  ///
  /// On a Freeze()-d tree (including snapshot-loaded frozen-only trees) the
  /// insert lands in the delta overlay — the frozen body is untouched, the
  /// call is safe concurrently with queries, and a query beginning after
  /// this returns observes the object. Re-inserting a tombstoned id
  /// resurrects it; inserting an id that is already live is
  /// InvalidArgument.
  ///
  /// On a never-frozen pointer tree this is the classic dynamic R-tree
  /// insert (quadratic split), kept for the static evaluation setting; that
  /// path is single-threaded and does not check for duplicates.
  Status Insert(ObjectId id);

  /// Logically deletes one object. Requires a Freeze()-d tree (the delta
  /// layer): an id pending in the delta is dropped from it, an id live in
  /// the frozen base gains a tombstone, anything else is NotFound. Safe
  /// concurrently with queries.
  Status Remove(ObjectId id);

  /// Compacts the pointer tree into the frozen flat representation
  /// (breadth-first node records, structure-of-arrays child MBRs, a term
  /// arena, and packed leaf entries; see frozen_layout.h). All query paths
  /// then run the frozen fast path, which expands the identical node
  /// sequence and returns bit-identical results. On an already-frozen tree
  /// with pending delta mutations this folds the delta synchronously (see
  /// Refreeze); otherwise idempotent. The pointer tree is retained.
  void Freeze();

  /// Rebuilds the frozen body (and pointer tree) over the current logical
  /// live set and swaps it in atomically: the build runs outside all locks
  /// against a captured delta, in-flight queries finish on the old view,
  /// mutations that arrive during the build survive into the new (much
  /// smaller) delta, and `epoch()` advances exactly when the swap is
  /// observable. No-op when the delta is empty. Serialized against itself;
  /// safe concurrently with queries and mutations.
  Status Refreeze();

  /// Launches Refreeze() on a background thread (joining any previously
  /// finished one). At most one refreeze runs at a time; a call while one
  /// is in flight is a no-op.
  void RefreezeAsync();

  /// Blocks until no background refreeze is running.
  void WaitForRefreeze();

  /// True iff the frozen representation exists (after Freeze() or for a
  /// snapshot-loaded tree).
  bool frozen() const { return frozen_ != nullptr; }

  /// A/B switch for benchmarking: when disabled, queries use the pointer
  /// tree even if a frozen view exists. Ignored (stays on) for
  /// snapshot-loaded trees, which have no pointer tree to fall back to, and
  /// whenever the delta is non-empty (the pointer tree only covers the
  /// frozen base).
  void set_frozen_enabled(bool enabled) { frozen_enabled_ = enabled; }
  bool frozen_enabled() const { return frozen_enabled_; }

  /// Pins one consistent view of the index — the current frozen body plus
  /// the delta published at construction time — for the guard's lifetime,
  /// and holds off a concurrent Refreeze() swap. Every public query method
  /// takes one implicitly; wrap multi-query units of work (a solver run, a
  /// stream consumed incrementally) in an explicit guard to make all their
  /// sub-queries observe one index state. Re-entrant per thread; never
  /// mutate the same tree while holding one (see class comment).
  class ReadGuard {
   public:
    explicit ReadGuard(const IrTree* tree) : tree_(tree) {
      tree_->GuardAcquire();
    }
    ~ReadGuard() { tree_->GuardRelease(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    const IrTree* tree_;
  };

  /// Nearest object containing keyword `t`; kInvalidObjectId if none.
  /// On success `*distance` is the Euclidean distance to it.
  ObjectId KeywordNn(const Point& p, TermId t, double* distance) const;

  /// As above, with every expanded node's id appended to `visit_log` (test
  /// instrumentation for the masked-vs-baseline differential suite).
  ObjectId KeywordNn(const Point& p, TermId t, double* distance,
                     std::vector<uint32_t>* visit_log) const;

  /// Masked fast path: prunes on cached per-node/per-object query-keyword
  /// bitmasks from `scratch` and runs the best-first loop on the scratch's
  /// pooled heap. Falls back to the baseline when `scratch` is null,
  /// disabled, has no active mask, or `t` is not a bound query keyword.
  /// Guaranteed to expand the identical node sequence and return the
  /// identical result as the baseline.
  ObjectId KeywordNn(const Point& p, TermId t, double* distance,
                     SearchScratch* scratch) const;

  /// The nearest-neighbor set N(p) = { NN(p, t) : t ∈ terms }. The result
  /// is deduplicated and sorted by id; ids of keywords with no matching
  /// object are skipped and reported through `missing` when non-null.
  std::vector<ObjectId> NnSet(const Point& p, const TermSet& terms,
                              TermSet* missing) const;

  /// Masked fast path of NnSet; same fallback and bit-identity guarantees
  /// as the KeywordNn overload.
  std::vector<ObjectId> NnSet(const Point& p, const TermSet& terms,
                              TermSet* missing, SearchScratch* scratch) const;

  /// Appends to `out` every object inside the closed disk whose keyword set
  /// intersects `query_terms`. With a non-empty delta, frozen-base matches
  /// come first (traversal order), then delta matches in ascending id order
  /// — the set is exact; callers treat it as unordered.
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out) const;

  /// As above, logging every expanded node id (test instrumentation).
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out,
                     std::vector<uint32_t>* visit_log) const;

  /// Masked fast path: requires every member of `query_terms` to be a bound
  /// query keyword (solvers also prune on single keywords or subsets of
  /// q.ψ); otherwise falls back to the baseline. Bit-identical node
  /// expansions and output.
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out, SearchScratch* scratch) const;

  /// Boolean kNN query (Felipe et al., ICDE 2008): the k objects nearest to
  /// `p` whose keyword sets contain ALL of `required`, in ascending
  /// distance. Subtrees whose term summary misses any required term are
  /// pruned. Returns fewer than k pairs if fewer matching objects exist.
  /// Serves the frozen base only (not delta-aware); requires the pointer
  /// tree.
  std::vector<std::pair<ObjectId, double>> BooleanKnn(
      const Point& p, const TermSet& required, size_t k) const;

  /// Top-k ranked spatial-keyword query (Cong et al., VLDB 2009): ranks
  /// objects by score = alpha * d(p, o)/diag + (1 - alpha) * (1 - rel),
  /// where rel = |o.ψ ∩ terms| / |terms| and `diag` normalizes distances by
  /// the diagonal of the tree's MBR. Lower scores are better. Best-first
  /// with per-subtree score lower bounds (min distance + term-summary
  /// relevance upper bound). Objects sharing no term still qualify (rel 0),
  /// matching the standard formulation. Serves the frozen base only (not
  /// delta-aware); requires the pointer tree.
  std::vector<std::pair<ObjectId, double>> TopkRanked(
      const Point& p, const TermSet& terms, size_t k, double alpha) const;

  /// Incremental best-first stream of relevant objects (objects containing
  /// at least one of the query terms) in ascending distance from `origin`.
  /// The stream holds its own ReadGuard, so it keeps serving one consistent
  /// frozen+delta view even across a concurrent Refreeze() swap.
  class RelevantStream {
   public:
    RelevantStream(const IrTree* tree, const Point& origin,
                   const TermSet& query_terms);

    /// Masked variant: prunes on the scratch's cached bitmasks when the
    /// mask is active and covers `query_terms`; baseline otherwise. The
    /// stream keeps its own queue (only the mask caches are shared), so it
    /// may be interleaved with other masked traversals on the same scratch.
    RelevantStream(const IrTree* tree, const Point& origin,
                   const TermSet& query_terms, SearchScratch* scratch);
    ~RelevantStream();

    RelevantStream(const RelevantStream&) = delete;
    RelevantStream& operator=(const RelevantStream&) = delete;

    /// Next relevant object and its distance, or nullopt when exhausted.
    std::optional<std::pair<ObjectId, double>> Next();

   private:
    struct Impl;
    /// Declared before impl_: destroyed after it, so the pinned view stays
    /// valid for the Impl's whole lifetime.
    ReadGuard guard_;
    std::unique_ptr<Impl> impl_;
  };

  /// Logical live object count: frozen base − tombstones + delta inserts.
  size_t size() const { return size_.load(std::memory_order_relaxed); }
  int Height() const;
  size_t NodeCount() const;

  /// One past the largest node id in the tree. Node ids are dense
  /// (renumbered in preorder after every structural change), so per-node
  /// caches in SearchScratch are flat arrays of this length. Stable while a
  /// ReadGuard is held.
  uint32_t node_id_limit() const { return next_node_id_; }

  /// Monotone counter bumped by every Refreeze() swap; a query observing
  /// epoch N runs entirely against the N-th frozen body.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Pending delta mutations (inserts + tombstones); what the server's
  /// refreeze threshold watches.
  size_t delta_size() const;

  uint64_t mutations_applied() const {
    return mutations_applied_.load(std::memory_order_relaxed);
  }
  uint64_t refreezes_completed() const {
    return refreezes_completed_.load(std::memory_order_relaxed);
  }

  /// Paging / residency statistics (see IndexMemoryStats). Cheap except for
  /// the mincore body walk on uncapped mmap-loaded trees; safe concurrently
  /// with queries.
  IndexMemoryStats MemoryStats() const;

  /// Validates structural invariants: MBR containment, term-summary
  /// soundness (node terms = union of children), uniform leaf depth, object
  /// count, and the delta-overlay invariants (sortedness, tombstones ⊆
  /// frozen base, inserts disjoint from it). Aborts on violation;
  /// test-only.
  void CheckInvariants() const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  struct Node;
  friend struct RelevantStreamImplAccess;
  /// Snapshot save/load (snapshot.cc) reads the frozen store and constructs
  /// frozen-only trees through the private constructor below.
  friend class internal_index::SnapshotAccess;

  /// Constructs a frozen-only tree (no pointer tree) around a loaded
  /// snapshot store. Only reachable via LoadSnapshot.
  IrTree(const Dataset* dataset, const Options& options,
         std::unique_ptr<internal_index::FrozenStore> store);

  void BulkLoad(std::vector<ObjectId> ids);
  void AssignNodeIds();

  // ReadGuard plumbing (see irtree.cc for the per-thread slot table).
  void GuardAcquire() const;
  void GuardRelease() const;
  /// The delta pinned by this thread's innermost ReadGuard on this tree
  /// (null when the delta was empty at pin time). Only callable under a
  /// guard — every public query path is.
  const DeltaTree* PinnedDelta() const;

  /// Copies the published delta (or makes a fresh one) for copy-on-write
  /// editing; caller holds mutate_mutex_.
  std::shared_ptr<DeltaTree> CopyDeltaLocked() const;
  /// Publishes `delta` (null when empty) for future queries to pin.
  void PublishDelta(std::shared_ptr<const DeltaTree> delta) const;
  /// True iff `id` is live in the frozen base (ignoring tombstones).
  bool LiveInBase(ObjectId id) const {
    return id < frozen_live_.size() && frozen_live_[id] != 0;
  }
  /// Rebuilds frozen_live_ from the frozen view's packed leaf ids.
  void RebuildFrozenLive();
  /// The classic dynamic R-tree insert on the pointer tree (pre-freeze).
  Status InsertPointer(ObjectId id);

  /// True iff queries should take the frozen fast path. A frozen-only tree
  /// always does (there is no pointer tree to fall back to), and so does
  /// any query that pinned a non-empty delta (the pointer tree only covers
  /// the frozen base).
  bool UseFrozen(const DeltaTree* delta) const {
    return frozen_ != nullptr &&
           (frozen_enabled_ || root_ == nullptr || delta != nullptr);
  }

  // Frozen fast paths (irtree_frozen.cc). Each mirrors the corresponding
  // pointer-tree traversal exactly: same child visit order, same pruning
  // predicates, same heap discipline, same distance arithmetic — so results,
  // costs, and node-visit logs are bit-identical. `delta` (nullable) only
  // suppresses tombstoned leaf entries; delta-insert candidates are merged
  // by the callers in irtree.cc.
  ObjectId FrozenKeywordNn(const Point& p, TermId t, double* distance,
                           std::vector<uint32_t>* visit_log,
                           const DeltaTree* delta) const;
  ObjectId FrozenKeywordNnMasked(const Point& p, TermId t, int slot,
                                 double* distance, SearchScratch* scratch,
                                 const DeltaTree* delta) const;
  void FrozenRangeRelevant(const Circle& circle, const TermSet& query_terms,
                           std::vector<ObjectId>* out,
                           std::vector<uint32_t>* visit_log,
                           const DeltaTree* delta) const;
  void FrozenRangeRelevantMasked(const Circle& circle,
                                 const TermSet& query_terms, uint64_t submask,
                                 std::vector<ObjectId>* out,
                                 SearchScratch* scratch,
                                 const DeltaTree* delta) const;
  /// Structural validation of the frozen arrays against the dataset (used
  /// by CheckInvariants for snapshot-loaded trees, and to cross-check the
  /// frozen view against the pointer tree after Freeze()).
  void CheckFrozenInvariants() const;

  const Dataset* dataset_;
  Options options_;
  std::unique_ptr<Node> root_;
  /// Per-object one-bit Bloom signatures (see term_signature.h), indexed by
  /// ObjectId; the O(1) definite-negative pre-filter the masked traversals
  /// apply before the exact cached-mask test. Covers the frozen base only —
  /// delta inserts carry their signatures in DeltaTree::insert_sigs.
  std::vector<uint64_t> obj_sigs_;
  /// Total set bits across the object signatures (leaf_sigs for a
  /// snapshot-loaded tree — the same multiset). The mean density feeds the
  /// masked-range prune-rate estimate in RangeRelevant: dense signatures
  /// (keyword-heavy corpora) make the Bloom pre-filter worthless, and the
  /// dispatcher then takes the plain scan instead. Frozen-base-only; the
  /// estimate ignores the (bounded-size) delta.
  uint64_t obj_sig_bits_sum_ = 0;
  /// Logical live count (atomic: mutators bump it while queries read it;
  /// queries use it only for emptiness checks and the prune-rate estimate,
  /// where momentary staleness is harmless).
  std::atomic<size_t> size_{0};
  uint32_t next_node_id_ = 0;
  /// Frozen flat representation (see frozen_layout.h); null until Freeze().
  std::unique_ptr<internal_index::FrozenStore> frozen_;
  bool frozen_enabled_ = true;
  /// Membership bitmap of the frozen base, indexed by ObjectId. Written
  /// only while holding both mutate_mutex_ and the unique swap lock (or
  /// before serving starts); read by mutators under mutate_mutex_ and by
  /// queries under their shared guard.
  std::vector<uint8_t> frozen_live_;

  // --- Live-update state (DESIGN.md §13). Lock order: refreeze_mutex_ →
  // mutate_mutex_ → swap_mutex_(unique) → delta_mutex_; readers take
  // swap_mutex_(shared) → delta_mutex_ only.
  /// Readers hold it shared for a guard's lifetime; the refreeze swap takes
  /// it unique, so a swap waits out in-flight queries and queries never see
  /// a half-swapped body.
  mutable std::shared_mutex swap_mutex_;
  /// Protects the delta_ pointer (publish/pin).
  mutable std::mutex delta_mutex_;
  /// Serializes mutators (Insert/Remove) and the refreeze swap.
  mutable std::mutex mutate_mutex_;
  /// Serializes whole Refreeze() runs.
  std::mutex refreeze_mutex_;
  /// The published delta overlay; null ⇔ empty. Queries pin it via
  /// shared_ptr under delta_mutex_; mutators replace it copy-on-write.
  mutable std::shared_ptr<const DeltaTree> delta_;

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> mutations_applied_{0};
  std::atomic<uint64_t> refreezes_completed_{0};

  /// Background refreeze (RefreezeAsync); launch serialized by
  /// refreeze_launch_mutex_, joined by the destructor.
  std::mutex refreeze_launch_mutex_;
  std::thread refreeze_thread_;
  std::atomic<bool> refreeze_running_{false};
};

}  // namespace coskq

#endif  // COSKQ_INDEX_IRTREE_H_
