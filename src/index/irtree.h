#ifndef COSKQ_INDEX_IRTREE_H_
#define COSKQ_INDEX_IRTREE_H_

#include <stdint.h>

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "data/object.h"
#include "data/term_set.h"
#include "geo/circle.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "util/status.h"

namespace coskq {

class SearchScratch;

namespace internal_index {
struct FrozenStore;
class SnapshotAccess;
}  // namespace internal_index

/// The IR-tree (Cong et al., VLDB 2009): an R-tree whose every node carries
/// a summary of the keywords present in its subtree, enabling
/// keyword-constrained spatial search — the access method all CoSKQ
/// algorithms in the paper are built on.
///
/// The classical IR-tree attaches a per-node inverted file (term → child
/// entries). This implementation stores a sorted term set per node, which
/// supports exactly the pruning decision the CoSKQ algorithms need ("can
/// this subtree contain an object with term t / with any query term?") with
/// one binary search per node visit; children are then tested via their own
/// summaries. The traversal order and pruned node sets are identical to a
/// per-node inverted file.
///
/// Supported queries:
///  * `KeywordNn(p, t)`        — nearest object containing keyword t.
///  * `NnSet(p, terms)`        — the paper's N(q): per-keyword nearest
///                               neighbors of a query location.
///  * `RangeRelevant(c, ψ)`    — all objects in a closed disk containing at
///                               least one query keyword.
///  * `RelevantStream`         — incremental best-first stream of relevant
///                               objects in ascending distance from a point.
class IrTree {
 public:
  struct Options {
    /// Maximum fan-out per node.
    int max_entries = 32;
  };

  /// Builds the tree over all objects of `dataset` with STR bulk loading.
  /// The dataset must outlive the tree and must not be mutated while the
  /// tree is alive (object ids are stored, object data is re-read on use).
  IrTree(const Dataset* dataset, const Options& options);
  explicit IrTree(const Dataset* dataset) : IrTree(dataset, Options()) {}
  ~IrTree();

  IrTree(const IrTree&) = delete;
  IrTree& operator=(const IrTree&) = delete;

  /// Dynamically inserts one object of the dataset (by id) into the tree.
  /// Used by tests and by incremental-maintenance scenarios; bulk loading
  /// covers the static evaluation setting.
  ///
  /// Inserting into a tree that has been Freeze()-d invalidates the frozen
  /// view (queries fall back to the pointer tree until Freeze() is called
  /// again) — the flat arrays are never silently left stale. Inserting into
  /// a snapshot-loaded tree (frozen-only, no pointer tree) is an error.
  Status Insert(ObjectId id);

  /// Compacts the pointer tree into the frozen flat representation
  /// (breadth-first node records, structure-of-arrays child MBRs, a term
  /// arena, and packed leaf entries; see frozen_layout.h). All query paths
  /// then run the frozen fast path, which expands the identical node
  /// sequence and returns bit-identical results. Idempotent. The pointer
  /// tree is retained, so Insert stays possible (it invalidates the frozen
  /// view).
  void Freeze();

  /// True iff the frozen representation exists (after Freeze() or for a
  /// snapshot-loaded tree).
  bool frozen() const { return frozen_ != nullptr; }

  /// A/B switch for benchmarking: when disabled, queries use the pointer
  /// tree even if a frozen view exists. Ignored (stays on) for
  /// snapshot-loaded trees, which have no pointer tree to fall back to.
  void set_frozen_enabled(bool enabled) { frozen_enabled_ = enabled; }
  bool frozen_enabled() const { return frozen_enabled_; }

  /// Nearest object containing keyword `t`; kInvalidObjectId if none.
  /// On success `*distance` is the Euclidean distance to it.
  ObjectId KeywordNn(const Point& p, TermId t, double* distance) const;

  /// As above, with every expanded node's id appended to `visit_log` (test
  /// instrumentation for the masked-vs-baseline differential suite).
  ObjectId KeywordNn(const Point& p, TermId t, double* distance,
                     std::vector<uint32_t>* visit_log) const;

  /// Masked fast path: prunes on cached per-node/per-object query-keyword
  /// bitmasks from `scratch` and runs the best-first loop on the scratch's
  /// pooled heap. Falls back to the baseline when `scratch` is null,
  /// disabled, has no active mask, or `t` is not a bound query keyword.
  /// Guaranteed to expand the identical node sequence and return the
  /// identical result as the baseline.
  ObjectId KeywordNn(const Point& p, TermId t, double* distance,
                     SearchScratch* scratch) const;

  /// The nearest-neighbor set N(p) = { NN(p, t) : t ∈ terms }. The result
  /// is deduplicated and sorted by id; ids of keywords with no matching
  /// object are skipped and reported through `missing` when non-null.
  std::vector<ObjectId> NnSet(const Point& p, const TermSet& terms,
                              TermSet* missing) const;

  /// Masked fast path of NnSet; same fallback and bit-identity guarantees
  /// as the KeywordNn overload.
  std::vector<ObjectId> NnSet(const Point& p, const TermSet& terms,
                              TermSet* missing, SearchScratch* scratch) const;

  /// Appends to `out` every object inside the closed disk whose keyword set
  /// intersects `query_terms`.
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out) const;

  /// As above, logging every expanded node id (test instrumentation).
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out,
                     std::vector<uint32_t>* visit_log) const;

  /// Masked fast path: requires every member of `query_terms` to be a bound
  /// query keyword (solvers also prune on single keywords or subsets of
  /// q.ψ); otherwise falls back to the baseline. Bit-identical node
  /// expansions and output.
  void RangeRelevant(const Circle& circle, const TermSet& query_terms,
                     std::vector<ObjectId>* out, SearchScratch* scratch) const;

  /// Boolean kNN query (Felipe et al., ICDE 2008): the k objects nearest to
  /// `p` whose keyword sets contain ALL of `required`, in ascending
  /// distance. Subtrees whose term summary misses any required term are
  /// pruned. Returns fewer than k pairs if fewer matching objects exist.
  std::vector<std::pair<ObjectId, double>> BooleanKnn(
      const Point& p, const TermSet& required, size_t k) const;

  /// Top-k ranked spatial-keyword query (Cong et al., VLDB 2009): ranks
  /// objects by score = alpha * d(p, o)/diag + (1 - alpha) * (1 - rel),
  /// where rel = |o.ψ ∩ terms| / |terms| and `diag` normalizes distances by
  /// the diagonal of the tree's MBR. Lower scores are better. Best-first
  /// with per-subtree score lower bounds (min distance + term-summary
  /// relevance upper bound). Objects sharing no term still qualify (rel 0),
  /// matching the standard formulation.
  std::vector<std::pair<ObjectId, double>> TopkRanked(
      const Point& p, const TermSet& terms, size_t k, double alpha) const;

  /// Incremental best-first stream of relevant objects (objects containing
  /// at least one of the query terms) in ascending distance from `origin`.
  class RelevantStream {
   public:
    RelevantStream(const IrTree* tree, const Point& origin,
                   const TermSet& query_terms);

    /// Masked variant: prunes on the scratch's cached bitmasks when the
    /// mask is active and covers `query_terms`; baseline otherwise. The
    /// stream keeps its own queue (only the mask caches are shared), so it
    /// may be interleaved with other masked traversals on the same scratch.
    RelevantStream(const IrTree* tree, const Point& origin,
                   const TermSet& query_terms, SearchScratch* scratch);
    ~RelevantStream();

    RelevantStream(const RelevantStream&) = delete;
    RelevantStream& operator=(const RelevantStream&) = delete;

    /// Next relevant object and its distance, or nullopt when exhausted.
    std::optional<std::pair<ObjectId, double>> Next();

   private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  size_t size() const { return size_; }
  int Height() const;
  size_t NodeCount() const;

  /// One past the largest node id in the tree. Node ids are dense
  /// (renumbered in preorder after every structural change), so per-node
  /// caches in SearchScratch are flat arrays of this length.
  uint32_t node_id_limit() const { return next_node_id_; }

  /// Validates structural invariants: MBR containment, term-summary
  /// soundness (node terms = union of children), uniform leaf depth, and
  /// object count. Aborts on violation; test-only.
  void CheckInvariants() const;

  const Dataset& dataset() const { return *dataset_; }

 private:
  struct Node;
  friend struct RelevantStreamImplAccess;
  /// Snapshot save/load (snapshot.cc) reads the frozen store and constructs
  /// frozen-only trees through the private constructor below.
  friend class internal_index::SnapshotAccess;

  /// Constructs a frozen-only tree (no pointer tree) around a loaded
  /// snapshot store. Only reachable via LoadSnapshot.
  IrTree(const Dataset* dataset, const Options& options,
         std::unique_ptr<internal_index::FrozenStore> store);

  void BulkLoad();
  void AssignNodeIds();

  /// True iff queries should take the frozen fast path. A frozen-only tree
  /// always does (there is no pointer tree to fall back to).
  bool UseFrozen() const {
    return frozen_ != nullptr && (frozen_enabled_ || root_ == nullptr);
  }

  // Frozen fast paths (irtree_frozen.cc). Each mirrors the corresponding
  // pointer-tree traversal exactly: same child visit order, same pruning
  // predicates, same heap discipline, same distance arithmetic — so results,
  // costs, and node-visit logs are bit-identical.
  ObjectId FrozenKeywordNn(const Point& p, TermId t, double* distance,
                           std::vector<uint32_t>* visit_log) const;
  ObjectId FrozenKeywordNnMasked(const Point& p, TermId t, int slot,
                                 double* distance,
                                 SearchScratch* scratch) const;
  void FrozenRangeRelevant(const Circle& circle, const TermSet& query_terms,
                           std::vector<ObjectId>* out,
                           std::vector<uint32_t>* visit_log) const;
  void FrozenRangeRelevantMasked(const Circle& circle,
                                 const TermSet& query_terms, uint64_t submask,
                                 std::vector<ObjectId>* out,
                                 SearchScratch* scratch) const;
  /// Structural validation of the frozen arrays against the dataset (used
  /// by CheckInvariants for snapshot-loaded trees, and to cross-check the
  /// frozen view against the pointer tree after Freeze()).
  void CheckFrozenInvariants() const;

  const Dataset* dataset_;
  Options options_;
  std::unique_ptr<Node> root_;
  /// Per-object one-bit Bloom signatures (see term_signature.h), indexed by
  /// ObjectId; the O(1) definite-negative pre-filter the masked traversals
  /// apply before the exact cached-mask test.
  std::vector<uint64_t> obj_sigs_;
  /// Total set bits across the object signatures (leaf_sigs for a
  /// snapshot-loaded tree — the same multiset). The mean density feeds the
  /// masked-range prune-rate estimate in RangeRelevant: dense signatures
  /// (keyword-heavy corpora) make the Bloom pre-filter worthless, and the
  /// dispatcher then takes the plain scan instead.
  uint64_t obj_sig_bits_sum_ = 0;
  size_t size_ = 0;
  uint32_t next_node_id_ = 0;
  /// Frozen flat representation (see frozen_layout.h); null until Freeze().
  std::unique_ptr<internal_index::FrozenStore> frozen_;
  bool frozen_enabled_ = true;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_IRTREE_H_
