#ifndef COSKQ_INDEX_QUERY_MASK_H_
#define COSKQ_INDEX_QUERY_MASK_H_

#include <stdint.h>

#include "data/term_set.h"

namespace coskq {

/// Query-scoped keyword bitmask: maps the query keyword set q.ψ to bit
/// slots of a uint64_t, so "does this term set cover query keyword k?"
/// becomes a single AND instruction once a set's mask has been computed.
///
/// Slot k corresponds to the k-th query keyword in sorted TermSet order, so
/// iterating set bits from least to most significant visits keywords in
/// exactly the order a TermSet loop would — the property that lets masked
/// search paths make bit-identical branch decisions to the baseline.
///
/// The mask is `active()` only for 1..64 query keywords (the paper's
/// experiments use |q.ψ| ≤ 15). With more keywords, or before Reset, every
/// masked code path must fall back to the sorted-TermSet baseline; callers
/// check `active()` once per query, not per node.
class QueryTermMask {
 public:
  QueryTermMask() = default;

  /// Rebinds the mask to a new query keyword set (sorted, deduplicated).
  void Reset(const TermSet& query_keywords);

  /// True iff bitmask pruning applies: 1 <= |q.ψ| <= 64.
  bool active() const { return active_; }

  size_t num_keywords() const { return keywords_.size(); }
  const TermSet& keywords() const { return keywords_; }

  /// All query-keyword bits set; 0 when inactive.
  uint64_t full_mask() const { return full_mask_; }

  /// Bit slot of a query keyword, or -1 if `t` is not a query keyword.
  int SlotOf(TermId t) const;

  /// Bits of the query keywords contained in the sorted set `terms`. One
  /// progressive binary search per query keyword, so the cost is
  /// O(|q.ψ| log |terms|) — paid once per node/object per query, after
  /// which every containment test is one AND.
  uint64_t MaskOf(const TermSet& terms) const {
    return MaskOf(terms.data(), terms.size());
  }

  /// Span variant for term sets stored as arena slices (the frozen IR-tree
  /// layout). Runs the identical probe sequence as the TermSet overload, so
  /// the computed mask is the same.
  uint64_t MaskOf(const TermId* terms, size_t count) const;

  /// Mask of `terms` when every member is a query keyword (the common
  /// "prune on a subset of q.ψ" case); false if any member is not.
  bool SubmaskOf(const TermSet& terms, uint64_t* submask) const;

 private:
  TermSet keywords_;
  uint64_t full_mask_ = 0;
  bool active_ = false;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_QUERY_MASK_H_
