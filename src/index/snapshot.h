#ifndef COSKQ_INDEX_SNAPSHOT_H_
#define COSKQ_INDEX_SNAPSHOT_H_

#include <stdint.h>

#include <memory>
#include <string>

#include "data/dataset.h"
#include "index/irtree.h"
#include "util/status.h"

namespace coskq {

/// Versioned little-endian index snapshot: the frozen flat IR-tree
/// (frozen_layout.h) persisted so the server and the batch tools can load a
/// prebuilt index instead of re-running STR bulk load on every start.
///
/// File layout (all integers little-endian):
///   [header region]   magic "CQIX", version, endian marker 0x0102, dataset
///                     checksum, object count, max_entries, array counts,
///                     height, body size, and (v2+) the body layout id.
///                     v1 wrote the bare 48-byte header; v2 writes a 56-byte
///                     header zero-padded to a 4096-byte region so the body
///                     starts page-aligned in the file — and therefore
///                     page-aligned in a mapping, which the level-grouped
///                     layout's page groups rely on.
///   [body]            the frozen arrays, byte-for-byte the FrozenStore body
///                     buffer (every section 8-byte aligned, so the body can
///                     be traversed in place from an mmap)
///   [8-byte trailer]  FNV-1a checksum of header region + body
///
/// A snapshot is bound to the exact dataset it was built from: LoadSnapshot
/// recomputes Dataset::ContentChecksum() and refuses a mismatch. v1 files
/// keep loading (their layout is implicitly bfs); an unknown layout id in a
/// v2 header is rejected with a Status. Any change to the header, the
/// FrozenNodeRecord layout, or the body section order requires bumping
/// kSnapshotVersion.
inline constexpr uint32_t kSnapshotMagic = 0x58495143u;  // "CQIX"
inline constexpr uint16_t kSnapshotVersion = 2;

/// Header fields of a snapshot file, as returned by ReadSnapshotInfo
/// (`coskq_cli index inspect`).
struct SnapshotInfo {
  uint16_t version = 0;
  uint64_t dataset_checksum = 0;
  uint32_t num_objects = 0;
  uint32_t max_entries = 0;
  uint32_t num_nodes = 0;
  uint32_t num_leaf_entries = 0;
  uint32_t num_terms = 0;
  uint32_t height = 0;
  uint64_t body_bytes = 0;
  uint64_t file_bytes = 0;
  /// Physical node-region layout of the body (v1 files report kBfs).
  FrozenLayout layout = FrozenLayout::kBfs;
  /// Size of the header region preceding the body (48 for v1, 4096 for v2).
  uint64_t header_bytes = 0;
};

/// How LoadSnapshot maps the file (DESIGN.md §14).
struct SnapshotLoadOptions {
  /// Cold / out-of-core mode: skip MAP_POPULATE (pages fault in on demand),
  /// madvise(MADV_RANDOM) the body (traversals are not sequential), verify
  /// the checksum by streamed reads instead of touching the mapping, and
  /// switch traversal prefetch to page-granular madvise hints.
  bool cold = false;
  /// With `cold`: soft cap on the body's resident bytes, enforced by
  /// periodic mincore sampling + madvise(MADV_DONTNEED) tail trims (see
  /// FrozenStore::MaybeEnforceBudget). 0 = uncapped. Implies cold.
  uint64_t memory_budget_bytes = 0;
  /// Ask the kernel to drop the snapshot's page cache after checksum
  /// verification (posix_fadvise DONTNEED), so the first traversal really
  /// reads the disk — what the cold benchmarks need. Best effort.
  bool drop_page_cache = false;
};

/// Writes `tree`'s frozen representation to `path`, freezing first if
/// needed. Snapshots of the same tree are byte-for-byte identical.
Status SaveSnapshot(IrTree* tree, const std::string& path);

/// Loads a snapshot into a frozen-only IrTree over `dataset` (which must be
/// the dataset the snapshot was built from, verified by checksum; it must
/// outlive the tree). The file is mapped read-only when possible (falling
/// back to a single read), so loading is O(validation) instead of
/// O(rebuild). Fails with a Status — never crashes — on truncated, corrupt,
/// wrong-version, unknown-layout, or wrong-dataset files. The loaded tree
/// adopts the snapshot's frozen layout, so a later Refreeze() preserves it.
StatusOr<std::unique_ptr<IrTree>> LoadSnapshot(const Dataset* dataset,
                                               const std::string& path);
StatusOr<std::unique_ptr<IrTree>> LoadSnapshot(
    const Dataset* dataset, const std::string& path,
    const SnapshotLoadOptions& load_options);

/// Reads and validates a snapshot's header and checksum without a dataset
/// (the dataset-checksum *match* is not checked; everything else is).
StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

}  // namespace coskq

#endif  // COSKQ_INDEX_SNAPSHOT_H_
