#ifndef COSKQ_INDEX_QUADRATIC_SPLIT_H_
#define COSKQ_INDEX_QUADRATIC_SPLIT_H_

// Internal header shared by the R-tree and IR-tree implementations.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geo/rect.h"
#include "util/logging.h"

namespace coskq {
namespace internal_index {

inline double RectEnlargement(const Rect& rect, const Rect& addition) {
  return Rect::Union(rect, addition).Area() - rect.Area();
}

/// Guttman's quadratic node split over abstract entries. `get_rect` maps an
/// entry to its bounding rectangle. Produces two groups, each with at least
/// `min_entries` entries.
template <typename Entry, typename GetRect>
void QuadraticSplit(std::vector<Entry> all, int min_entries,
                    std::vector<Entry>* group_a, std::vector<Entry>* group_b,
                    const GetRect& get_rect) {
  const size_t n = all.size();
  COSKQ_CHECK_GE(static_cast<int>(n), 2 * min_entries);

  // PickSeeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Rect ri = get_rect(all[i]);
      const Rect rj = get_rect(all[j]);
      const double waste = Rect::Union(ri, rj).Area() - ri.Area() - rj.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  group_a->clear();
  group_b->clear();
  Rect mbr_a = get_rect(all[seed_a]);
  Rect mbr_b = get_rect(all[seed_b]);
  group_a->push_back(std::move(all[seed_a]));
  group_b->push_back(std::move(all[seed_b]));

  std::vector<Entry> rest;
  rest.reserve(n - 2);
  for (size_t i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) {
      rest.push_back(std::move(all[i]));
    }
  }

  while (!rest.empty()) {
    const size_t remaining = rest.size();
    // Force-assign when one group must take everything left to reach the
    // minimum fill.
    if (group_a->size() + remaining == static_cast<size_t>(min_entries)) {
      for (Entry& e : rest) {
        mbr_a.ExpandToInclude(get_rect(e));
        group_a->push_back(std::move(e));
      }
      break;
    }
    if (group_b->size() + remaining == static_cast<size_t>(min_entries)) {
      for (Entry& e : rest) {
        mbr_b.ExpandToInclude(get_rect(e));
        group_b->push_back(std::move(e));
      }
      break;
    }
    // PickNext: the entry with the strongest preference for one group.
    size_t best_index = 0;
    double best_preference = -1.0;
    double best_da = 0.0;
    double best_db = 0.0;
    for (size_t i = 0; i < rest.size(); ++i) {
      const Rect r = get_rect(rest[i]);
      const double da = RectEnlargement(mbr_a, r);
      const double db = RectEnlargement(mbr_b, r);
      const double preference = std::abs(da - db);
      if (preference > best_preference) {
        best_preference = preference;
        best_index = i;
        best_da = da;
        best_db = db;
      }
    }
    Entry chosen = std::move(rest[best_index]);
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(best_index));
    const Rect r = get_rect(chosen);
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      mbr_a.ExpandToInclude(r);
      group_a->push_back(std::move(chosen));
    } else {
      mbr_b.ExpandToInclude(r);
      group_b->push_back(std::move(chosen));
    }
  }
}

/// Sort-Tile-Recursive grouping: partitions `entries` into groups of at most
/// `cap`, tiling by x then y of the entry centers. Invokes `make_group` on
/// each contiguous chunk. Shared by the bulk loaders.
template <typename Entry, typename GetCenter, typename MakeGroup>
void StrTile(std::vector<Entry>* entries, size_t cap,
             const GetCenter& get_center, const MakeGroup& make_group) {
  COSKQ_CHECK_GT(cap, 0u);
  const size_t n = entries->size();
  if (n == 0) {
    return;
  }
  const size_t group_count = (n + cap - 1) / cap;
  const size_t slab_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(group_count))));
  const size_t slab_size = (n + slab_count - 1) / slab_count;

  std::sort(entries->begin(), entries->end(),
            [&](const Entry& a, const Entry& b) {
              return get_center(a).x < get_center(b).x;
            });
  for (size_t slab_begin = 0; slab_begin < n; slab_begin += slab_size) {
    const size_t slab_end = std::min(n, slab_begin + slab_size);
    std::sort(entries->begin() + static_cast<ptrdiff_t>(slab_begin),
              entries->begin() + static_cast<ptrdiff_t>(slab_end),
              [&](const Entry& a, const Entry& b) {
                return get_center(a).y < get_center(b).y;
              });
    for (size_t begin = slab_begin; begin < slab_end; begin += cap) {
      const size_t end = std::min(slab_end, begin + cap);
      make_group(begin, end);
    }
  }
}

}  // namespace internal_index
}  // namespace coskq

#endif  // COSKQ_INDEX_QUADRATIC_SPLIT_H_
