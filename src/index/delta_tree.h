#ifndef COSKQ_INDEX_DELTA_TREE_H_
#define COSKQ_INDEX_DELTA_TREE_H_

#include <stdint.h>

#include <vector>

#include "data/object.h"

namespace coskq {

/// The mutable overlay of a frozen IR-tree (the LSM-flavored "delta" of the
/// live-update design, DESIGN.md §13). A frozen tree absorbs Insert/Remove
/// into one of these instead of touching the flat arrays:
///
///   * `inserts`     — ids live in the delta but absent from the frozen base,
///                     sorted ascending; `insert_sigs[i]` is the Bloom term
///                     signature of `inserts[i]` (the delta-side twin of
///                     IrTree::obj_sigs_, carried here so queries never index
///                     a signature array that is being resized).
///   * `tombstones`  — ids live in the frozen base but logically deleted,
///                     sorted ascending.
///
/// Invariants (validated by IrTree::CheckInvariants):
///   inserts ∩ frozen_live = ∅, tombstones ⊆ frozen_live, and the logical
///   live set is (frozen_live − tombstones) ∪ inserts.
///
/// Instances are immutable once published: IrTree mutators copy-on-write a
/// new DeltaTree under its mutation lock and publish it through a
/// shared_ptr, so a query pins one consistent delta for its whole lifetime
/// with a single atomic refcount bump and no per-access synchronization.
/// The structure is deliberately a pair of sorted arrays, not a tree: deltas
/// are bounded by the refreeze threshold (a few thousand entries), where a
/// linear candidate scan + binary-search tombstone probe beats any pointer
/// structure and keeps the merged path trivially bit-stable.
class DeltaTree {
 public:
  std::vector<ObjectId> inserts;
  std::vector<uint64_t> insert_sigs;
  std::vector<ObjectId> tombstones;

  bool empty() const { return inserts.empty() && tombstones.empty(); }

  /// Number of pending mutations (what the refreeze threshold compares).
  size_t size() const { return inserts.size() + tombstones.size(); }

  /// Net change to the logical object count vs the frozen base.
  int64_t LiveDelta() const {
    return static_cast<int64_t>(inserts.size()) -
           static_cast<int64_t>(tombstones.size());
  }

  bool IsTombstoned(ObjectId id) const;
  bool IsInserted(ObjectId id) const;

  // Copy-on-write editing helpers (callers hold the IrTree mutation lock;
  // each returns false when the operation does not apply to this delta).
  /// Adds `id` (with signature `sig`) to the sorted insert set. Pre:
  /// !IsInserted(id).
  void AddInsert(ObjectId id, uint64_t sig);
  /// Removes `id` from the insert set; false if it was not inserted.
  bool EraseInsert(ObjectId id);
  /// Adds `id` to the sorted tombstone set. Pre: !IsTombstoned(id).
  void AddTombstone(ObjectId id);
  /// Removes `id` from the tombstone set; false if it was not tombstoned.
  bool EraseTombstone(ObjectId id);

  /// Aborts unless both arrays are strictly sorted and parallel-sized.
  void CheckWellFormed() const;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_DELTA_TREE_H_
