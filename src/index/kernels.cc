// SIMD kernel table for the frozen fast paths. See kernels.h for the
// bit-identity contract; the short version is that every variant of an
// operation must be observationally indistinguishable from the scalar
// reference, so the SIMD code below mirrors the scalar arithmetic op for op
// (sub, max, max, mul, mul, add — never an FMA) and only the instruction
// width differs.
//
// Build note: the SIMD variants carry function-level
// `__attribute__((target(...)))` so this translation unit compiles with the
// project's baseline flags (no global -march) and the binary still runs on
// machines without AVX2 — the dispatch below never takes an AVX2 function
// pointer unless CPUID reports the feature.

#include "index/kernels.h"

#include "index/residency.h"

#include <stdlib.h>
#include <string.h>

#include <algorithm>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#define COSKQ_KERNELS_X86 1
#include <immintrin.h>
#else
#define COSKQ_KERNELS_X86 0
#endif

namespace coskq {
namespace internal_index {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference.
//
// GCC's -O3 happily auto-vectorizes these loops, which would make the
// "scalar" table a covert SSE2 table and the benchmark A/B meaningless, so
// the reference implementations explicitly opt out of the vectorizers. The
// generated code is still the exact max/max/mul/add sequence the frozen
// paths always used.

#if defined(__GNUC__) && !defined(__clang__)
#define COSKQ_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define COSKQ_NO_AUTOVEC
#endif

inline double AxisDelta(double lo, double hi, double q) {
  return std::max(std::max(lo - q, 0.0), q - hi);
}

COSKQ_NO_AUTOVEC
void ScalarChildSquaredDistances(const double* min_x, const double* min_y,
                                 const double* max_x, const double* max_y,
                                 uint32_t count, double px, double py,
                                 double* out) {
  for (uint32_t i = 0; i < count; ++i) {
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out[i] = dx * dx + dy * dy;
  }
}

COSKQ_NO_AUTOVEC
uint32_t ScalarChildScanSig(const double* min_x, const double* min_y,
                            const double* max_x, const double* max_y,
                            const FrozenNodeRecord* children, uint32_t count,
                            double px, double py, uint64_t query_sig,
                            uint32_t* out_idx, double* out_dist) {
  uint32_t survivors = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if ((children[i].sig & query_sig) == 0) {
      continue;
    }
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out_idx[survivors] = i;
    out_dist[survivors] = dx * dx + dy * dy;
    ++survivors;
  }
  return survivors;
}

COSKQ_NO_AUTOVEC
uint32_t ScalarSigAnyFilter(const uint64_t* sigs, uint32_t count,
                            uint64_t query_sig, uint32_t* out_idx) {
  uint32_t survivors = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if ((sigs[i] & query_sig) != 0) {
      out_idx[survivors++] = i;
    }
  }
  return survivors;
}

constexpr KernelOps kScalarOps = {
    "scalar",
    &ScalarChildSquaredDistances,
    &ScalarChildScanSig,
    &ScalarSigAnyFilter,
};

#if COSKQ_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 (2 doubles per op; baseline on x86-64, so no target attribute needed,
// but spelled out for symmetry with the AVX2 block).
//
// Why min/max here is safe for bit-identity: `maxpd(a, b)` returns b when
// the operands compare equal, so maxpd(x, +0.0) yields +0.0 where
// std::max(x, 0.0) keeps x's -0.0 — a sign-of-zero difference only, erased
// by the squaring that immediately follows. MBR coordinates are never NaN
// (tree invariant: MBRs come from real object coordinates), so the NaN
// asymmetry of maxpd cannot trigger.

__attribute__((target("sse2"))) inline __m128d Sse2AxisDelta(__m128d lo,
                                                             __m128d hi,
                                                             __m128d q) {
  const __m128d zero = _mm_setzero_pd();
  const __m128d a = _mm_max_pd(_mm_sub_pd(lo, q), zero);
  return _mm_max_pd(a, _mm_sub_pd(q, hi));
}

__attribute__((target("sse2"))) void Sse2ChildSquaredDistances(
    const double* min_x, const double* min_y, const double* max_x,
    const double* max_y, uint32_t count, double px, double py, double* out) {
  const __m128d vpx = _mm_set1_pd(px);
  const __m128d vpy = _mm_set1_pd(py);
  uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128d dx = Sse2AxisDelta(_mm_loadu_pd(min_x + i),
                                     _mm_loadu_pd(max_x + i), vpx);
    const __m128d dy = Sse2AxisDelta(_mm_loadu_pd(min_y + i),
                                     _mm_loadu_pd(max_y + i), vpy);
    _mm_storeu_pd(out + i,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
  for (; i < count; ++i) {
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out[i] = dx * dx + dy * dy;
  }
}

__attribute__((target("sse2"))) uint32_t Sse2ChildScanSig(
    const double* min_x, const double* min_y, const double* max_x,
    const double* max_y, const FrozenNodeRecord* children, uint32_t count,
    double px, double py, uint64_t query_sig, uint32_t* out_idx,
    double* out_dist) {
  const __m128d vpx = _mm_set1_pd(px);
  const __m128d vpy = _mm_set1_pd(py);
  uint32_t survivors = 0;
  uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64_t pass0 = children[i].sig & query_sig;
    const uint64_t pass1 = children[i + 1].sig & query_sig;
    if ((pass0 | pass1) == 0) {
      continue;
    }
    const __m128d dx = Sse2AxisDelta(_mm_loadu_pd(min_x + i),
                                     _mm_loadu_pd(max_x + i), vpx);
    const __m128d dy = Sse2AxisDelta(_mm_loadu_pd(min_y + i),
                                     _mm_loadu_pd(max_y + i), vpy);
    alignas(16) double dist[2];
    _mm_store_pd(dist, _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
    if (pass0 != 0) {
      out_idx[survivors] = i;
      out_dist[survivors] = dist[0];
      ++survivors;
    }
    if (pass1 != 0) {
      out_idx[survivors] = i + 1;
      out_dist[survivors] = dist[1];
      ++survivors;
    }
  }
  for (; i < count; ++i) {
    if ((children[i].sig & query_sig) == 0) {
      continue;
    }
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out_idx[survivors] = i;
    out_dist[survivors] = dx * dx + dy * dy;
    ++survivors;
  }
  return survivors;
}

__attribute__((target("sse2"))) uint32_t Sse2SigAnyFilter(const uint64_t* sigs,
                                                          uint32_t count,
                                                          uint64_t query_sig,
                                                          uint32_t* out_idx) {
  const __m128i vq = _mm_set1_epi64x(static_cast<int64_t>(query_sig));
  uint32_t survivors = 0;
  uint32_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(sigs + i));
    const __m128i hit = _mm_and_si128(v, vq);
    // SSE2 has no 64-bit integer compare (pcmpeqq is SSE4.1), so spill the
    // two AND results and test the lanes directly.
    alignas(16) uint64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), hit);
    if (lanes[0] != 0) {
      out_idx[survivors++] = i;
    }
    if (lanes[1] != 0) {
      out_idx[survivors++] = i + 1;
    }
  }
  for (; i < count; ++i) {
    if ((sigs[i] & query_sig) != 0) {
      out_idx[survivors++] = i;
    }
  }
  return survivors;
}

constexpr KernelOps kSse2Ops = {
    "sse2",
    &Sse2ChildSquaredDistances,
    &Sse2ChildScanSig,
    &Sse2SigAnyFilter,
};

// ---------------------------------------------------------------------------
// AVX2 (4 doubles / 4 signatures per op). target("avx2") deliberately does
// NOT enable FMA: the dx*dx + dy*dy sum must round the two products before
// the add exactly like the scalar code, and without -mfma the compiler
// cannot contract _mm256_add_pd(_mm256_mul_pd, _mm256_mul_pd) into a fused
// op.

__attribute__((target("avx2"))) inline __m256d Avx2AxisDelta(__m256d lo,
                                                             __m256d hi,
                                                             __m256d q) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d a = _mm256_max_pd(_mm256_sub_pd(lo, q), zero);
  return _mm256_max_pd(a, _mm256_sub_pd(q, hi));
}

__attribute__((target("avx2"))) void Avx2ChildSquaredDistances(
    const double* min_x, const double* min_y, const double* max_x,
    const double* max_y, uint32_t count, double px, double py, double* out) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d dx = Avx2AxisDelta(_mm256_loadu_pd(min_x + i),
                                     _mm256_loadu_pd(max_x + i), vpx);
    const __m256d dy = Avx2AxisDelta(_mm256_loadu_pd(min_y + i),
                                     _mm256_loadu_pd(max_y + i), vpy);
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
  }
  for (; i < count; ++i) {
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out[i] = dx * dx + dy * dy;
  }
}

__attribute__((target("avx2"))) uint32_t Avx2ChildScanSig(
    const double* min_x, const double* min_y, const double* max_x,
    const double* max_y, const FrozenNodeRecord* children, uint32_t count,
    double px, double py, uint64_t query_sig, uint32_t* out_idx,
    double* out_dist) {
  const __m256d vpx = _mm256_set1_pd(px);
  const __m256d vpy = _mm256_set1_pd(py);
  uint32_t survivors = 0;
  uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    // The node signatures live at stride sizeof(FrozenNodeRecord) inside
    // the AoS records; gather the four AND results into a lane mask first
    // so fully-pruned groups skip the distance math entirely.
    uint32_t lane_mask = 0;
    for (uint32_t k = 0; k < 4; ++k) {
      lane_mask |= ((children[i + k].sig & query_sig) != 0 ? 1u : 0u) << k;
    }
    if (lane_mask == 0) {
      continue;
    }
    const __m256d dx = Avx2AxisDelta(_mm256_loadu_pd(min_x + i),
                                     _mm256_loadu_pd(max_x + i), vpx);
    const __m256d dy = Avx2AxisDelta(_mm256_loadu_pd(min_y + i),
                                     _mm256_loadu_pd(max_y + i), vpy);
    alignas(32) double dist[4];
    _mm256_store_pd(dist,
                    _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    for (uint32_t k = 0; k < 4; ++k) {
      if ((lane_mask & (1u << k)) != 0) {
        out_idx[survivors] = i + k;
        out_dist[survivors] = dist[k];
        ++survivors;
      }
    }
  }
  for (; i < count; ++i) {
    if ((children[i].sig & query_sig) == 0) {
      continue;
    }
    const double dx = AxisDelta(min_x[i], max_x[i], px);
    const double dy = AxisDelta(min_y[i], max_y[i], py);
    out_idx[survivors] = i;
    out_dist[survivors] = dx * dx + dy * dy;
    ++survivors;
  }
  return survivors;
}

__attribute__((target("avx2"))) uint32_t Avx2SigAnyFilter(
    const uint64_t* sigs, uint32_t count, uint64_t query_sig,
    uint32_t* out_idx) {
  const __m256i vq = _mm256_set1_epi64x(static_cast<int64_t>(query_sig));
  const __m256i zero = _mm256_setzero_si256();
  uint32_t survivors = 0;
  uint32_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sigs + i));
    const __m256i is_zero = _mm256_cmpeq_epi64(_mm256_and_si256(v, vq), zero);
    // One movemask bit per 64-bit lane (via the f64 view); set = pruned.
    const uint32_t pruned =
        static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(is_zero)));
    uint32_t hits = ~pruned & 0xFu;
    while (hits != 0) {
      const uint32_t k = static_cast<uint32_t>(__builtin_ctz(hits));
      out_idx[survivors++] = i + k;
      hits &= hits - 1;
    }
  }
  for (; i < count; ++i) {
    if ((sigs[i] & query_sig) != 0) {
      out_idx[survivors++] = i;
    }
  }
  return survivors;
}

constexpr KernelOps kAvx2Ops = {
    "avx2",
    &Avx2ChildSquaredDistances,
    &Avx2ChildScanSig,
    &Avx2SigAnyFilter,
};

#endif  // COSKQ_KERNELS_X86

// ---------------------------------------------------------------------------
// Dispatch.

const KernelOps* AutoDetect() {
#if COSKQ_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) {
    return &kAvx2Ops;
  }
  return &kSse2Ops;  // SSE2 is the x86-64 baseline.
#else
  return &kScalarOps;
#endif
}

Status Lookup(const std::string& name, const KernelOps** out) {
  if (name == "scalar") {
    *out = &kScalarOps;
    return Status::OK();
  }
#if COSKQ_KERNELS_X86
  if (name == "sse2") {
    *out = &kSse2Ops;
    return Status::OK();
  }
  if (name == "avx2") {
    if (!__builtin_cpu_supports("avx2")) {
      return Status::Unimplemented("kernel 'avx2' not supported by this CPU");
    }
    *out = &kAvx2Ops;
    return Status::OK();
  }
#else
  if (name == "sse2" || name == "avx2") {
    return Status::Unimplemented("kernel '" + name +
                                 "' not built for this architecture");
  }
#endif
  return Status::InvalidArgument(
      "unknown kernel '" + name + "' (expected scalar, sse2, avx2, or auto)");
}

const KernelOps* ResolveDefault() {
  const char* env = getenv("COSKQ_KERNEL");
  if (env != nullptr && env[0] != '\0' && strcmp(env, "auto") != 0) {
    const KernelOps* forced = nullptr;
    const Status status = Lookup(env, &forced);
    if (status.ok()) {
      return forced;
    }
    // A bad environment must degrade, not crash: warn and auto-detect.
    COSKQ_LOG(kWarning) << "ignoring COSKQ_KERNEL=" << env << ": "
                        << status.message();
  }
  return AutoDetect();
}

/// The process-wide selection. Writes happen only through SelectKernels
/// (a test/bench hook documented as not-thread-safe against in-flight
/// queries); reads are a single pointer load.
const KernelOps*& ActiveSlot() {
  static const KernelOps* active = ResolveDefault();
  return active;
}

}  // namespace

const KernelOps& ActiveKernels() { return *ActiveSlot(); }

const char* ActiveKernelName() { return ActiveSlot()->name; }

Status SelectKernels(const std::string& name) {
  const KernelOps* ops = nullptr;
  if (name == "auto") {
    ops = ResolveDefault();
  } else {
    const Status status = Lookup(name, &ops);
    if (!status.ok()) {
      return status;
    }
  }
  ActiveSlot() = ops;
  return Status::OK();
}

Status KernelsForName(const std::string& name, const KernelOps** out) {
  return Lookup(name, out);
}

std::vector<std::string> SupportedKernelNames() {
  std::vector<std::string> names = {"scalar"};
#if COSKQ_KERNELS_X86
  names.push_back("sse2");
  if (__builtin_cpu_supports("avx2")) {
    names.push_back("avx2");
  }
#endif
  return names;
}

void ColdPrefetch(const void* p, size_t len) {
  // Keyed by first page of the range; heap-pop prefetch ranges are at most
  // a group (one page, maybe straddling two), so one key is a good proxy.
  // +1 biases keys away from 0 so the zero-initialised ring is "empty".
  constexpr size_t kRing = 16;
  static thread_local uintptr_t ring[kRing] = {};
  static thread_local uint32_t ring_pos = 0;
  const uintptr_t key = reinterpret_cast<uintptr_t>(p) / 4096 + 1;
  for (uintptr_t r : ring) {
    if (r == key) {
      return;
    }
  }
  ring[ring_pos++ % kRing] = key;
  AdviseWillNeed(p, len);
}

}  // namespace internal_index
}  // namespace coskq
