#ifndef COSKQ_INDEX_INVERTED_INDEX_H_
#define COSKQ_INDEX_INVERTED_INDEX_H_

#include <vector>

#include "data/dataset.h"
#include "data/object.h"
#include "data/term_set.h"

namespace coskq {

/// Classical inverted index: term id → sorted posting list of object ids.
/// The CoSKQ algorithms use it to enumerate objects per keyword when the
/// search space is already narrowed to a region; it is also the baseline
/// substrate for the "IR-tree vs linear scan" ablation.
class InvertedIndex {
 public:
  /// Builds posting lists for every term in `dataset`.
  explicit InvertedIndex(const Dataset& dataset);

  /// Sorted object ids whose keyword set contains `t` (empty if none).
  const std::vector<ObjectId>& Postings(TermId t) const;

  /// Union of postings for all of `terms` (sorted, deduplicated) — the set
  /// of *relevant* objects for a query with that keyword set.
  std::vector<ObjectId> RelevantObjects(const TermSet& terms) const;

  /// Number of terms with at least one posting.
  size_t NumTerms() const;

  /// Total number of postings (Σ document frequency).
  size_t TotalPostings() const { return total_postings_; }

 private:
  std::vector<std::vector<ObjectId>> postings_;
  std::vector<ObjectId> empty_;
  size_t total_postings_ = 0;
};

}  // namespace coskq

#endif  // COSKQ_INDEX_INVERTED_INDEX_H_
