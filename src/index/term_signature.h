#ifndef COSKQ_INDEX_TERM_SIGNATURE_H_
#define COSKQ_INDEX_TERM_SIGNATURE_H_

#include <stdint.h>

#include "data/term_set.h"

namespace coskq {

/// One-bit Bloom signatures over term sets, the O(1) pre-filter in front of
/// the exact masked containment tests.
///
/// Each term hashes to a single bit of a uint64_t; a set's signature is the
/// OR of its members' bits. The filter is one-sided: a clear AND between a
/// query-side signature and a node/object signature proves the exact test
/// would fail, so the masked traversals can skip it — while a set bit says
/// nothing and the exact test still runs. Pruning decisions (and therefore
/// node-visit sequences and results) stay bit-identical to the baseline;
/// only definite-negative tests get cheaper, which is the common case when
/// descending past subtrees that lack the query's keywords.
///
/// Signatures saturate as sets grow — a node summarizing most of the
/// vocabulary has all bits set and the pre-filter passes everything, which
/// costs one AND and falls through to the cached-mask test. The filter pays
/// off at the leaves and lower internal levels, where term sets are small
/// and sparse.
inline uint64_t TermSignature(TermId t) {
  // splitmix64-style finalizer step; only the top 6 bits are used.
  uint64_t h = static_cast<uint64_t>(t) + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  return uint64_t{1} << (h >> 58);
}

/// OR of the member signatures; 0 for the empty set.
inline uint64_t TermSetSignature(const TermSet& terms) {
  uint64_t sig = 0;
  for (TermId t : terms) {
    sig |= TermSignature(t);
  }
  return sig;
}

}  // namespace coskq

#endif  // COSKQ_INDEX_TERM_SIGNATURE_H_
