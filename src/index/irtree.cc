#include "index/irtree.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>

#include "index/frozen_layout.h"
#include "index/irtree_node.h"
#include "index/kernels.h"
#include "index/quadratic_split.h"
#include "index/residency.h"
#include "index/search_scratch.h"
#include "index/term_signature.h"
#include "util/logging.h"

namespace coskq {

using internal_index::ActiveKernels;
using internal_index::FrozenNodeRecord;
using internal_index::FrozenView;
using internal_index::PrefetchHint;
using internal_index::PrefetchNextPop;
using internal_index::QuadraticSplit;
using internal_index::RectEnlargement;
using internal_index::StrTile;

namespace {

/// Per-thread ReadGuard bookkeeping. Guards are re-entrant (a solver guard
/// wraps query-method guards wraps fallback-overload guards), so each
/// (thread, tree) pair keeps a depth counter and the delta pinned when the
/// outermost guard was taken — inner guards reuse it, which is what makes a
/// guarded unit of work observe one consistent frozen+delta view.
struct GuardSlot {
  const void* tree = nullptr;
  int depth = 0;
  std::shared_ptr<const DeltaTree> delta;
};

constexpr int kMaxGuardSlots = 8;
thread_local GuardSlot g_guard_slots[kMaxGuardSlots];

GuardSlot* FindGuardSlot(const void* tree) {
  for (GuardSlot& slot : g_guard_slots) {
    if (slot.tree == tree) {
      return &slot;
    }
  }
  return nullptr;
}

}  // namespace

void IrTree::GuardAcquire() const {
  GuardSlot* slot = FindGuardSlot(this);
  if (slot != nullptr) {
    ++slot->depth;
    return;
  }
  slot = FindGuardSlot(nullptr);
  COSKQ_CHECK(slot != nullptr)
      << "more than " << kMaxGuardSlots
      << " distinct IrTrees guarded on one thread";
  swap_mutex_.lock_shared();
  slot->tree = this;
  slot->depth = 1;
  {
    std::lock_guard<std::mutex> lock(delta_mutex_);
    slot->delta = delta_;
  }
  if (frozen_ != nullptr) {
    // Budget-capped out-of-core trees trim themselves back under budget on
    // a sparse subsample of outermost guard acquires; no-op otherwise.
    frozen_->MaybeEnforceBudget();
  }
}

void IrTree::GuardRelease() const {
  GuardSlot* slot = FindGuardSlot(this);
  COSKQ_CHECK(slot != nullptr);
  if (--slot->depth > 0) {
    return;
  }
  slot->tree = nullptr;
  slot->delta.reset();
  swap_mutex_.unlock_shared();
}

const DeltaTree* IrTree::PinnedDelta() const {
  const GuardSlot* slot = FindGuardSlot(this);
  COSKQ_CHECK(slot != nullptr) << "PinnedDelta outside a ReadGuard";
  return slot->delta.get();
}

std::shared_ptr<DeltaTree> IrTree::CopyDeltaLocked() const {
  std::shared_ptr<const DeltaTree> current;
  {
    std::lock_guard<std::mutex> lock(delta_mutex_);
    current = delta_;
  }
  return current != nullptr ? std::make_shared<DeltaTree>(*current)
                            : std::make_shared<DeltaTree>();
}

void IrTree::PublishDelta(std::shared_ptr<const DeltaTree> delta) const {
  if (delta != nullptr && delta->empty()) {
    // Keep the null ⇔ empty invariant: queries pinning a null delta skip
    // every merge branch, so a drained delta costs pure reads nothing.
    delta.reset();
  }
  std::lock_guard<std::mutex> lock(delta_mutex_);
  delta_ = std::move(delta);
}

size_t IrTree::delta_size() const {
  std::lock_guard<std::mutex> lock(delta_mutex_);
  return delta_ != nullptr ? delta_->size() : 0;
}

IrTree::IrTree(const Dataset* dataset, const Options& options)
    : dataset_(dataset), options_(options) {
  COSKQ_CHECK(dataset != nullptr);
  COSKQ_CHECK_GE(options_.max_entries, 4);
  std::vector<ObjectId> ids(dataset_->NumObjects());
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<ObjectId>(i);
  }
  BulkLoad(std::move(ids));
}

IrTree::IrTree(const Dataset* dataset, const Options& options,
               const std::vector<ObjectId>& object_ids)
    : dataset_(dataset), options_(options) {
  COSKQ_CHECK(dataset != nullptr);
  COSKQ_CHECK_GE(options_.max_entries, 4);
  BulkLoad(object_ids);
}

IrTree::~IrTree() {
  if (refreeze_thread_.joinable()) {
    refreeze_thread_.join();
  }
}

void IrTree::BulkLoad(std::vector<ObjectId> ids) {
  const size_t n = ids.size();
  size_.store(n, std::memory_order_relaxed);
  ObjectId max_id = 0;
  for (ObjectId id : ids) {
    max_id = std::max(max_id, id);
  }
  obj_sigs_.assign(n == 0 ? 0 : static_cast<size_t>(max_id) + 1, 0);
  obj_sig_bits_sum_ = 0;
  for (ObjectId id : ids) {
    obj_sigs_[id] = TermSetSignature(dataset_->object(id).keywords);
    obj_sig_bits_sum_ += static_cast<uint64_t>(std::popcount(obj_sigs_[id]));
  }
  if (n == 0) {
    root_ = std::make_unique<Node>();
    AssignNodeIds();
    return;
  }
  const size_t cap = static_cast<size_t>(options_.max_entries);

  // Leaf level: STR tiling over object locations.
  std::vector<std::unique_ptr<Node>> level;
  StrTile(
      &ids, cap,
      [this](ObjectId id) { return dataset_->object(id).location; },
      [this, &ids, &level](size_t begin, size_t end) {
        auto leaf = std::make_unique<Node>();
        leaf->is_leaf = true;
        leaf->objects.assign(ids.begin() + static_cast<ptrdiff_t>(begin),
                             ids.begin() + static_cast<ptrdiff_t>(end));
        leaf->Recompute(*dataset_);
        level.push_back(std::move(leaf));
      });

  // Upper levels: STR tiling over child MBR centers.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    StrTile(
        &level, cap,
        [](const std::unique_ptr<Node>& n) { return n->mbr.Center(); },
        [this, &level, &next](size_t begin, size_t end) {
          auto parent = std::make_unique<Node>();
          parent->is_leaf = false;
          for (size_t i = begin; i < end; ++i) {
            parent->children.push_back(std::move(level[i]));
          }
          parent->Recompute(*dataset_);
          next.push_back(std::move(parent));
        });
    level = std::move(next);
  }
  root_ = std::move(level.front());
  AssignNodeIds();
}

void IrTree::AssignNodeIds() {
  struct Assigner {
    uint32_t next = 0;
    void Run(Node* node) {
      node->id = next++;
      if (!node->is_leaf) {
        for (const auto& child : node->children) {
          Run(child.get());
        }
      }
    }
  };
  Assigner assigner;
  assigner.Run(root_.get());
  next_node_id_ = assigner.next;
}

Status IrTree::Insert(ObjectId id) {
  std::lock_guard<std::mutex> mutate_lock(mutate_mutex_);
  if (id >= dataset_->NumObjects()) {
    return Status::InvalidArgument("Insert of object id " +
                                   std::to_string(id) +
                                   " beyond the dataset");
  }
  if (frozen_ == nullptr) {
    return InsertPointer(id);
  }
  // Frozen tree (built or snapshot-loaded): the insert lands in the delta
  // overlay; the frozen body and the pointer tree (which only mirrors the
  // frozen base) are untouched, so concurrent queries stay valid.
  std::shared_ptr<DeltaTree> delta = CopyDeltaLocked();
  if (delta->EraseTombstone(id)) {
    // Resurrection: the id is live in the base again.
  } else if (LiveInBase(id) || delta->IsInserted(id)) {
    return Status::InvalidArgument("object " + std::to_string(id) +
                                   " already present");
  } else {
    delta->AddInsert(id, TermSetSignature(dataset_->object(id).keywords));
  }
  PublishDelta(std::move(delta));
  size_.fetch_add(1, std::memory_order_relaxed);
  mutations_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status IrTree::Remove(ObjectId id) {
  std::lock_guard<std::mutex> mutate_lock(mutate_mutex_);
  if (frozen_ == nullptr) {
    return Status::Unimplemented(
        "Remove requires a Freeze()-d IrTree (deletes land in the delta "
        "overlay)");
  }
  std::shared_ptr<DeltaTree> delta = CopyDeltaLocked();
  if (delta->EraseInsert(id)) {
    // A pending delta insert simply disappears.
  } else if (LiveInBase(id) && !delta->IsTombstoned(id)) {
    delta->AddTombstone(id);
  } else {
    return Status::NotFound("object " + std::to_string(id) + " not present");
  }
  PublishDelta(std::move(delta));
  size_.fetch_sub(1, std::memory_order_relaxed);
  mutations_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status IrTree::InsertPointer(ObjectId id) {
  COSKQ_CHECK(root_ != nullptr);
  const SpatialObject& obj = dataset_->object(id);
  if (obj_sigs_.size() <= id) {
    obj_sigs_.resize(static_cast<size_t>(id) + 1, 0);
  }
  obj_sig_bits_sum_ -= static_cast<uint64_t>(std::popcount(obj_sigs_[id]));
  obj_sigs_[id] = TermSetSignature(obj.keywords);
  obj_sig_bits_sum_ += static_cast<uint64_t>(std::popcount(obj_sigs_[id]));
  const int max_entries = options_.max_entries;
  const int min_entries = std::max(2, max_entries * 2 / 5);

  struct Inserter {
    const Dataset& dataset;
    int max_entries;
    int min_entries;
    const SpatialObject& obj;

    // Returns a sibling produced by a split, if any. Maintains the MBR and
    // term summary of every node along the path.
    std::unique_ptr<Node> Run(Node* node) {
      node->mbr.ExpandToInclude(obj.location);
      TermSetMergeInto(&node->terms, obj.keywords);
      // Union signature of a union of term sets is the OR, so the
      // incremental update is exact (splits below Recompute from scratch).
      node->sig |= TermSetSignature(obj.keywords);
      if (node->is_leaf) {
        node->objects.push_back(obj.id);
        if (static_cast<int>(node->objects.size()) <= max_entries) {
          return nullptr;
        }
        std::vector<ObjectId> group_a;
        std::vector<ObjectId> group_b;
        QuadraticSplit(std::move(node->objects), min_entries, &group_a,
                       &group_b, [this](ObjectId o) {
                         return Rect::FromPoint(dataset.object(o).location);
                       });
        node->objects = std::move(group_a);
        node->Recompute(dataset);
        auto sibling = std::make_unique<Node>();
        sibling->is_leaf = true;
        sibling->objects = std::move(group_b);
        sibling->Recompute(dataset);
        return sibling;
      }

      // ChooseSubtree: least enlargement, ties by smallest area.
      Node* best = nullptr;
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      const Rect obj_rect = Rect::FromPoint(obj.location);
      for (const auto& child : node->children) {
        const double e = RectEnlargement(child->mbr, obj_rect);
        const double a = child->mbr.Area();
        if (e < best_enlargement || (e == best_enlargement && a < best_area)) {
          best_enlargement = e;
          best_area = a;
          best = child.get();
        }
      }
      COSKQ_CHECK(best != nullptr);
      std::unique_ptr<Node> sibling = Run(best);
      if (sibling == nullptr) {
        return nullptr;
      }
      node->children.push_back(std::move(sibling));
      if (static_cast<int>(node->children.size()) <= max_entries) {
        return nullptr;
      }
      std::vector<std::unique_ptr<Node>> group_a;
      std::vector<std::unique_ptr<Node>> group_b;
      QuadraticSplit(std::move(node->children), min_entries, &group_a,
                     &group_b, [](const std::unique_ptr<Node>& child) {
                       return child->mbr;
                     });
      node->children = std::move(group_a);
      node->Recompute(dataset);
      auto new_sibling = std::make_unique<Node>();
      new_sibling->is_leaf = false;
      new_sibling->children = std::move(group_b);
      new_sibling->Recompute(dataset);
      return new_sibling;
    }
  };

  Inserter inserter{*dataset_, max_entries, min_entries, obj};
  std::unique_ptr<Node> sibling = inserter.Run(root_.get());
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->Recompute(*dataset_);
    root_ = std::move(new_root);
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  // Keep node ids dense: incremental insertion is a test/maintenance path,
  // so a preorder renumbering per insert is an acceptable price for flat
  // per-node cache arrays on the query path.
  AssignNodeIds();
  return Status::OK();
}

ObjectId IrTree::KeywordNn(const Point& p, TermId t, double* distance) const {
  return KeywordNn(p, t, distance,
                   static_cast<std::vector<uint32_t>*>(nullptr));
}

namespace {

/// Merges the delta's insert candidates into a keyword-NN answer: the
/// nearest delta insert containing `t` replaces the frozen result iff it is
/// strictly closer (ties go to the frozen base; among equal-distance delta
/// candidates the smallest id wins — with continuous coordinates ties have
/// measure zero, so the merged answer matches a from-scratch build).
void MergeDeltaKeywordNn(const Dataset& dataset, const DeltaTree& delta,
                         const Point& p, TermId t, ObjectId* best_id,
                         double* best_distance) {
  const uint64_t kw_sig = TermSignature(t);
  for (size_t i = 0; i < delta.inserts.size(); ++i) {
    if ((delta.insert_sigs[i] & kw_sig) == 0) {
      continue;
    }
    const SpatialObject& obj = dataset.object(delta.inserts[i]);
    if (!obj.ContainsTerm(t)) {
      continue;
    }
    const double d = Distance(p, obj.location);
    if (d < *best_distance) {
      *best_distance = d;
      *best_id = obj.id;
    }
  }
}

}  // namespace

ObjectId IrTree::KeywordNn(const Point& p, TermId t, double* distance,
                           std::vector<uint32_t>* visit_log) const {
  ReadGuard guard(this);
  const DeltaTree* delta = PinnedDelta();
  if (UseFrozen(delta)) {
    double d = std::numeric_limits<double>::infinity();
    ObjectId id = FrozenKeywordNn(p, t, &d, visit_log, delta);
    if (delta != nullptr) {
      MergeDeltaKeywordNn(*dataset_, *delta, p, t, &id, &d);
    }
    if (distance != nullptr) {
      *distance = d;
    }
    return id;
  }
  struct QueueEntry {
    double distance;
    const Node* node;  // nullptr for object entries.
    ObjectId id;
    bool operator>(const QueueEntry& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  if (size_ > 0 && TermSetContains(root_->terms, t)) {
    queue.push(QueueEntry{root_->mbr.MinDistance(p), root_.get(),
                          kInvalidObjectId});
  }
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      if (distance != nullptr) {
        *distance = top.distance;
      }
      return top.id;
    }
    const Node* node = top.node;
    if (visit_log != nullptr) {
      visit_log->push_back(node->id);
    }
    if (node->is_leaf) {
      for (ObjectId id : node->objects) {
        const SpatialObject& obj = dataset_->object(id);
        if (obj.ContainsTerm(t)) {
          queue.push(QueueEntry{Distance(p, obj.location), nullptr, id});
        }
      }
    } else {
      for (const auto& child : node->children) {
        if (TermSetContains(child->terms, t)) {
          queue.push(QueueEntry{child->mbr.MinDistance(p), child.get(),
                                kInvalidObjectId});
        }
      }
    }
  }
  if (distance != nullptr) {
    *distance = std::numeric_limits<double>::infinity();
  }
  return kInvalidObjectId;
}

ObjectId IrTree::KeywordNn(const Point& p, TermId t, double* distance,
                           SearchScratch* scratch) const {
  ReadGuard guard(this);
  if (scratch == nullptr || !scratch->mask_active()) {
    return KeywordNn(p, t, distance,
                     scratch != nullptr ? scratch->visit_log() : nullptr);
  }
  const int slot = scratch->mask().SlotOf(t);
  if (slot < 0) {
    return KeywordNn(p, t, distance, scratch->visit_log());
  }
  const DeltaTree* delta = PinnedDelta();
  if (UseFrozen(delta)) {
    double d = std::numeric_limits<double>::infinity();
    ObjectId id = FrozenKeywordNnMasked(p, t, slot, &d, scratch, delta);
    if (delta != nullptr) {
      MergeDeltaKeywordNn(*dataset_, *delta, p, t, &id, &d);
    }
    if (distance != nullptr) {
      *distance = d;
    }
    return id;
  }
  const uint64_t bit = uint64_t{1} << slot;
  // Bloom pre-filter for `t`: a clear AND proves non-containment, so the
  // exact (cached-mask) test only runs on signature-positives. Pruning
  // decisions are unchanged — the filter has no false negatives.
  const uint64_t kw_sig = TermSignature(t);
  // The pooled vector driven by std::push_heap/pop_heap with the same
  // comparator is the exact algorithm std::priority_queue runs, so entries
  // pop in the baseline order, ties included.
  using internal_index::HeapEntry;
  std::vector<HeapEntry>& heap = scratch->heap();
  heap.clear();
  const auto push = [&heap](HeapEntry entry) {
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end(), std::greater<HeapEntry>());
  };
  std::vector<uint32_t>* visit_log = scratch->visit_log();
  // Traversals anchored at the query origin (the NnSet case) read node
  // MinDistance and object distances through the per-query memos — the k
  // keyword searches of one NnSet share most of their geometry. Anchored
  // elsewhere (e.g. Cao appro2's per-anchor probes) they compute plain
  // distances; the memos are keyed to origin() only.
  const bool from_origin = p == scratch->origin();
  if (size_ > 0 && (root_->sig & kw_sig) != 0 &&
      (scratch->NodeMask(root_->id, root_->terms) & bit) != 0) {
    const double d = from_origin
                         ? scratch->NodeMinDistance(root_->id, root_->mbr)
                         : root_->mbr.MinDistance(p);
    push(HeapEntry{d, root_.get(), kInvalidObjectId});
  }
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), std::greater<HeapEntry>());
    const HeapEntry top = heap.back();
    heap.pop_back();
    if (top.node == nullptr) {
      if (distance != nullptr) {
        *distance = top.distance;
      }
      return top.id;
    }
    const Node* node = static_cast<const Node*>(top.node);
    if (visit_log != nullptr) {
      visit_log->push_back(node->id);
    }
    if (node->is_leaf) {
      for (ObjectId id : node->objects) {
        if ((obj_sigs_[id] & kw_sig) == 0) {
          continue;
        }
        const SpatialObject& obj = dataset_->object(id);
        // Warm cached mask when present, else the baseline's two-probe
        // containment test with no cache fill — most objects a traversal
        // touches are never consulted again, and the ones a solver keeps
        // get their mask computed at the consumption site.
        uint64_t obj_mask = 0;
        const bool contains = scratch->CachedObjectMask(id, &obj_mask)
                                  ? (obj_mask & bit) != 0
                                  : obj.ContainsTerm(t);
        if (contains) {
          const double d = from_origin
                               ? scratch->QueryDistance(id, obj.location)
                               : Distance(p, obj.location);
          push(HeapEntry{d, nullptr, id});
        }
      }
    } else {
      for (const auto& child : node->children) {
        if ((child->sig & kw_sig) != 0 &&
            (scratch->NodeMask(child->id, child->terms) & bit) != 0) {
          const double d =
              from_origin ? scratch->NodeMinDistance(child->id, child->mbr)
                          : child->mbr.MinDistance(p);
          push(HeapEntry{d, child.get(), kInvalidObjectId});
        }
      }
    }
  }
  if (distance != nullptr) {
    *distance = std::numeric_limits<double>::infinity();
  }
  return kInvalidObjectId;
}

std::vector<std::pair<ObjectId, double>> IrTree::BooleanKnn(
    const Point& p, const TermSet& required, size_t k) const {
  ReadGuard guard(this);
  std::vector<std::pair<ObjectId, double>> result;
  if (size_ == 0 || k == 0) {
    return result;
  }
  COSKQ_CHECK(root_ != nullptr)
      << "BooleanKnn requires the pointer tree; not available on a "
         "snapshot-loaded (frozen-only) index";
  result.reserve(std::min(k, size_.load(std::memory_order_relaxed)));
  struct QueueEntry {
    double distance;
    const Node* node;  // nullptr for object entries.
    ObjectId id;
    bool operator>(const QueueEntry& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  if (TermSetIsSubset(required, root_->terms)) {
    queue.push(QueueEntry{root_->mbr.MinDistance(p), root_.get(),
                          kInvalidObjectId});
  }
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      result.emplace_back(top.id, top.distance);
      if (result.size() == k) {
        break;
      }
      continue;
    }
    const Node* node = top.node;
    if (node->is_leaf) {
      for (ObjectId id : node->objects) {
        const SpatialObject& obj = dataset_->object(id);
        if (TermSetIsSubset(required, obj.keywords)) {
          queue.push(QueueEntry{Distance(p, obj.location), nullptr, id});
        }
      }
    } else {
      for (const auto& child : node->children) {
        if (TermSetIsSubset(required, child->terms)) {
          queue.push(QueueEntry{child->mbr.MinDistance(p), child.get(),
                                kInvalidObjectId});
        }
      }
    }
  }
  return result;
}

std::vector<std::pair<ObjectId, double>> IrTree::TopkRanked(
    const Point& p, const TermSet& terms, size_t k, double alpha) const {
  ReadGuard guard(this);
  std::vector<std::pair<ObjectId, double>> result;
  if (size_ == 0 || k == 0 || terms.empty()) {
    return result;
  }
  COSKQ_CHECK(root_ != nullptr)
      << "TopkRanked requires the pointer tree; not available on a "
         "snapshot-loaded (frozen-only) index";
  result.reserve(std::min(k, size_.load(std::memory_order_relaxed)));
  COSKQ_CHECK_GE(alpha, 0.0);
  COSKQ_CHECK_LE(alpha, 1.0);
  const Point lo{root_->mbr.min_x, root_->mbr.min_y};
  const Point hi{root_->mbr.max_x, root_->mbr.max_y};
  const double diag = std::max(Distance(lo, hi),
                               std::numeric_limits<double>::min());
  const double num_terms = static_cast<double>(terms.size());
  const auto object_score = [&](const SpatialObject& obj) {
    const double rel =
        static_cast<double>(TermSetIntersectionSize(obj.keywords, terms)) /
        num_terms;
    return alpha * Distance(p, obj.location) / diag +
           (1.0 - alpha) * (1.0 - rel);
  };
  const auto node_bound = [&](const Node& node) {
    const double rel_ub =
        static_cast<double>(TermSetIntersectionSize(node.terms, terms)) /
        num_terms;
    return alpha * node.mbr.MinDistance(p) / diag +
           (1.0 - alpha) * (1.0 - rel_ub);
  };
  struct QueueEntry {
    double score;
    const Node* node;  // nullptr for object entries.
    ObjectId id;
    bool operator>(const QueueEntry& other) const {
      return score > other.score;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  queue.push(QueueEntry{node_bound(*root_), root_.get(), kInvalidObjectId});
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      result.emplace_back(top.id, top.score);
      if (result.size() == k) {
        break;
      }
      continue;
    }
    const Node* node = top.node;
    if (node->is_leaf) {
      for (ObjectId id : node->objects) {
        queue.push(
            QueueEntry{object_score(dataset_->object(id)), nullptr, id});
      }
    } else {
      for (const auto& child : node->children) {
        queue.push(
            QueueEntry{node_bound(*child), child.get(), kInvalidObjectId});
      }
    }
  }
  return result;
}

std::vector<ObjectId> IrTree::NnSet(const Point& p, const TermSet& terms,
                                    TermSet* missing) const {
  return NnSet(p, terms, missing, nullptr);
}

std::vector<ObjectId> IrTree::NnSet(const Point& p, const TermSet& terms,
                                    TermSet* missing,
                                    SearchScratch* scratch) const {
  // One guard across the per-keyword searches: all of them (and their delta
  // merges) observe the same frozen+delta view.
  ReadGuard guard(this);
  std::vector<ObjectId> result;
  result.reserve(terms.size());
  for (TermId t : terms) {
    double distance = 0.0;
    const ObjectId id = scratch != nullptr
                            ? KeywordNn(p, t, &distance, scratch)
                            : KeywordNn(p, t, &distance);
    if (id == kInvalidObjectId) {
      if (missing != nullptr) {
        missing->push_back(t);
      }
      continue;
    }
    result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  if (missing != nullptr) {
    NormalizeTermSet(missing);
  }
  return result;
}

void IrTree::RangeRelevant(const Circle& circle, const TermSet& query_terms,
                           std::vector<ObjectId>* out) const {
  RangeRelevant(circle, query_terms, out,
                static_cast<std::vector<uint32_t>*>(nullptr));
}

namespace {

/// Appends the delta inserts inside the disk that carry a query term, in
/// ascending id order (DeltaTree::inserts is sorted). Runs after the frozen
/// traversal so base matches keep their traversal order.
void AppendDeltaRangeRelevant(const Dataset& dataset, const DeltaTree& delta,
                              const Circle& circle, const TermSet& query_terms,
                              std::vector<ObjectId>* out) {
  const uint64_t sub_sig = TermSetSignature(query_terms);
  for (size_t i = 0; i < delta.inserts.size(); ++i) {
    if ((delta.insert_sigs[i] & sub_sig) == 0) {
      continue;
    }
    const SpatialObject& obj = dataset.object(delta.inserts[i]);
    if (circle.Contains(obj.location) && obj.ContainsAnyOf(query_terms)) {
      out->push_back(obj.id);
    }
  }
}

}  // namespace

void IrTree::RangeRelevant(const Circle& circle, const TermSet& query_terms,
                           std::vector<ObjectId>* out,
                           std::vector<uint32_t>* visit_log) const {
  ReadGuard guard(this);
  const DeltaTree* delta = PinnedDelta();
  if (UseFrozen(delta)) {
    FrozenRangeRelevant(circle, query_terms, out, visit_log, delta);
    if (delta != nullptr) {
      AppendDeltaRangeRelevant(*dataset_, *delta, circle, query_terms, out);
    }
    return;
  }
  struct Searcher {
    const Dataset& dataset;
    const Circle& circle;
    const TermSet& query_terms;
    std::vector<ObjectId>* out;
    std::vector<uint32_t>* visit_log;

    void Run(const Node* node) {
      if (!circle.Intersects(node->mbr) ||
          !TermSetsIntersect(node->terms, query_terms)) {
        return;
      }
      if (visit_log != nullptr) {
        visit_log->push_back(node->id);
      }
      if (node->is_leaf) {
        for (ObjectId id : node->objects) {
          const SpatialObject& obj = dataset.object(id);
          if (circle.Contains(obj.location) &&
              obj.ContainsAnyOf(query_terms)) {
            out->push_back(id);
          }
        }
        return;
      }
      for (const auto& child : node->children) {
        Run(child.get());
      }
    }
  };
  if (size_ == 0) {
    return;
  }
  Searcher searcher{*dataset_, circle, query_terms, out, visit_log};
  searcher.Run(root_.get());
}

void IrTree::RangeRelevant(const Circle& circle, const TermSet& query_terms,
                           std::vector<ObjectId>* out,
                           SearchScratch* scratch) const {
  ReadGuard guard(this);
  uint64_t submask = 0;
  if (scratch == nullptr || !scratch->mask_active() ||
      !scratch->mask().SubmaskOf(query_terms, &submask)) {
    RangeRelevant(circle, query_terms, out,
                  scratch != nullptr ? scratch->visit_log() : nullptr);
    return;
  }
  // Bloom signature of the tested subset: a clear AND against a node or
  // object signature proves disjointness, skipping the exact mask test
  // without changing its outcome (no false negatives).
  const uint64_t sub_sig = TermSetSignature(query_terms);
  // Cheap cost model for the masked scan. An object with b signature bits
  // survives a q-bit query signature with probability ~(1 - q/64)^b, so the
  // mean density of the corpus signatures predicts the Bloom filter's prune
  // rate for this query. When a keyword-heavy query meets a keyword-heavy
  // corpus (web-like: ~30 bits per object signature) the estimate collapses
  // and the masked scan is the plain scan plus dead signature tests and
  // cold-cache probes — measurably slower. Divert those queries to the
  // plain path; it returns the identical result set. The cutoff sits before
  // the frozen/pointer split so both representations take the same branch.
  //
  // The divert only applies when the scratch caches are cold. The solvers
  // always run NnSet before any range retrieval, which fills the distance
  // memo and mask caches for the epoch; a warm masked scan reuses those
  // entries and beats the plain scan even when the Bloom prune rate is
  // poor, so warm queries keep the masked path unconditionally.
  constexpr double kMaskedRangeMinPruneRate = 0.02;
  const bool caches_warm =
      scratch->dist_cache_hits() + scratch->dist_cache_misses() > 0;
  const double clear_frac =
      1.0 - static_cast<double>(std::popcount(sub_sig)) / 64.0;
  const double mean_sig_bits =
      size_ > 0 ? static_cast<double>(obj_sig_bits_sum_) /
                      static_cast<double>(size_)
                : 0.0;
  if (!caches_warm &&
      std::pow(clear_frac, mean_sig_bits) < kMaskedRangeMinPruneRate) {
    RangeRelevant(circle, query_terms, out, scratch->visit_log());
    return;
  }
  const DeltaTree* delta = PinnedDelta();
  if (UseFrozen(delta)) {
    FrozenRangeRelevantMasked(circle, query_terms, submask, out, scratch,
                              delta);
    if (delta != nullptr) {
      AppendDeltaRangeRelevant(*dataset_, *delta, circle, query_terms, out);
    }
    return;
  }
  struct Searcher {
    const Dataset& dataset;
    const std::vector<uint64_t>& obj_sigs;
    const Circle& circle;
    const TermSet& query_terms;
    uint64_t submask;
    uint64_t sub_sig;
    SearchScratch* scratch;
    std::vector<ObjectId>* out;
    std::vector<uint32_t>* visit_log;

    void Run(const Node* node) {
      // Geometric test first, matching the baseline's short-circuit order;
      // then the signature, then the cached mask when warm (NnSet ran
      // first in the solver flow, so nodes near the query usually are),
      // else the baseline's early-exit merge with no cache fill.
      if (!circle.Intersects(node->mbr) || (node->sig & sub_sig) == 0) {
        return;
      }
      uint64_t node_mask = 0;
      const bool relevant = scratch->CachedNodeMask(node->id, &node_mask)
                                ? (node_mask & submask) != 0
                                : TermSetsIntersect(node->terms, query_terms);
      if (!relevant) {
        return;
      }
      if (visit_log != nullptr) {
        visit_log->push_back(node->id);
      }
      if (node->is_leaf) {
        for (ObjectId id : node->objects) {
          // Signature first: one load from the dense sig array decides a
          // prune without touching the object record at all, and both
          // predicates are pure so the surviving set is unchanged (the
          // frozen path orders its leaf scan the same way).
          if ((obj_sigs[id] & sub_sig) == 0) {
            continue;
          }
          const SpatialObject& obj = dataset.object(id);
          if (!circle.Contains(obj.location)) {
            continue;
          }
          // Warm cached mask if the query already touched this object;
          // otherwise the baseline's early-exit merge, with no cache fill —
          // most disk objects are tested exactly once, and the relevant
          // ones get their mask computed by the solver that consumes them.
          uint64_t obj_mask = 0;
          const bool relevant =
              scratch->CachedObjectMask(id, &obj_mask)
                  ? (obj_mask & submask) != 0
                  : obj.ContainsAnyOf(query_terms);
          if (relevant) {
            out->push_back(id);
          }
        }
        return;
      }
      for (const auto& child : node->children) {
        Run(child.get());
      }
    }
  };
  if (size_ == 0) {
    return;
  }
  Searcher searcher{*dataset_, obj_sigs_, circle,
                    query_terms, submask, sub_sig,
                    scratch,   out,       scratch->visit_log()};
  searcher.Run(root_.get());
}

struct IrTree::RelevantStream::Impl {
  struct QueueEntry {
    double distance;
    /// IrTree::Node* in pointer mode, FrozenNodeRecord* in frozen mode;
    /// nullptr for object entries. The comparator reads only the distance,
    /// so heap behavior is identical across modes.
    const void* node;
    ObjectId id;
    /// Frozen mode only: PrefetchHint(*node) for the heap-pop prefetch.
    /// Ignored by the comparator; zero in pointer mode and for objects.
    uint32_t aux = 0;
    bool operator>(const QueueEntry& other) const {
      return distance > other.distance;
    }
  };

  const IrTree* tree;
  Point origin;
  TermSet query_terms;
  /// Non-null when the stream runs on the frozen flat layout; the traversal
  /// then mirrors the pointer walk slot-for-slot (same visit order, same
  /// predicates, same arithmetic).
  const FrozenView* fv = nullptr;
  /// When masked, prune on scratch-cached bitmasks instead of the sorted
  /// term sets; the queue itself stays stream-private so streams can be
  /// interleaved with other masked traversals on the same scratch.
  SearchScratch* scratch = nullptr;
  uint64_t submask = 0;
  /// Bloom signature of `query_terms` (definite-negative pre-filter).
  uint64_t sub_sig = 0;
  bool masked = false;
  /// True when the stream is anchored at the scratch's query origin, so
  /// node/object distances can be read through the per-query memos.
  bool from_origin = false;
  /// The delta pinned by the stream's guard (null ⇔ empty). The frozen
  /// traversal skips its tombstones; its insert candidates are pre-scored
  /// into delta_cands and min-merged against the tree stream by Next().
  const DeltaTree* delta = nullptr;
  /// (distance, id) of every relevant delta insert, ascending.
  std::vector<std::pair<double, ObjectId>> delta_cands = {};
  size_t delta_pos = 0;
  /// One-element lookahead of the tree stream for the merge (the tree side
  /// has no O(1) peek).
  std::optional<std::pair<ObjectId, double>> lookahead = std::nullopt;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue = {};

  /// Pops the next relevant object from the frozen/pointer traversal alone
  /// (the pre-delta stream); Next() merges it with delta_cands.
  std::optional<std::pair<ObjectId, double>> NextFromTree();
};

IrTree::RelevantStream::RelevantStream(const IrTree* tree, const Point& origin,
                                       const TermSet& query_terms)
    : RelevantStream(tree, origin, query_terms, nullptr) {}

IrTree::RelevantStream::RelevantStream(const IrTree* tree, const Point& origin,
                                       const TermSet& query_terms,
                                       SearchScratch* scratch)
    : guard_(tree), impl_(new Impl{tree, origin, query_terms}) {
  COSKQ_CHECK(tree != nullptr);
  uint64_t submask = 0;
  if (scratch != nullptr && scratch->mask_active() &&
      scratch->mask().SubmaskOf(query_terms, &submask)) {
    impl_->scratch = scratch;
    impl_->submask = submask;
    impl_->sub_sig = TermSetSignature(query_terms);
    impl_->masked = true;
    impl_->from_origin = origin == scratch->origin();
  }
  const DeltaTree* delta = tree->PinnedDelta();
  if (delta != nullptr) {
    impl_->delta = delta;
    const uint64_t query_sig = TermSetSignature(query_terms);
    for (size_t i = 0; i < delta->inserts.size(); ++i) {
      if ((delta->insert_sigs[i] & query_sig) == 0) {
        continue;
      }
      const SpatialObject& obj = tree->dataset_->object(delta->inserts[i]);
      if (obj.ContainsAnyOf(query_terms)) {
        impl_->delta_cands.emplace_back(Distance(origin, obj.location),
                                        obj.id);
      }
    }
    std::sort(impl_->delta_cands.begin(), impl_->delta_cands.end());
  }
  if (tree->size_ == 0) {
    return;
  }
  if (tree->UseFrozen(delta)) {
    const FrozenView& v = tree->frozen_->view;
    impl_->fv = &v;
    const FrozenNodeRecord& root = v.node(0);
    const bool root_relevant =
        impl_->masked
            ? (root.sig & impl_->sub_sig) != 0 &&
                  (scratch->NodeMask(root.id, v.node_terms(root),
                                     root.term_count) &
                   submask) != 0
            : TermSpanIntersects(v.node_terms(root), root.term_count,
                                 impl_->query_terms);
    if (root_relevant) {
      // Same arithmetic as Rect::MinDistance on the (non-empty) root MBR.
      impl_->queue.push(Impl::QueueEntry{
          Rect(v.min_x(0), v.min_y(0), v.max_x(0), v.max_y(0))
              .MinDistance(origin),
          &root, kInvalidObjectId, PrefetchHint(root)});
    }
    return;
  }
  const bool root_relevant =
      impl_->masked
          ? (tree->root_->sig & impl_->sub_sig) != 0 &&
                (scratch->NodeMask(tree->root_->id, tree->root_->terms) &
                 submask) != 0
          : TermSetsIntersect(tree->root_->terms, impl_->query_terms);
  if (root_relevant) {
    impl_->queue.push(Impl::QueueEntry{
        tree->root_->mbr.MinDistance(origin), tree->root_.get(),
        kInvalidObjectId});
  }
}

IrTree::RelevantStream::~RelevantStream() = default;

std::optional<std::pair<ObjectId, double>> IrTree::RelevantStream::Next() {
  Impl& im = *impl_;
  if (im.delta_pos >= im.delta_cands.size() && !im.lookahead.has_value()) {
    // Empty or exhausted delta: the tree stream is the whole stream.
    return im.NextFromTree();
  }
  if (!im.lookahead.has_value()) {
    im.lookahead = im.NextFromTree();
  }
  if (im.delta_pos < im.delta_cands.size()) {
    const std::pair<double, ObjectId>& cand = im.delta_cands[im.delta_pos];
    // Min-merge on distance; the frozen side wins ties (see
    // MergeDeltaKeywordNn — continuous coordinates make ties measure-zero).
    if (!im.lookahead.has_value() || cand.first < im.lookahead->second) {
      ++im.delta_pos;
      return std::make_pair(cand.second, cand.first);
    }
  }
  std::optional<std::pair<ObjectId, double>> result = im.lookahead;
  im.lookahead.reset();
  return result;
}

std::optional<std::pair<ObjectId, double>>
IrTree::RelevantStream::Impl::NextFromTree() {
  if (this->fv != nullptr) {
    // Frozen mode: the pointer loop below, transliterated onto the flat
    // arrays. Predicate order, distances, and scratch interactions are
    // identical, so the emitted stream matches the pointer stream bit for
    // bit.
    auto& queue = this->queue;
    const FrozenView& v = *this->fv;
    const internal_index::KernelOps& kernels = ActiveKernels();
    const bool masked = this->masked;
    SearchScratch* scratch = this->scratch;
    const uint64_t submask = this->submask;
    const uint64_t sub_sig = this->sub_sig;
    const bool from_origin = this->from_origin;
    while (!queue.empty()) {
      const Impl::QueueEntry top = queue.top();
      queue.pop();
      if (top.node == nullptr) {
        return std::make_pair(top.id, top.distance);
      }
      if (!queue.empty()) {
        // Start pulling the likely next pop while this node is processed.
        const Impl::QueueEntry& next = queue.top();
        PrefetchNextPop(v, next.node, next.aux);
      }
      const FrozenNodeRecord& node =
          *static_cast<const FrozenNodeRecord*>(top.node);
      if (node.is_leaf()) {
        const uint32_t begin = node.entry_begin;
        const uint32_t count = node.entry_count;
        if (masked) {
          // Vectorized Bloom pass over the contiguous leaf_sigs stripe; the
          // survivors are exactly the entries whose signature test passed
          // in the scalar loop, in the same order.
          std::vector<uint32_t>& sidx = scratch->survivor_idx();
          if (sidx.size() < count) {
            sidx.resize(count);
          }
          const uint32_t n = kernels.sig_any_filter(v.leaf_sigs + begin,
                                                    count, sub_sig,
                                                    sidx.data());
          for (uint32_t k = 0; k < n; ++k) {
            const uint32_t e = begin + sidx[k];
            const ObjectId id = v.leaf_ids[e];
            if (this->delta != nullptr && this->delta->IsTombstoned(id)) {
              continue;
            }
            uint64_t obj_mask = 0;
            const bool relevant =
                scratch->CachedObjectMask(id, &obj_mask)
                    ? (obj_mask & submask) != 0
                    : TermSpanIntersects(v.terms + v.leaf_term_begin[e],
                                         v.leaf_term_count[e],
                                         this->query_terms);
            if (relevant) {
              const Point location{v.leaf_x[e], v.leaf_y[e]};
              const double d = from_origin
                                   ? scratch->QueryDistance(id, location)
                                   : Distance(this->origin, location);
              queue.push(Impl::QueueEntry{d, nullptr, id});
            }
          }
        } else {
          const uint32_t end = begin + count;
          for (uint32_t e = begin; e < end; ++e) {
            if (TermSpanIntersects(v.terms + v.leaf_term_begin[e],
                                   v.leaf_term_count[e],
                                   this->query_terms)) {
              const ObjectId id = v.leaf_ids[e];
              if (this->delta != nullptr && this->delta->IsTombstoned(id)) {
                continue;
              }
              const Point location{v.leaf_x[e], v.leaf_y[e]};
              queue.push(Impl::QueueEntry{Distance(this->origin, location),
                                          nullptr, id});
            }
          }
        }
      } else {
        const uint32_t first = node.first_child;
        const uint32_t last = first + node.entry_count;
        for (uint32_t c = first; c < last; ++c) {
          const FrozenNodeRecord& child = v.node(c);
          bool relevant;
          if (masked) {
            uint64_t node_mask = 0;
            relevant = (child.sig & sub_sig) != 0 &&
                       (scratch->CachedNodeMask(child.id, &node_mask)
                            ? (node_mask & submask) != 0
                            : TermSpanIntersects(v.node_terms(child),
                                                 child.term_count,
                                                 this->query_terms));
          } else {
            relevant = TermSpanIntersects(v.node_terms(child),
                                          child.term_count,
                                          this->query_terms);
          }
          if (relevant) {
            const Rect mbr(v.min_x(c), v.min_y(c), v.max_x(c), v.max_y(c));
            const double d = masked && from_origin
                                 ? scratch->NodeMinDistance(child.id, mbr)
                                 : mbr.MinDistance(this->origin);
            queue.push(
                Impl::QueueEntry{d, &child, kInvalidObjectId,
                                 PrefetchHint(child)});
          }
        }
      }
    }
    return std::nullopt;
  }
  auto& queue = this->queue;
  const Dataset& dataset = *this->tree->dataset_;
  const bool masked = this->masked;
  SearchScratch* scratch = this->scratch;
  const uint64_t submask = this->submask;
  const uint64_t sub_sig = this->sub_sig;
  const bool from_origin = this->from_origin;
  const std::vector<uint64_t>& obj_sigs = this->tree->obj_sigs_;
  while (!queue.empty()) {
    Impl::QueueEntry top = queue.top();
    queue.pop();
    if (top.node == nullptr) {
      return std::make_pair(top.id, top.distance);
    }
    const Node* node = static_cast<const Node*>(top.node);
    if (node->is_leaf) {
      for (ObjectId id : node->objects) {
        const SpatialObject& obj = dataset.object(id);
        bool relevant;
        if (masked) {
          // Signature pre-filter, then the warm cached mask if present,
          // else the baseline merge with no cache fill (see RangeRelevant).
          uint64_t obj_mask = 0;
          relevant = (obj_sigs[id] & sub_sig) != 0 &&
                     (scratch->CachedObjectMask(id, &obj_mask)
                          ? (obj_mask & submask) != 0
                          : obj.ContainsAnyOf(this->query_terms));
        } else {
          relevant = obj.ContainsAnyOf(this->query_terms);
        }
        if (relevant) {
          const double d = masked && from_origin
                               ? scratch->QueryDistance(id, obj.location)
                               : Distance(this->origin, obj.location);
          queue.push(Impl::QueueEntry{d, nullptr, id});
        }
      }
    } else {
      for (const auto& child : node->children) {
        bool relevant;
        if (masked) {
          uint64_t node_mask = 0;
          relevant =
              (child->sig & sub_sig) != 0 &&
              (scratch->CachedNodeMask(child->id, &node_mask)
                   ? (node_mask & submask) != 0
                   : TermSetsIntersect(child->terms, this->query_terms));
        } else {
          relevant = TermSetsIntersect(child->terms, this->query_terms);
        }
        if (relevant) {
          const double d =
              masked && from_origin
                  ? scratch->NodeMinDistance(child->id, child->mbr)
                  : child->mbr.MinDistance(this->origin);
          queue.push(Impl::QueueEntry{d, child.get(), kInvalidObjectId});
        }
      }
    }
  }
  return std::nullopt;
}

int IrTree::Height() const {
  ReadGuard guard(this);
  if (frozen_ != nullptr) {
    // The frozen view records the height of the frozen base; delta inserts
    // never deepen it (they live outside the tree until the next refreeze).
    return static_cast<int>(frozen_->view.height);
  }
  if (size_.load(std::memory_order_relaxed) == 0) {
    return 0;
  }
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    ++height;
    node = node->children.front().get();
  }
  return height;
}

size_t IrTree::NodeCount() const {
  ReadGuard guard(this);
  if (root_ == nullptr) {
    return frozen_->view.num_nodes;
  }
  struct Counter {
    size_t count = 0;
    void Run(const Node* node) {
      ++count;
      if (!node->is_leaf) {
        for (const auto& child : node->children) {
          Run(child.get());
        }
      }
    }
  };
  Counter counter;
  counter.Run(root_.get());
  return counter.count;
}

IndexMemoryStats IrTree::MemoryStats() const {
  ReadGuard guard(this);
  IndexMemoryStats stats;
  stats.process_resident_bytes = internal_index::ProcessResidentBytes();
  const internal_index::FaultCounters faults =
      internal_index::ProcessFaultCounters();
  stats.major_faults = faults.major;
  stats.minor_faults = faults.minor;
  if (frozen_ == nullptr) {
    return stats;
  }
  stats.layout = frozen_->layout;
  stats.cold = frozen_->view.cold;
  stats.body_bytes = frozen_->body_bytes;
  stats.memory_budget_bytes = frozen_->memory_budget_bytes;
  stats.budget_trims =
      frozen_->budget_trims.load(std::memory_order_relaxed);
  if (frozen_->mapped != nullptr) {
    // Budget-capped trees keep a fresh reading as a side effect of
    // enforcement; re-walking mincore here would duplicate that work.
    stats.body_resident_bytes =
        frozen_->memory_budget_bytes != 0
            ? frozen_->budget_resident_bytes.load(std::memory_order_relaxed)
            : internal_index::MappingResidentBytes(frozen_->body,
                                                  frozen_->body_bytes);
  }
  return stats;
}

void IrTree::CheckInvariants() const {
  ReadGuard guard(this);
  COSKQ_CHECK(root_ != nullptr || frozen_ != nullptr);
  if (frozen_ != nullptr) {
    CheckFrozenInvariants();
  }
  // Delta-overlay invariants (DESIGN.md §13).
  const DeltaTree* delta = PinnedDelta();
  const size_t base_count =
      frozen_ != nullptr ? frozen_->view.num_leaf_entries
                         : size_.load(std::memory_order_relaxed);
  if (delta != nullptr) {
    COSKQ_CHECK(frozen_ != nullptr) << "delta on a never-frozen tree";
    delta->CheckWellFormed();
    for (size_t i = 0; i < delta->inserts.size(); ++i) {
      const ObjectId id = delta->inserts[i];
      COSKQ_CHECK(!LiveInBase(id)) << "delta insert already in frozen base";
      COSKQ_CHECK_LT(id, dataset_->NumObjects());
      COSKQ_CHECK_EQ(delta->insert_sigs[i],
                     TermSetSignature(dataset_->object(id).keywords));
    }
    for (ObjectId id : delta->tombstones) {
      COSKQ_CHECK(LiveInBase(id)) << "tombstone outside the frozen base";
    }
    COSKQ_CHECK_EQ(
        static_cast<int64_t>(size_.load(std::memory_order_relaxed)),
        static_cast<int64_t>(base_count) + delta->LiveDelta());
  } else {
    COSKQ_CHECK_EQ(size_.load(std::memory_order_relaxed), base_count);
  }
  if (frozen_ != nullptr) {
    size_t live_bits = 0;
    for (uint8_t bit : frozen_live_) {
      live_bits += bit;
    }
    COSKQ_CHECK_EQ(live_bits, frozen_->view.num_leaf_entries);
  }
  if (root_ == nullptr) {
    return;
  }
  struct Checker {
    const Dataset& dataset;
    int max_entries;
    size_t object_count = 0;
    int leaf_depth = -1;

    void Run(const Node* node, int depth, bool is_root) {
      COSKQ_CHECK_LE(static_cast<int>(node->EntryCount()), max_entries);
      if (!is_root) {
        COSKQ_CHECK_GE(node->EntryCount(), 1u);
      }
      Rect expected_mbr;
      TermSet expected_terms;
      if (node->is_leaf) {
        if (leaf_depth < 0) {
          leaf_depth = depth;
        }
        COSKQ_CHECK_EQ(leaf_depth, depth) << "leaves at unequal depth";
        for (ObjectId id : node->objects) {
          const SpatialObject& obj = dataset.object(id);
          expected_mbr.ExpandToInclude(obj.location);
          TermSetMergeInto(&expected_terms, obj.keywords);
          ++object_count;
        }
      } else {
        COSKQ_CHECK(node->objects.empty());
        for (const auto& child : node->children) {
          expected_mbr.ExpandToInclude(child->mbr);
          TermSetMergeInto(&expected_terms, child->terms);
          Run(child.get(), depth + 1, /*is_root=*/false);
        }
      }
      COSKQ_CHECK(expected_mbr == node->mbr) << "MBR mismatch";
      COSKQ_CHECK(expected_terms == node->terms) << "term summary mismatch";
    }
  };
  Checker checker{*dataset_, options_.max_entries};
  checker.Run(root_.get(), 0, /*is_root=*/true);
  // The pointer tree mirrors the frozen base (not the delta overlay), so on
  // a frozen tree it counts the base; on a never-frozen tree, everything.
  COSKQ_CHECK_EQ(checker.object_count, base_count);
}

}  // namespace coskq
