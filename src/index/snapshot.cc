#include "index/snapshot.h"

#include <fcntl.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "index/frozen_layout.h"
#include "index/residency.h"
#include "util/logging.h"

namespace coskq {

namespace internal_index {

/// Friend-of-IrTree bridge: reads the frozen store for saving and builds
/// frozen-only trees from a loaded store.
class SnapshotAccess {
 public:
  static const FrozenStore* store(const IrTree& tree) {
    return tree.frozen_.get();
  }
  static const IrTree::Options& options(const IrTree& tree) {
    return tree.options_;
  }
  static std::unique_ptr<IrTree> MakeFrozenOnly(
      const Dataset* dataset, const IrTree::Options& options,
      std::unique_ptr<FrozenStore> store) {
    return std::unique_ptr<IrTree>(
        new IrTree(dataset, options, std::move(store)));
  }
};

}  // namespace internal_index

namespace {

using internal_index::FrozenNodeRecord;
using internal_index::FrozenStore;
using internal_index::FrozenView;
using internal_index::SnapshotAccess;

constexpr uint16_t kEndianMarker = 0x0102;

/// On-disk header; memcpy'd verbatim. The layout has no padding (verified
/// below) and the endian marker lets a reader with the opposite byte order
/// reject the file instead of misparsing it. The first 48 bytes are exactly
/// the v1 header; v2 appended `layout` and `reserved` and pads the header
/// region to 4096 bytes so the body starts page-aligned in the file.
struct SnapshotHeader {
  uint32_t magic;
  uint16_t version;
  uint16_t endian;
  uint64_t dataset_checksum;
  uint32_t num_objects;
  uint32_t max_entries;
  uint32_t num_nodes;
  uint32_t num_leaf_entries;
  uint32_t num_terms;
  uint32_t height;
  uint64_t body_bytes;
  // --- v2 fields (absent in v1 files; defaulted on read). ---
  uint32_t layout;
  uint32_t reserved;
};
static_assert(sizeof(SnapshotHeader) == 56,
              "snapshot header layout is part of the format");
static_assert(std::is_trivially_copyable<SnapshotHeader>::value,
              "snapshot header must be memcpy-safe");

/// Bytes of the common (v1) header prefix, and the header *region* sizes —
/// the file offset where the body starts — per version.
constexpr size_t kV1HeaderBytes = 48;
constexpr size_t kV2HeaderRegionBytes = 4096;
constexpr size_t kTrailerBytes = sizeof(uint64_t);

constexpr uint64_t HeaderRegionBytes(uint16_t version) {
  return version == 1 ? kV1HeaderBytes : kV2HeaderRegionBytes;
}

/// Rejects layout ids this build does not know (forward files, corruption).
Status CheckLayoutId(uint32_t layout, const std::string& path) {
  if (layout != static_cast<uint32_t>(FrozenLayout::kBfs) &&
      layout != static_cast<uint32_t>(FrozenLayout::kLevelGrouped)) {
    return Status::InvalidArgument("unknown frozen layout id " +
                                   std::to_string(layout) + ": " + path);
  }
  return Status::OK();
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Whole-file checksum (part of the snapshot format): FNV-1a folded over
/// 8-byte words — header and every body section are 8-byte multiples —
/// striped across four independent lanes (word j updates lane j mod 4),
/// with the lanes FNV-combined in Finish(). Four independent multiply
/// chains run ~4x faster than one serial chain, which keeps verification
/// off the critical path of a snapshot load; any single-byte corruption
/// still flips its word, its lane, and therefore the final value. The word
/// position is tracked across Update calls, so checksumming header and
/// body in one call or two yields the same value.
class Checksummer {
 public:
  void Update(const uint8_t* data, size_t len) {
    COSKQ_CHECK_EQ(len % 8, 0u);
    for (size_t i = 0; i < len; i += 8) {
      uint64_t word;
      memcpy(&word, data + i, sizeof(word));
      uint64_t& lane = lanes_[pos_++ & 3];
      lane ^= word;
      lane *= kFnvPrime;
    }
  }

  uint64_t Finish() const {
    uint64_t h = kFnvOffset;
    for (uint64_t lane : lanes_) {
      h ^= lane;
      h *= kFnvPrime;
    }
    return h;
  }

 private:
  uint64_t lanes_[4] = {kFnvOffset, kFnvOffset + 1, kFnvOffset + 2,
                        kFnvOffset + 3};
  size_t pos_ = 0;
};

/// Structural bounds check of a loaded body: every index the traversals
/// will follow must be in range, so a snapshot that passes cannot make a
/// query read out of bounds. Mirrors pass 1 of CheckFrozenInvariants but
/// reports a Status instead of aborting.
Status ValidateStructure(const FrozenView& v, uint32_t num_objects,
                         uint32_t max_entries) {
  const Status layout_ok =
      CheckLayoutId(static_cast<uint32_t>(v.layout), "snapshot body");
  if (!layout_ok.ok()) {
    return layout_ok;
  }
  if (v.num_nodes == 0) {
    return Status::Corruption("snapshot has no nodes");
  }
  uint64_t expected_child = 1;
  uint64_t expected_leaf_entry = 0;
  std::vector<bool> id_seen(v.num_nodes, false);
  for (uint32_t slot = 0; slot < v.num_nodes; ++slot) {
    const FrozenNodeRecord& node = v.node(slot);
    if (node.id >= v.num_nodes || id_seen[node.id]) {
      return Status::Corruption("snapshot node ids are not a permutation");
    }
    id_seen[node.id] = true;
    if (node.entry_count > max_entries) {
      return Status::Corruption("snapshot node exceeds max_entries");
    }
    if (slot != 0 && node.entry_count == 0) {
      return Status::Corruption("snapshot has an empty non-root node");
    }
    if (uint64_t{node.term_begin} + node.term_count > v.num_terms) {
      return Status::Corruption("snapshot term span out of range");
    }
    if (node.is_leaf()) {
      if (node.entry_begin != expected_leaf_entry) {
        return Status::Corruption("snapshot leaf entries not contiguous");
      }
      expected_leaf_entry += node.entry_count;
      if (expected_leaf_entry > v.num_leaf_entries) {
        return Status::Corruption("snapshot leaf entries out of range");
      }
    } else {
      if (node.first_child != expected_child) {
        return Status::Corruption("snapshot child blocks not contiguous");
      }
      expected_child += node.entry_count;
      if (expected_child > v.num_nodes) {
        return Status::Corruption("snapshot child slots out of range");
      }
    }
  }
  if (expected_child != v.num_nodes) {
    return Status::Corruption("snapshot child blocks do not cover all nodes");
  }
  if (expected_leaf_entry != v.num_leaf_entries) {
    return Status::Corruption("snapshot leaf count mismatch");
  }
  for (uint32_t e = 0; e < v.num_leaf_entries; ++e) {
    if (v.leaf_ids[e] >= num_objects) {
      return Status::Corruption("snapshot leaf object id out of range");
    }
    if (uint64_t{v.leaf_term_begin[e]} + v.leaf_term_count[e] > v.num_terms) {
      return Status::Corruption("snapshot leaf keyword span out of range");
    }
  }
  return Status::OK();
}

/// RAII file descriptor.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) {
      close(fd);
    }
  }
};

}  // namespace

Status SaveSnapshot(IrTree* tree, const std::string& path) {
  COSKQ_CHECK(tree != nullptr);
  tree->Freeze();
  const FrozenStore* store = SnapshotAccess::store(*tree);
  const FrozenView& v = store->view;
  const uint8_t* body = store->body;
  const uint64_t body_bytes = store->body_bytes;

  SnapshotHeader header{};
  header.magic = kSnapshotMagic;
  header.version = kSnapshotVersion;
  header.endian = kEndianMarker;
  header.dataset_checksum = tree->dataset().ContentChecksum();
  header.num_objects = static_cast<uint32_t>(tree->dataset().NumObjects());
  header.max_entries =
      static_cast<uint32_t>(SnapshotAccess::options(*tree).max_entries);
  header.num_nodes = v.num_nodes;
  header.num_leaf_entries = v.num_leaf_entries;
  header.num_terms = v.num_terms;
  header.height = v.height;
  header.body_bytes = body_bytes;
  header.layout = static_cast<uint32_t>(store->layout);

  // The whole zero-padded header region participates in the checksum, so a
  // flipped padding byte is still caught.
  std::vector<uint8_t> region(kV2HeaderRegionBytes, 0);
  memcpy(region.data(), &header, sizeof(header));

  Checksummer hasher;
  hasher.Update(region.data(), region.size());
  hasher.Update(body, body_bytes);
  const uint64_t checksum = hasher.Finish();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(region.data()),
            static_cast<std::streamsize>(region.size()));
  out.write(reinterpret_cast<const char*>(body),
            static_cast<std::streamsize>(body_bytes));
  out.write(reinterpret_cast<const char*>(&checksum), kTrailerBytes);
  out.flush();
  if (!out) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

namespace {

/// Reads and validates the header and, when `verify_checksum` is set, the
/// whole-file checksum against the trailer (via buffered reads). On success
/// fills `*info` and `*header_out` (either may be null). Does not validate
/// the body structure or any dataset binding. LoadSnapshot passes
/// verify_checksum=false and verifies over the mapped body instead, so the
/// file is read once, not twice.
Status ReadAndCheckFile(const std::string& path, int fd, bool verify_checksum,
                        SnapshotInfo* info, SnapshotHeader* header_out,
                        uint64_t* file_size_out) {
  struct stat st;
  if (fstat(fd, &st) != 0) {
    return Status::IoError("cannot stat: " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size < kV1HeaderBytes) {
    return Status::Corruption("snapshot truncated (no full header): " + path);
  }
  // Read the 48-byte v1 prefix first; it carries everything needed to
  // decide how much more header there is.
  SnapshotHeader header{};
  ssize_t n = pread(fd, &header, kV1HeaderBytes, 0);
  if (n != static_cast<ssize_t>(kV1HeaderBytes)) {
    return Status::IoError("cannot read header: " + path);
  }
  if (header.magic != kSnapshotMagic) {
    return Status::Corruption("not a coskq index snapshot (bad magic): " +
                              path);
  }
  if (header.endian != kEndianMarker) {
    return Status::Corruption(
        "snapshot byte order does not match this host: " + path);
  }
  if (header.version != 1 && header.version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(header.version) +
        " (expected 1.." + std::to_string(kSnapshotVersion) + "): " + path);
  }
  const uint64_t header_region = HeaderRegionBytes(header.version);
  if (header.version >= 2) {
    if (file_size < header_region) {
      return Status::Corruption("snapshot truncated (no full header): " +
                                path);
    }
    n = pread(fd, reinterpret_cast<uint8_t*>(&header) + kV1HeaderBytes,
              sizeof(SnapshotHeader) - kV1HeaderBytes,
              static_cast<off_t>(kV1HeaderBytes));
    if (n != static_cast<ssize_t>(sizeof(SnapshotHeader) - kV1HeaderBytes)) {
      return Status::IoError("cannot read header: " + path);
    }
    const Status layout_ok = CheckLayoutId(header.layout, path);
    if (!layout_ok.ok()) {
      return layout_ok;
    }
  } else {
    header.layout = static_cast<uint32_t>(FrozenLayout::kBfs);
    header.reserved = 0;
  }
  const uint64_t expected_body = FrozenStore::BodyBytes(
      static_cast<FrozenLayout>(header.layout), header.num_nodes,
      header.num_leaf_entries, header.num_terms);
  if (header.body_bytes != expected_body) {
    return Status::Corruption("snapshot body size inconsistent with counts: " +
                              path);
  }
  if (file_size != header_region + header.body_bytes + kTrailerBytes) {
    return Status::Corruption("snapshot truncated or oversized: " + path);
  }
  if (verify_checksum) {
    Checksummer hasher;
    std::vector<uint8_t> buf(1 << 20);
    uint64_t off = 0;
    const uint64_t covered = header_region + header.body_bytes;
    while (off < covered) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(buf.size(), covered - off));
      n = pread(fd, buf.data(), want, static_cast<off_t>(off));
      if (n != static_cast<ssize_t>(want)) {
        return Status::IoError("cannot read body: " + path);
      }
      hasher.Update(buf.data(), want);
      off += want;
    }
    uint64_t trailer = 0;
    n = pread(fd, &trailer, kTrailerBytes, static_cast<off_t>(covered));
    if (n != static_cast<ssize_t>(kTrailerBytes)) {
      return Status::IoError("cannot read trailer: " + path);
    }
    if (trailer != hasher.Finish()) {
      return Status::Corruption("snapshot checksum mismatch: " + path);
    }
  }
  if (info != nullptr) {
    info->version = header.version;
    info->dataset_checksum = header.dataset_checksum;
    info->num_objects = header.num_objects;
    info->max_entries = header.max_entries;
    info->num_nodes = header.num_nodes;
    info->num_leaf_entries = header.num_leaf_entries;
    info->num_terms = header.num_terms;
    info->height = header.height;
    info->body_bytes = header.body_bytes;
    info->file_bytes = file_size;
    info->layout = static_cast<FrozenLayout>(header.layout);
    info->header_bytes = header_region;
  }
  if (header_out != nullptr) {
    *header_out = header;
  }
  if (file_size_out != nullptr) {
    *file_size_out = file_size;
  }
  return Status::OK();
}

}  // namespace

StatusOr<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  Fd fd;
  fd.fd = open(path.c_str(), O_RDONLY);
  if (fd.fd < 0) {
    return Status::IoError("cannot open: " + path);
  }
  SnapshotInfo info;
  Status status = ReadAndCheckFile(path, fd.fd, /*verify_checksum=*/true,
                                   &info, nullptr, nullptr);
  if (!status.ok()) {
    return status;
  }
  return info;
}

StatusOr<std::unique_ptr<IrTree>> LoadSnapshot(const Dataset* dataset,
                                               const std::string& path) {
  return LoadSnapshot(dataset, path, SnapshotLoadOptions());
}

StatusOr<std::unique_ptr<IrTree>> LoadSnapshot(
    const Dataset* dataset, const std::string& path,
    const SnapshotLoadOptions& load_options) {
  COSKQ_CHECK(dataset != nullptr);
  const bool cold =
      load_options.cold || load_options.memory_budget_bytes != 0;
  Fd fd;
  fd.fd = open(path.c_str(), O_RDONLY);
  if (fd.fd < 0) {
    return Status::IoError("cannot open: " + path);
  }
  // Cold mode verifies the checksum with streamed reads here — touching the
  // mapping would prefault exactly the pages cold mode exists to avoid.
  // Warm mode defers verification to the (populated) mapping below, so the
  // file is read once, not twice.
  SnapshotHeader header;
  uint64_t file_size = 0;
  Status status = ReadAndCheckFile(path, fd.fd, /*verify_checksum=*/cold,
                                   nullptr, &header, &file_size);
  if (!status.ok()) {
    return status;
  }
  if (header.num_objects != dataset->NumObjects() ||
      header.dataset_checksum != dataset->ContentChecksum()) {
    return Status::InvalidArgument(
        "snapshot was built from a different dataset (checksum mismatch): " +
        path);
  }
  if (header.max_entries < 4) {
    return Status::Corruption("snapshot max_entries out of range: " + path);
  }
  const FrozenLayout layout = static_cast<FrozenLayout>(header.layout);
  const uint64_t header_region = HeaderRegionBytes(header.version);
  const uint64_t covered = header_region + header.body_bytes;

  auto store = std::make_unique<FrozenStore>();
  const uint8_t* body = nullptr;
  // Prefer a read-only mapping: zero-copy load, pages shared across
  // processes serving the same snapshot. Warm mode prefaults the whole file
  // with MAP_POPULATE (one syscall instead of one fault per page during
  // checksum verification); cold mode maps without it, so pages fault in on
  // demand as traversals touch them.
  int map_flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  if (!cold) {
    map_flags |= MAP_POPULATE;
  }
#endif
  void* mapped = mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                      map_flags, fd.fd, 0);
  if (mapped != MAP_FAILED) {
    store->mapped = mapped;
    store->mapped_size = static_cast<size_t>(file_size);
    const uint8_t* base = static_cast<const uint8_t*>(mapped);
    body = base + header_region;
    if (cold) {
      internal_index::AdviseRandom(body, header.body_bytes);
    } else {
      Checksummer hasher;
      hasher.Update(base, static_cast<size_t>(covered));
      uint64_t trailer = 0;
      memcpy(&trailer, base + covered, kTrailerBytes);
      if (trailer != hasher.Finish()) {
        return Status::Corruption("snapshot checksum mismatch: " + path);
      }
    }
  } else {
    // Fallback for filesystems without mmap: one contiguous read (cold mode
    // degenerates to a fully resident heap body — correct, just not
    // out-of-core).
    store->owned.resize(static_cast<size_t>(header.body_bytes));
    ssize_t n = pread(fd.fd, store->owned.data(), store->owned.size(),
                      static_cast<off_t>(header_region));
    if (n != static_cast<ssize_t>(store->owned.size())) {
      return Status::IoError("cannot read body: " + path);
    }
    if (!cold) {
      // Cold mode already stream-verified above; warm mode verifies here.
      std::vector<uint8_t> region(static_cast<size_t>(header_region));
      n = pread(fd.fd, region.data(), region.size(), 0);
      if (n != static_cast<ssize_t>(region.size())) {
        return Status::IoError("cannot read header: " + path);
      }
      Checksummer hasher;
      hasher.Update(region.data(), region.size());
      hasher.Update(store->owned.data(), store->owned.size());
      uint64_t trailer = 0;
      n = pread(fd.fd, &trailer, kTrailerBytes, static_cast<off_t>(covered));
      if (n != static_cast<ssize_t>(kTrailerBytes)) {
        return Status::IoError("cannot read trailer: " + path);
      }
      if (trailer != hasher.Finish()) {
        return Status::Corruption("snapshot checksum mismatch: " + path);
      }
    }
    body = store->owned.data();
  }
  store->BindView(layout, body, header.num_nodes, header.num_leaf_entries,
                  header.num_terms, header.height);
  const bool cold_mapped = cold && store->mapped != nullptr;
  if (cold_mapped) {
    store->view.cold = true;
    store->memory_budget_bytes = load_options.memory_budget_bytes;
  }

  status = ValidateStructure(store->view, header.num_objects,
                             header.max_entries);
  if (!status.ok()) {
    return status;
  }

  IrTree::Options options;
  options.max_entries = static_cast<int>(header.max_entries);
  // The loaded tree adopts the snapshot's layout so Refreeze() preserves it.
  options.frozen_layout = layout;
  const uint8_t* body_ptr = body;
  const uint64_t body_bytes = header.body_bytes;
  auto tree =
      SnapshotAccess::MakeFrozenOnly(dataset, options, std::move(store));
  if (cold_mapped && load_options.drop_page_cache) {
    // Validation and tree construction touched node records and leaf
    // stripes; undo that warming so the first query batch really starts
    // from disk. madvise drops this process's mapped pages, fadvise asks
    // the kernel to drop the backing page cache. Both best effort.
    internal_index::AdviseDontNeed(body_ptr, static_cast<size_t>(body_bytes));
    (void)internal_index::DropFileCache(path);
  }
  return tree;
}

}  // namespace coskq
