#include "ext/sum_coskq.h"

#include <algorithm>
#include <limits>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

double EvaluateSumCost(const Dataset& dataset, const Point& q,
                       const std::vector<ObjectId>& set) {
  double sum = 0.0;
  for (ObjectId id : set) {
    sum += Distance(q, dataset.object(id).location);
  }
  return sum;
}

namespace {

CoskqResult MakeSumResult(const Dataset& dataset, const CoskqQuery& query,
                          std::vector<ObjectId> set, SolveStats stats) {
  CoskqResult result;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  COSKQ_DCHECK(SetCoversKeywords(dataset, query.keywords, set));
  result.feasible = true;
  result.cost = EvaluateSumCost(dataset, query.location, set);
  result.set = std::move(set);
  result.stats = stats;
  return result;
}

// Greedy weighted set cover over a candidate pool.
bool GreedyCover(const Dataset& dataset, const CoskqQuery& query,
                 const std::vector<Candidate>& cands,
                 std::vector<ObjectId>* out) {
  out->clear();
  TermSet uncovered = query.keywords;
  while (!uncovered.empty()) {
    size_t best = cands.size();
    double best_score = std::numeric_limits<double>::infinity();
    size_t best_gain = 0;
    for (size_t i = 0; i < cands.size(); ++i) {
      const size_t gain = TermSetIntersectionSize(
          dataset.object(cands[i].id).keywords, uncovered);
      if (gain == 0) {
        continue;
      }
      const double score = cands[i].dist_q / static_cast<double>(gain);
      if (score < best_score) {
        best_score = score;
        best = i;
        best_gain = gain;
      }
    }
    if (best == cands.size()) {
      return false;
    }
    (void)best_gain;
    out->push_back(cands[best].id);
    uncovered = TermSetDifference(uncovered,
                                  dataset.object(cands[best].id).keywords);
  }
  return true;
}

}  // namespace

CoskqResult SumGreedy::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeSumResult(dataset(), query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  // Candidate pool: any object of a better-than-N(q) solution has
  // d(o, q) <= cost_Sum(N(q)).
  const double budget = EvaluateSumCost(dataset(), query.location, nn.set);
  const std::vector<Candidate> cands = RelevantCandidatesInDisk(
      context_, query, budget * (1.0 + 1e-12));
  stats.candidates = cands.size();
  std::vector<ObjectId> greedy;
  if (!GreedyCover(dataset(), query, cands, &greedy)) {
    greedy = nn.set;  // Cannot happen (N(q) is in the pool); stay safe.
  }
  ++stats.sets_evaluated;
  // Return the better of the greedy cover and N(q).
  if (EvaluateSumCost(dataset(), query.location, greedy) >
      EvaluateSumCost(dataset(), query.location, nn.set)) {
    greedy = nn.set;
  }
  CoskqResult result =
      MakeSumResult(dataset(), query, std::move(greedy), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

namespace {

// Branch-and-bound for the Sum cost with an additive completion bound.
class SumSearch {
 public:
  SumSearch(const Dataset& dataset, const CoskqQuery& query,
            const std::vector<Candidate>& cands,
            std::vector<ObjectId>* cur_set, double* cur_cost,
            SolveStats* stats)
      : dataset_(dataset),
        query_(query),
        cands_(cands),
        cur_set_(cur_set),
        cur_cost_(cur_cost),
        stats_(stats) {
    lists_.resize(query.keywords.size());
    for (uint32_t i = 0; i < cands.size(); ++i) {
      const TermSet& kw = dataset.object(cands[i].id).keywords;
      for (size_t k = 0; k < query.keywords.size(); ++k) {
        if (TermSetContains(kw, query.keywords[k])) {
          lists_[k].push_back(i);  // Ascending dist_q (cands is sorted).
        }
      }
    }
  }

  void Run() { Dfs(query_.keywords, 0.0); }

 private:
  size_t SlotOf(TermId t) const {
    return static_cast<size_t>(
        std::lower_bound(query_.keywords.begin(), query_.keywords.end(), t) -
        query_.keywords.begin());
  }

  // Admissible completion bound: every uncovered keyword needs some cover,
  // and one object contributes at least the cheapest cover of the most
  // expensive uncovered keyword.
  double CompletionBound(const TermSet& uncovered) const {
    double bound = 0.0;
    for (TermId t : uncovered) {
      const auto& list = lists_[SlotOf(t)];
      if (list.empty()) {
        return std::numeric_limits<double>::infinity();
      }
      bound = std::max(bound, cands_[list.front()].dist_q);
    }
    return bound;
  }

  void Dfs(const TermSet& uncovered, double cost_so_far) {
    if (cost_so_far + CompletionBound(uncovered) >= *cur_cost_) {
      return;
    }
    if (uncovered.empty()) {
      ++stats_->sets_evaluated;
      *cur_cost_ = cost_so_far;
      *cur_set_ = chosen_;
      return;
    }
    // Branch on the uncovered keyword with the fewest candidates.
    size_t best_slot = query_.keywords.size();
    for (TermId t : uncovered) {
      const size_t slot = SlotOf(t);
      if (best_slot == query_.keywords.size() ||
          lists_[slot].size() < lists_[best_slot].size()) {
        best_slot = slot;
      }
    }
    for (uint32_t index : lists_[best_slot]) {
      const Candidate& cand = cands_[index];
      if (cost_so_far + cand.dist_q >= *cur_cost_) {
        break;  // Ascending dist_q.
      }
      if (std::find(chosen_.begin(), chosen_.end(), cand.id) !=
          chosen_.end()) {
        continue;
      }
      chosen_.push_back(cand.id);
      Dfs(TermSetDifference(uncovered, dataset_.object(cand.id).keywords),
          cost_so_far + cand.dist_q);
      chosen_.pop_back();
    }
  }

  const Dataset& dataset_;
  const CoskqQuery& query_;
  const std::vector<Candidate>& cands_;
  std::vector<ObjectId>* cur_set_;
  double* cur_cost_;
  SolveStats* stats_;
  std::vector<ObjectId> chosen_;
  std::vector<std::vector<uint32_t>> lists_;
};

}  // namespace

CoskqResult SumExact::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeSumResult(dataset(), query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  SumGreedy greedy(context_);
  CoskqResult seed = greedy.Solve(query);
  if (!seed.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = seed.set;
  double cur_cost = seed.cost;
  // Any member of a cheaper cover has d(o, q) < cur_cost.
  const std::vector<Candidate> cands = RelevantCandidatesInDisk(
      context_, query, cur_cost * (1.0 + 1e-12));
  stats.candidates = cands.size();
  SumSearch search(dataset(), query, cands, &cur_set, &cur_cost, &stats);
  search.Run();
  CoskqResult result =
      MakeSumResult(dataset(), query, std::move(cur_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
