#include "ext/unified_cost.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace coskq {

std::string UnifiedCostSpec::ToString() const {
  std::ostringstream os;
  os << "unified(alpha=" << alpha << ", phi1=";
  switch (query_aggregate) {
    case QueryAggregate::kSum:
      os << "sum";
      break;
    case QueryAggregate::kMax:
      os << "max";
      break;
    case QueryAggregate::kMin:
      os << "min";
      break;
  }
  os << ", phi2=" << (combine == CombineMode::kSum ? "1" : "inf") << ")";
  return os.str();
}

double QueryObjectComponent(QueryAggregate aggregate, const Dataset& dataset,
                            const Point& q,
                            const std::vector<ObjectId>& set) {
  if (set.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  double max = 0.0;
  double min = std::numeric_limits<double>::infinity();
  for (ObjectId id : set) {
    const double d = Distance(q, dataset.object(id).location);
    sum += d;
    max = std::max(max, d);
    min = std::min(min, d);
  }
  switch (aggregate) {
    case QueryAggregate::kSum:
      return sum;
    case QueryAggregate::kMax:
      return max;
    case QueryAggregate::kMin:
      return min;
  }
  return 0.0;
}

double EvaluateUnifiedCost(const UnifiedCostSpec& spec,
                           const Dataset& dataset, const Point& q,
                           const std::vector<ObjectId>& set) {
  COSKQ_CHECK_GT(spec.alpha, 0.0);
  COSKQ_CHECK_LE(spec.alpha, 1.0);
  if (set.empty()) {
    return 0.0;
  }
  const double query_component =
      spec.alpha *
      QueryObjectComponent(spec.query_aggregate, dataset, q, set);
  const double pairwise_component =
      (1.0 - spec.alpha) *
      ComputeComponents(dataset, q, set).max_pairwise_dist;
  return spec.combine == CombineMode::kSum
             ? query_component + pairwise_component
             : std::max(query_component, pairwise_component);
}

}  // namespace coskq
