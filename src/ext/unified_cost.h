#ifndef COSKQ_EXT_UNIFIED_COST_H_
#define COSKQ_EXT_UNIFIED_COST_H_

#include <string>
#include <vector>

#include "core/cost.h"
#include "data/dataset.h"
#include "data/object.h"
#include "geo/point.h"

namespace coskq {

/// Extension: the *unified* CoSKQ cost function of the follow-up work
/// ("On Generalizing Collective Spatial Keyword Queries", TKDE 2018), which
/// expresses the SIGMOD 2013 cost functions — and the earlier SIGMOD 2011
/// ones — as instantiations of
///
///   cost_unified(S | α, φ1, φ2) =
///     ( [α · D_qo(S|φ1)]^φ2 + [(1-α) · max_{o,o'∈S} d(o,o')]^φ2 )^(1/φ2)
///
/// where the query-object component D_qo aggregates {d(o,q) : o ∈ S} with
/// φ1 ∈ {sum, max, min} and the combination exponent is φ2 ∈ {1, ∞}
/// (∞ meaning "take the max of the two components").
///
/// Notable instantiations (α = 0.5 scales both components equally, so the
/// minimizers coincide with the unweighted forms used by the core library):
///   φ1 = max, φ2 = 1  -> MaxSum    (cost_MaxMax;   2x our CostType::kMaxSum)
///   φ1 = max, φ2 = ∞  -> Dia       (cost_MaxMax2;  our CostType::kDia)
///   φ1 = sum, φ2 = 1, α = 1 -> Sum (cost_Sum)
///   φ1 = sum, φ2 = 1  -> SumMax
///   φ1 = min, φ2 = 1  -> MinMax
///   φ1 = min, φ2 = ∞  -> MinMax2
enum class QueryAggregate {
  kSum,
  kMax,
  kMin,
};

enum class CombineMode {
  kSum,  // φ2 = 1: weighted sum of the two components.
  kMax,  // φ2 = ∞: the larger of the two (weighted) components.
};

/// Parameter triple (α, φ1, φ2) of the unified cost function.
struct UnifiedCostSpec {
  double alpha = 0.5;
  QueryAggregate query_aggregate = QueryAggregate::kMax;
  CombineMode combine = CombineMode::kSum;

  /// Named instantiations.
  static UnifiedCostSpec MaxSum() { return {0.5, QueryAggregate::kMax,
                                            CombineMode::kSum}; }
  static UnifiedCostSpec Dia() { return {0.5, QueryAggregate::kMax,
                                         CombineMode::kMax}; }
  static UnifiedCostSpec Sum() { return {1.0, QueryAggregate::kSum,
                                         CombineMode::kSum}; }
  static UnifiedCostSpec SumMax() { return {0.5, QueryAggregate::kSum,
                                            CombineMode::kSum}; }
  static UnifiedCostSpec MinMax() { return {0.5, QueryAggregate::kMin,
                                            CombineMode::kSum}; }
  static UnifiedCostSpec MinMax2() { return {0.5, QueryAggregate::kMin,
                                             CombineMode::kMax}; }

  /// "unified(α=0.5, φ1=max, φ2=1)"-style rendering.
  std::string ToString() const;
};

/// The query-object distance component D_qo(S | φ1).
double QueryObjectComponent(QueryAggregate aggregate, const Dataset& dataset,
                            const Point& q, const std::vector<ObjectId>& set);

/// Evaluates cost_unified(S | spec). Empty sets cost 0.
double EvaluateUnifiedCost(const UnifiedCostSpec& spec, const Dataset& dataset,
                           const Point& q, const std::vector<ObjectId>& set);

}  // namespace coskq

#endif  // COSKQ_EXT_UNIFIED_COST_H_
