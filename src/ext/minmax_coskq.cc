#include "ext/minmax_coskq.h"

#include <algorithm>
#include <limits>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

std::string_view MinMaxVariantName(MinMaxVariant variant) {
  return variant == MinMaxVariant::kSum ? "MinMax" : "MinMax2";
}

namespace {

double CombineMinMax(MinMaxVariant variant, double min_dist,
                     double max_pair) {
  return variant == MinMaxVariant::kSum ? min_dist + max_pair
                                        : std::max(min_dist, max_pair);
}

// LIFO tracker of (min query distance, max pairwise distance). Neither the
// combined cost nor the min component is monotone under Push; pruning must
// go through LowerBoundWith() below.
class MinMaxTracker {
 public:
  MinMaxTracker(const Dataset* dataset, const Point& q)
      : dataset_(dataset), query_(q) {
    min_stack_.push_back(std::numeric_limits<double>::infinity());
    pair_stack_.push_back(0.0);
  }

  void Push(ObjectId id) {
    const Point& p = dataset_->object(id).location;
    double max_pair = pair_stack_.back();
    for (const Point& existing : points_) {
      max_pair = std::max(max_pair, Distance(existing, p));
    }
    min_stack_.push_back(
        std::min(min_stack_.back(), Distance(query_, p)));
    pair_stack_.push_back(max_pair);
    ids_.push_back(id);
    points_.push_back(p);
  }

  void Pop() {
    COSKQ_CHECK(!ids_.empty());
    ids_.pop_back();
    points_.pop_back();
    min_stack_.pop_back();
    pair_stack_.pop_back();
  }

  double min_dist() const { return min_stack_.back(); }
  double max_pair() const { return pair_stack_.back(); }
  const std::vector<ObjectId>& ids() const { return ids_; }
  bool Contains(ObjectId id) const {
    return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
  }

  /// Exact cost of the current set (infinite for the empty set).
  double Cost(MinMaxVariant variant) const {
    if (ids_.empty()) {
      return std::numeric_limits<double>::infinity();
    }
    return CombineMinMax(variant, min_dist(), max_pair());
  }

  /// Admissible lower bound on the cost of any feasible extension, given
  /// that every object still addable is at distance >= `closest_remaining`
  /// ... more precisely, that the closest addable object is at distance
  /// `closest_remaining` from q: the final min component is at least
  /// min(current min, closest_remaining), and the pairwise component can
  /// only grow.
  double LowerBoundWith(MinMaxVariant variant,
                        double closest_remaining) const {
    const double min_floor = std::min(min_dist(), closest_remaining);
    return CombineMinMax(variant, min_floor, max_pair());
  }

 private:
  const Dataset* dataset_;
  Point query_;
  std::vector<ObjectId> ids_;
  std::vector<Point> points_;
  std::vector<double> min_stack_;
  std::vector<double> pair_stack_;
};

CoskqResult MakeMinMaxResult(MinMaxVariant variant, const Dataset& dataset,
                             const CoskqQuery& query,
                             std::vector<ObjectId> set, SolveStats stats) {
  CoskqResult result;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  COSKQ_DCHECK(SetCoversKeywords(dataset, query.keywords, set));
  result.feasible = true;
  result.cost = EvaluateMinMaxCost(variant, dataset, query.location, set);
  result.set = std::move(set);
  result.stats = stats;
  return result;
}

// Greedy cover construction: starting from `seed` (empty or the anchor),
// repeatedly add the relevant candidate minimizing the exact grown cost.
// Returns false if the pool cannot cover the keywords.
bool GreedyCover(MinMaxVariant variant, const Dataset& dataset,
                 const CoskqQuery& query,
                 const std::vector<Candidate>& pool,
                 std::vector<ObjectId> seed, std::vector<ObjectId>* out) {
  TermSet covered;
  for (ObjectId id : seed) {
    TermSetMergeInto(&covered, dataset.object(id).keywords);
  }
  TermSet uncovered = TermSetDifference(query.keywords, covered);
  std::vector<ObjectId> set = std::move(seed);
  while (!uncovered.empty()) {
    ObjectId best = kInvalidObjectId;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Candidate& cand : pool) {
      if (!TermSetsIntersect(dataset.object(cand.id).keywords, uncovered)) {
        continue;
      }
      set.push_back(cand.id);
      const double cost =
          EvaluateMinMaxCost(variant, dataset, query.location, set);
      set.pop_back();
      if (cost < best_cost) {
        best_cost = cost;
        best = cand.id;
      }
    }
    if (best == kInvalidObjectId) {
      return false;
    }
    set.push_back(best);
    uncovered =
        TermSetDifference(uncovered, dataset.object(best).keywords);
  }
  *out = std::move(set);
  return true;
}

}  // namespace

double EvaluateMinMaxCost(MinMaxVariant variant, const Dataset& dataset,
                          const Point& q,
                          const std::vector<ObjectId>& set) {
  if (set.empty()) {
    return 0.0;
  }
  double min_dist = std::numeric_limits<double>::infinity();
  for (ObjectId id : set) {
    min_dist = std::min(min_dist, Distance(q, dataset.object(id).location));
  }
  const double max_pair =
      ComputeComponents(dataset, q, set).max_pairwise_dist;
  return CombineMinMax(variant, min_dist, max_pair);
}

MinMaxExact::MinMaxExact(const CoskqContext& context, MinMaxVariant variant)
    : CoskqSolver(context), variant_(variant) {}

std::string MinMaxExact::name() const {
  std::string result(MinMaxVariantName(variant_));
  result += "-Exact";
  return result;
}

CoskqResult MinMaxExact::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result =
        MakeMinMaxResult(variant_, dataset(), query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost =
      EvaluateMinMaxCost(variant_, dataset(), query.location, cur_set);
  {
    // Seed with the greedy heuristic (cheap, tightens every bound).
    MinMaxGreedy greedy(context_, variant_);
    CoskqResult seeded = greedy.Solve(query);
    if (seeded.feasible && seeded.cost < cur_cost) {
      cur_cost = seeded.cost;
      cur_set = std::move(seeded.set);
    }
  }

  // Cover candidates: every member o of an optimal set satisfies
  // d(o, q) <= d(o, m) + d(m, q) <= maxpair + min_d, and both cost variants
  // are >= (min_d + maxpair) / 2, so d(o, q) <= 2 * cost < 2 * curCost.
  // (For the kSum variant the tight bound d(o, q) <= cost would do.)
  const double disk = 2.0 * cur_cost * (1.0 + 1e-12);
  const std::vector<Candidate> cands =
      RelevantCandidatesInDisk(context_, query, disk);
  stats.candidates = cands.size();
  std::vector<std::vector<uint32_t>> lists(query.keywords.size());
  for (uint32_t i = 0; i < cands.size(); ++i) {
    const TermSet& kw = dataset().object(cands[i].id).keywords;
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      if (TermSetContains(kw, query.keywords[k])) {
        lists[k].push_back(i);
      }
    }
  }
  double closest_candidate = std::numeric_limits<double>::infinity();
  for (const Candidate& cand : cands) {
    closest_candidate = std::min(closest_candidate, cand.dist_q);
  }

  // Anchor candidates: ANY object (relevant or not) can serve as the
  // closest-to-q member. An anchor only matters when it is the arg-min, in
  // which case cost >= its distance: enumerate ascending, cut at curCost.
  std::vector<Candidate> anchors;
  for (const SpatialObject& obj : dataset().objects()) {
    const double d = Distance(query.location, obj.location);
    if (d < cur_cost) {
      anchors.push_back(Candidate{obj.id, obj.location, d});
    }
  }
  std::sort(anchors.begin(), anchors.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist_q != b.dist_q) {
                return a.dist_q < b.dist_q;
              }
              return a.id < b.id;
            });

  MinMaxTracker tracker(&dataset(), query.location);

  struct Search {
    MinMaxVariant variant;
    const Dataset& dataset;
    const CoskqQuery& query;
    const std::vector<Candidate>& cands;
    const std::vector<std::vector<uint32_t>>& lists;
    double closest_candidate;
    MinMaxTracker& tracker;
    std::vector<ObjectId>& cur_set;
    double& cur_cost;
    SolveStats& stats;

    void Dfs(const TermSet& uncovered) {
      if (tracker.LowerBoundWith(variant, closest_candidate) >= cur_cost) {
        return;
      }
      if (uncovered.empty()) {
        const double cost = tracker.Cost(variant);
        if (cost < cur_cost) {
          ++stats.sets_evaluated;
          cur_cost = cost;
          cur_set = tracker.ids();
        }
        return;
      }
      size_t best_k = query.keywords.size();
      for (size_t k = 0; k < query.keywords.size(); ++k) {
        if (!TermSetContains(uncovered, query.keywords[k])) {
          continue;
        }
        if (best_k == query.keywords.size() ||
            lists[k].size() < lists[best_k].size()) {
          best_k = k;
        }
      }
      for (uint32_t index : lists[best_k]) {
        const ObjectId id = cands[index].id;
        if (tracker.Contains(id)) {
          continue;
        }
        tracker.Push(id);
        Dfs(TermSetDifference(uncovered, dataset.object(id).keywords));
        tracker.Pop();
      }
    }
  };
  Search search{variant_, dataset(),      query,   cands,
                lists,    closest_candidate, tracker, cur_set,
                cur_cost, stats};

  // Anchorless enumeration (optimal sets whose arg-min covers keywords).
  search.Dfs(query.keywords);
  // Anchored enumeration (optimal sets with one redundant arg-min member).
  for (const Candidate& anchor : anchors) {
    if (anchor.dist_q >= cur_cost) {
      break;  // Sorted ascending; anchors can only be the arg-min.
    }
    ++stats.pairs_examined;  // Reused as the anchor counter.
    tracker.Push(anchor.id);
    search.Dfs(TermSetDifference(
        query.keywords, dataset().object(anchor.id).keywords));
    tracker.Pop();
  }

  CoskqResult result = MakeMinMaxResult(variant_, dataset(), query,
                                        std::move(cur_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

MinMaxGreedy::MinMaxGreedy(const CoskqContext& context,
                           MinMaxVariant variant)
    : CoskqSolver(context), variant_(variant) {}

std::string MinMaxGreedy::name() const {
  std::string result(MinMaxVariantName(variant_));
  result += "-Greedy";
  return result;
}

CoskqResult MinMaxGreedy::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result =
        MakeMinMaxResult(variant_, dataset(), query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> best_set = nn.set;
  double best_cost =
      EvaluateMinMaxCost(variant_, dataset(), query.location, best_set);

  const double disk = 2.0 * best_cost * (1.0 + 1e-12);
  const std::vector<Candidate> pool =
      RelevantCandidatesInDisk(context_, query, disk);
  stats.candidates = pool.size();

  const auto consider = [&](const std::vector<ObjectId>& seed) {
    std::vector<ObjectId> grown;
    if (!GreedyCover(variant_, dataset(), query, pool, seed, &grown)) {
      return;
    }
    ++stats.sets_evaluated;
    const double cost =
        EvaluateMinMaxCost(variant_, dataset(), query.location, grown);
    if (cost < best_cost) {
      best_cost = cost;
      best_set = std::move(grown);
    }
  };
  // Anchorless greedy.
  consider({});
  // Greedy around the globally nearest object (the natural anchor).
  ObjectId nearest = kInvalidObjectId;
  double nearest_d = std::numeric_limits<double>::infinity();
  for (const SpatialObject& obj : dataset().objects()) {
    const double d = Distance(query.location, obj.location);
    if (d < nearest_d) {
      nearest_d = d;
      nearest = obj.id;
    }
  }
  if (nearest != kInvalidObjectId) {
    consider({nearest});
  }

  CoskqResult result = MakeMinMaxResult(variant_, dataset(), query,
                                        std::move(best_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
