#ifndef COSKQ_EXT_SUM_COSKQ_H_
#define COSKQ_EXT_SUM_COSKQ_H_

#include <string>

#include "core/solver.h"

namespace coskq {

/// Extension: CoSKQ with the Sum cost of Cao et al. (SIGMOD 2011),
/// cost_Sum(S) = Σ_{o∈S} d(o, q) — the remaining classical cost function
/// the SIGMOD 2013 paper positions itself against. NP-hard (weighted set
/// cover); both classical solutions are provided.

/// Exact branch-and-bound: keyword-driven cover search over the relevant
/// objects in C(q, curCost), pruning with the additive completion bound
/// max_{t uncovered} min_{o ∈ cand_t} d(o, q). Seeded with the greedy
/// solution below. The reported `cost` is the Sum cost, not a CostType —
/// `cost_type()` returns kMaxSum only to satisfy the interface and is not
/// used for pricing.
class SumExact : public CoskqSolver {
 public:
  explicit SumExact(const CoskqContext& context) : CoskqSolver(context) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override { return "Sum-Exact"; }
  CostType cost_type() const override { return CostType::kMaxSum; }
};

/// Greedy weighted-set-cover approximation (ratio H_{|q.ψ|}): repeatedly
/// add the object minimizing d(o, q) / #newly-covered-keywords.
class SumGreedy : public CoskqSolver {
 public:
  explicit SumGreedy(const CoskqContext& context) : CoskqSolver(context) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override { return "Sum-Greedy"; }
  CostType cost_type() const override { return CostType::kMaxSum; }
};

/// Evaluates cost_Sum(S) = Σ_{o∈S} d(o, q).
double EvaluateSumCost(const Dataset& dataset, const Point& q,
                       const std::vector<ObjectId>& set);

}  // namespace coskq

#endif  // COSKQ_EXT_SUM_COSKQ_H_
