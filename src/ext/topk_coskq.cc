#include "ext/topk_coskq.h"

#include <algorithm>
#include <limits>
#include <map>

#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

namespace {

// Collects the k cheapest distinct irredundant covers. Offered sets are
// first *reduced*: members whose keywords are fully covered by the rest are
// dropped (cost never increases under removal), so every collected answer
// is a genuinely irredundant cover.
class TopkCollector {
 public:
  TopkCollector(size_t k, const Dataset* dataset, const CoskqQuery* query,
                CostType type)
      : k_(k), dataset_(dataset), query_(query), type_(type) {}

  /// Cost that a new set must beat to enter the collection.
  double Threshold() const {
    if (sets_.size() < k_) {
      return std::numeric_limits<double>::infinity();
    }
    return std::prev(sets_.end())->first;
  }

  void Offer(double cost, std::vector<ObjectId> set) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    // Reduce to an irredundant cover (drop members the rest already covers).
    bool reduced = false;
    for (size_t i = 0; i < set.size();) {
      std::vector<ObjectId> without = set;
      without.erase(without.begin() + static_cast<ptrdiff_t>(i));
      if (SetCoversKeywords(*dataset_, query_->keywords, without)) {
        set = std::move(without);
        reduced = true;
      } else {
        ++i;
      }
    }
    if (reduced) {
      cost = EvaluateCost(type_, *dataset_, query_->location, set);
    }
    // Reject duplicates (the same cover can be reached along several
    // branch orders).
    for (const auto& [existing_cost, existing] : sets_) {
      if (existing == set) {
        return;
      }
    }
    sets_.emplace(cost, std::move(set));
    if (sets_.size() > k_) {
      sets_.erase(std::prev(sets_.end()));
    }
  }

  const std::multimap<double, std::vector<ObjectId>>& sets() const {
    return sets_;
  }

 private:
  size_t k_;
  const Dataset* dataset_;
  const CoskqQuery* query_;
  CostType type_;
  std::multimap<double, std::vector<ObjectId>> sets_;
};

}  // namespace

TopkCoskqResult SolveTopkCoskq(const CoskqContext& context,
                               const CoskqQuery& query, CostType type,
                               size_t k) {
  COSKQ_CHECK_GT(k, 0u);
  WallTimer timer;
  TopkCoskqResult result;
  const NnSetInfo nn = ComputeNnSet(context, query);
  if (!nn.feasible || query.keywords.empty()) {
    if (query.keywords.empty()) {
      CoskqResult empty;
      empty.feasible = true;
      empty.cost = 0.0;
      result.answers.push_back(std::move(empty));
    }
    return result;
  }

  const Dataset& dataset = *context.dataset;
  // Per-keyword candidate lists over all relevant objects.
  std::vector<std::vector<ObjectId>> lists(query.keywords.size());
  for (const SpatialObject& obj : dataset.objects()) {
    for (size_t kk = 0; kk < query.keywords.size(); ++kk) {
      if (obj.ContainsTerm(query.keywords[kk])) {
        lists[kk].push_back(obj.id);
      }
    }
  }

  TopkCollector collector(k, &dataset, &query, type);
  SetCostTracker tracker(&dataset, query.location, type);

  struct Search {
    const Dataset& dataset;
    const CoskqQuery& query;
    const std::vector<std::vector<ObjectId>>& lists;
    TopkCollector& collector;
    SetCostTracker& tracker;

    void Dfs(const TermSet& uncovered) {
      if (tracker.cost() >= collector.Threshold()) {
        return;  // Even this prefix cannot enter the top-k.
      }
      if (uncovered.empty()) {
        collector.Offer(tracker.cost(), tracker.ids());
        return;
      }
      size_t best_k = query.keywords.size();
      for (size_t kk = 0; kk < query.keywords.size(); ++kk) {
        if (!TermSetContains(uncovered, query.keywords[kk])) {
          continue;
        }
        if (best_k == query.keywords.size() ||
            lists[kk].size() < lists[best_k].size()) {
          best_k = kk;
        }
      }
      for (ObjectId id : lists[best_k]) {
        if (tracker.Contains(id)) {
          continue;
        }
        tracker.Push(id);
        Dfs(TermSetDifference(uncovered, dataset.object(id).keywords));
        tracker.Pop();
      }
    }
  };

  Search search{dataset, query, lists, collector, tracker};
  search.Dfs(query.keywords);

  for (const auto& [cost, set] : collector.sets()) {
    CoskqResult answer;
    answer.feasible = true;
    answer.cost = cost;
    answer.set = set;
    answer.stats.elapsed_ms = timer.ElapsedMillis();
    result.answers.push_back(std::move(answer));
  }
  return result;
}

}  // namespace coskq
