#ifndef COSKQ_EXT_TOPK_COSKQ_H_
#define COSKQ_EXT_TOPK_COSKQ_H_

#include <vector>

#include "core/cost.h"
#include "core/solver.h"

namespace coskq {

/// Extension: top-k CoSKQ (a variation studied by Cao et al., TODS 2015):
/// return the k cheapest *irredundant* feasible sets in ascending cost.
/// (Any feasible set contains an irredundant feasible subset of no greater
/// cost under MaxSum/Dia, so restricting to irredundant covers — sets where
/// every member covers some keyword no other member covers — gives the
/// natural non-degenerate ranking.)
struct TopkCoskqResult {
  /// Up to k answers, ascending cost; fewer if the instance admits fewer
  /// distinct irredundant covers.
  std::vector<CoskqResult> answers;
};

/// Exact top-k search: keyword-driven cover enumeration over all relevant
/// objects, pruned against the current k-th best cost. Exponential in the
/// worst case (as is the k = 1 problem); intended for the same laptop-scale
/// workloads as the exact solvers.
TopkCoskqResult SolveTopkCoskq(const CoskqContext& context,
                               const CoskqQuery& query, CostType type,
                               size_t k);

}  // namespace coskq

#endif  // COSKQ_EXT_TOPK_COSKQ_H_
