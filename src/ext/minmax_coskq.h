#ifndef COSKQ_EXT_MINMAX_COSKQ_H_
#define COSKQ_EXT_MINMAX_COSKQ_H_

#include <string>

#include "core/solver.h"
#include "ext/unified_cost.h"

namespace coskq {

/// Extension: CoSKQ with the MinMax cost family of Cao et al. (TODS 2015),
/// the remaining instantiations of the unified cost function:
///
///   MinMax (φ2 = 1):  cost(S) = min_{o∈S} d(o,q) + max_{o1,o2∈S} d(o1,o2)
///   MinMax2 (φ2 = ∞): cost(S) = max{ min_{o∈S} d(o,q),
///                                    max_{o1,o2∈S} d(o1,o2) }
///
/// (unweighted forms; the α = 0.5 unified costs are exactly half of these,
/// so minimizers coincide). These costs reward having one member very close
/// to the query — the "first stop" semantics.
///
/// Unlike MaxSum/Dia, the MinMax costs are NOT monotone under set growth:
/// adding an object can *reduce* the cost by lowering the min-distance
/// component. The usual irredundant-cover enumeration is therefore
/// incomplete on its own. The solvers below rely on this structure theorem:
///
///   Any optimal set can be reduced — without increasing its cost — to an
///   irredundant keyword cover plus AT MOST ONE extra "anchor" object (the
///   set's closest-to-q member, kept even when it covers nothing fresh).
///
/// Proof sketch: a redundant member that is not the unique arg-min of
/// d(·,q) can be dropped (the pairwise spread shrinks, the min distance is
/// unchanged); repeat until at most the arg-min redundant member remains.
enum class MinMaxVariant {
  kSum,  // MinMax:  min-dist + max pairwise.
  kMax,  // MinMax2: max{min-dist, max pairwise}.
};

/// "MinMax" / "MinMax2".
std::string_view MinMaxVariantName(MinMaxVariant variant);

/// Evaluates the (unweighted) MinMax cost of `set`; 0 for an empty set.
double EvaluateMinMaxCost(MinMaxVariant variant, const Dataset& dataset,
                          const Point& q, const std::vector<ObjectId>& set);

/// Exact MinMax-CoSKQ: enumerates the anchor (none, or any object in
/// ascending d(·,q), cut at the incumbent) and, per anchor, runs a
/// keyword-driven branch-and-bound over relevant objects with an
/// anchor-aware admissible bound (the pairwise component is monotone; the
/// min component is bounded below by the closest candidate still
/// available). Validated against exhaustive subset enumeration in tests.
class MinMaxExact : public CoskqSolver {
 public:
  MinMaxExact(const CoskqContext& context, MinMaxVariant variant);

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  /// Interface requirement only; pricing uses EvaluateMinMaxCost.
  CostType cost_type() const override { return CostType::kMaxSum; }

  MinMaxVariant variant() const { return variant_; }

 private:
  MinMaxVariant variant_;
};

/// Greedy MinMax-CoSKQ heuristic: tries the anchorless greedy cover and the
/// greedy cover around the nearest-to-q anchor, returns the cheaper (always
/// feasible when the query is answerable; no ratio guarantee claimed).
class MinMaxGreedy : public CoskqSolver {
 public:
  MinMaxGreedy(const CoskqContext& context, MinMaxVariant variant);

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return CostType::kMaxSum; }

 private:
  MinMaxVariant variant_;
};

}  // namespace coskq

#endif  // COSKQ_EXT_MINMAX_COSKQ_H_
