#include "cluster/partitioner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "index/irtree.h"
#include "index/snapshot.h"

namespace coskq {

namespace {

/// FNV-1a over a whole file (streamed), for the manifest's snapshot-file
/// binding. Returns false on I/O failure.
bool ChecksumFile(const std::string& path, uint64_t* checksum,
                  uint64_t* size) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint64_t h = 14695981039346656037ull;
  uint64_t total = 0;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const size_t n = static_cast<size_t>(in.gcount());
    h = ClusterFnv1a(buf, n, h);
    total += n;
    if (in.eof()) {
      break;
    }
  }
  *checksum = h;
  *size = total;
  return true;
}

std::string ShardFileName(uint32_t shard_id, const char* suffix) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%04u%s", shard_id, suffix);
  return name;
}

}  // namespace

StatusOr<StrPartition> StrPartitionDataset(const Dataset& dataset,
                                           uint32_t num_shards) {
  const size_t n = dataset.NumObjects();
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (static_cast<size_t>(num_shards) > n) {
    return Status::InvalidArgument(
        "num_shards (" + std::to_string(num_shards) +
        ") exceeds object count (" + std::to_string(n) + ")");
  }

  // STR pass 1: global x-order (ties by y then id, so the cut is a total
  // order and the partition is deterministic).
  std::vector<ObjectId> by_x(n);
  for (size_t i = 0; i < n; ++i) {
    by_x[i] = static_cast<ObjectId>(i);
  }
  std::sort(by_x.begin(), by_x.end(), [&](ObjectId a, ObjectId b) {
    const Point& pa = dataset.object(a).location;
    const Point& pb = dataset.object(b).location;
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });

  const uint32_t k = num_shards;
  const uint32_t num_columns =
      static_cast<uint32_t>(std::ceil(std::sqrt(static_cast<double>(k))));
  // Shards per column: base + 1 for the first `rem` columns.
  const uint32_t base = k / num_columns;
  const uint32_t rem = k % num_columns;

  StrPartition partition;
  partition.shard_objects.resize(k);
  partition.tiles.resize(k);

  const Rect& mbr = dataset.mbr();
  uint32_t shard = 0;
  uint32_t shards_before = 0;  // Shards in columns left of this one.
  size_t column_begin = 0;     // Offset into by_x.
  for (uint32_t c = 0; c < num_columns; ++c) {
    const uint32_t column_shards = base + (c < rem ? 1 : 0);
    // Objects per column proportional to its shard share, via cumulative
    // rounding — guarantees every column gets at least its shard count when
    // n >= k, so no shard ever ends up empty.
    const size_t column_end =
        (static_cast<size_t>(n) * (shards_before + column_shards)) / k;
    const size_t m = column_end - column_begin;

    // Column tile x-range: from the previous boundary to the first x of the
    // next column (or the dataset MBR edges at the extremes). Tiles are
    // closed, so boundary-coincident objects on either side stay inside
    // their own tile.
    const double x_lo = c == 0
                            ? mbr.min_x
                            : dataset.object(by_x[column_begin]).location.x;
    const double x_hi = c + 1 == num_columns
                            ? mbr.max_x
                            : dataset.object(by_x[column_end]).location.x;

    // STR pass 2: the column in y-order (ties by x then id).
    std::vector<ObjectId> column(by_x.begin() + column_begin,
                                 by_x.begin() + column_end);
    std::sort(column.begin(), column.end(), [&](ObjectId a, ObjectId b) {
      const Point& pa = dataset.object(a).location;
      const Point& pb = dataset.object(b).location;
      if (pa.y != pb.y) return pa.y < pb.y;
      if (pa.x != pb.x) return pa.x < pb.x;
      return a < b;
    });

    size_t run_begin = 0;
    for (uint32_t r = 0; r < column_shards; ++r) {
      const size_t run_end = (m * (r + 1)) / column_shards;
      const double y_lo =
          r == 0 ? mbr.min_y : dataset.object(column[run_begin]).location.y;
      const double y_hi = r + 1 == column_shards
                              ? mbr.max_y
                              : dataset.object(column[run_end]).location.y;
      std::vector<ObjectId>& members = partition.shard_objects[shard];
      members.assign(column.begin() + run_begin, column.begin() + run_end);
      std::sort(members.begin(), members.end());
      partition.tiles[shard] = Rect(x_lo, y_lo, x_hi, y_hi);
      ++shard;
      run_begin = run_end;
    }

    shards_before += column_shards;
    column_begin = column_end;
  }
  return partition;
}

StatusOr<ClusterManifest> BuildShardedCluster(
    const Dataset& dataset, const std::string& out_dir,
    const BuildClusterOptions& options) {
  StatusOr<StrPartition> partition =
      StrPartitionDataset(dataset, options.num_shards);
  if (!partition.ok()) {
    return partition.status();
  }

  ClusterManifest manifest;
  manifest.dataset_checksum = dataset.ContentChecksum();
  manifest.total_objects = dataset.NumObjects();
  manifest.dataset_mbr = dataset.mbr();
  manifest.vocabulary.reserve(dataset.vocabulary().size());
  for (size_t t = 0; t < dataset.vocabulary().size(); ++t) {
    manifest.vocabulary.push_back(
        dataset.vocabulary().TermString(static_cast<TermId>(t)));
  }

  for (uint32_t s = 0; s < options.num_shards; ++s) {
    const std::vector<ObjectId>& members = partition->shard_objects[s];

    // The shard dataset: members in ascending global-id order, keywords
    // re-interned as strings. Ascending order makes the shard-local id
    // space order-isomorphic to the global one — the property the router's
    // bit-identity argument leans on.
    Dataset shard_dataset;
    ShardManifestEntry entry;
    entry.shard_id = s;
    entry.num_objects = members.size();
    entry.tile = partition->tiles[s];
    entry.global_ids.reserve(members.size());
    std::vector<std::string> words;
    for (const ObjectId id : members) {
      const SpatialObject& obj = dataset.object(id);
      words.clear();
      words.reserve(obj.keywords.size());
      for (const TermId t : obj.keywords) {
        words.push_back(dataset.vocabulary().TermString(t));
      }
      shard_dataset.AddObject(obj.location, words);
      entry.mbr.ExpandToInclude(obj.location);
      entry.global_ids.push_back(static_cast<uint32_t>(id));
    }
    for (size_t t = 0; t < shard_dataset.vocabulary().size(); ++t) {
      entry.signature.AddWord(
          shard_dataset.vocabulary().TermString(static_cast<TermId>(t)));
    }
    entry.dataset_checksum = shard_dataset.ContentChecksum();

    entry.dataset_file = ShardFileName(s, ".txt");
    entry.snapshot_file = ShardFileName(s, ".cqix");
    const std::string dataset_path = out_dir + "/" + entry.dataset_file;
    const std::string snapshot_path = out_dir + "/" + entry.snapshot_file;
    COSKQ_RETURN_IF_ERROR(shard_dataset.SaveToFile(dataset_path));

    IrTree::Options tree_options;
    tree_options.max_entries = options.max_entries;
    tree_options.frozen_layout = options.layout;
    IrTree tree(&shard_dataset, tree_options);
    COSKQ_RETURN_IF_ERROR(SaveSnapshot(&tree, snapshot_path));
    if (!ChecksumFile(snapshot_path, &entry.snapshot_checksum,
                      &entry.snapshot_bytes)) {
      return Status::IoError("cannot re-read snapshot " + snapshot_path);
    }

    manifest.shards.push_back(std::move(entry));
  }

  COSKQ_RETURN_IF_ERROR(
      manifest.SaveToFile(out_dir + "/" + kManifestFileName));
  return manifest;
}

}  // namespace coskq
