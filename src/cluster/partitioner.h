#ifndef COSKQ_CLUSTER_PARTITIONER_H_
#define COSKQ_CLUSTER_PARTITIONER_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "cluster/manifest.h"
#include "data/dataset.h"
#include "index/frozen_layout.h"
#include "util/status.h"

namespace coskq {

/// The spatial partition an STR pass produces, before any files are written.
struct StrPartition {
  /// Per shard: the member objects' global ids in ascending order.
  std::vector<std::vector<ObjectId>> shard_objects;
  /// Per shard: the closed STR tile. Tiles share edges and together cover
  /// the dataset MBR exactly (zero-area pairwise overlap, areas summing to
  /// the dataset MBR area); every member object lies inside its tile.
  std::vector<Rect> tiles;
};

/// Sort-Tile-Recursive partition of `dataset` into `num_shards` spatial
/// shards — the same tiling discipline the IR-tree's STR bulk load uses,
/// applied once at cluster grain: sort by x into ceil(sqrt(K)) columns, then
/// each column by y into its share of shards. Deterministic (ties broken by
/// object id) and balanced to within one object per cut.
///
/// Requires 1 <= num_shards <= NumObjects(); anything else is an
/// InvalidArgument.
StatusOr<StrPartition> StrPartitionDataset(const Dataset& dataset,
                                           uint32_t num_shards);

/// How BuildShardedCluster freezes the per-shard indexes.
struct BuildClusterOptions {
  uint32_t num_shards = 4;
  /// IR-tree fan-out for the per-shard indexes.
  int max_entries = 32;
  /// Frozen body layout of the per-shard snapshots.
  FrozenLayout layout = FrozenLayout::kBfs;
};

/// Partitions `dataset`, writes one dataset file ("shard_%04u.txt") and one
/// frozen index snapshot ("shard_%04u.cqix") per shard into `out_dir`
/// (which must exist), and writes the versioned manifest
/// ("cluster.cqmf") binding them all together. Returns the manifest.
///
/// Shard dataset files round-trip coordinates bit-exactly (max_digits10),
/// so a shard server that re-loads its file computes the same
/// ContentChecksum the snapshot was frozen against — the snapshot load's
/// dataset binding keeps holding across the file hop.
StatusOr<ClusterManifest> BuildShardedCluster(
    const Dataset& dataset, const std::string& out_dir,
    const BuildClusterOptions& options);

}  // namespace coskq

#endif  // COSKQ_CLUSTER_PARTITIONER_H_
