#include "cluster/manifest.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace coskq {

namespace {

constexpr uint16_t kEndianMarker = 0x0102;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Little-endian appenders. The manifest defines its own codec rather than
/// reusing the wire codec: file format and wire format version
/// independently.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  PutU8(out, static_cast<uint8_t>(v));
  PutU8(out, static_cast<uint8_t>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutRect(std::string* out, const Rect& r) {
  PutDouble(out, r.min_x);
  PutDouble(out, r.min_y);
  PutDouble(out, r.max_x);
  PutDouble(out, r.max_y);
}

/// Bounds-checked little-endian reader over the file image. Every Get
/// returns false on truncation; callers bail with a Corruption status.
class ManifestReader {
 public:
  explicit ManifestReader(const std::string& bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!GetU8(&lo) || !GetU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (static_cast<uint16_t>(hi) << 8));
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint16_t lo, hi;
    if (!GetU16(&lo) || !GetU16(&hi)) return false;
    *v = static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (pos_ + len > bytes_.size()) return false;
    s->assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }
  bool GetRect(Rect* r) {
    return GetDouble(&r->min_x) && GetDouble(&r->min_y) &&
           GetDouble(&r->max_x) && GetDouble(&r->max_y);
  }

  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t ClusterFnv1a(const void* data, size_t n, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void ShardSignature::AddWord(const std::string& word) {
  const uint64_t h = ClusterFnv1a(word.data(), word.size());
  // Two probe bits from independent halves of the 64-bit digest.
  const uint32_t b1 = static_cast<uint32_t>(h) & 255u;
  const uint32_t b2 = static_cast<uint32_t>(h >> 32) & 255u;
  bits[b1 >> 6] |= uint64_t{1} << (b1 & 63u);
  bits[b2 >> 6] |= uint64_t{1} << (b2 & 63u);
}

bool ShardSignature::MightContain(const std::string& word) const {
  const uint64_t h = ClusterFnv1a(word.data(), word.size());
  const uint32_t b1 = static_cast<uint32_t>(h) & 255u;
  const uint32_t b2 = static_cast<uint32_t>(h >> 32) & 255u;
  return (bits[b1 >> 6] & (uint64_t{1} << (b1 & 63u))) != 0 &&
         (bits[b2 >> 6] & (uint64_t{1} << (b2 & 63u))) != 0;
}

std::string ClusterManifest::Encode() {
  std::string out;
  PutU32(&out, kManifestMagic);
  PutU16(&out, kManifestVersion);
  PutU16(&out, kEndianMarker);
  PutU64(&out, dataset_checksum);
  PutU64(&out, total_objects);
  PutRect(&out, dataset_mbr);
  PutU32(&out, static_cast<uint32_t>(vocabulary.size()));
  for (const std::string& word : vocabulary) {
    PutString(&out, word);
  }
  PutU32(&out, static_cast<uint32_t>(shards.size()));
  for (const ShardManifestEntry& shard : shards) {
    PutU32(&out, shard.shard_id);
    PutU64(&out, shard.num_objects);
    PutRect(&out, shard.tile);
    PutRect(&out, shard.mbr);
    for (const uint64_t w : shard.signature.bits) {
      PutU64(&out, w);
    }
    PutU64(&out, shard.dataset_checksum);
    PutU64(&out, shard.snapshot_checksum);
    PutU64(&out, shard.snapshot_bytes);
    PutString(&out, shard.dataset_file);
    PutString(&out, shard.snapshot_file);
    PutU64(&out, shard.global_ids.size());
    for (const uint32_t id : shard.global_ids) {
      PutU32(&out, id);
    }
  }
  file_checksum = ClusterFnv1a(out.data(), out.size());
  PutU64(&out, file_checksum);
  return out;
}

StatusOr<ClusterManifest> ClusterManifest::Decode(const std::string& bytes) {
  if (bytes.size() < 8 + sizeof(uint64_t)) {
    return Status::Corruption("manifest truncated: " +
                              std::to_string(bytes.size()) + " bytes");
  }
  // Trailer first: a flipped bit anywhere fails here, before any parsing.
  const size_t body_len = bytes.size() - sizeof(uint64_t);
  const uint64_t expect = ClusterFnv1a(bytes.data(), body_len);
  uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<uint8_t>(bytes[body_len + static_cast<size_t>(i)]);
  }
  if (stored != expect) {
    return Status::Corruption("manifest checksum mismatch");
  }

  const std::string body = bytes.substr(0, body_len);
  ManifestReader r(body);
  ClusterManifest m;
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t endian = 0;
  if (!r.GetU32(&magic) || magic != kManifestMagic) {
    return Status::Corruption("not a cluster manifest (bad magic)");
  }
  if (!r.GetU16(&version)) {
    return Status::Corruption("manifest truncated in header");
  }
  if (version != kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version " +
                                   std::to_string(version));
  }
  if (!r.GetU16(&endian) || endian != kEndianMarker) {
    return Status::Corruption("manifest endian marker mismatch");
  }
  uint32_t vocab_count = 0;
  if (!r.GetU64(&m.dataset_checksum) || !r.GetU64(&m.total_objects) ||
      !r.GetRect(&m.dataset_mbr) || !r.GetU32(&vocab_count)) {
    return Status::Corruption("manifest truncated in header");
  }
  if (vocab_count > kManifestMaxArray) {
    return Status::Corruption("manifest vocabulary count implausible");
  }
  m.vocabulary.reserve(vocab_count);
  for (uint32_t i = 0; i < vocab_count; ++i) {
    std::string word;
    if (!r.GetString(&word)) {
      return Status::Corruption("manifest truncated in vocabulary");
    }
    m.vocabulary.push_back(std::move(word));
  }
  uint32_t num_shards = 0;
  if (!r.GetU32(&num_shards) || num_shards > kManifestMaxArray) {
    return Status::Corruption("manifest shard count implausible");
  }
  m.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardManifestEntry shard;
    bool ok = r.GetU32(&shard.shard_id) && r.GetU64(&shard.num_objects) &&
              r.GetRect(&shard.tile) && r.GetRect(&shard.mbr);
    for (uint64_t& w : shard.signature.bits) {
      ok = ok && r.GetU64(&w);
    }
    uint64_t id_count = 0;
    ok = ok && r.GetU64(&shard.dataset_checksum) &&
         r.GetU64(&shard.snapshot_checksum) &&
         r.GetU64(&shard.snapshot_bytes) &&
         r.GetString(&shard.dataset_file) &&
         r.GetString(&shard.snapshot_file) && r.GetU64(&id_count);
    if (!ok || id_count > kManifestMaxArray) {
      return Status::Corruption("manifest truncated in shard " +
                                std::to_string(s));
    }
    if (id_count != shard.num_objects) {
      return Status::Corruption("manifest shard " + std::to_string(s) +
                                ": id-map size disagrees with object count");
    }
    shard.global_ids.reserve(id_count);
    for (uint64_t i = 0; i < id_count; ++i) {
      uint32_t id = 0;
      if (!r.GetU32(&id)) {
        return Status::Corruption("manifest truncated in shard id map");
      }
      shard.global_ids.push_back(id);
    }
    m.shards.push_back(std::move(shard));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("manifest carries trailing bytes");
  }
  m.file_checksum = expect;
  return m;
}

Status ClusterManifest::SaveToFile(const std::string& path) {
  const std::string bytes = Encode();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

StatusOr<ClusterManifest> ClusterManifest::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("read failed: " + path);
  }
  return Decode(buffer.str());
}

}  // namespace coskq
