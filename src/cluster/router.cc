#include "cluster/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "core/solver.h"
#include "data/dataset.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "util/logging.h"

namespace coskq {

namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kRouterLatencyWindow = 4096;
constexpr size_t kShardLatencyWindow = 512;

double MillisBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Full blocking write; MSG_NOSIGNAL so a peer that vanished mid-response
/// surfaces as EPIPE instead of killing the process.
bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string ErrorFrame(uint32_t request_id, StatusCode code,
                       const std::string& message) {
  ErrorReply err{code, message};
  return EncodeFrame(Verb::kError, request_id, EncodeErrorReply(err));
}

/// Solver families eligible for the MINDIST shard prune. Cost-admissibility
/// needs an exact family (a feasible probe cost upper-bounds the optimal
/// cost, and every member of an optimal set lies within that cost of the
/// query for both cost functions), but cost-admissibility alone is not
/// enough for the bit-identity contract: the Cao exact solver and the
/// brute-force oracle break equal-cost ties by enumeration order, and
/// dropping candidates that cannot join any optimal set still reshapes
/// their search order (e.g. brute force branches on the keyword with the
/// fewest candidates). Only the owner-driven exact solver's answer is
/// stable under removal of objects beyond the optimal cost radius, so it
/// is the only family the router distance-prunes; the others harvest the
/// full keyword-relevant universe.
bool IsDistancePrunableSolverKind(SolverKind kind) {
  return kind == SolverKind::kExact;
}

std::atomic<ClusterRouter*> g_signal_router{nullptr};

void HandleRouterSignal(int /*signo*/) {
  ClusterRouter* router = g_signal_router.load(std::memory_order_acquire);
  if (router != nullptr) {
    router->RequestShutdownFromSignal();
  }
}

}  // namespace

ClusterRouter::ClusterRouter(const ClusterManifest& manifest,
                             const RouterOptions& options)
    : manifest_(manifest), options_(options) {
  if (options_.result_cache_mb > 0 && !ResultCache::ForceDisabledByEnv()) {
    ResultCache::Options cache_options;
    cache_options.budget_bytes = options_.result_cache_mb << 20;
    cache_options.cell_bits = options_.cache_cell_bits;
    result_cache_ = std::make_unique<ResultCache>(cache_options);
  }
}

ClusterRouter::~ClusterRouter() {
  Shutdown();
  Wait();
  if (g_signal_router.load(std::memory_order_acquire) == this) {
    InstallSignalHandlers(nullptr);
  }
}

Status ClusterRouter::Start() {
  COSKQ_CHECK(!running_.load()) << "Start() on a running router";
  if (manifest_.shards.empty()) {
    return Status::InvalidArgument("manifest has no shards");
  }
  if (options_.shards.size() != manifest_.shards.size()) {
    return Status::InvalidArgument(
        "shard address count (" + std::to_string(options_.shards.size()) +
        ") does not match manifest shard count (" +
        std::to_string(manifest_.shards.size()) + ")");
  }
  vocab_.clear();
  vocab_.reserve(manifest_.vocabulary.size());
  for (size_t i = 0; i < manifest_.vocabulary.size(); ++i) {
    vocab_.emplace(manifest_.vocabulary[i], static_cast<uint32_t>(i));
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return ErrnoStatus("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoStatus("bind " + options_.host + ":" +
                                      std::to_string(options_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  shard_windows_.assign(manifest_.shards.size(), ShardWindow());
  latency_window_.clear();
  latency_window_.reserve(kRouterLatencyWindow);
  start_time_ = Clock::now();
  shutdown_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptMain(); });
  return Status::OK();
}

void ClusterRouter::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
  }
}

void ClusterRouter::RequestShutdownFromSignal() {
  // Async-signal-safe: an atomic store plus shutdown(2). The accept thread
  // wakes from accept(2), sees the flag, and drains the connections in
  // ordinary thread context.
  shutdown_requested_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    shutdown(listen_fd_, SHUT_RDWR);
  }
}

void ClusterRouter::Wait() {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // The accept thread has exited, so conns_ gains no new entries; joining
  // without the list mutex is safe.
  for (auto& conn : conns_) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ClusterRouter::InstallSignalHandlers(ClusterRouter* router) {
  g_signal_router.store(router, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  if (router != nullptr) {
    action.sa_handler = HandleRouterSignal;
    action.sa_flags = SA_RESTART;
  } else {
    action.sa_handler = SIG_DFL;
  }
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

void ClusterRouter::AcceptMain() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    const int fd = accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // shutdown(2) on the listen socket, or a fatal accept error.
    }
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      close(fd);
      break;
    }
    // Reap before the capacity check so conns_ counts live connections, not
    // every connection ever accepted — otherwise client churn would wedge
    // the router once cumulative accepts reach max_connections, with every
    // dead entry leaking its thread and its per-connection shard sockets.
    ReapFinishedConns();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (conns_.size() >= options_.max_connections) {
        close(fd);
        continue;
      }
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<ConnState>();
    conn->fd = fd;
    conn->clients.resize(manifest_.shards.size());
    ConnState* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++connections_accepted_;
      ++connections_active_;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnMain(raw); });
  }

  // Drain: unblock every connection thread's read so they exit promptly.
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& conn : conns_) {
    if (conn->fd >= 0) {
      shutdown(conn->fd, SHUT_RDWR);
    }
  }
}

void ClusterRouter::ConnMain(ConnState* conn) {
  FrameReader reader;
  char buf[16 * 1024];
  bool open = true;
  while (open) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n == 0) {
      break;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    reader.Append(buf, static_cast<size_t>(n));

    Frame frame;
    while (open) {
      const FrameReader::Next next = reader.Pop(&frame);
      if (next == FrameReader::Next::kNeedMore) {
        break;
      }
      if (next == FrameReader::Next::kCorrupt) {
        // Mirror the single server: a version-mismatched peer gets a
        // one-shot explanation stamped with its own version byte; any other
        // corruption gets an ERROR. Either way framing is lost, so close.
        if (reader.version_mismatch()) {
          ErrorReply err{
              StatusCode::kInvalidArgument,
              "protocol version mismatch: client speaks version " +
                  std::to_string(reader.bad_version()) +
                  ", router speaks version " +
                  std::to_string(kProtocolVersion)};
          WriteAll(conn->fd,
                   EncodeFrameWithVersion(reader.bad_version(), Verb::kError,
                                          reader.last_request_id(),
                                          EncodeErrorReply(err)));
        } else {
          WriteAll(conn->fd,
                   ErrorFrame(0, StatusCode::kCorruption, reader.error()));
        }
        open = false;
        break;
      }

      std::string response;
      switch (frame.verb) {
        case Verb::kPing:
          response = EncodeFrame(Verb::kPong, frame.request_id, "");
          break;
        case Verb::kStats:
          response = EncodeFrame(Verb::kStatsReply, frame.request_id,
                                 EncodeStatsReply(stats()));
          break;
        case Verb::kQuery:
          response = RouteQuery(conn, frame);
          break;
        case Verb::kMutate:
          response = ErrorFrame(
              frame.request_id, StatusCode::kUnimplemented,
              "router is read-only: send MUTATE to the shard servers and "
              "cut a new manifest");
          break;
        case Verb::kRelevant:
          response = ErrorFrame(frame.request_id, StatusCode::kUnimplemented,
                                "RELEVANT is a shard-level verb");
          break;
        default:
          response = ErrorFrame(
              frame.request_id, StatusCode::kInvalidArgument,
              "unexpected verb " +
                  std::to_string(static_cast<int>(frame.verb)));
          break;
      }
      if (!WriteAll(conn->fd, response)) {
        open = false;
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    close(conn->fd);
    conn->fd = -1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (connections_active_ > 0) {
      --connections_active_;
    }
  }
  // Published last: past this store the accept thread may join this thread
  // and destroy *conn, so no member may be touched after it.
  conn->finished.store(true, std::memory_order_release);
}

void ClusterRouter::ReapFinishedConns() {
  std::vector<std::unique_ptr<ConnState>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->finished.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the list lock; a finished thread is at most a few
  // instructions from returning, so these joins do not block the accept
  // loop behind slow queries.
  for (auto& conn : dead) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

CoskqClient* ClusterRouter::ShardClient(ConnState* conn, uint32_t shard,
                                        Status* error) {
  std::unique_ptr<CoskqClient>& client = conn->clients[shard];
  if (client != nullptr && client->connected()) {
    return client.get();
  }
  client = std::make_unique<CoskqClient>();
  const ShardAddress& addr = options_.shards[shard];
  const Status status =
      client->Connect(addr.host, addr.port, options_.client_options);
  if (!status.ok()) {
    *error = Status(status.code(),
                    "shard " + std::to_string(shard) + " (" + addr.host +
                        ":" + std::to_string(addr.port) +
                        ") unreachable: " + status.message());
    client.reset();
    return nullptr;
  }
  return client.get();
}

std::string ClusterRouter::RouteQuery(ConnState* conn, const Frame& frame) {
  const Clock::time_point arrival = Clock::now();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_received_;
  }
  const auto fail = [&](StatusCode code, const std::string& message) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_errored_;
    return ErrorFrame(frame.request_id, code, message);
  };

  QueryRequest request;
  if (!DecodeQueryRequest(frame.payload, &request) ||
      request.keywords.empty()) {
    return fail(StatusCode::kInvalidArgument, "malformed QUERY payload");
  }
  if (shutdown_requested_.load(std::memory_order_acquire)) {
    return fail(StatusCode::kInternal, "router draining");
  }

  // Canonicalize the keywords by *global* term id. The single server's
  // query TermSet is sorted by its interning order; replaying that order
  // (deduplicated) into the mini dataset's vocabulary makes the central
  // solve see the keywords with identical relative order — the tie-break
  // property bit-identity needs.
  std::vector<std::pair<uint32_t, std::string>> keyed;
  keyed.reserve(request.keywords.size());
  for (const std::string& kw : request.keywords) {
    const auto it = vocab_.find(kw);
    if (it == vocab_.end()) {
      // Unknown to the global vocabulary: no object anywhere carries it, so
      // the query is infeasible by definition — same inline answer as the
      // single server, no fan-out.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++queries_infeasible_;
      }
      QueryResult result;
      result.outcome = QueryOutcome::kInfeasible;
      result.cost = std::numeric_limits<double>::infinity();
      RecordRouteLatency(MillisBetween(arrival, Clock::now()));
      return EncodeFrame(Verb::kResult, frame.request_id,
                         EncodeQueryResult(result));
    }
    keyed.emplace_back(it->second, kw);
  }
  std::sort(keyed.begin(), keyed.end());
  keyed.erase(std::unique(keyed.begin(), keyed.end()), keyed.end());

  // Result cache (DESIGN.md §16): the sorted, de-duplicated global-id list
  // above is exactly the canonical keyword form the cache keys on. The
  // router serves one fixed manifest (MUTATE is Unimplemented), so its
  // invalidation stamp is constant — entries live until evicted. A hit
  // skips the probe, every shard harvest, and the central re-solve.
  ResultCacheKey cache_key;
  if (result_cache_ != nullptr) {
    cache_key.cell = ResultCache::CellOf(request.x, request.y,
                                         result_cache_->cell_bits());
    cache_key.keywords.reserve(keyed.size());
    for (const auto& [gid, word] : keyed) {
      cache_key.keywords.push_back(gid);
    }
    cache_key.solver = static_cast<uint8_t>(request.solver);
    cache_key.cost_type = static_cast<uint8_t>(request.cost_type);
    cache_key.x = request.x;
    cache_key.y = request.y;
    CachedAnswer hit;
    if (result_cache_->Lookup(cache_key, 0, 0, &hit)) {
      QueryResult result;
      result.outcome = static_cast<QueryOutcome>(hit.outcome);
      result.cost = hit.cost;
      result.solve_ms = hit.solve_ms;
      result.set = std::move(hit.set);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++queries_executed_;
        if (result.outcome == QueryOutcome::kInfeasible) {
          ++queries_infeasible_;
        }
      }
      RecordRouteLatency(MillisBetween(arrival, Clock::now()));
      return EncodeFrame(Verb::kResult, frame.request_id,
                         EncodeQueryResult(result));
    }
  }

  const size_t m = keyed.size();
  // A RELEVANT mask is one uint64, so keyword sets wider than
  // kMaxRelevantKeywords are harvested in chunks (one RELEVANT per chunk,
  // masks OR-ed per object) — the single server answers such queries, so
  // the router must too for the bit-identity contract to hold.
  const size_t num_chunks =
      (m + kMaxRelevantKeywords - 1) / kMaxRelevantKeywords;
  std::vector<std::string> all_keywords;
  all_keywords.reserve(m);
  for (const auto& [gid, word] : keyed) {
    all_keywords.push_back(word);
  }

  // The client's deadline is end-to-end, but routing itself takes time: the
  // probe query and the per-shard harvests all spend wall-clock before the
  // central solve starts. Hand each downstream solve only what is left of
  // the budget (clamped at a small floor so an exhausted budget truncates
  // promptly instead of passing a non-positive deadline).
  const bool deadline_active =
      std::isfinite(request.deadline_ms) && request.deadline_ms > 0.0;
  const auto remaining_deadline_ms = [&] {
    constexpr double kMinDeadlineMs = 1.0;
    return std::max(kMinDeadlineMs, request.deadline_ms -
                                        MillisBetween(arrival, Clock::now()));
  };

  const Point q{request.x, request.y};

  // Keyword pruning (sound for every solver): a shard whose signature rules
  // out ALL query keywords holds zero relevant objects — the Bloom is
  // one-sided — so it cannot contribute to any solver's answer.
  std::vector<uint32_t> candidates_shards;
  uint64_t pruned_keyword = 0;
  for (uint32_t s = 0; s < manifest_.shards.size(); ++s) {
    const ShardSignature& sig = manifest_.shards[s].signature;
    bool possible = false;
    for (const std::string& word : all_keywords) {
      if (sig.MightContain(word)) {
        possible = true;
        break;
      }
    }
    if (possible) {
      candidates_shards.push_back(s);
    } else {
      ++pruned_keyword;
    }
  }

  // Most-promising first: ascending MINDIST from the query point to the
  // shard's tight MBR (ties by shard id).
  std::sort(candidates_shards.begin(), candidates_shards.end(),
            [&](uint32_t a, uint32_t b) {
              const double da = manifest_.shards[a].mbr.MinDistance(q);
              const double db = manifest_.shards[b].mbr.MinDistance(q);
              if (da != db) return da < db;
              return a < b;
            });

  // Distance-owner pruning, order-stable exact solvers only. Probe the
  // nearest shard whose signature covers every keyword with an approximate
  // query of the same cost type: a feasible probe cost upper-bounds the
  // optimal cost (approximation never beats the optimum), and any group
  // touching a shard with MINDIST(q, mbr) strictly above that bound already
  // costs more than the bound under either cost function — both MaxSum and
  // Dia are lower-bounded by the largest query-object distance in the
  // group. The optimal group's shards therefore all survive the strict >
  // cut, and the probe shard itself is never pruned (its own MINDIST is at
  // most the feasible cost it produced).
  uint64_t pruned_distance = 0;
  uint64_t probes = 0;
  if (options_.enable_distance_prune &&
      IsDistancePrunableSolverKind(request.solver) &&
      candidates_shards.size() > 1) {
    uint32_t probe_shard = 0;
    bool have_probe_shard = false;
    for (const uint32_t s : candidates_shards) {
      const ShardSignature& sig = manifest_.shards[s].signature;
      bool covers_all = true;
      for (const std::string& word : all_keywords) {
        if (!sig.MightContain(word)) {
          covers_all = false;
          break;
        }
      }
      if (covers_all) {
        probe_shard = s;
        have_probe_shard = true;
        break;
      }
    }
    if (have_probe_shard) {
      Status connect_error;
      CoskqClient* client = ShardClient(conn, probe_shard, &connect_error);
      if (client != nullptr) {
        QueryRequest probe = request;
        probe.solver = SolverKind::kAppro;
        probe.keywords = all_keywords;
        if (deadline_active) {
          probe.deadline_ms = remaining_deadline_ms();
        }
        ++probes;
        StatusOr<QueryReply> reply = client->Query(probe);
        if (!reply.ok()) {
          // Transport trouble mid-probe: drop the client so the next use
          // reconnects, and fall through with no bound (prune is an
          // optimization, never a requirement).
          conn->clients[probe_shard].reset();
        } else if (reply->kind == QueryReply::Kind::kResult &&
                   reply->result.outcome != QueryOutcome::kInfeasible) {
          const double upper_bound = reply->result.cost;
          std::vector<uint32_t> kept;
          kept.reserve(candidates_shards.size());
          for (const uint32_t s : candidates_shards) {
            if (s != probe_shard &&
                manifest_.shards[s].mbr.MinDistance(q) > upper_bound) {
              ++pruned_distance;
            } else {
              kept.push_back(s);
            }
          }
          candidates_shards.swap(kept);
        }
      }
    }
  }

  // Scatter: harvest every surviving shard's relevant objects and map them
  // into the global id space. Visiting in MINDIST order keeps the first
  // round-trips on the shards most likely to matter if this ever goes
  // speculative; correctness only needs the union.
  struct Candidate {
    uint32_t global_id;
    double x;
    double y;
    /// Keyword-coverage bits in canonical order: canonical keyword j is bit
    /// j % 64 of masks[j / 64] (one word per harvest chunk).
    std::vector<uint64_t> masks;
  };
  std::vector<Candidate> candidates;
  for (const uint32_t s : candidates_shards) {
    Status connect_error;
    CoskqClient* client = ShardClient(conn, s, &connect_error);
    if (client == nullptr) {
      return fail(connect_error.code(), connect_error.message());
    }
    const std::vector<uint32_t>& global_ids = manifest_.shards[s].global_ids;
    // Shard-local id -> candidates index, for OR-merging the per-chunk
    // masks of an object relevant in more than one chunk. Only needed (and
    // only paid for) on multi-chunk keyword sets.
    std::unordered_map<uint32_t, size_t> merged;
    const Clock::time_point sent = Clock::now();
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      RelevantRequest harvest;
      const size_t begin = chunk * kMaxRelevantKeywords;
      const size_t end = std::min(m, begin + kMaxRelevantKeywords);
      harvest.keywords.assign(all_keywords.begin() + begin,
                              all_keywords.begin() + end);
      StatusOr<std::vector<RelevantEntry>> harvested =
          client->Relevant(harvest);
      if (!harvested.ok()) {
        conn->clients[s].reset();
        return fail(harvested.status().code(),
                    "shard " + std::to_string(s) +
                        " harvest failed: " + harvested.status().message());
      }
      for (const RelevantEntry& e : *harvested) {
        if (e.object_id >= global_ids.size()) {
          return fail(StatusCode::kInternal,
                      "shard " + std::to_string(s) +
                          " returned out-of-range object id " +
                          std::to_string(e.object_id));
        }
        size_t idx = candidates.size();
        if (num_chunks == 1) {
          candidates.push_back(Candidate{global_ids[e.object_id], e.x, e.y,
                                         std::vector<uint64_t>(1, 0)});
        } else {
          const auto [it, inserted] = merged.try_emplace(e.object_id, idx);
          if (inserted) {
            candidates.push_back(
                Candidate{global_ids[e.object_id], e.x, e.y,
                          std::vector<uint64_t>(num_chunks, 0)});
          }
          idx = it->second;
        }
        candidates[idx].masks[chunk] |= e.keyword_mask;
      }
    }
    RecordShardHarvest(s, MillisBetween(sent, Clock::now()));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    shards_harvested_ += candidates_shards.size();
    shards_pruned_keyword_ += pruned_keyword;
    shards_pruned_distance_ += pruned_distance;
    probe_queries_ += probes;
  }

  if (candidates.empty()) {
    // No object anywhere carries any query keyword: infeasible, same answer
    // the single server's solver would return.
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++queries_infeasible_;
    }
    QueryResult result;
    result.outcome = QueryOutcome::kInfeasible;
    result.cost = std::numeric_limits<double>::infinity();
    if (result_cache_ != nullptr) {
      CachedAnswer answer;
      answer.outcome = static_cast<uint8_t>(result.outcome);
      answer.cost = result.cost;
      result_cache_->Insert(cache_key, 0, 0, answer);
    }
    RecordRouteLatency(MillisBetween(arrival, Clock::now()));
    return EncodeFrame(Verb::kResult, frame.request_id,
                       EncodeQueryResult(result));
  }

  // Gather: central solve over the harvested sub-universe. Candidates are
  // added in ascending global-id order, so mini id i <-> candidates[i] is
  // an order isomorphism: every (distance, id) tie-break the solver takes
  // resolves the same way it would over the full dataset, and the answer
  // maps back positionally.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.global_id < b.global_id;
            });
  Dataset mini;
  for (const auto& [gid, word] : keyed) {
    mini.mutable_vocabulary().GetOrAdd(word);
  }
  for (const Candidate& c : candidates) {
    TermSet terms;
    for (size_t j = 0; j < m; ++j) {
      if ((c.masks[j / kMaxRelevantKeywords] >> (j % kMaxRelevantKeywords)) &
          1u) {
        terms.push_back(static_cast<TermId>(j));
      }
    }
    mini.AddObjectWithTerms(Point{c.x, c.y}, std::move(terms));
  }
  CoskqQuery query;
  query.location = q;
  query.keywords.reserve(m);
  for (size_t j = 0; j < m; ++j) {
    query.keywords.push_back(static_cast<TermId>(j));
  }

  const IrTree tree(&mini);
  CoskqContext context;
  context.dataset = &mini;
  context.index = &tree;
  BatchOptions batch_options;
  batch_options.solver_name =
      SolverRegistryName(request.solver, request.cost_type);
  batch_options.num_threads = 1;
  batch_options.deadline_ms =
      deadline_active ? remaining_deadline_ms() : request.deadline_ms;
  const BatchEngine engine(context, batch_options);
  const BatchOutcome outcome = engine.Run({query});

  std::string response;
  if (!outcome.status.ok()) {
    return fail(outcome.status.code(), outcome.status.message());
  }
  const CoskqResult& r = outcome.results[0];
  QueryResult result;
  result.cost = r.cost;
  result.solve_ms = r.stats.elapsed_ms;
  result.set.reserve(r.set.size());
  for (const ObjectId local : r.set) {
    result.set.push_back(candidates[local].global_id);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_executed_;
    if (!r.feasible) {
      ++queries_infeasible_;
    } else if (r.stats.truncated) {
      ++queries_truncated_;
    }
  }
  if (!r.feasible) {
    result.outcome = QueryOutcome::kInfeasible;
  } else if (r.stats.truncated) {
    result.outcome = QueryOutcome::kDeadlineTruncated;
  } else {
    result.outcome = QueryOutcome::kExecuted;
  }
  // Truncated answers are deadline-dependent, not query-determined — never
  // cached.
  if (result_cache_ != nullptr &&
      result.outcome != QueryOutcome::kDeadlineTruncated) {
    CachedAnswer answer;
    answer.outcome = static_cast<uint8_t>(result.outcome);
    answer.cost = result.cost;
    answer.solve_ms = result.solve_ms;
    answer.set = result.set;
    result_cache_->Insert(cache_key, 0, 0, answer);
  }
  RecordRouteLatency(MillisBetween(arrival, Clock::now()));
  return EncodeFrame(Verb::kResult, frame.request_id,
                     EncodeQueryResult(result));
}

void ClusterRouter::RecordRouteLatency(double ms) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  latency_ms_.Add(ms);
  if (latency_window_.size() < kRouterLatencyWindow) {
    latency_window_.push_back(ms);
  } else {
    latency_window_[latency_window_pos_] = ms;
    latency_window_pos_ = (latency_window_pos_ + 1) % kRouterLatencyWindow;
  }
}

void ClusterRouter::RecordShardHarvest(uint32_t shard, double ms) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ShardWindow& w = shard_windows_[shard];
  ++w.fanout;
  if (w.window.size() < kShardLatencyWindow) {
    w.window.push_back(ms);
  } else {
    w.window[w.pos] = ms;
    w.pos = (w.pos + 1) % kShardLatencyWindow;
  }
}

StatsReply ClusterRouter::stats() const {
  StatsReply snap;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  snap.connections_accepted = connections_accepted_;
  snap.connections_active = connections_active_;
  snap.queries_received = queries_received_;
  snap.queries_executed = queries_executed_;
  snap.queries_truncated = queries_truncated_;
  snap.queries_infeasible = queries_infeasible_;
  snap.queries_errored = queries_errored_;
  snap.mean_ms = latency_ms_.mean();
  if (!latency_window_.empty()) {
    std::vector<double> window = latency_window_;
    snap.p50_ms = Percentile(window, 50.0);
    snap.p95_ms = Percentile(window, 95.0);
    snap.p99_ms = Percentile(std::move(window), 99.0);
  }
  snap.uptime_s = MillisBetween(start_time_, Clock::now()) / 1e3;

  snap.is_router = 1;
  snap.cluster_shards = static_cast<uint32_t>(manifest_.shards.size());
  snap.manifest_checksum = manifest_.file_checksum;
  snap.cluster_dataset_checksum = manifest_.dataset_checksum;
  snap.cluster_objects = manifest_.total_objects;
  snap.shards_harvested = shards_harvested_;
  snap.shards_pruned_keyword = shards_pruned_keyword_;
  snap.shards_pruned_distance = shards_pruned_distance_;
  snap.probe_queries = probe_queries_;
  snap.shard_stats.reserve(shard_windows_.size());
  for (uint32_t s = 0; s < shard_windows_.size(); ++s) {
    const ShardWindow& w = shard_windows_[s];
    StatsReply::ShardStats stats;
    stats.shard_id = s;
    stats.fanout = w.fanout;
    if (!w.window.empty()) {
      std::vector<double> window = w.window;
      stats.p50_ms = Percentile(window, 50.0);
      stats.p95_ms = Percentile(std::move(window), 95.0);
    }
    snap.shard_stats.push_back(stats);
  }
  if (result_cache_ != nullptr) {
    const ResultCacheStats cache = result_cache_->Snapshot();
    snap.cache_enabled = 1;
    snap.cache_hits = cache.hits;
    snap.cache_misses = cache.misses;
    snap.cache_evictions = cache.evictions;
    snap.cache_invalidations = cache.invalidations;
    snap.cache_resident_bytes = cache.resident_bytes;
    snap.cache_budget_bytes = cache.budget_bytes;
    snap.cache_entries = cache.entries;
  }
  return snap;
}

}  // namespace coskq
