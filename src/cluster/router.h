#ifndef COSKQ_CLUSTER_ROUTER_H_
#define COSKQ_CLUSTER_ROUTER_H_

#include <stdint.h>

#include <atomic>
#include <chrono>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/result_cache.h"
#include "cluster/manifest.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/stats.h"
#include "util/status.h"

namespace coskq {

/// Address of one shard server; index in RouterOptions::shards is the
/// manifest shard id it serves.
struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct RouterOptions {
  /// Listen address of the router itself (same default posture as
  /// ServerOptions: loopback unless deployment decides otherwise).
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read back via port()).
  uint16_t port = 0;
  /// One address per manifest shard, in shard-id order. Start() rejects a
  /// count mismatch.
  std::vector<ShardAddress> shards;
  /// Connection robustness for the router->shard clients.
  ClientOptions client_options;
  /// Distance-owner shard pruning: probe the most-promising shard with an
  /// approximate query, use its feasible cost as an upper bound, and skip
  /// shards whose MINDIST exceeds it. Applied only to the owner-driven
  /// exact solver — an approximate algorithm's answer may legitimately use
  /// objects an optimal-cost bound would exclude, and the Cao exact /
  /// brute-force searches break equal-cost ties by enumeration order, so
  /// removing even provably-suboptimal candidates could flip their answer
  /// set. Every other solver kind harvests all keyword-possible shards.
  bool enable_distance_prune = true;
  /// Connections beyond this are accepted and immediately closed.
  size_t max_connections = 1024;

  // Result cache (protocol v6; DESIGN.md §16). A router hit skips the whole
  // probe/harvest/re-solve fan-out — K network round trips saved per hit.
  // The router is read-only over a fixed manifest (MUTATE is Unimplemented),
  // so its invalidation stamp is constant; writes to the underlying shards
  // require cutting a new manifest and restarting the router anyway.
  /// Byte budget of the result cache in MiB. 0 disables caching; the
  /// COSKQ_RESULT_CACHE=off environment variable force-disables it too.
  size_t result_cache_mb = 0;
  /// Mantissa bits kept per coordinate for the cache cell (see
  /// ResultCache::CellOf).
  int cache_cell_bits = 12;
};

/// The scatter-gather CoSKQ router: a protocol-v5 server that answers QUERY
/// from a cluster of shard servers instead of a local index, bit-identical
/// to a single server over the whole dataset.
///
/// Per QUERY it (1) prunes shards that cannot contribute — keyword pruning
/// via the manifest Bloom signatures (sound for every solver: a missed
/// signature means zero relevant objects there) and, for the owner-driven
/// exact solver, distance pruning via a MINDIST lower bound against an
/// upper-bound cost obtained from one approximate probe query (the distance
/// owner-driven bound of the paper, lifted to shard granularity); (2)
/// harvests the surviving shards' relevant objects with RELEVANT; (3)
/// re-solves centrally over the harvested union with the requested solver.
/// Identity holds because keyword pruning never removes a query-relevant
/// object, the harvest — with manifest-ordered keywords and ascending-id
/// candidate numbering — reconstructs the relevant sub-universe with an
/// order-isomorphic id space, and distance pruning is restricted to the one
/// solver family whose answer is stable under removal of candidates beyond
/// the optimal cost radius (see IsDistancePrunableSolverKind in router.cc).
///
/// Threading: one blocking accept thread plus one thread per client
/// connection; each connection thread owns its own lazily-connected shard
/// clients, so connections never contend on a socket. PING/STATS/QUERY are
/// all answered on the connection's thread (routing is the work; there is no
/// separate worker pool to shed into). MUTATE is answered with Unimplemented
/// — mutations go to the shard servers directly, and a refreeze/repartition
/// cuts a new manifest version.
class ClusterRouter {
 public:
  ClusterRouter(const ClusterManifest& manifest, const RouterOptions& options);
  ~ClusterRouter();

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  Status Start();
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests shutdown and returns; pair with Wait(). Idempotent.
  void Shutdown();
  /// Async-signal-safe shutdown request (an atomic store plus shutdown(2)
  /// on the listen socket; the accept thread does the rest in thread
  /// context).
  void RequestShutdownFromSignal();
  /// Blocks until the accept thread and every connection thread exit.
  void Wait();

  /// Router stats snapshot (what the STATS verb serves).
  StatsReply stats() const;

  /// Installs SIGTERM/SIGINT handlers draining `router`; nullptr
  /// uninstalls. At most one router per process owns the handlers.
  static void InstallSignalHandlers(ClusterRouter* router);

 private:
  struct ConnState {
    int fd = -1;
    std::thread thread;
    /// This connection's shard clients, connected on first use.
    std::vector<std::unique_ptr<CoskqClient>> clients;
    /// Set by ConnMain as its very last action; once true the accept thread
    /// may join-and-destroy this entry (see ReapFinishedConns).
    std::atomic<bool> finished{false};
  };

  /// Per-shard observability: harvest fan-out count and a latency ring.
  struct ShardWindow {
    uint64_t fanout = 0;
    std::vector<double> window;
    size_t pos = 0;
  };

  void AcceptMain();
  void ConnMain(ConnState* conn);
  /// Joins and erases every finished connection, so conns_ only holds live
  /// entries: the max_connections check counts concurrent clients (not every
  /// connection ever accepted) and a finished connection's thread and shard
  /// clients are released as soon as the next client arrives, not at
  /// shutdown.
  void ReapFinishedConns();
  /// Full routed answer for one QUERY frame; returns the encoded response
  /// frame(s) and records routing stats.
  std::string RouteQuery(ConnState* conn, const Frame& frame);
  /// Connects conn's client for `shard` if needed; nullptr on failure
  /// (with the error in *error).
  CoskqClient* ShardClient(ConnState* conn, uint32_t shard, Status* error);
  void RecordRouteLatency(double ms);
  void RecordShardHarvest(uint32_t shard, double ms);

  ClusterManifest manifest_;
  RouterOptions options_;
  /// word -> global TermId (manifest vocabulary order).
  std::unordered_map<std::string, uint32_t> vocab_;
  uint16_t port_ = 0;

  /// Result cache; null when disabled. Shared by all connection threads
  /// (thread-safe internally via per-shard leaf mutexes).
  std::unique_ptr<ResultCache> result_cache_;

  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::thread accept_thread_;
  std::mutex wait_mutex_;

  std::mutex conns_mutex_;
  std::list<std::unique_ptr<ConnState>> conns_;

  mutable std::mutex stats_mutex_;
  uint64_t connections_accepted_ = 0;
  uint64_t connections_active_ = 0;
  uint64_t queries_received_ = 0;
  uint64_t queries_executed_ = 0;
  uint64_t queries_infeasible_ = 0;
  uint64_t queries_truncated_ = 0;
  uint64_t queries_errored_ = 0;
  uint64_t shards_harvested_ = 0;
  uint64_t shards_pruned_keyword_ = 0;
  uint64_t shards_pruned_distance_ = 0;
  uint64_t probe_queries_ = 0;
  RunningStat latency_ms_;
  std::vector<double> latency_window_;
  size_t latency_window_pos_ = 0;
  std::vector<ShardWindow> shard_windows_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace coskq

#endif  // COSKQ_CLUSTER_ROUTER_H_
