#ifndef COSKQ_CLUSTER_MANIFEST_H_
#define COSKQ_CLUSTER_MANIFEST_H_

#include <stdint.h>

#include <array>
#include <string>
#include <vector>

#include "geo/rect.h"
#include "util/status.h"

namespace coskq {

/// The cluster manifest: one versioned little-endian file ("cluster.cqmf")
/// describing a sharded serving deployment — how a dataset was cut into K
/// spatial shards and everything the scatter-gather router needs to route,
/// prune, and merge without ever loading the dataset itself:
///
///   * the *global* vocabulary in interning order, so the router can assign
///     every query keyword its global TermId and reproduce the single-server
///     keyword ordering exactly (TermSet order decides solver tie-breaks);
///   * per shard: the STR tile, the tight object MBR (the MINDIST pruning
///     bound), a 256-bit keyword Bloom signature (the coverage pruning
///     bound), the shard's local->global object-id map, and the checksums
///     binding the shard's dataset file and index snapshot to this cut.
///
/// File layout: magic "CQMF", version, endian marker 0x0102, the payload,
/// and an 8-byte FNV-1a trailer checksum over everything before it.
/// Encoding is deterministic — the same manifest re-encodes byte-identical —
/// and decoding returns a Status (never crashes) on truncated, corrupt, or
/// wrong-version bytes.
inline constexpr uint32_t kManifestMagic = 0x464d5143u;  // "CQMF"
inline constexpr uint16_t kManifestVersion = 1;
inline constexpr const char* kManifestFileName = "cluster.cqmf";

/// Sanity bound on decoded array sizes (shards, vocabulary words, global
/// ids): a corrupt length field must not force a huge allocation.
inline constexpr uint64_t kManifestMaxArray = 1ull << 28;

/// 256-bit one-sided keyword Bloom signature of a shard's vocabulary.
///
/// Bits are derived from the keyword *strings*, never from TermIds — each
/// shard interns its own vocabulary in its own order, so ids are not
/// comparable across shards, but strings are. Two probe bits per word keep
/// the false-positive rate low at paper-scale vocabularies while the test
/// `MightContain(w)` stays two bit reads.
///
/// One-sided guarantee: if MightContain returns false, the shard holds NO
/// object with that keyword — which is what makes keyword pruning sound for
/// every solver.
struct ShardSignature {
  std::array<uint64_t, 4> bits{{0, 0, 0, 0}};

  void AddWord(const std::string& word);
  bool MightContain(const std::string& word) const;

  friend bool operator==(const ShardSignature& a, const ShardSignature& b) {
    return a.bits == b.bits;
  }
};

/// FNV-1a over a byte range, seedable for incremental use. The same digest
/// the index snapshots use, exposed here so the manifest, the partitioner
/// (snapshot-file checksums), and the tests agree on one definition.
uint64_t ClusterFnv1a(const void* data, size_t n,
                      uint64_t seed = 14695981039346656037ull);

/// One shard of the partition.
struct ShardManifestEntry {
  uint32_t shard_id = 0;
  uint64_t num_objects = 0;
  /// The shard's STR tile. Tiles are closed rectangles sharing edges; over
  /// all shards they tile the dataset MBR exactly (zero-area overlaps,
  /// areas summing to the dataset MBR area).
  Rect tile;
  /// Tight MBR of the shard's objects (subset of `tile`); the rectangle the
  /// router's MINDIST lower bound is computed against.
  Rect mbr;
  /// Bloom signature over the shard's keyword strings.
  ShardSignature signature;
  /// Dataset::ContentChecksum() of the shard's dataset — what the shard
  /// server's own index snapshot is bound to.
  uint64_t dataset_checksum = 0;
  /// FNV-1a over the shard's snapshot file bytes, plus its size: pins the
  /// exact `.cqix` artifact this manifest version was cut with.
  uint64_t snapshot_checksum = 0;
  uint64_t snapshot_bytes = 0;
  /// File names relative to the manifest's directory.
  std::string dataset_file;
  std::string snapshot_file;
  /// Ascending global object ids; shard-local id i is global_ids[i]. The
  /// router maps RELEVANT harvest entries back to global ids through this.
  std::vector<uint32_t> global_ids;
};

/// The decoded manifest.
struct ClusterManifest {
  /// ContentChecksum of the full (pre-partition) dataset.
  uint64_t dataset_checksum = 0;
  uint64_t total_objects = 0;
  Rect dataset_mbr;
  /// The full dataset's vocabulary in interning order: word i has global
  /// TermId i.
  std::vector<std::string> vocabulary;
  std::vector<ShardManifestEntry> shards;

  /// The file trailer checksum of this manifest's encoding (computed by
  /// Encode/SaveToFile, recorded by Decode/LoadFromFile). This is the
  /// manifest identity a router reports through STATS.
  uint64_t file_checksum = 0;

  /// Deterministic full-file encoding (header + payload + trailer); also
  /// refreshes `file_checksum`.
  std::string Encode();
  /// Decodes and verifies a full file image. Status on any malformation.
  static StatusOr<ClusterManifest> Decode(const std::string& bytes);

  Status SaveToFile(const std::string& path);
  static StatusOr<ClusterManifest> LoadFromFile(const std::string& path);
};

}  // namespace coskq

#endif  // COSKQ_CLUSTER_MANIFEST_H_
