#ifndef COSKQ_SERVER_CODEC_H_
#define COSKQ_SERVER_CODEC_H_

#include <stddef.h>

#include <string>

#include "server/protocol.h"

namespace coskq {

/// Incremental frame decoder for one byte stream. TCP delivers arbitrary
/// chunks — a frame may arrive torn across many reads, and one read may
/// carry many frames — so the reader buffers whatever it is fed and yields
/// complete frames as they materialize.
///
/// Corruption (bad magic, unknown version, unknown verb, oversized payload
/// length) poisons the reader permanently: framing is lost and the only safe
/// recovery is closing the connection. The oversized-length check fires on
/// the header alone, before any payload is buffered, so a hostile length
/// cannot balloon memory.
///
/// Not thread-safe; each connection owns one FrameReader.
class FrameReader {
 public:
  enum class Next {
    /// A complete frame was popped into `out`.
    kFrame,
    /// The buffered bytes end mid-frame; feed more and try again.
    kNeedMore,
    /// The stream is corrupt (see error()); close the connection.
    kCorrupt,
  };

  explicit FrameReader(size_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  /// Buffers `n` raw bytes from the stream.
  void Append(const char* data, size_t n);

  /// Pops the next complete frame, if any. Call in a loop after Append until
  /// it stops returning kFrame. Once kCorrupt is returned, every later call
  /// returns kCorrupt as well.
  Next Pop(Frame* out);

  /// Human-readable reason after kCorrupt.
  const std::string& error() const { return error_; }

  /// True when the corruption was specifically a well-formed header carrying
  /// a different protocol version. The header was otherwise intact, so the
  /// server can still send a one-shot version-mismatch ERROR (stamped with
  /// the peer's version and last_request_id()) before closing — a v2 client
  /// gets a decodable explanation instead of a silent hang.
  bool version_mismatch() const { return version_mismatch_; }
  /// The peer's version byte (valid after version_mismatch()).
  uint8_t bad_version() const { return bad_version_; }
  /// request_id of the offending frame header (valid after
  /// version_mismatch(); the header is parsed before the version check).
  uint32_t last_request_id() const { return last_request_id_; }

  /// Bytes buffered but not yet consumed (torn-frame remainder).
  size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  size_t max_payload_bytes_;
  std::string buffer_;
  size_t pos_ = 0;  // Consumed prefix of buffer_.
  bool corrupt_ = false;
  std::string error_;
  bool version_mismatch_ = false;
  uint8_t bad_version_ = 0;
  uint32_t last_request_id_ = 0;
};

}  // namespace coskq

#endif  // COSKQ_SERVER_CODEC_H_
