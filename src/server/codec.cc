#include "server/codec.h"

namespace coskq {

namespace {

uint64_t ReadLe(const std::string& buf, size_t pos, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

void FrameReader::Append(const char* data, size_t n) {
  if (corrupt_) {
    return;  // Framing already lost; buffering more would be wasted work.
  }
  // Reclaim the consumed prefix before it dominates the buffer. Amortized
  // O(1): each byte is moved at most once per kFrameHeaderBytes of progress.
  if (pos_ > 4096 && pos_ > buffer_.size() / 2) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(data, n);
}

FrameReader::Next FrameReader::Pop(Frame* out) {
  if (corrupt_) {
    return Next::kCorrupt;
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes) {
    return Next::kNeedMore;
  }
  const uint16_t magic = static_cast<uint16_t>(ReadLe(buffer_, pos_, 2));
  const uint8_t version = static_cast<uint8_t>(buffer_[pos_ + 2]);
  const uint8_t verb = static_cast<uint8_t>(buffer_[pos_ + 3]);
  const uint32_t request_id =
      static_cast<uint32_t>(ReadLe(buffer_, pos_ + 4, 4));
  const uint32_t payload_len =
      static_cast<uint32_t>(ReadLe(buffer_, pos_ + 8, 4));
  if (magic != kProtocolMagic) {
    corrupt_ = true;
    error_ = "bad frame magic";
    return Next::kCorrupt;
  }
  if (version != kProtocolVersion) {
    corrupt_ = true;
    error_ = "unsupported protocol version " + std::to_string(version);
    // The header itself was well-formed (magic matched), so record enough
    // for the server to answer in the peer's own version before closing.
    version_mismatch_ = true;
    bad_version_ = version;
    last_request_id_ = request_id;
    return Next::kCorrupt;
  }
  if (!IsKnownVerb(verb)) {
    corrupt_ = true;
    error_ = "unknown verb " + std::to_string(verb);
    return Next::kCorrupt;
  }
  if (payload_len > max_payload_bytes_) {
    corrupt_ = true;
    error_ = "payload length " + std::to_string(payload_len) +
             " exceeds limit " + std::to_string(max_payload_bytes_);
    return Next::kCorrupt;
  }
  if (buffer_.size() - pos_ < kFrameHeaderBytes + payload_len) {
    return Next::kNeedMore;
  }
  out->verb = static_cast<Verb>(verb);
  out->request_id = request_id;
  out->payload.assign(buffer_, pos_ + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  return Next::kFrame;
}

}  // namespace coskq
