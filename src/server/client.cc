#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

namespace coskq {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Connect failures worth retrying: the peer is briefly absent (a shard
/// restarting), not permanently misaddressed.
bool IsTransientConnectErrno(int err) {
  return err == ECONNREFUSED || err == ETIMEDOUT || err == ENETUNREACH ||
         err == EHOSTUNREACH || err == EAGAIN || err == ECONNRESET;
}

timeval TimevalFromMillis(double ms) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) {
    tv.tv_usec = 1000;  // SO_*TIMEO of zero means "no timeout"; keep 1ms.
  }
  return tv;
}

}  // namespace

CoskqClient::~CoskqClient() { Close(); }

Status CoskqClient::Connect(const std::string& host, uint16_t port) {
  return Connect(host, port, ClientOptions());
}

Status CoskqClient::Connect(const std::string& host, uint16_t port,
                            const ClientOptions& options) {
  Close();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }

  const int attempts = options.max_connect_attempts > 0
                           ? options.max_connect_attempts
                           : 1;
  double backoff_ms = options.retry_backoff_ms;
  Status last = Status::IoError("connect: no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0.0) {
      // Exponential backoff between attempts: a restarting shard gets a
      // widening grace instead of a tight reconnect hammer.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms *= 2.0;
    }
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
      return ErrnoStatus("socket");
    }
    bool transient = false;
    if (options.connect_timeout_ms > 0.0) {
      // Bounded connect: non-blocking connect, then poll for writability.
      const int flags = fcntl(fd_, F_GETFL, 0);
      fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
      const int rc =
          connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        transient = IsTransientConnectErrno(errno);
        last = ErrnoStatus("connect " + host + ":" + std::to_string(port));
      } else {
        bool connected = rc == 0;
        if (!connected) {
          pollfd pfd{fd_, POLLOUT, 0};
          const int timeout =
              static_cast<int>(std::ceil(options.connect_timeout_ms));
          const int ready = poll(&pfd, 1, timeout < 1 ? 1 : timeout);
          int sock_err = 0;
          socklen_t len = sizeof(sock_err);
          if (ready > 0 &&
              getsockopt(fd_, SOL_SOCKET, SO_ERROR, &sock_err, &len) == 0 &&
              sock_err == 0) {
            connected = true;
          } else if (ready == 0) {
            transient = true;
            last = Status::IoError("connect " + host + ":" +
                                   std::to_string(port) + ": timed out");
          } else {
            errno = sock_err != 0 ? sock_err : errno;
            transient = IsTransientConnectErrno(errno);
            last =
                ErrnoStatus("connect " + host + ":" + std::to_string(port));
          }
        }
        if (connected) {
          fcntl(fd_, F_SETFL, flags);
        }
        if (connected) {
          break;
        }
      }
    } else {
      if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        break;
      }
      transient = IsTransientConnectErrno(errno);
      last = ErrnoStatus("connect " + host + ":" + std::to_string(port));
    }
    Close();
    if (!transient) {
      return last;
    }
  }
  if (fd_ < 0) {
    return last;
  }

  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.io_timeout_ms > 0.0) {
    const timeval tv = TimevalFromMillis(options.io_timeout_ms);
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  reader_ = FrameReader();
  return Status::OK();
}

void CoskqClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status CoskqClient::SendFrame(Verb verb, uint32_t request_id,
                              const std::string& payload) {
  if (fd_ < 0) {
    return Status::IoError("not connected");
  }
  const std::string frame = EncodeFrame(verb, request_id, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("write timed out");
      }
      return ErrnoStatus("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> CoskqClient::ReceiveFrame() {
  if (fd_ < 0) {
    return Status::IoError("not connected");
  }
  Frame frame;
  while (true) {
    const FrameReader::Next next = reader_.Pop(&frame);
    if (next == FrameReader::Next::kFrame) {
      return frame;
    }
    if (next == FrameReader::Next::kCorrupt) {
      return Status::Corruption("response stream: " + reader_.error());
    }
    char buf[16 * 1024];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("read timed out");
      }
      return ErrnoStatus("read");
    }
    reader_.Append(buf, static_cast<size_t>(n));
  }
}

StatusOr<Frame> CoskqClient::ReceiveMatching(uint32_t request_id) {
  while (true) {
    StatusOr<Frame> frame = ReceiveFrame();
    if (!frame.ok() || frame->request_id == request_id) {
      return frame;
    }
  }
}

StatusOr<uint32_t> CoskqClient::SendQuery(const QueryRequest& request) {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(
      SendFrame(Verb::kQuery, id, EncodeQueryRequest(request)));
  return id;
}

StatusOr<QueryReply> CoskqClient::ParseQueryReply(const Frame& frame) {
  QueryReply reply;
  switch (frame.verb) {
    case Verb::kResult:
      reply.kind = QueryReply::Kind::kResult;
      if (!DecodeQueryResult(frame.payload, &reply.result)) {
        return Status::Corruption("malformed RESULT payload");
      }
      return reply;
    case Verb::kOverloaded:
      reply.kind = QueryReply::Kind::kOverloaded;
      if (!DecodeOverloadedReply(frame.payload, &reply.overloaded)) {
        return Status::Corruption("malformed OVERLOADED payload");
      }
      return reply;
    case Verb::kError:
      reply.kind = QueryReply::Kind::kError;
      if (!DecodeErrorReply(frame.payload, &reply.error)) {
        return Status::Corruption("malformed ERROR payload");
      }
      return reply;
    default:
      return Status::Corruption(
          "unexpected response verb " +
          std::to_string(static_cast<int>(frame.verb)));
  }
}

StatusOr<QueryReply> CoskqClient::Query(const QueryRequest& request) {
  StatusOr<uint32_t> id = SendQuery(request);
  if (!id.ok()) {
    return id.status();
  }
  StatusOr<Frame> frame = ReceiveMatching(*id);
  if (!frame.ok()) {
    return frame.status();
  }
  return ParseQueryReply(*frame);
}

StatusOr<StatsReply> CoskqClient::Stats() {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(SendFrame(Verb::kStats, id, std::string()));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb != Verb::kStatsReply) {
    return Status::Corruption("expected STATS reply");
  }
  StatsReply stats;
  if (!DecodeStatsReply(frame->payload, &stats)) {
    return Status::Corruption("malformed STATS payload");
  }
  return stats;
}

StatusOr<MutateReply> CoskqClient::Mutate(const MutateRequest& request) {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(
      SendFrame(Verb::kMutate, id, EncodeMutateRequest(request)));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb == Verb::kError) {
    // An in-band rejection (mutations disabled, unknown keyword, ...):
    // surface the server's own Status.
    ErrorReply err;
    if (!DecodeErrorReply(frame->payload, &err)) {
      return Status::Corruption("malformed ERROR payload");
    }
    return Status(err.code, std::move(err.message));
  }
  if (frame->verb != Verb::kMutateReply) {
    return Status::Corruption("expected MUTATE reply");
  }
  MutateReply reply;
  if (!DecodeMutateReply(frame->payload, &reply)) {
    return Status::Corruption("malformed MUTATE payload");
  }
  return reply;
}

StatusOr<std::vector<RelevantEntry>> CoskqClient::Relevant(
    const RelevantRequest& request) {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(
      SendFrame(Verb::kRelevant, id, EncodeRelevantRequest(request)));
  std::vector<RelevantEntry> entries;
  while (true) {
    StatusOr<Frame> frame = ReceiveMatching(id);
    if (!frame.ok()) {
      return frame.status();
    }
    if (frame->verb == Verb::kError) {
      ErrorReply err;
      if (!DecodeErrorReply(frame->payload, &err)) {
        return Status::Corruption("malformed ERROR payload");
      }
      return Status(err.code, std::move(err.message));
    }
    if (frame->verb != Verb::kRelevantReply) {
      return Status::Corruption("expected RELEVANT reply");
    }
    RelevantReply chunk;
    if (!DecodeRelevantReply(frame->payload, &chunk)) {
      return Status::Corruption("malformed RELEVANT_REPLY payload");
    }
    entries.insert(entries.end(), chunk.objects.begin(), chunk.objects.end());
    if (chunk.more == 0) {
      break;
    }
  }
  return entries;
}

Status CoskqClient::Ping() {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(SendFrame(Verb::kPing, id, std::string()));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb != Verb::kPong) {
    return Status::Corruption("expected PONG");
  }
  return Status::OK();
}

}  // namespace coskq
