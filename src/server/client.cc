#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coskq {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

CoskqClient::~CoskqClient() { Close(); }

Status CoskqClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return ErrnoStatus("socket");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status =
        ErrnoStatus("connect " + host + ":" + std::to_string(port));
    Close();
    return status;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  reader_ = FrameReader();
  return Status::OK();
}

void CoskqClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status CoskqClient::SendFrame(Verb verb, uint32_t request_id,
                              const std::string& payload) {
  if (fd_ < 0) {
    return Status::IoError("not connected");
  }
  const std::string frame = EncodeFrame(verb, request_id, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> CoskqClient::ReceiveFrame() {
  if (fd_ < 0) {
    return Status::IoError("not connected");
  }
  Frame frame;
  while (true) {
    const FrameReader::Next next = reader_.Pop(&frame);
    if (next == FrameReader::Next::kFrame) {
      return frame;
    }
    if (next == FrameReader::Next::kCorrupt) {
      return Status::Corruption("response stream: " + reader_.error());
    }
    char buf[16 * 1024];
    const ssize_t n = read(fd_, buf, sizeof(buf));
    if (n == 0) {
      return Status::IoError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("read");
    }
    reader_.Append(buf, static_cast<size_t>(n));
  }
}

StatusOr<Frame> CoskqClient::ReceiveMatching(uint32_t request_id) {
  while (true) {
    StatusOr<Frame> frame = ReceiveFrame();
    if (!frame.ok() || frame->request_id == request_id) {
      return frame;
    }
  }
}

StatusOr<uint32_t> CoskqClient::SendQuery(const QueryRequest& request) {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(
      SendFrame(Verb::kQuery, id, EncodeQueryRequest(request)));
  return id;
}

StatusOr<QueryReply> CoskqClient::ParseQueryReply(const Frame& frame) {
  QueryReply reply;
  switch (frame.verb) {
    case Verb::kResult:
      reply.kind = QueryReply::Kind::kResult;
      if (!DecodeQueryResult(frame.payload, &reply.result)) {
        return Status::Corruption("malformed RESULT payload");
      }
      return reply;
    case Verb::kOverloaded:
      reply.kind = QueryReply::Kind::kOverloaded;
      if (!DecodeOverloadedReply(frame.payload, &reply.overloaded)) {
        return Status::Corruption("malformed OVERLOADED payload");
      }
      return reply;
    case Verb::kError:
      reply.kind = QueryReply::Kind::kError;
      if (!DecodeErrorReply(frame.payload, &reply.error)) {
        return Status::Corruption("malformed ERROR payload");
      }
      return reply;
    default:
      return Status::Corruption(
          "unexpected response verb " +
          std::to_string(static_cast<int>(frame.verb)));
  }
}

StatusOr<QueryReply> CoskqClient::Query(const QueryRequest& request) {
  StatusOr<uint32_t> id = SendQuery(request);
  if (!id.ok()) {
    return id.status();
  }
  StatusOr<Frame> frame = ReceiveMatching(*id);
  if (!frame.ok()) {
    return frame.status();
  }
  return ParseQueryReply(*frame);
}

StatusOr<StatsReply> CoskqClient::Stats() {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(SendFrame(Verb::kStats, id, std::string()));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb != Verb::kStatsReply) {
    return Status::Corruption("expected STATS reply");
  }
  StatsReply stats;
  if (!DecodeStatsReply(frame->payload, &stats)) {
    return Status::Corruption("malformed STATS payload");
  }
  return stats;
}

StatusOr<MutateReply> CoskqClient::Mutate(const MutateRequest& request) {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(
      SendFrame(Verb::kMutate, id, EncodeMutateRequest(request)));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb == Verb::kError) {
    // An in-band rejection (mutations disabled, unknown keyword, ...):
    // surface the server's own Status.
    ErrorReply err;
    if (!DecodeErrorReply(frame->payload, &err)) {
      return Status::Corruption("malformed ERROR payload");
    }
    return Status(err.code, std::move(err.message));
  }
  if (frame->verb != Verb::kMutateReply) {
    return Status::Corruption("expected MUTATE reply");
  }
  MutateReply reply;
  if (!DecodeMutateReply(frame->payload, &reply)) {
    return Status::Corruption("malformed MUTATE payload");
  }
  return reply;
}

Status CoskqClient::Ping() {
  const uint32_t id = next_request_id_++;
  COSKQ_RETURN_IF_ERROR(SendFrame(Verb::kPing, id, std::string()));
  StatusOr<Frame> frame = ReceiveMatching(id);
  if (!frame.ok()) {
    return frame.status();
  }
  if (frame->verb != Verb::kPong) {
    return Status::Corruption("expected PONG");
  }
  return Status::OK();
}

}  // namespace coskq
