#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstring>

#include "data/term_set.h"
#include "engine/batch_engine.h"
#include "util/logging.h"

namespace coskq {

namespace {

// epoll_event.data.u64 tags for the two non-connection fds. Connection ids
// start above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

// Latency ring size for the percentile snapshot: big enough that p99 over
// the recent window is meaningful, small enough to copy on every STATS.
constexpr size_t kLatencyWindow = 4096;

// Hard cap on the graceful-drain flush phase: once every admitted query is
// answered, a peer that refuses to read its responses only delays shutdown
// this long before its connection is closed with the bytes unsent.
constexpr double kDrainFlushTimeoutMs = 5000.0;

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

double MillisBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// The process-wide server owning the SIGTERM/SIGINT handlers. Plain pointer
// store/load is all the handler does — async-signal-safe by construction.
std::atomic<CoskqServer*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  CoskqServer* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) {
    server->RequestShutdownFromSignal();
  }
}

}  // namespace

CoskqServer::CoskqServer(const CoskqContext& context,
                         const ServerOptions& options)
    : context_(context), options_(options) {
  COSKQ_CHECK(context.dataset != nullptr);
  COSKQ_CHECK(context.index != nullptr);
  if (options_.num_workers > 0) {
    resolved_workers_ = options_.num_workers;
  } else {
    const unsigned hw = std::thread::hardware_concurrency();
    resolved_workers_ = hw == 0 ? 1 : static_cast<int>(hw);
  }
  if (options_.result_cache_mb > 0 && !ResultCache::ForceDisabledByEnv()) {
    ResultCache::Options cache_options;
    cache_options.budget_bytes = options_.result_cache_mb << 20;
    cache_options.cell_bits = options_.cache_cell_bits;
    result_cache_ = std::make_unique<ResultCache>(cache_options);
  }
  latency_window_.reserve(kLatencyWindow);
}

CoskqServer::~CoskqServer() {
  Shutdown();
  Wait();
  if (g_signal_server.load(std::memory_order_acquire) == this) {
    InstallSignalHandlers(nullptr);
  }
}

Status CoskqServer::Start() {
  COSKQ_CHECK(!running_.load()) << "Start() on a running server";

  if (options_.enable_mutations) {
    if (options_.mutable_dataset == nullptr ||
        options_.mutable_index == nullptr) {
      return Status::InvalidArgument(
          "enable_mutations requires mutable_dataset and mutable_index");
    }
    if (options_.mutable_dataset != context_.dataset ||
        options_.mutable_index != context_.index) {
      return Status::InvalidArgument(
          "mutable_dataset/mutable_index must alias the context handles");
    }
    if (!options_.mutable_index->frozen()) {
      // Only the frozen tree has the delta overlay; the pointer-tree insert
      // path is single-threaded and must not race the solver pool.
      return Status::InvalidArgument(
          "enable_mutations requires a Freeze()-d index");
    }
    // Pre-size the object array once so live inserts never reallocate it
    // under concurrent readers.
    if (!options_.mutable_dataset->concurrent_appends_enabled()) {
      options_.mutable_dataset->EnableConcurrentAppends(
          options_.mutation_capacity);
    }
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return ErrnoStatus("socket");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = ErrnoStatus("bind " + options_.host + ":" +
                                      std::to_string(options_.port));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, 128) != 0) {
    const Status status = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Resolve the actual port (meaningful when options_.port == 0).
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status = ErrnoStatus("epoll_create1/eventfd");
    close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) {
      close(epoll_fd_);
      epoll_fd_ = -1;
    }
    if (wake_fd_ >= 0) {
      close(wake_fd_);
      wake_fd_ = -1;
    }
    return status;
  }

  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  COSKQ_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0);
  ev.data.u64 = kWakeTag;
  COSKQ_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0);

  start_time_ = Clock::now();
  // Connection ids double as epoll tags, so they must never collide with
  // the reserved listen/wake tags.
  next_conn_id_ = kFirstConnId;
  static_assert(kFirstConnId > kWakeTag && kWakeTag > kListenTag);
  shutdown_requested_.store(false, std::memory_order_release);
  draining_ = false;
  queue_closed_ = false;
  running_.store(true, std::memory_order_release);

  workers_.reserve(resolved_workers_);
  for (int i = 0; i < resolved_workers_; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void CoskqServer::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void CoskqServer::RequestShutdownFromSignal() {
  // Only async-signal-safe operations: an atomic store and a write(2).
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void CoskqServer::Wait() {
  std::lock_guard<std::mutex> lock(wait_mutex_);
  if (loop_thread_.joinable()) {
    loop_thread_.join();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  workers_.clear();
  // The wake/epoll fds outlive the loop so workers can signal completions
  // right up to their exit; with every thread joined they can go.
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    close(wake_fd_);
    wake_fd_ = -1;
  }
}

void CoskqServer::InstallSignalHandlers(CoskqServer* server) {
  g_signal_server.store(server, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  if (server != nullptr) {
    action.sa_handler = HandleShutdownSignal;
    action.sa_flags = SA_RESTART;
  } else {
    action.sa_handler = SIG_DFL;
  }
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

ServerStatsSnapshot CoskqServer::stats() const {
  ServerStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snap.connections_accepted = connections_accepted_;
    snap.queries_received = queries_received_;
    snap.queries_executed = queries_executed_;
    snap.queries_shed = queries_shed_;
    snap.queries_truncated = queries_truncated_;
    snap.queries_infeasible = queries_infeasible_;
    snap.queries_errored = queries_errored_;
    snap.queries_active = queries_active_;
    snap.mean_ms = latency_ms_.mean();
    if (!latency_window_.empty()) {
      std::vector<double> window = latency_window_;
      snap.p50_ms = Percentile(window, 50.0);
      snap.p95_ms = Percentile(window, 95.0);
      snap.p99_ms = Percentile(std::move(window), 99.0);
    }
    snap.connections_active = connections_active_count_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    snap.queue_depth = queue_.size();
  }
  snap.uptime_s = MillisBetween(start_time_, Clock::now()) / 1e3;
  snap.index_from_snapshot = options_.index_from_snapshot ? 1 : 0;
  snap.index_prepare_ms = options_.index_prepare_ms;
  snap.index_nodes = options_.index_nodes;
  snap.index_checksum = options_.index_checksum;
  if (options_.mutable_index != nullptr) {
    snap.index_epoch = options_.mutable_index->epoch();
    snap.delta_size = options_.mutable_index->delta_size();
    snap.mutations_applied = options_.mutable_index->mutations_applied();
    snap.refreezes_completed = options_.mutable_index->refreezes_completed();
  }
  if (context_.index != nullptr) {
    const IndexMemoryStats mem = context_.index->MemoryStats();
    snap.index_layout = static_cast<uint8_t>(mem.layout);
    snap.index_cold = mem.cold ? 1 : 0;
    snap.body_bytes = mem.body_bytes;
    snap.body_resident_bytes = mem.body_resident_bytes;
    snap.memory_budget_bytes = mem.memory_budget_bytes;
    snap.budget_trims = mem.budget_trims;
    snap.major_faults = mem.major_faults;
    snap.minor_faults = mem.minor_faults;
  }
  if (result_cache_ != nullptr) {
    const ResultCacheStats cache = result_cache_->Snapshot();
    snap.cache_enabled = 1;
    snap.cache_hits = cache.hits;
    snap.cache_misses = cache.misses;
    snap.cache_evictions = cache.evictions;
    snap.cache_invalidations = cache.invalidations;
    snap.cache_resident_bytes = cache.resident_bytes;
    snap.cache_budget_bytes = cache.budget_bytes;
    snap.cache_entries = cache.entries;
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Event loop.

void CoskqServer::LoopMain() {
  Clock::time_point drain_started;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  bool done = false;
  while (!done) {
    // During a drain, tick periodically so completion/flush progress is
    // re-checked even with no socket activity.
    const int timeout_ms = draining_ ? 10 : -1;
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      COSKQ_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else if (tag == kListenTag) {
        AcceptAll();
      } else {
        // A connection may be closed by an earlier event in this batch;
        // stale tags just miss the map.
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          CloseConnection(tag);
          continue;
        }
        if (events[i].events & EPOLLIN) {
          HandleReadable(tag);
        }
        if (events[i].events & EPOLLOUT) {
          HandleWritable(tag);
        }
      }
    }
    if (!draining_ && shutdown_requested_.load(std::memory_order_acquire)) {
      BeginDrainIfRequested();
      drain_started = Clock::now();
    }
    if (draining_) {
      DrainCompletions();
      const bool answered = DrainComplete();
      const bool flush_expired =
          MillisBetween(drain_started, Clock::now()) > kDrainFlushTimeoutMs;
      if (answered) {
        // Everything admitted is answered; close connections as their write
        // buffers empty (or unconditionally once the flush grace expires).
        std::vector<uint64_t> to_close;
        for (const auto& [id, conn] : connections_) {
          const bool flushed =
              conn->write_offset >= conn->write_buffer.size();
          if (flushed || flush_expired) {
            to_close.push_back(id);
          }
        }
        for (uint64_t id : to_close) {
          CloseConnection(id);
        }
        if (connections_.empty()) {
          done = true;
        }
      }
    }
  }

  // Release the workers: the queue is empty by the drain invariant (or we
  // are exiting on an epoll error and abandon whatever is left).
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();

  for (auto& [id, conn] : connections_) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
  }
  connections_.clear();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    connections_active_count_ = 0;
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void CoskqServer::BeginDrainIfRequested() {
  draining_ = true;
  // Stop accepting: new connects are refused from this point on.
  if (listen_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool CoskqServer::DrainComplete() const {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!queue_.empty()) {
      return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    if (!completions_.empty()) {
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return queries_active_ == 0;
}

void CoskqServer::AcceptAll() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN, or a transient accept error; epoll will re-arm.
    }
    if (connections_.size() >= options_.max_connections) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn_id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    connections_.emplace(conn_id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++connections_accepted_;
    connections_active_count_ = connections_.size();
  }
}

void CoskqServer::HandleReadable(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reader.Append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) {
        break;  // Socket drained; avoid one guaranteed-EAGAIN syscall.
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    CloseConnection(conn_id);  // EOF or hard error.
    return;
  }

  Frame frame;
  while (true) {
    const FrameReader::Next next = conn->reader.Pop(&frame);
    if (next == FrameReader::Next::kNeedMore) {
      break;
    }
    if (next == FrameReader::Next::kCorrupt) {
      // Framing is lost: report once, flush, close. A version mismatch gets
      // a special one-shot reply stamped with the *peer's* version byte so
      // an old client can decode the explanation instead of hanging on a
      // frame it would discard as foreign.
      if (conn->reader.version_mismatch()) {
        ErrorReply err{
            StatusCode::kInvalidArgument,
            "protocol version mismatch: client speaks version " +
                std::to_string(conn->reader.bad_version()) +
                ", server speaks version " +
                std::to_string(kProtocolVersion)};
        conn->write_buffer += EncodeFrameWithVersion(
            conn->reader.bad_version(), Verb::kError,
            conn->reader.last_request_id(), EncodeErrorReply(err));
        FlushWrites(conn_id);
        auto mismatched = connections_.find(conn_id);
        if (mismatched != connections_.end()) {
          mismatched->second->close_after_flush = true;
          if (mismatched->second->write_offset >=
              mismatched->second->write_buffer.size()) {
            CloseConnection(conn_id);
          }
        }
        return;
      }
      ErrorReply err{StatusCode::kCorruption, conn->reader.error()};
      SendFrame(conn_id, Verb::kError, 0, EncodeErrorReply(err));
      auto still = connections_.find(conn_id);
      if (still != connections_.end()) {
        still->second->close_after_flush = true;
        if (still->second->write_offset >=
            still->second->write_buffer.size()) {
          CloseConnection(conn_id);
        }
      }
      return;
    }
    DispatchFrame(conn_id, frame);
    if (connections_.find(conn_id) == connections_.end()) {
      return;  // Dispatch closed the connection.
    }
  }
}

void CoskqServer::DispatchFrame(uint64_t conn_id, const Frame& frame) {
  switch (frame.verb) {
    case Verb::kPing:
      SendFrame(conn_id, Verb::kPong, frame.request_id, std::string());
      return;
    case Verb::kStats:
      SendFrame(conn_id, Verb::kStatsReply, frame.request_id,
                EncodeStatsReply(stats()));
      return;
    case Verb::kQuery:
      HandleQuery(conn_id, frame);
      return;
    case Verb::kMutate:
      HandleMutate(conn_id, frame);
      return;
    case Verb::kRelevant:
      HandleRelevant(conn_id, frame);
      return;
    default:
      break;
  }
  // A response verb arriving at the server is a client bug, not stream
  // corruption — answer it and keep the connection.
  ErrorReply err{StatusCode::kInvalidArgument,
                 "unexpected verb " +
                     std::to_string(static_cast<int>(frame.verb))};
  SendFrame(conn_id, Verb::kError, frame.request_id, EncodeErrorReply(err));
}

void CoskqServer::HandleQuery(uint64_t conn_id, const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_received_;
  }
  QueryRequest request;
  if (!DecodeQueryRequest(frame.payload, &request) ||
      request.keywords.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_errored_;
    ErrorReply err{StatusCode::kInvalidArgument, "malformed QUERY payload"};
    SendFrame(conn_id, Verb::kError, frame.request_id,
              EncodeErrorReply(err));
    return;
  }
  if (draining_) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_errored_;
    ErrorReply err{StatusCode::kInternal, "server draining"};
    SendFrame(conn_id, Verb::kError, frame.request_id,
              EncodeErrorReply(err));
    return;
  }

  // Intern the keywords. A keyword absent from the vocabulary matches no
  // object, so the query is infeasible by definition — answered inline, no
  // solver needed.
  Job job;
  job.query.location = Point{request.x, request.y};
  bool unknown_keyword = false;
  for (const std::string& kw : request.keywords) {
    const TermId t = context_.dataset->vocabulary().Find(kw);
    if (t == Vocabulary::kInvalidTermId) {
      unknown_keyword = true;
      break;
    }
    job.query.keywords.push_back(t);
  }
  if (unknown_keyword) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++queries_infeasible_;
    }
    QueryResult result;
    result.outcome = QueryOutcome::kInfeasible;
    result.cost = std::numeric_limits<double>::infinity();
    SendFrame(conn_id, Verb::kResult, frame.request_id,
              EncodeQueryResult(result));
    return;
  }
  NormalizeTermSet(&job.query.keywords);

  job.conn_id = conn_id;
  job.request_id = frame.request_id;
  job.solver_name = SolverRegistryName(request.solver, request.cost_type);
  job.deadline_ms = request.deadline_ms;
  // Clamp only well-formed deadlines; negative/NaN values flow through to
  // the BatchOptions validation and come back as an ERROR response.
  if (options_.max_deadline_ms > 0.0 &&
      (job.deadline_ms == 0.0 ||
       job.deadline_ms > options_.max_deadline_ms)) {
    job.deadline_ms = options_.max_deadline_ms;
  }
  job.arrival = Clock::now();

  // Result cache (DESIGN.md §16). The key is the canonical query form; the
  // invalidation stamps are read here on the event-loop thread — the sole
  // MUTATE applier — so a query arriving after a MUTATE ack always carries
  // the post-mutation stamp and can never hit a pre-mutation entry. A
  // mutation landing while the solve is in flight leaves the inserted entry
  // with an already-stale stamp, which the next lookup drops.
  if (result_cache_ != nullptr && !job.solver_name.empty()) {
    job.cache_key.cell =
        ResultCache::CellOf(request.x, request.y, result_cache_->cell_bits());
    job.cache_key.keywords.assign(job.query.keywords.begin(),
                                  job.query.keywords.end());
    job.cache_key.solver = static_cast<uint8_t>(request.solver);
    job.cache_key.cost_type = static_cast<uint8_t>(request.cost_type);
    job.cache_key.x = request.x;
    job.cache_key.y = request.y;
    const IrTree* stamp_index = options_.mutable_index != nullptr
                                    ? options_.mutable_index
                                    : context_.index;
    job.cache_epoch = stamp_index->epoch();
    job.cache_mutations = stamp_index->mutations_applied();
    job.cacheable = true;
    CachedAnswer hit;
    if (result_cache_->Lookup(job.cache_key, job.cache_epoch,
                              job.cache_mutations, &hit)) {
      QueryResult result;
      result.outcome = static_cast<QueryOutcome>(hit.outcome);
      result.cost = hit.cost;
      result.solve_ms = hit.solve_ms;
      result.set = std::move(hit.set);
      Completion done;
      done.kind = result.outcome == QueryOutcome::kInfeasible
                      ? Completion::Kind::kInfeasible
                      : Completion::Kind::kExecuted;
      done.latency_ms = MillisBetween(job.arrival, Clock::now());
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        // The hit never entered the admission queue; offset the active-count
        // decrement RecordCompletionLocked pairs with admission.
        ++queries_active_;
        RecordCompletionLocked(done);
      }
      SendFrame(conn_id, Verb::kResult, frame.request_id,
                EncodeQueryResult(result));
      return;
    }
  }

  // Admission: bounded queue or an immediate OVERLOADED — the accept loop
  // never blocks on the solvers.
  size_t depth = 0;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
    if (depth < options_.queue_capacity && !queue_closed_) {
      queue_.push_back(std::move(job));
      admitted = true;
      ++depth;
    }
  }
  if (admitted) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++queries_active_;
    }
    auto it = connections_.find(conn_id);
    if (it != connections_.end()) {
      ++it->second->in_flight;
    }
    queue_cv_.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_shed_;
  }
  OverloadedReply reply{options_.retry_after_ms,
                        static_cast<uint32_t>(depth)};
  SendFrame(conn_id, Verb::kOverloaded, frame.request_id,
            EncodeOverloadedReply(reply));
}

void CoskqServer::HandleRelevant(uint64_t conn_id, const Frame& frame) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_received_;
  }
  Job job;
  RelevantRequest request;
  if (!DecodeRelevantRequest(frame.payload, &request)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_errored_;
    ErrorReply err{StatusCode::kInvalidArgument,
                   "malformed RELEVANT payload"};
    SendFrame(conn_id, Verb::kError, frame.request_id,
              EncodeErrorReply(err));
    return;
  }
  if (draining_) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_errored_;
    ErrorReply err{StatusCode::kInternal, "server draining"};
    SendFrame(conn_id, Verb::kError, frame.request_id,
              EncodeErrorReply(err));
    return;
  }
  // A keyword unknown to this shard simply matches nothing — shards hold
  // vocabulary subsets, so unlike a QUERY this is not an infeasibility.
  job.kind = Job::Kind::kRelevant;
  job.conn_id = conn_id;
  job.request_id = frame.request_id;
  job.relevant_keywords = std::move(request.keywords);
  job.arrival = Clock::now();

  size_t depth = 0;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
    if (depth < options_.queue_capacity && !queue_closed_) {
      queue_.push_back(std::move(job));
      admitted = true;
      ++depth;
    }
  }
  if (admitted) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++queries_active_;
    }
    auto it = connections_.find(conn_id);
    if (it != connections_.end()) {
      ++it->second->in_flight;
    }
    queue_cv_.notify_one();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++queries_shed_;
  }
  OverloadedReply reply{options_.retry_after_ms,
                        static_cast<uint32_t>(depth)};
  SendFrame(conn_id, Verb::kOverloaded, frame.request_id,
            EncodeOverloadedReply(reply));
}

void CoskqServer::HandleMutate(uint64_t conn_id, const Frame& frame) {
  const auto fail = [&](StatusCode code, const std::string& message) {
    ErrorReply err{code, message};
    SendFrame(conn_id, Verb::kError, frame.request_id,
              EncodeErrorReply(err));
  };
  if (!options_.enable_mutations) {
    fail(StatusCode::kUnimplemented,
         "mutations are disabled on this server");
    return;
  }
  if (draining_) {
    fail(StatusCode::kInternal, "server draining");
    return;
  }
  MutateRequest request;
  if (!DecodeMutateRequest(frame.payload, &request)) {
    fail(StatusCode::kInvalidArgument, "malformed MUTATE payload");
    return;
  }

  // Applied inline on the event-loop thread: it is the only mutator, so no
  // lock is needed against other MUTATEs, and it never holds a ReadGuard, so
  // it cannot deadlock against the index's swap lock.
  Dataset* dataset = options_.mutable_dataset;
  IrTree* index = options_.mutable_index;
  ObjectId applied_id = 0;
  if (request.op == MutateRequest::Op::kInsert) {
    if (!std::isfinite(request.x) || !std::isfinite(request.y)) {
      fail(StatusCode::kInvalidArgument, "non-finite insert location");
      return;
    }
    if (request.keywords.empty()) {
      fail(StatusCode::kInvalidArgument, "insert carries no keywords");
      return;
    }
    // The vocabulary is the trust boundary: anonymous writers may place
    // objects, not grow the term space (interning is also not thread-safe
    // against the solver threads reading it).
    TermSet terms;
    for (const std::string& kw : request.keywords) {
      const TermId t = dataset->vocabulary().Find(kw);
      if (t == Vocabulary::kInvalidTermId) {
        fail(StatusCode::kInvalidArgument,
             "unknown keyword '" + kw + "' (the vocabulary is fixed)");
        return;
      }
      terms.push_back(t);
    }
    StatusOr<ObjectId> appended = dataset->AppendObjectConcurrent(
        Point{request.x, request.y}, std::move(terms));
    if (!appended.ok()) {
      fail(appended.status().code(), appended.status().message());
      return;
    }
    applied_id = appended.value();
    const Status status = index->Insert(applied_id);
    if (!status.ok()) {
      fail(status.code(), status.message());
      return;
    }
  } else {
    applied_id = request.object_id;
    const Status status = index->Remove(applied_id);
    if (!status.ok()) {
      fail(status.code(), status.message());
      return;
    }
  }

  // The reply is encoded only after Insert/Remove returned: a client that
  // has the ack and then queries observes the mutation (acked-write
  // freshness; queries pin their view at solve time, after this point).
  MutateReply reply;
  reply.object_id = static_cast<uint32_t>(applied_id);
  reply.delta_size = index->delta_size();
  reply.epoch = index->epoch();
  SendFrame(conn_id, Verb::kMutateReply, frame.request_id,
            EncodeMutateReply(reply));

  if (options_.refreeze_threshold > 0 &&
      reply.delta_size >= options_.refreeze_threshold) {
    index->RefreezeAsync();
  }
}

void CoskqServer::DrainCompletions() {
  std::deque<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    ready.swap(completions_);
  }
  for (Completion& c : ready) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      RecordCompletionLocked(c);
    }
    auto it = connections_.find(c.conn_id);
    if (it == connections_.end()) {
      continue;  // Client went away; the answer has no address.
    }
    Connection* conn = it->second.get();
    if (conn->in_flight > 0) {
      --conn->in_flight;
    }
    conn->write_buffer.append(c.frame);
    FlushWrites(c.conn_id);
  }
}

void CoskqServer::RecordCompletionLocked(const Completion& c) {
  switch (c.kind) {
    case Completion::Kind::kExecuted:
      ++queries_executed_;
      break;
    case Completion::Kind::kTruncated:
      ++queries_executed_;
      ++queries_truncated_;
      break;
    case Completion::Kind::kInfeasible:
      ++queries_executed_;
      ++queries_infeasible_;
      break;
    case Completion::Kind::kError:
      ++queries_errored_;
      break;
  }
  if (queries_active_ > 0) {
    --queries_active_;
  }
  if (c.latency_ms >= 0.0) {
    latency_ms_.Add(c.latency_ms);
    if (latency_window_.size() < kLatencyWindow) {
      latency_window_.push_back(c.latency_ms);
    } else {
      latency_window_[latency_window_pos_] = c.latency_ms;
      latency_window_pos_ = (latency_window_pos_ + 1) % kLatencyWindow;
    }
  }
}

void CoskqServer::SendFrame(uint64_t conn_id, Verb verb, uint32_t request_id,
                            const std::string& payload) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  it->second->write_buffer.append(EncodeFrame(verb, request_id, payload));
  FlushWrites(conn_id);
}

void CoskqServer::FlushWrites(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  while (conn->write_offset < conn->write_buffer.size()) {
    const ssize_t n =
        write(conn->fd, conn->write_buffer.data() + conn->write_offset,
              conn->write_buffer.size() - conn->write_offset);
    if (n > 0) {
      conn->write_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpollInterest(conn, conn_id);
      return;
    }
    CloseConnection(conn_id);  // Peer reset.
    return;
  }
  // Fully flushed: reclaim the buffer and drop write interest.
  conn->write_buffer.clear();
  conn->write_offset = 0;
  UpdateEpollInterest(conn, conn_id);
  if (conn->close_after_flush) {
    CloseConnection(conn_id);
  }
}

void CoskqServer::HandleWritable(uint64_t conn_id) { FlushWrites(conn_id); }

void CoskqServer::UpdateEpollInterest(Connection* conn, uint64_t conn_id) {
  const bool wants_write = conn->write_offset < conn->write_buffer.size();
  if (wants_write == conn->wants_write) {
    return;
  }
  conn->wants_write = wants_write;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  if (wants_write) {
    ev.events |= EPOLLOUT;
  }
  ev.data.u64 = conn_id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void CoskqServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) {
    return;
  }
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  connections_.erase(it);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  connections_active_count_ = connections_.size();
}

// ---------------------------------------------------------------------------
// Workers.

void CoskqServer::WorkerMain() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Closed and drained.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }

    if (options_.test_solve_delay_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options_.test_solve_delay_ms));
    }

    if (job.kind == Job::Kind::kRelevant) {
      Completion completion;
      completion.conn_id = job.conn_id;
      completion.kind = Completion::Kind::kExecuted;
      completion.frame = RunRelevant(job);
      completion.latency_ms = MillisBetween(job.arrival, Clock::now());
      {
        std::lock_guard<std::mutex> lock(completions_mutex_);
        completions_.push_back(std::move(completion));
      }
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
      continue;
    }

    // One-query batch through the BatchEngine execution path: same solver
    // construction, deadline propagation, and option validation as an
    // offline batch run, so wire answers are bit-identical to in-process
    // runs by construction.
    BatchOptions batch_options;
    batch_options.solver_name = job.solver_name;
    batch_options.num_threads = 1;
    batch_options.deadline_ms = job.deadline_ms;
    batch_options.use_query_masks = options_.use_query_masks;
    const BatchEngine engine(context_, batch_options);
    const BatchOutcome outcome = engine.Run({job.query});

    Completion completion;
    completion.conn_id = job.conn_id;
    completion.latency_ms = MillisBetween(job.arrival, Clock::now());
    if (!outcome.status.ok()) {
      completion.kind = Completion::Kind::kError;
      ErrorReply err{outcome.status.code(), outcome.status.message()};
      completion.frame = EncodeFrame(Verb::kError, job.request_id,
                                     EncodeErrorReply(err));
    } else {
      const CoskqResult& r = outcome.results[0];
      QueryResult result;
      result.cost = r.cost;
      result.solve_ms = r.stats.elapsed_ms;
      result.set = r.set;
      if (!r.feasible) {
        result.outcome = QueryOutcome::kInfeasible;
        completion.kind = Completion::Kind::kInfeasible;
      } else if (r.stats.truncated) {
        result.outcome = QueryOutcome::kDeadlineTruncated;
        completion.kind = Completion::Kind::kTruncated;
      } else {
        result.outcome = QueryOutcome::kExecuted;
        completion.kind = Completion::Kind::kExecuted;
      }
      // Cache the answer under the stamps read before the solve. Truncated
      // answers are deadline-dependent, not query-determined — never cached.
      if (result_cache_ != nullptr && job.cacheable &&
          result.outcome != QueryOutcome::kDeadlineTruncated) {
        CachedAnswer answer;
        answer.outcome = static_cast<uint8_t>(result.outcome);
        answer.cost = result.cost;
        answer.solve_ms = result.solve_ms;
        answer.set = result.set;
        result_cache_->Insert(job.cache_key, job.cache_epoch,
                              job.cache_mutations, answer);
      }
      completion.frame = EncodeFrame(Verb::kResult, job.request_id,
                                     EncodeQueryResult(result));
    }

    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

const InvertedIndex* CoskqServer::RelevantPostings() {
  // With live mutations the dataset's raw object storage carries
  // unpublished placeholder slots and a concurrent appender; postings built
  // from it would race. The harvest then scans the published range instead.
  if (options_.enable_mutations) {
    return nullptr;
  }
  std::call_once(postings_once_, [this] {
    postings_ = std::make_unique<InvertedIndex>(*context_.dataset);
  });
  return postings_.get();
}

std::string CoskqServer::RunRelevant(const Job& job) {
  const Dataset& dataset = *context_.dataset;
  // Resolve the requester's keywords; position in the request is the mask
  // bit, so unknown-to-this-shard keywords just leave their bit unset.
  std::vector<std::pair<TermId, int>> bits;
  bits.reserve(job.relevant_keywords.size());
  for (size_t i = 0; i < job.relevant_keywords.size(); ++i) {
    const TermId t = dataset.vocabulary().Find(job.relevant_keywords[i]);
    if (t != Vocabulary::kInvalidTermId) {
      bits.emplace_back(t, static_cast<int>(i));
    }
  }

  std::vector<RelevantEntry> entries;
  const InvertedIndex* postings = RelevantPostings();
  if (postings != nullptr) {
    // Merge the posting lists: O(matches), and ids come out sorted.
    std::unordered_map<uint32_t, uint64_t> masks;
    for (const auto& [t, bit] : bits) {
      for (const ObjectId id : postings->Postings(t)) {
        masks[static_cast<uint32_t>(id)] |= uint64_t{1} << bit;
      }
    }
    entries.reserve(masks.size());
    for (const auto& [id, mask] : masks) {
      RelevantEntry e;
      e.object_id = id;
      const SpatialObject& obj = dataset.object(id);
      e.x = obj.location.x;
      e.y = obj.location.y;
      e.keyword_mask = mask;
      entries.push_back(e);
    }
    std::sort(entries.begin(), entries.end(),
              [](const RelevantEntry& a, const RelevantEntry& b) {
                return a.object_id < b.object_id;
              });
  } else {
    // Mutation-enabled fallback: scan the published range through the
    // release-acquire accessors (never the raw vector), so a racing append
    // is either fully visible or not at all.
    const size_t n = dataset.NumObjects();
    for (size_t id = 0; id < n; ++id) {
      const SpatialObject& obj = dataset.object(id);
      uint64_t mask = 0;
      for (const auto& [t, bit] : bits) {
        if (TermSetContains(obj.keywords, t)) {
          mask |= uint64_t{1} << bit;
        }
      }
      if (mask != 0) {
        RelevantEntry e;
        e.object_id = static_cast<uint32_t>(id);
        e.x = obj.location.x;
        e.y = obj.location.y;
        e.keyword_mask = mask;
        entries.push_back(e);
      }
    }
  }

  // Stream the harvest as chunks under the frame payload cap; every chunk
  // carries the request id, the last one clears `more`. The chunks are
  // concatenated into one completion so the event loop writes them in order.
  std::string frames;
  size_t offset = 0;
  do {
    RelevantReply chunk;
    const size_t take =
        std::min(kRelevantChunkEntries, entries.size() - offset);
    chunk.objects.assign(entries.begin() + offset,
                         entries.begin() + offset + take);
    offset += take;
    chunk.more = offset < entries.size() ? 1 : 0;
    frames += EncodeFrame(Verb::kRelevantReply, job.request_id,
                          EncodeRelevantReply(chunk));
  } while (offset < entries.size());
  return frames;
}

}  // namespace coskq
