#ifndef COSKQ_SERVER_SERVER_H_
#define COSKQ_SERVER_SERVER_H_

#include <stdint.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/result_cache.h"
#include "core/solver.h"
#include "data/query.h"
#include "index/inverted_index.h"
#include "server/codec.h"
#include "server/protocol.h"
#include "util/stats.h"
#include "util/status.h"

namespace coskq {

/// Configuration of a CoskqServer.
struct ServerOptions {
  /// Listen address. The default binds loopback only; the service speaks an
  /// unauthenticated binary protocol, so exposing it beyond localhost is a
  /// deployment decision, not a default.
  std::string host = "127.0.0.1";
  /// Listen port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Solver worker threads; 0 picks hardware_concurrency. Each worker runs
  /// one query at a time through the BatchEngine execution path.
  int num_workers = 0;
  /// Bound of the admission queue (requests waiting for a worker, excluding
  /// the ones being solved). A QUERY arriving with the queue full is shed
  /// with an OVERLOADED response instead of stalling the event loop.
  size_t queue_capacity = 64;
  /// Retry-after hint carried by OVERLOADED responses.
  uint32_t retry_after_ms = 50;
  /// Connections beyond this are accepted and immediately closed, bounding
  /// event-loop state under a connection flood.
  size_t max_connections = 1024;
  /// Per-request deadline cap: a request asking for more is clamped. 0 = no
  /// cap. Protects the worker pool from effectively-unbounded exact solves.
  double max_deadline_ms = 0.0;
  /// Hot-path switch forwarded to BatchOptions::use_query_masks.
  bool use_query_masks = true;
  /// Test/bench hook: every worker sleeps this long before solving, making
  /// queue overflow and drain timing deterministic in the loopback tests and
  /// saturation demos. 0 (the default) in production.
  double test_solve_delay_ms = 0.0;

  // Index provenance, reported verbatim through the STATS verb (the server
  // receives a ready-made context, so the host process that built or loaded
  // the index records how it did so here).
  /// True when the IR-tree was loaded from a snapshot rather than built.
  bool index_from_snapshot = false;
  /// Wall time of that build or load, in milliseconds.
  double index_prepare_ms = 0.0;
  /// Node count of the serving IR-tree (IrTree::NodeCount()).
  uint64_t index_nodes = 0;
  /// Dataset content checksum the index is bound to.
  uint64_t index_checksum = 0;

  // Live updates (protocol v3). When `enable_mutations` is true the host
  // process must also supply mutable (non-const) handles to the dataset and
  // index the context was built over; MUTATE frames are applied through
  // these on the event-loop thread (the sole mutator), so queries racing a
  // mutation observe either the old or the new index view, never a torn one.
  /// Mutable handle to the dataset behind context.dataset. Required when
  /// enable_mutations is true.
  Dataset* mutable_dataset = nullptr;
  /// Mutable handle to the index behind context.index. Required when
  /// enable_mutations is true.
  IrTree* mutable_index = nullptr;
  /// Accept MUTATE frames. When false they are answered with an
  /// Unimplemented error and the index stays read-only.
  bool enable_mutations = false;
  /// Launch a background refreeze once the pending delta reaches this many
  /// mutations. 0 disables automatic refreezes.
  size_t refreeze_threshold = 4096;
  /// Upper bound on live inserts accepted over the server's lifetime (the
  /// dataset's object array is pre-sized once at Start; see
  /// Dataset::EnableConcurrentAppends). Inserts beyond it are rejected with
  /// an OutOfRange error.
  size_t mutation_capacity = 1 << 16;

  // Result cache (protocol v6; DESIGN.md §16). Answers repeated queries
  // without re-solving; entries are invalidated by epoch/mutation stamps,
  // so cached answers stay consistent with acked MUTATEs.
  /// Byte budget of the result cache in MiB. 0 disables caching. The
  /// COSKQ_RESULT_CACHE=off environment variable force-disables it
  /// regardless (see ResultCache::ForceDisabledByEnv).
  size_t result_cache_mb = 0;
  /// Location-quantization granularity: mantissa bits kept per coordinate
  /// when forming the cache cell (see ResultCache::CellOf).
  int cache_cell_bits = 12;
};

/// Point-in-time server statistics (the STATS verb serves the same snapshot
/// over the wire; see StatsReply for field meanings).
using ServerStatsSnapshot = StatsReply;

/// A single-threaded epoll TCP front end serving CoSKQ queries from a
/// bounded worker pool over one immutable CoskqContext.
///
/// Threading model:
///  * one event-loop thread owns the listen socket, every connection, all
///    reads/writes, and the frame codecs — connection state is never shared;
///  * `num_workers` solver threads pop admitted queries from the bounded
///    queue, run them through the BatchEngine execution path (propagating
///    the per-request deadline into BatchOptions::deadline_ms), and hand the
///    encoded response back to the loop via a completion queue + eventfd;
///  * PING and STATS never enter the admission queue — the loop answers them
///    inline, so liveness probes keep working while the pool is saturated.
///
/// Backpressure: the admission queue is the only buffer between the socket
/// and the solvers. When it is full the server sheds the request with an
/// OVERLOADED response carrying a retry-after hint; it never blocks the
/// accept loop and never buffers unbounded work.
///
/// Shutdown: Shutdown() (or SIGTERM via InstallSignalHandlers) triggers a
/// graceful drain — stop accepting, answer everything already admitted,
/// flush write buffers, then close. Wait() blocks until the drain finishes.
class CoskqServer {
 public:
  /// The context must outlive the server (same contract as BatchEngine).
  CoskqServer(const CoskqContext& context, const ServerOptions& options);
  ~CoskqServer();

  CoskqServer(const CoskqServer&) = delete;
  CoskqServer& operator=(const CoskqServer&) = delete;

  /// Binds, listens, and spawns the event loop and worker threads. Returns
  /// a non-OK status if the socket could not be set up (port in use, ...).
  Status Start();

  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }

  /// True between a successful Start and the end of a drain.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests a graceful drain and returns immediately; pair with Wait().
  /// Idempotent and thread-safe.
  void Shutdown();

  /// Async-signal-safe drain request (only writes to an eventfd); this is
  /// what the SIGTERM handler calls.
  void RequestShutdownFromSignal();

  /// Blocks until the event loop and every worker have exited. Safe to call
  /// from multiple threads; returns immediately if never started.
  void Wait();

  /// Snapshot of the server counters and latency distribution.
  ServerStatsSnapshot stats() const;

  /// Installs SIGTERM/SIGINT handlers that drain `server` gracefully. At
  /// most one server per process can own the handlers; passing nullptr
  /// uninstalls. (The CLI `serve` command uses this; tests drive Shutdown
  /// directly or raise SIGTERM after installing.)
  static void InstallSignalHandlers(CoskqServer* server);

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request on its way to a worker: a QUERY solve or a
  /// RELEVANT candidate harvest (protocol v5; the scatter half of the
  /// cluster router's scatter-gather).
  struct Job {
    enum class Kind { kQuery, kRelevant };
    Kind kind = Kind::kQuery;
    uint64_t conn_id = 0;
    uint32_t request_id = 0;
    // kQuery fields.
    CoskqQuery query;
    std::string solver_name;
    double deadline_ms = 0.0;
    // kRelevant field: keywords in the requester's mask-bit order.
    std::vector<std::string> relevant_keywords;
    Clock::time_point arrival;
    // Result-cache insert state (kQuery only; cache_key.keywords empty when
    // caching is off for this request). The stamps were read on the
    // event-loop thread *before* admission — i.e. before the solve — so a
    // mutation landing mid-solve leaves the entry with an already-stale
    // stamp instead of masquerading as fresh.
    ResultCacheKey cache_key;
    bool cacheable = false;
    uint64_t cache_epoch = 0;
    uint64_t cache_mutations = 0;
  };

  /// An encoded response frame on its way back to the loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::string frame;
    /// Service latency (arrival to completion) to record; < 0 = none.
    double latency_ms = -1.0;
    /// Which aggregate counter the outcome bumps.
    enum class Kind { kExecuted, kTruncated, kInfeasible, kError } kind =
        Kind::kExecuted;
  };

  /// Per-connection state; owned and touched only by the event-loop thread.
  struct Connection {
    int fd = -1;
    FrameReader reader;
    std::string write_buffer;
    size_t write_offset = 0;
    /// Queries admitted on behalf of this connection and not yet answered.
    size_t in_flight = 0;
    /// Close once the write buffer drains (protocol error or server drain).
    bool close_after_flush = false;
    bool wants_write = false;
  };

  void LoopMain();
  void WorkerMain();

  void AcceptAll();
  void HandleReadable(uint64_t conn_id);
  void HandleWritable(uint64_t conn_id);
  void DispatchFrame(uint64_t conn_id, const Frame& frame);
  void HandleQuery(uint64_t conn_id, const Frame& frame);
  /// Admits a RELEVANT harvest through the same bounded queue as queries.
  void HandleRelevant(uint64_t conn_id, const Frame& frame);
  /// Worker-side harvest: every object whose keyword set intersects the
  /// request keywords, streamed as chunked RELEVANT_REPLY frames.
  std::string RunRelevant(const Job& job);
  /// Lazily builds the posting lists RunRelevant answers from (read-only
  /// servers only; with live mutations the harvest scans the published
  /// object range instead, so it never races an append).
  const InvertedIndex* RelevantPostings();
  /// Applies one MUTATE frame inline on the event-loop thread (the sole
  /// mutator) and acks only after the index update is visible, so a QUERY
  /// issued after the reply observes the mutation.
  void HandleMutate(uint64_t conn_id, const Frame& frame);
  void DrainCompletions();
  void SendFrame(uint64_t conn_id, Verb verb, uint32_t request_id,
                 const std::string& payload);
  void FlushWrites(uint64_t conn_id);
  void UpdateEpollInterest(Connection* conn, uint64_t conn_id);
  void CloseConnection(uint64_t conn_id);
  void BeginDrainIfRequested();
  bool DrainComplete() const;
  void RecordCompletionLocked(const Completion& c);

  CoskqContext context_;
  ServerOptions options_;
  int resolved_workers_ = 1;
  uint16_t port_ = 0;

  /// Result cache; null when disabled (options or environment). Thread-safe
  /// internally (per-shard leaf mutexes), shared by the event loop (lookups)
  /// and the workers (inserts).
  std::unique_ptr<ResultCache> result_cache_;

  /// Postings for RELEVANT harvests, built once on first use (workers race
  /// through the once-flag; never built when mutations are enabled).
  std::once_flag postings_once_;
  std::unique_ptr<InvertedIndex> postings_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: completions ready or shutdown requested.

  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;  // Loop-thread state.

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  /// Serializes concurrent Wait() calls (thread::join is not).
  std::mutex wait_mutex_;

  // Admission queue: bounded; closed on drain once empty. Mutable so the
  // const stats()/DrainComplete() readers can take the lock.
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool queue_closed_ = false;

  // Completion queue: workers -> loop.
  mutable std::mutex completions_mutex_;
  std::deque<Completion> completions_;

  // Connections: loop-thread only. Keyed by a generation id, not the fd, so
  // a completion for a closed connection can never hit a recycled fd. Ids
  // start above the reserved listen/wake epoll tags (reset in Start).
  uint64_t next_conn_id_ = 2;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  // Counters + latency window, shared between loop and workers.
  mutable std::mutex stats_mutex_;
  uint64_t connections_accepted_ = 0;
  uint64_t queries_received_ = 0;
  uint64_t queries_executed_ = 0;
  uint64_t queries_shed_ = 0;
  uint64_t queries_truncated_ = 0;
  uint64_t queries_infeasible_ = 0;
  uint64_t queries_errored_ = 0;
  uint64_t queries_active_ = 0;  // Admitted, not yet answered.
  /// Mirror of connections_.size() readable off the loop thread.
  uint64_t connections_active_count_ = 0;
  RunningStat latency_ms_;
  /// Ring of the most recent service latencies for the percentile snapshot.
  std::vector<double> latency_window_;
  size_t latency_window_pos_ = 0;
  Clock::time_point start_time_;
};

}  // namespace coskq

#endif  // COSKQ_SERVER_SERVER_H_
