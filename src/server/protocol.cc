#include "server/protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace coskq {

namespace {

/// Appends fixed-width little-endian integers / IEEE doubles to a string.
/// The protocol is explicit-byte-order on the wire, so encode/decode never
/// depend on host endianness or struct layout.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutDouble(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutString(const std::string& s) {
    PutU16(static_cast<uint16_t>(s.size()));
    out_->append(s);
  }

 private:
  void PutLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string* out_;
};

/// Bounds-checked little-endian reads over an untrusted payload. Every
/// getter returns false once the payload is exhausted; decoders propagate
/// that instead of reading past the end.
class WireReader {
 public:
  explicit WireReader(const std::string& data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) {
      return false;
    }
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint64_t raw = 0;
    if (!GetLe(&raw, 2)) {
      return false;
    }
    *v = static_cast<uint16_t>(raw);
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint64_t raw = 0;
    if (!GetLe(&raw, 4)) {
      return false;
    }
    *v = static_cast<uint32_t>(raw);
    return true;
  }
  bool GetU64(uint64_t* v) { return GetLe(v, 8); }
  bool GetDouble(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) {
      return false;
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint16_t len = 0;
    if (!GetU16(&len) || pos_ + len > data_.size()) {
      return false;
    }
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool GetLe(uint64_t* v, int bytes) {
    if (pos_ + static_cast<size_t>(bytes) > data_.size()) {
      return false;
    }
    uint64_t raw = 0;
    for (int i = 0; i < bytes; ++i) {
      raw |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += bytes;
    *v = raw;
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
};

}  // namespace

bool IsKnownVerb(uint8_t v) {
  switch (static_cast<Verb>(v)) {
    case Verb::kQuery:
    case Verb::kStats:
    case Verb::kPing:
    case Verb::kMutate:
    case Verb::kRelevant:
    case Verb::kResult:
    case Verb::kStatsReply:
    case Verb::kPong:
    case Verb::kOverloaded:
    case Verb::kError:
    case Verb::kMutateReply:
    case Verb::kRelevantReply:
      return true;
  }
  return false;
}

std::string EncodeFrame(Verb verb, uint32_t request_id,
                        const std::string& payload) {
  return EncodeFrameWithVersion(kProtocolVersion, verb, request_id, payload);
}

std::string EncodeFrameWithVersion(uint8_t version, Verb verb,
                                   uint32_t request_id,
                                   const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  WireWriter w(&frame);
  w.PutU16(kProtocolMagic);
  w.PutU8(version);
  w.PutU8(static_cast<uint8_t>(verb));
  w.PutU32(request_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return frame;
}

std::string SolverRegistryName(SolverKind kind, CostType cost) {
  const bool maxsum = cost == CostType::kMaxSum;
  switch (kind) {
    case SolverKind::kExact:
      return maxsum ? "maxsum-exact" : "dia-exact";
    case SolverKind::kAppro:
      return maxsum ? "maxsum-appro" : "dia-appro";
    case SolverKind::kCaoExact:
      return maxsum ? "cao-exact-maxsum" : "cao-exact-dia";
    case SolverKind::kCaoAppro1:
      return maxsum ? "cao-appro1-maxsum" : "cao-appro1-dia";
    case SolverKind::kCaoAppro2:
      return maxsum ? "cao-appro2-maxsum" : "cao-appro2-dia";
    case SolverKind::kBruteForce:
      return maxsum ? "brute-force-maxsum" : "brute-force-dia";
  }
  return "";
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string payload;
  WireWriter w(&payload);
  w.PutDouble(request.x);
  w.PutDouble(request.y);
  w.PutU8(static_cast<uint8_t>(request.cost_type));
  w.PutU8(static_cast<uint8_t>(request.solver));
  w.PutDouble(request.deadline_ms);
  w.PutU16(static_cast<uint16_t>(request.keywords.size()));
  for (const std::string& kw : request.keywords) {
    w.PutString(kw);
  }
  return payload;
}

bool DecodeQueryRequest(const std::string& payload, QueryRequest* out) {
  WireReader r(payload);
  uint8_t cost = 0;
  uint8_t solver = 0;
  uint16_t num_keywords = 0;
  if (!r.GetDouble(&out->x) || !r.GetDouble(&out->y) || !r.GetU8(&cost) ||
      !r.GetU8(&solver) || !r.GetDouble(&out->deadline_ms) ||
      !r.GetU16(&num_keywords)) {
    return false;
  }
  if (cost > static_cast<uint8_t>(CostType::kDia)) {
    return false;
  }
  out->cost_type = static_cast<CostType>(cost);
  out->solver = static_cast<SolverKind>(solver);
  if (SolverRegistryName(out->solver, out->cost_type).empty()) {
    return false;
  }
  out->keywords.clear();
  out->keywords.reserve(num_keywords);
  for (uint16_t i = 0; i < num_keywords; ++i) {
    std::string kw;
    if (!r.GetString(&kw)) {
      return false;
    }
    out->keywords.push_back(std::move(kw));
  }
  return r.AtEnd();
}

std::string EncodeQueryResult(const QueryResult& result) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU8(static_cast<uint8_t>(result.outcome));
  w.PutDouble(result.cost);
  w.PutDouble(result.solve_ms);
  w.PutU32(static_cast<uint32_t>(result.set.size()));
  for (uint32_t id : result.set) {
    w.PutU32(id);
  }
  return payload;
}

bool DecodeQueryResult(const std::string& payload, QueryResult* out) {
  WireReader r(payload);
  uint8_t outcome = 0;
  uint32_t count = 0;
  if (!r.GetU8(&outcome) ||
      outcome > static_cast<uint8_t>(QueryOutcome::kInfeasible) ||
      !r.GetDouble(&out->cost) || !r.GetDouble(&out->solve_ms) ||
      !r.GetU32(&count)) {
    return false;
  }
  out->outcome = static_cast<QueryOutcome>(outcome);
  out->set.clear();
  out->set.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) {
      return false;
    }
    out->set.push_back(id);
  }
  return r.AtEnd();
}

std::string EncodeOverloadedReply(const OverloadedReply& reply) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU32(reply.retry_after_ms);
  w.PutU32(reply.queue_depth);
  return payload;
}

bool DecodeOverloadedReply(const std::string& payload, OverloadedReply* out) {
  WireReader r(payload);
  return r.GetU32(&out->retry_after_ms) && r.GetU32(&out->queue_depth) &&
         r.AtEnd();
}

std::string EncodeErrorReply(const ErrorReply& reply) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU16(static_cast<uint16_t>(reply.code));
  w.PutString(reply.message);
  return payload;
}

bool DecodeErrorReply(const std::string& payload, ErrorReply* out) {
  WireReader r(payload);
  uint16_t code = 0;
  if (!r.GetU16(&code) || !r.GetString(&out->message) || !r.AtEnd()) {
    return false;
  }
  if (code > static_cast<uint16_t>(StatusCode::kInternal)) {
    return false;
  }
  out->code = static_cast<StatusCode>(code);
  return true;
}

std::string EncodeMutateRequest(const MutateRequest& request) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU8(static_cast<uint8_t>(request.op));
  if (request.op == MutateRequest::Op::kInsert) {
    w.PutDouble(request.x);
    w.PutDouble(request.y);
    w.PutU16(static_cast<uint16_t>(request.keywords.size()));
    for (const std::string& kw : request.keywords) {
      w.PutString(kw);
    }
  } else {
    w.PutU32(request.object_id);
  }
  return payload;
}

bool DecodeMutateRequest(const std::string& payload, MutateRequest* out) {
  WireReader r(payload);
  uint8_t op = 0;
  if (!r.GetU8(&op) || op > static_cast<uint8_t>(MutateRequest::Op::kRemove)) {
    return false;
  }
  out->op = static_cast<MutateRequest::Op>(op);
  if (out->op == MutateRequest::Op::kInsert) {
    uint16_t num_keywords = 0;
    if (!r.GetDouble(&out->x) || !r.GetDouble(&out->y) ||
        !r.GetU16(&num_keywords)) {
      return false;
    }
    out->keywords.clear();
    out->keywords.reserve(num_keywords);
    for (uint16_t i = 0; i < num_keywords; ++i) {
      std::string kw;
      if (!r.GetString(&kw)) {
        return false;
      }
      out->keywords.push_back(std::move(kw));
    }
  } else {
    if (!r.GetU32(&out->object_id)) {
      return false;
    }
  }
  return r.AtEnd();
}

std::string EncodeMutateReply(const MutateReply& reply) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU32(reply.object_id);
  w.PutU64(reply.delta_size);
  w.PutU64(reply.epoch);
  return payload;
}

bool DecodeMutateReply(const std::string& payload, MutateReply* out) {
  WireReader r(payload);
  return r.GetU32(&out->object_id) && r.GetU64(&out->delta_size) &&
         r.GetU64(&out->epoch) && r.AtEnd();
}

std::string EncodeRelevantRequest(const RelevantRequest& request) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU16(static_cast<uint16_t>(request.keywords.size()));
  for (const std::string& kw : request.keywords) {
    w.PutString(kw);
  }
  return payload;
}

bool DecodeRelevantRequest(const std::string& payload, RelevantRequest* out) {
  WireReader r(payload);
  uint16_t num_keywords = 0;
  if (!r.GetU16(&num_keywords) || num_keywords == 0 ||
      num_keywords > kMaxRelevantKeywords) {
    return false;
  }
  out->keywords.clear();
  out->keywords.reserve(num_keywords);
  for (uint16_t i = 0; i < num_keywords; ++i) {
    std::string kw;
    if (!r.GetString(&kw)) {
      return false;
    }
    out->keywords.push_back(std::move(kw));
  }
  return r.AtEnd();
}

std::string EncodeRelevantReply(const RelevantReply& reply) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU8(reply.more);
  w.PutU32(static_cast<uint32_t>(reply.objects.size()));
  for (const RelevantEntry& e : reply.objects) {
    w.PutU32(e.object_id);
    w.PutDouble(e.x);
    w.PutDouble(e.y);
    w.PutU64(e.keyword_mask);
  }
  return payload;
}

bool DecodeRelevantReply(const std::string& payload, RelevantReply* out) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.GetU8(&out->more) || out->more > 1 || !r.GetU32(&count)) {
    return false;
  }
  // Each entry is 28 payload bytes, so `count` is bounded by the frame cap;
  // checking before the reserve keeps a hostile length from over-allocating.
  constexpr size_t kEntryBytes = 28;
  if (count > kMaxPayloadBytes / kEntryBytes) {
    return false;
  }
  out->objects.clear();
  out->objects.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RelevantEntry e;
    if (!r.GetU32(&e.object_id) || !r.GetDouble(&e.x) || !r.GetDouble(&e.y) ||
        !r.GetU64(&e.keyword_mask)) {
      return false;
    }
    out->objects.push_back(e);
  }
  return r.AtEnd();
}

std::string EncodeStatsReply(const StatsReply& reply) {
  std::string payload;
  WireWriter w(&payload);
  w.PutU64(reply.connections_accepted);
  w.PutU64(reply.connections_active);
  w.PutU64(reply.queries_received);
  w.PutU64(reply.queries_executed);
  w.PutU64(reply.queries_shed);
  w.PutU64(reply.queries_truncated);
  w.PutU64(reply.queries_infeasible);
  w.PutU64(reply.queries_errored);
  w.PutU64(reply.queries_active);
  w.PutU64(reply.queue_depth);
  w.PutDouble(reply.uptime_s);
  w.PutDouble(reply.mean_ms);
  w.PutDouble(reply.p50_ms);
  w.PutDouble(reply.p95_ms);
  w.PutDouble(reply.p99_ms);
  w.PutU8(reply.index_from_snapshot);
  w.PutDouble(reply.index_prepare_ms);
  w.PutU64(reply.index_nodes);
  w.PutU64(reply.index_checksum);
  w.PutU64(reply.index_epoch);
  w.PutU64(reply.delta_size);
  w.PutU64(reply.mutations_applied);
  w.PutU64(reply.refreezes_completed);
  w.PutU8(reply.index_layout);
  w.PutU8(reply.index_cold);
  w.PutU64(reply.body_bytes);
  w.PutU64(reply.body_resident_bytes);
  w.PutU64(reply.memory_budget_bytes);
  w.PutU64(reply.budget_trims);
  w.PutU64(reply.major_faults);
  w.PutU64(reply.minor_faults);
  w.PutU8(reply.is_router);
  w.PutU32(reply.cluster_shards);
  w.PutU64(reply.manifest_checksum);
  w.PutU64(reply.cluster_dataset_checksum);
  w.PutU64(reply.cluster_objects);
  w.PutU64(reply.shards_harvested);
  w.PutU64(reply.shards_pruned_keyword);
  w.PutU64(reply.shards_pruned_distance);
  w.PutU64(reply.probe_queries);
  // The fixed fields are 349 bytes (292 ahead of the shard array plus the
  // 57-byte v6 cache tail behind it) and each entry 28; the cap keeps the
  // worst-case STATS payload inside one frame, so the encoder can never
  // emit what a peer would reject as oversized. Past the cap the trailing
  // shards' windows are dropped (the aggregate counters above still cover
  // them).
  static_assert(292 + 57 + kMaxShardStats * 28 <= kMaxPayloadBytes,
                "worst-case STATS payload must fit one frame");
  const size_t num_shards =
      std::min(reply.shard_stats.size(), kMaxShardStats);
  w.PutU32(static_cast<uint32_t>(num_shards));
  for (size_t i = 0; i < num_shards; ++i) {
    const StatsReply::ShardStats& s = reply.shard_stats[i];
    w.PutU32(s.shard_id);
    w.PutU64(s.fanout);
    w.PutDouble(s.p50_ms);
    w.PutDouble(s.p95_ms);
  }
  // v6 result-cache tail.
  w.PutU8(reply.cache_enabled);
  w.PutU64(reply.cache_hits);
  w.PutU64(reply.cache_misses);
  w.PutU64(reply.cache_evictions);
  w.PutU64(reply.cache_invalidations);
  w.PutU64(reply.cache_resident_bytes);
  w.PutU64(reply.cache_budget_bytes);
  w.PutU64(reply.cache_entries);
  return payload;
}

bool DecodeStatsReply(const std::string& payload, StatsReply* out) {
  WireReader r(payload);
  uint32_t num_shards = 0;
  const bool fixed_ok =
      r.GetU64(&out->connections_accepted) &&
      r.GetU64(&out->connections_active) &&
      r.GetU64(&out->queries_received) &&
      r.GetU64(&out->queries_executed) && r.GetU64(&out->queries_shed) &&
      r.GetU64(&out->queries_truncated) &&
      r.GetU64(&out->queries_infeasible) &&
      r.GetU64(&out->queries_errored) && r.GetU64(&out->queries_active) &&
      r.GetU64(&out->queue_depth) && r.GetDouble(&out->uptime_s) &&
      r.GetDouble(&out->mean_ms) && r.GetDouble(&out->p50_ms) &&
      r.GetDouble(&out->p95_ms) && r.GetDouble(&out->p99_ms) &&
      r.GetU8(&out->index_from_snapshot) && out->index_from_snapshot <= 1 &&
      r.GetDouble(&out->index_prepare_ms) && r.GetU64(&out->index_nodes) &&
      r.GetU64(&out->index_checksum) && r.GetU64(&out->index_epoch) &&
      r.GetU64(&out->delta_size) && r.GetU64(&out->mutations_applied) &&
      r.GetU64(&out->refreezes_completed) && r.GetU8(&out->index_layout) &&
      out->index_layout <= 1 && r.GetU8(&out->index_cold) &&
      out->index_cold <= 1 && r.GetU64(&out->body_bytes) &&
      r.GetU64(&out->body_resident_bytes) &&
      r.GetU64(&out->memory_budget_bytes) && r.GetU64(&out->budget_trims) &&
      r.GetU64(&out->major_faults) && r.GetU64(&out->minor_faults) &&
      r.GetU8(&out->is_router) && out->is_router <= 1 &&
      r.GetU32(&out->cluster_shards) && r.GetU64(&out->manifest_checksum) &&
      r.GetU64(&out->cluster_dataset_checksum) &&
      r.GetU64(&out->cluster_objects) && r.GetU64(&out->shards_harvested) &&
      r.GetU64(&out->shards_pruned_keyword) &&
      r.GetU64(&out->shards_pruned_distance) &&
      r.GetU64(&out->probe_queries) && r.GetU32(&num_shards);
  if (!fixed_ok || num_shards > kMaxShardStats) {
    return false;
  }
  out->shard_stats.clear();
  out->shard_stats.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    StatsReply::ShardStats s;
    if (!r.GetU32(&s.shard_id) || !r.GetU64(&s.fanout) ||
        !r.GetDouble(&s.p50_ms) || !r.GetDouble(&s.p95_ms)) {
      return false;
    }
    out->shard_stats.push_back(s);
  }
  const bool cache_ok =
      r.GetU8(&out->cache_enabled) && out->cache_enabled <= 1 &&
      r.GetU64(&out->cache_hits) && r.GetU64(&out->cache_misses) &&
      r.GetU64(&out->cache_evictions) &&
      r.GetU64(&out->cache_invalidations) &&
      r.GetU64(&out->cache_resident_bytes) &&
      r.GetU64(&out->cache_budget_bytes) && r.GetU64(&out->cache_entries);
  return cache_ok && r.AtEnd();
}

std::string StatsReply::ToString() const {
  std::string s = "accepted=" + std::to_string(connections_accepted) +
                  " conns=" + std::to_string(connections_active) +
                  " received=" + std::to_string(queries_received) +
                  " executed=" + std::to_string(queries_executed) +
                  " shed=" + std::to_string(queries_shed) +
                  " active=" + std::to_string(queries_active) +
                  " queued=" + std::to_string(queue_depth) +
                  " latency{avg=" + FormatMillis(mean_ms) +
                  " p50=" + FormatMillis(p50_ms) +
                  " p95=" + FormatMillis(p95_ms) +
                  " p99=" + FormatMillis(p99_ms) + "}";
  if (queries_truncated > 0) {
    s += " truncated=" + std::to_string(queries_truncated);
  }
  if (queries_infeasible > 0) {
    s += " infeasible=" + std::to_string(queries_infeasible);
  }
  if (queries_errored > 0) {
    s += " errors=" + std::to_string(queries_errored);
  }
  s += std::string(" index{") +
       (index_from_snapshot != 0 ? "snapshot" : "built") +
       " prepare=" + FormatMillis(index_prepare_ms) +
       " nodes=" + std::to_string(index_nodes) + "}";
  if (mutations_applied > 0 || delta_size > 0 || index_epoch > 0) {
    s += " live{epoch=" + std::to_string(index_epoch) +
         " delta=" + std::to_string(delta_size) +
         " mutations=" + std::to_string(mutations_applied) +
         " refreezes=" + std::to_string(refreezes_completed) + "}";
  }
  s += std::string(" mem{layout=") +
       (index_layout == 1 ? "level-grouped" : "bfs") +
       (index_cold != 0 ? " cold" : " warm") +
       " body=" + std::to_string(body_bytes) +
       " resident=" + std::to_string(body_resident_bytes);
  if (memory_budget_bytes > 0) {
    s += " budget=" + std::to_string(memory_budget_bytes) +
         " trims=" + std::to_string(budget_trims);
  }
  s += " majflt=" + std::to_string(major_faults) +
       " minflt=" + std::to_string(minor_faults) + "}";
  if (is_router != 0) {
    const uint64_t considered =
        shards_harvested + shards_pruned_keyword + shards_pruned_distance;
    s += " cluster{shards=" + std::to_string(cluster_shards) +
         " harvested=" + std::to_string(shards_harvested) +
         " pruned_kw=" + std::to_string(shards_pruned_keyword) +
         " pruned_dist=" + std::to_string(shards_pruned_distance) +
         " probes=" + std::to_string(probe_queries);
    if (considered > 0) {
      const double rate =
          static_cast<double>(shards_pruned_keyword +
                              shards_pruned_distance) /
          static_cast<double>(considered);
      char buf[32];
      std::snprintf(buf, sizeof(buf), " prune_rate=%.3f", rate);
      s += buf;
    }
    for (const ShardStats& sh : shard_stats) {
      s += " shard" + std::to_string(sh.shard_id) + "{fanout=" +
           std::to_string(sh.fanout) + " p50=" + FormatMillis(sh.p50_ms) +
           " p95=" + FormatMillis(sh.p95_ms) + "}";
    }
    s += "}";
  }
  if (cache_enabled != 0) {
    const uint64_t lookups = cache_hits + cache_misses;
    s += " cache{hits=" + std::to_string(cache_hits) +
         " misses=" + std::to_string(cache_misses) +
         " evictions=" + std::to_string(cache_evictions) +
         " invalidations=" + std::to_string(cache_invalidations) +
         " entries=" + std::to_string(cache_entries) +
         " resident=" + std::to_string(cache_resident_bytes) +
         " budget=" + std::to_string(cache_budget_bytes);
    if (lookups > 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " hit_rate=%.3f",
                    static_cast<double>(cache_hits) /
                        static_cast<double>(lookups));
      s += buf;
    }
    s += "}";
  }
  return s;
}

}  // namespace coskq
