#ifndef COSKQ_SERVER_CLIENT_H_
#define COSKQ_SERVER_CLIENT_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "server/codec.h"
#include "server/protocol.h"
#include "util/status.h"

namespace coskq {

/// A reply to one QUERY: either a solver result, an OVERLOADED shed, or an
/// application-level ERROR. All three are in-band protocol outcomes, kept
/// apart from transport failures (which surface as a non-OK Status).
struct QueryReply {
  enum class Kind { kResult, kOverloaded, kError };
  Kind kind = Kind::kResult;
  /// Valid when kind == kResult.
  QueryResult result;
  /// Valid when kind == kOverloaded.
  OverloadedReply overloaded;
  /// Valid when kind == kError.
  ErrorReply error;
};

/// Connection robustness knobs. The defaults reproduce the historical
/// behavior (blocking connect, no I/O deadline, a single attempt); the
/// cluster router and coskq_load opt into timeouts and bounded retry so a
/// shard restart shows up as a short reconnect instead of a hang.
struct ClientOptions {
  /// Per-attempt connect timeout; 0 = the OS default (blocking connect).
  double connect_timeout_ms = 0.0;
  /// Per-syscall send/receive deadline on the connected socket; 0 = none.
  /// A request that trips it surfaces as an IoError mentioning "timed out".
  double io_timeout_ms = 0.0;
  /// Total connect attempts. Only *transient* failures are retried
  /// (refused, unreachable, timed out); a bad address fails immediately.
  int max_connect_attempts = 1;
  /// Sleep before the first retry; doubles after every failed attempt.
  double retry_backoff_ms = 50.0;
};

/// Blocking TCP client for the CoSKQ wire protocol. Used by the tests and
/// the coskq_load generator; deliberately minimal — one socket, synchronous
/// round-trips, plus a raw Send/Receive pair for pipelined use.
///
/// Not thread-safe; use one client per thread.
class CoskqClient {
 public:
  CoskqClient() = default;
  ~CoskqClient();

  CoskqClient(const CoskqClient&) = delete;
  CoskqClient& operator=(const CoskqClient&) = delete;

  /// Connects to host:port (IPv4 dotted quad). The two-argument form keeps
  /// the historical blocking single-attempt behavior.
  Status Connect(const std::string& host, uint16_t port);
  Status Connect(const std::string& host, uint16_t port,
                 const ClientOptions& options);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Synchronous round-trips. Each sends one request frame and blocks for
  /// the response with the matching request id (frames for other ids — not
  /// expected from a compliant server on a synchronous connection — are
  /// skipped).
  StatusOr<QueryReply> Query(const QueryRequest& request);
  StatusOr<StatsReply> Stats();
  Status Ping();
  /// One live index update (protocol v3). A successful reply means the
  /// mutation is applied server-side: a Query issued afterwards on any
  /// connection observes it. Application-level rejections (mutations
  /// disabled, unknown keyword, unknown object id, capacity exhausted)
  /// surface as the server's Status, transport failures as IoError.
  StatusOr<MutateReply> Mutate(const MutateRequest& request);
  /// One RELEVANT harvest (protocol v5): sends the keywords and collects
  /// the chunked reply stream into a single entry list (ascending object
  /// id). An in-band ERROR surfaces as the server's Status.
  StatusOr<std::vector<RelevantEntry>> Relevant(
      const RelevantRequest& request);

  /// Pipelining primitives: send without waiting, then collect responses.
  /// Returns the request id assigned to the frame.
  StatusOr<uint32_t> SendQuery(const QueryRequest& request);
  /// Receives the next frame of any verb (blocking). EOF surfaces as an
  /// IoError mentioning "closed".
  StatusOr<Frame> ReceiveFrame();

  /// Parses a response frame into a QueryReply. Corrupt payloads and
  /// non-QUERY response verbs are a Corruption error.
  static StatusOr<QueryReply> ParseQueryReply(const Frame& frame);

 private:
  Status SendFrame(Verb verb, uint32_t request_id,
                   const std::string& payload);
  StatusOr<Frame> ReceiveMatching(uint32_t request_id);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  FrameReader reader_;
};

}  // namespace coskq

#endif  // COSKQ_SERVER_CLIENT_H_
