#ifndef COSKQ_SERVER_PROTOCOL_H_
#define COSKQ_SERVER_PROTOCOL_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "core/cost.h"
#include "util/status.h"

namespace coskq {

/// The CoSKQ wire protocol: length-prefixed binary frames over TCP, all
/// integers and doubles little-endian.
///
/// Frame layout (header is kFrameHeaderBytes, payload follows immediately):
///
///   offset  size  field
///   0       2     magic       0x4351 ("QC" on the wire)
///   2       1     version     kProtocolVersion
///   3       1     verb        Verb enumerator
///   4       4     request_id  echoed verbatim in the response frame
///   8       4     payload_len bytes after the header, <= kMaxPayloadBytes
///
/// A connection carries independent request/response pairs matched by
/// request_id; the server answers QUERY frames out of order with respect to
/// PING/STATS (which never enter the admission queue), so clients that
/// pipeline must match on request_id, not arrival order.

inline constexpr uint16_t kProtocolMagic = 0x4351;
/// Version 2 extended StatsReply with index-provenance fields (snapshot vs
/// rebuild, prepare time, node count, dataset checksum). Version 3 added the
/// MUTATE verb (live index updates) and the live-update StatsReply fields
/// (index epoch, delta size, mutation/refreeze counters). Version 4 added
/// the out-of-core StatsReply fields (frozen body layout, cold mapping,
/// residency/budget counters, page faults). Version 5 added the cluster
/// layer: the RELEVANT verb (per-shard candidate harvest, chunked replies)
/// and the router StatsReply fields (shard manifest identity, fan-out and
/// prune counters, per-shard latency). Version 6 added the result-cache
/// StatsReply tail (hit/miss/evict/invalidate counters, resident and budget
/// bytes, entry count) behind the shard-stats array.
inline constexpr uint8_t kProtocolVersion = 6;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on a frame payload. A QUERY is a handful of keywords and a
/// RESULT a handful of object ids, so 1 MiB is generous; anything larger is
/// a corrupt or hostile stream and is rejected before buffering.
inline constexpr size_t kMaxPayloadBytes = 1u << 20;

/// Frame verbs. Requests are 1..15, responses 17..31 so a stray response
/// fed to the server (or vice versa) is caught at dispatch.
enum class Verb : uint8_t {
  kQuery = 1,
  kStats = 2,
  kPing = 3,
  kMutate = 4,
  kRelevant = 5,
  kResult = 17,
  kStatsReply = 18,
  kPong = 19,
  kOverloaded = 20,
  kError = 21,
  kMutateReply = 22,
  kRelevantReply = 23,
};

/// True iff `v` holds a defined Verb enumerator.
bool IsKnownVerb(uint8_t v);

/// One decoded frame: the header fields plus the raw payload bytes.
struct Frame {
  Verb verb = Verb::kPing;
  uint32_t request_id = 0;
  std::string payload;
};

/// Encodes a complete frame (header + payload) ready to write to a socket.
std::string EncodeFrame(Verb verb, uint32_t request_id,
                        const std::string& payload);

/// As EncodeFrame, but stamps an explicit version byte. Used by the server
/// to answer a version-mismatched client in the client's own version, so the
/// peer can decode the error instead of discarding the frame.
std::string EncodeFrameWithVersion(uint8_t version, Verb verb,
                                   uint32_t request_id,
                                   const std::string& payload);

/// Solver families selectable over the wire. Combined with the CostType a
/// family names one registry solver (see SolverRegistryName).
enum class SolverKind : uint8_t {
  kExact = 0,
  kAppro = 1,
  kCaoExact = 2,
  kCaoAppro1 = 3,
  kCaoAppro2 = 4,
  kBruteForce = 5,
};

/// Maps (kind, cost) to the MakeSolver registry name, e.g.
/// (kAppro, kMaxSum) -> "maxsum-appro". Returns an empty string for an
/// out-of-range kind byte.
std::string SolverRegistryName(SolverKind kind, CostType cost);

/// QUERY payload: the query location and keywords (as strings — the server
/// owns the vocabulary interning), the solver selection, and the per-request
/// deadline propagated into BatchOptions::deadline_ms (0 = none).
struct QueryRequest {
  double x = 0.0;
  double y = 0.0;
  CostType cost_type = CostType::kMaxSum;
  SolverKind solver = SolverKind::kAppro;
  double deadline_ms = 0.0;
  std::vector<std::string> keywords;
};

/// MUTATE payload (protocol v3): one live index update. Inserts carry a
/// location and string keywords (which must already exist in the server's
/// vocabulary — the vocabulary is the trust boundary: anonymous writers may
/// place objects, not grow the term space); removes carry the object id.
struct MutateRequest {
  enum class Op : uint8_t { kInsert = 0, kRemove = 1 };
  Op op = Op::kInsert;
  // kInsert fields.
  double x = 0.0;
  double y = 0.0;
  std::vector<std::string> keywords;
  // kRemove field.
  uint32_t object_id = 0;
};

/// MUTATE_REPLY payload. The reply is sent only after the mutation is
/// applied to the index, so a QUERY issued after receiving it observes the
/// update (acked-write freshness).
struct MutateReply {
  /// Id of the inserted object, or the removed id echoed back.
  uint32_t object_id = 0;
  /// Pending delta mutations after this one (what the refreeze threshold
  /// watches).
  uint64_t delta_size = 0;
  /// Index epoch at reply time (bumped by every background refreeze swap).
  uint64_t epoch = 0;
};

/// Keyword-position masks in a RELEVANT reply are a single uint64, so a
/// harvest request carries at most this many keywords. (Far above any paper
/// query; the router splits a wider canonical keyword set into multiple
/// RELEVANT harvests of this size and ORs the per-chunk masks, so QUERY
/// itself has no keyword limit beyond the u16 wire count.)
inline constexpr size_t kMaxRelevantKeywords = 64;

/// RELEVANT payload (protocol v5): asks a shard server for every object
/// whose keyword set intersects `keywords`. This is the router's candidate
/// harvest — the scatter half of scatter-gather. Keywords are strings (the
/// shard owns its own interning); a keyword unknown to the shard simply
/// matches nothing, it is not an error (shards hold vocabulary subsets).
/// The keyword order is the mask-bit order of the reply entries, so the
/// router sends them in a canonical order (ascending global term id).
struct RelevantRequest {
  std::vector<std::string> keywords;
};

/// One harvested object in a RELEVANT_REPLY chunk.
struct RelevantEntry {
  /// Shard-local object id (the router maps it to a global id through the
  /// manifest).
  uint32_t object_id = 0;
  double x = 0.0;
  double y = 0.0;
  /// Bit i set iff the object contains keywords[i] of the request.
  uint64_t keyword_mask = 0;
};

/// RELEVANT_REPLY payload. A harvest larger than one frame is streamed as
/// multiple chunks with the same request id; every chunk but the last sets
/// `more`. Entries are in ascending object-id order across the whole stream.
struct RelevantReply {
  uint8_t more = 0;
  std::vector<RelevantEntry> objects;
};

/// Entries per RELEVANT_REPLY chunk: 8192 entries x 28 bytes is ~229 KiB,
/// comfortably under kMaxPayloadBytes while keeping chunk count low.
inline constexpr size_t kRelevantChunkEntries = 8192;

/// Solver outcome reported in a RESULT payload.
enum class QueryOutcome : uint8_t {
  /// Solved to completion.
  kExecuted = 0,
  /// The per-request deadline fired; the reply carries the incumbent.
  kDeadlineTruncated = 1,
  /// Some query keyword matches no object; the set is empty, cost +inf.
  kInfeasible = 2,
};

/// RESULT payload.
struct QueryResult {
  QueryOutcome outcome = QueryOutcome::kExecuted;
  double cost = 0.0;
  /// Server-side solve time (solver-reported elapsed_ms).
  double solve_ms = 0.0;
  std::vector<uint32_t> set;
};

/// OVERLOADED payload: the admission queue was full. The client should back
/// off for ~retry_after_ms before retrying; queue_depth is informational.
struct OverloadedReply {
  uint32_t retry_after_ms = 0;
  uint32_t queue_depth = 0;
};

/// ERROR payload: a Status the server could not express as a RESULT
/// (malformed request payload, unknown solver, invalid deadline, draining).
struct ErrorReply {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// STATS payload: a point-in-time snapshot of the server counters and the
/// service-latency distribution (arrival to response enqueue) over the most
/// recent window.
struct StatsReply {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t queries_received = 0;
  uint64_t queries_executed = 0;
  uint64_t queries_shed = 0;
  uint64_t queries_truncated = 0;
  uint64_t queries_infeasible = 0;
  uint64_t queries_errored = 0;
  uint64_t queries_active = 0;
  uint64_t queue_depth = 0;
  double uptime_s = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;

  // Index provenance (filled from ServerOptions by the host process): how
  // the IR-tree this server answers from came to be.
  /// 1 if the index was loaded from a snapshot file, 0 if built in-process.
  uint8_t index_from_snapshot = 0;
  /// Wall time of that build or load, in milliseconds.
  double index_prepare_ms = 0.0;
  /// Node count of the serving IR-tree.
  uint64_t index_nodes = 0;
  /// Dataset content checksum the index is bound to (the same digest a
  /// snapshot embeds; see Dataset::ContentChecksum).
  uint64_t index_checksum = 0;

  // Live-update counters (protocol v3; zero when mutations are disabled).
  /// Index epoch: number of completed refreeze swaps observed by queries.
  uint64_t index_epoch = 0;
  /// Pending delta mutations (inserts + tombstones) right now.
  uint64_t delta_size = 0;
  /// Total mutations applied since startup.
  uint64_t mutations_applied = 0;
  /// Total background refreezes completed since startup.
  uint64_t refreezes_completed = 0;

  // Out-of-core counters (protocol v4; see IndexMemoryStats). Zero/bfs for
  // warm in-memory serving.
  /// FrozenLayout id of the serving body (0 = bfs, 1 = level-grouped).
  uint8_t index_layout = 0;
  /// 1 when the snapshot mapping is cold (pages fault in on demand).
  uint8_t index_cold = 0;
  /// Frozen body size and its resident subset, in bytes.
  uint64_t body_bytes = 0;
  uint64_t body_resident_bytes = 0;
  /// Memory budget (0 = uncapped) and trim count (see MaybeEnforceBudget).
  uint64_t memory_budget_bytes = 0;
  uint64_t budget_trims = 0;
  /// Cumulative process page faults (getrusage): major faults are the disk
  /// reads cold serving is judged by.
  uint64_t major_faults = 0;
  uint64_t minor_faults = 0;

  // Cluster routing (protocol v5; all-zero on a plain shard/single server).
  /// Per-shard observability reported by a router.
  struct ShardStats {
    uint32_t shard_id = 0;
    /// RELEVANT harvests sent to this shard.
    uint64_t fanout = 0;
    /// Harvest round-trip latency percentiles over the recent window.
    double p50_ms = 0.0;
    double p95_ms = 0.0;
  };
  /// 1 when this STATS comes from a scatter-gather router.
  uint8_t is_router = 0;
  /// Shard count of the serving manifest.
  uint32_t cluster_shards = 0;
  /// Manifest identity: the manifest file's own content checksum plus the
  /// full-dataset checksum and object count it was cut from — enough for a
  /// client to pin exactly which partition it is talking to.
  uint64_t manifest_checksum = 0;
  uint64_t cluster_dataset_checksum = 0;
  uint64_t cluster_objects = 0;
  /// Total RELEVANT harvests actually sent (post-pruning fan-out).
  uint64_t shards_harvested = 0;
  /// Shards skipped because no query keyword hit their Bloom signature.
  uint64_t shards_pruned_keyword = 0;
  /// Shards skipped by the distance-owner lower bound (MINDIST > best-cost
  /// upper bound from the probe query).
  uint64_t shards_pruned_distance = 0;
  /// Upper-bound probe queries sent to the most-promising shard.
  uint64_t probe_queries = 0;
  std::vector<ShardStats> shard_stats;

  // Result cache (protocol v6; encoded after the shard_stats array). All
  // zero when no cache is configured.
  /// 1 when a result cache is wired in front of this server/router.
  uint8_t cache_enabled = 0;
  /// Lookup outcomes since startup. Misses include invalidation misses; an
  /// invalidation additionally counts an entry dropped for a stale epoch or
  /// mutation stamp.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// LRU entries dropped to stay under the byte budget.
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  /// Current approximate occupancy, the configured ceiling, and the live
  /// entry count.
  uint64_t cache_resident_bytes = 0;
  uint64_t cache_budget_bytes = 0;
  uint64_t cache_entries = 0;

  /// One-line human rendering for logs and the load generator.
  std::string ToString() const;
};

/// Upper bound on StatsReply::shard_stats, enforced by encoder and decoder
/// alike (a router serving more shards than this is not a deployment this
/// protocol targets; the encoder truncates to the first kMaxShardStats
/// entries). Sized so the worst-case STATS payload — the fixed fields plus
/// 28 bytes per entry — stays under kMaxPayloadBytes (static_assert next to
/// EncodeStatsReply), and so a hostile length cannot force a huge
/// allocation.
inline constexpr size_t kMaxShardStats = 32768;

/// Payload encoders. Deterministic byte-for-byte for identical inputs.
std::string EncodeQueryRequest(const QueryRequest& request);
std::string EncodeQueryResult(const QueryResult& result);
std::string EncodeOverloadedReply(const OverloadedReply& reply);
std::string EncodeErrorReply(const ErrorReply& reply);
std::string EncodeStatsReply(const StatsReply& reply);
std::string EncodeMutateRequest(const MutateRequest& request);
std::string EncodeMutateReply(const MutateReply& reply);
std::string EncodeRelevantRequest(const RelevantRequest& request);
std::string EncodeRelevantReply(const RelevantReply& reply);

/// Payload decoders: false on truncated, oversized, or otherwise malformed
/// payloads (never aborts — wire bytes are untrusted input).
bool DecodeQueryRequest(const std::string& payload, QueryRequest* out);
bool DecodeQueryResult(const std::string& payload, QueryResult* out);
bool DecodeOverloadedReply(const std::string& payload, OverloadedReply* out);
bool DecodeErrorReply(const std::string& payload, ErrorReply* out);
bool DecodeStatsReply(const std::string& payload, StatsReply* out);
bool DecodeMutateRequest(const std::string& payload, MutateRequest* out);
bool DecodeMutateReply(const std::string& payload, MutateReply* out);
bool DecodeRelevantRequest(const std::string& payload, RelevantRequest* out);
bool DecodeRelevantReply(const std::string& payload, RelevantReply* out);

}  // namespace coskq

#endif  // COSKQ_SERVER_PROTOCOL_H_
