#include "core/solvers.h"

#include "core/brute_force.h"
#include "core/cao_appro.h"
#include "core/cao_exact.h"
#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"

namespace coskq {

std::unique_ptr<CoskqSolver> MakeSolver(const std::string& name,
                                        const CoskqContext& context) {
  return MakeSolver(name, context, SolverOptions());
}

std::unique_ptr<CoskqSolver> MakeSolver(const std::string& name,
                                        const CoskqContext& context,
                                        const SolverOptions& options) {
  const auto type_of = [&name]() {
    return name.ends_with("-dia") ? CostType::kDia : CostType::kMaxSum;
  };
  if (name == "maxsum-exact" || name == "dia-exact") {
    OwnerDrivenExact::Options owner_options;
    owner_options.deadline_ms = options.deadline_ms;
    owner_options.use_query_masks = options.use_query_masks;
    return std::make_unique<OwnerDrivenExact>(
        context, name == "dia-exact" ? CostType::kDia : CostType::kMaxSum,
        owner_options);
  }
  if (name == "maxsum-appro" || name == "dia-appro") {
    OwnerDrivenAppro::Options appro_options;
    appro_options.use_query_masks = options.use_query_masks;
    return std::make_unique<OwnerDrivenAppro>(
        context, name == "dia-appro" ? CostType::kDia : CostType::kMaxSum,
        appro_options);
  }
  if (name == "cao-exact-maxsum" || name == "cao-exact-dia") {
    CaoExact::Options cao_options;
    cao_options.deadline_ms = options.deadline_ms;
    cao_options.use_query_masks = options.use_query_masks;
    return std::make_unique<CaoExact>(context, type_of(), cao_options);
  }
  if (name == "cao-appro1-maxsum" || name == "cao-appro1-dia") {
    CaoAppro1::Options cao_options;
    cao_options.use_query_masks = options.use_query_masks;
    return std::make_unique<CaoAppro1>(context, type_of(), cao_options);
  }
  if (name == "cao-appro2-maxsum" || name == "cao-appro2-dia") {
    CaoAppro2::Options cao_options;
    cao_options.use_query_masks = options.use_query_masks;
    return std::make_unique<CaoAppro2>(context, type_of(), cao_options);
  }
  if (name == "brute-force-maxsum" || name == "brute-force-dia") {
    return std::make_unique<BruteForceSolver>(context, type_of());
  }
  return nullptr;
}

std::vector<std::string> AvailableSolverNames() {
  return {
      "maxsum-exact",      "maxsum-appro",      "dia-exact",
      "dia-appro",         "cao-exact-maxsum",  "cao-exact-dia",
      "cao-appro1-maxsum", "cao-appro1-dia",    "cao-appro2-maxsum",
      "cao-appro2-dia",    "brute-force-maxsum", "brute-force-dia",
  };
}

}  // namespace coskq
