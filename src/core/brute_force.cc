#include "core/brute_force.h"

#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

BruteForceSolver::BruteForceSolver(const CoskqContext& context, CostType type)
    : CoskqSolver(context), type_(type) {}

std::string BruteForceSolver::name() const {
  std::string result = "BruteForce-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult BruteForceSolver::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeResult(query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  // Per-keyword candidate lists over the whole dataset (no index use: the
  // oracle must not share code paths with the systems under test).
  std::vector<std::vector<ObjectId>> lists(query.keywords.size());
  for (const SpatialObject& obj : dataset().objects()) {
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      if (obj.ContainsTerm(query.keywords[k])) {
        lists[k].push_back(obj.id);
      }
    }
  }
  for (const auto& list : lists) {
    if (list.empty()) {
      CoskqResult result = Infeasible(stats);
      result.stats.elapsed_ms = timer.ElapsedMillis();
      return result;
    }
    stats.candidates += list.size();
  }

  std::vector<ObjectId> best_set;
  double best_cost = std::numeric_limits<double>::infinity();
  SetCostTracker tracker(&dataset(), query.location, type_);

  struct Search {
    const Dataset& dataset;
    const CoskqQuery& query;
    const std::vector<std::vector<ObjectId>>& lists;
    std::vector<ObjectId>& best_set;
    double& best_cost;
    SetCostTracker& tracker;
    SolveStats& stats;

    void Dfs(const TermSet& uncovered) {
      if (tracker.cost() >= best_cost) {
        return;
      }
      if (uncovered.empty()) {
        ++stats.sets_evaluated;
        best_cost = tracker.cost();
        best_set = tracker.ids();
        return;
      }
      // Branch on the uncovered keyword with the fewest candidates.
      size_t best_k = query.keywords.size();
      for (size_t k = 0; k < query.keywords.size(); ++k) {
        if (!TermSetContains(uncovered, query.keywords[k])) {
          continue;
        }
        if (best_k == query.keywords.size() ||
            lists[k].size() < lists[best_k].size()) {
          best_k = k;
        }
      }
      COSKQ_CHECK_LT(best_k, query.keywords.size());
      for (ObjectId id : lists[best_k]) {
        tracker.Push(id);
        Dfs(TermSetDifference(uncovered, dataset.object(id).keywords));
        tracker.Pop();
      }
    }
  };

  Search search{dataset(), query,     lists, best_set,
                best_cost, tracker,   stats};
  search.Dfs(query.keywords);

  COSKQ_CHECK(!best_set.empty());
  CoskqResult result = MakeResult(query, std::move(best_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
