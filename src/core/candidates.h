#ifndef COSKQ_CORE_CANDIDATES_H_
#define COSKQ_CORE_CANDIDATES_H_

#include <vector>

#include "core/solver.h"
#include "data/object.h"
#include "data/query.h"
#include "geo/point.h"

namespace coskq {

/// A relevant object retrieved as a search candidate, with its location and
/// distance to the query location cached (the algorithms consult both many
/// times per candidate).
struct Candidate {
  ObjectId id = kInvalidObjectId;
  Point location;
  double dist_q = 0.0;
};

/// All relevant objects (covering at least one query keyword) within the
/// closed disk C(q.λ, radius), sorted by ascending distance to q.λ (ties by
/// id, so the order is deterministic). Retrieved with one keyword-filtered
/// range query on the IR-tree.
std::vector<Candidate> RelevantCandidatesInDisk(const CoskqContext& context,
                                                const CoskqQuery& query,
                                                double radius);

/// Masked/cached variant writing into a caller-owned buffer (cleared
/// first), so a solver can reuse one vector's capacity across a batch. The
/// range query prunes on the scratch's bitmask and distances go through its
/// memo; output is bit-identical to the baseline.
void RelevantCandidatesInDisk(const CoskqContext& context,
                              const CoskqQuery& query, double radius,
                              SearchScratch* scratch,
                              std::vector<Candidate>* out);

}  // namespace coskq

#endif  // COSKQ_CORE_CANDIDATES_H_
