#ifndef COSKQ_CORE_SOLVER_H_
#define COSKQ_CORE_SOLVER_H_

#include <stdint.h>

#include <limits>
#include <string>
#include <vector>

#include "core/cost.h"
#include "data/dataset.h"
#include "data/query.h"
#include "index/irtree.h"

namespace coskq {

/// Per-query instrumentation every solver reports.
struct SolveStats {
  /// Wall-clock time of the Solve call, in milliseconds.
  double elapsed_ms = 0.0;
  /// Relevant objects retrieved as candidates.
  uint64_t candidates = 0;
  /// Candidate owner pairs examined (exact algorithms).
  uint64_t pairs_examined = 0;
  /// Complete feasible sets whose cost was evaluated.
  uint64_t sets_evaluated = 0;
  /// Hits/misses of the solver's per-query distance memo (SearchScratch);
  /// both stay 0 on the baseline (masks disabled) path.
  uint64_t dist_cache_hits = 0;
  uint64_t dist_cache_misses = 0;
  /// Pooled scratch buffers that grew during this solve; 0 once the
  /// solver's SearchScratch is warm (the zero-steady-state-allocation
  /// property the batch tests assert).
  uint64_t scratch_reallocs = 0;
  /// True iff the solver hit its optional deadline and returned its best
  /// incumbent instead of finishing the search (benchmark use only; without
  /// a deadline exact solvers always finish and this stays false).
  bool truncated = false;
};

/// The answer to one CoSKQ query.
struct CoskqResult {
  /// False iff some query keyword matches no object at all, in which case
  /// `set` is empty and `cost` is +infinity.
  bool feasible = false;
  /// The returned object set, sorted by id.
  std::vector<ObjectId> set;
  /// Cost of `set` under the solver's cost function.
  double cost = std::numeric_limits<double>::infinity();
  SolveStats stats;
};

/// Shared, immutable context handed to every solver: the dataset and its
/// IR-tree. Both must outlive the solver.
struct CoskqContext {
  const Dataset* dataset = nullptr;
  const IrTree* index = nullptr;
};

/// Interface implemented by every CoSKQ algorithm in this library: the
/// paper's exact and approximate algorithms, the Cao et al. baselines, and
/// the brute-force oracle.
class CoskqSolver {
 public:
  explicit CoskqSolver(const CoskqContext& context) : context_(context) {}
  virtual ~CoskqSolver() = default;

  CoskqSolver(const CoskqSolver&) = delete;
  CoskqSolver& operator=(const CoskqSolver&) = delete;

  /// Answers one query. Thread-compatible: concurrent Solve calls on
  /// distinct solver instances over the same context are safe.
  virtual CoskqResult Solve(const CoskqQuery& query) = 0;

  /// Stable identifier, e.g. "MaxSum-Exact".
  virtual std::string name() const = 0;

  /// The cost function this solver optimizes / evaluates.
  virtual CostType cost_type() const = 0;

 protected:
  const Dataset& dataset() const { return *context_.dataset; }
  const IrTree& index() const { return *context_.index; }

  /// Finalizes a result: sorts the set, computes the cost, stamps stats.
  CoskqResult MakeResult(const CoskqQuery& query, std::vector<ObjectId> set,
                         SolveStats stats) const;

  /// The canonical infeasible result.
  static CoskqResult Infeasible(SolveStats stats);

  CoskqContext context_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_SOLVER_H_
