#ifndef COSKQ_CORE_CAO_APPRO_H_
#define COSKQ_CORE_CAO_APPRO_H_

#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/cost.h"
#include "core/solver.h"
#include "index/search_scratch.h"

namespace coskq {

/// Baseline approximate algorithm 1 of Cao et al. (SIGMOD 2011): return the
/// nearest-neighbor set N(q). One keyword-NN query per query keyword; the
/// fastest algorithm in the study and the weakest approximation (ratio 3
/// under their MaxMax cost).
class CaoAppro1 : public CoskqSolver {
 public:
  struct Options {
    /// Query-scoped keyword bitmasks + pooled scratch (A/B switch for the
    /// hot-path benchmark); results are bit-identical either way.
    bool use_query_masks = true;
  };

  CaoAppro1(const CoskqContext& context, CostType type,
            const Options& options);
  CaoAppro1(const CoskqContext& context, CostType type)
      : CaoAppro1(context, type, Options()) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  CostType type_;
  Options options_;
  SearchScratch scratch_;
};

/// Baseline approximate algorithm 2 of Cao et al. (SIGMOD 2011): improve
/// N(q) by pivoting on the *farthest keyword* t_f (the keyword whose NN is
/// the farthest member of N(q)). Every object containing t_f within
/// C(q, curCost) is tried as the anchor o; the candidate set is
/// {o} ∪ { NN(o, t) : t ∈ q.ψ \ o.ψ } and the cheapest one wins (ratio 2
/// under their MaxMax cost).
class CaoAppro2 : public CoskqSolver {
 public:
  struct Options {
    /// Query-scoped keyword bitmasks + pooled scratch (A/B switch for the
    /// hot-path benchmark); results are bit-identical either way.
    bool use_query_masks = true;
  };

  CaoAppro2(const CoskqContext& context, CostType type,
            const Options& options);
  CaoAppro2(const CoskqContext& context, CostType type)
      : CaoAppro2(context, type, Options()) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  CostType type_;
  Options options_;
  /// Per-solver scratch and buffers pooled across Solve calls; one solver
  /// instance serves one thread.
  SearchScratch scratch_;
  std::vector<ObjectId> anchor_ids_;
  std::vector<Candidate> anchors_;
  std::vector<ObjectId> candidate_set_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_CAO_APPRO_H_
