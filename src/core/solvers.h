#ifndef COSKQ_CORE_SOLVERS_H_
#define COSKQ_CORE_SOLVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"

namespace coskq {

/// Creates a solver by its registry name. Available names:
///   "maxsum-exact", "maxsum-appro", "dia-exact", "dia-appro"   (the paper)
///   "cao-exact-maxsum",  "cao-exact-dia"                       (baseline)
///   "cao-appro1-maxsum", "cao-appro1-dia"                      (baseline)
///   "cao-appro2-maxsum", "cao-appro2-dia"                      (baseline)
///   "brute-force-maxsum", "brute-force-dia"                    (oracle)
/// Returns nullptr for an unknown name.
std::unique_ptr<CoskqSolver> MakeSolver(const std::string& name,
                                        const CoskqContext& context);

/// All registry names accepted by MakeSolver.
std::vector<std::string> AvailableSolverNames();

}  // namespace coskq

#endif  // COSKQ_CORE_SOLVERS_H_
