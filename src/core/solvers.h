#ifndef COSKQ_CORE_SOLVERS_H_
#define COSKQ_CORE_SOLVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"

namespace coskq {

/// Registry-level knobs honored by every solver that supports them, so
/// callers (benchmarks, the batch engine, the CLI) can configure solvers
/// uniformly without naming concrete classes.
struct SolverOptions {
  /// Optional per-query wall-clock deadline in milliseconds (0 = none).
  /// Propagated to the solvers with deadline support (the exact search
  /// engines); solvers that always finish quickly ignore it. When hit, the
  /// solve returns its incumbent with stats.truncated set.
  double deadline_ms = 0.0;
  /// Query-scoped keyword bitmasks, pooled per-solver scratch, and the
  /// distance memo (the hot path; on by default). Disabling reproduces the
  /// pre-mask baseline execution bit-for-bit — the A/B switch used by the
  /// differential tests and the hot-path benchmark. The brute-force oracle
  /// ignores it.
  bool use_query_masks = true;
};

/// Creates a solver by its registry name. Available names:
///   "maxsum-exact", "maxsum-appro", "dia-exact", "dia-appro"   (the paper)
///   "cao-exact-maxsum",  "cao-exact-dia"                       (baseline)
///   "cao-appro1-maxsum", "cao-appro1-dia"                      (baseline)
///   "cao-appro2-maxsum", "cao-appro2-dia"                      (baseline)
///   "brute-force-maxsum", "brute-force-dia"                    (oracle)
/// Returns nullptr for an unknown name.
std::unique_ptr<CoskqSolver> MakeSolver(const std::string& name,
                                        const CoskqContext& context);

/// As above, with registry-level options applied.
std::unique_ptr<CoskqSolver> MakeSolver(const std::string& name,
                                        const CoskqContext& context,
                                        const SolverOptions& options);

/// All registry names accepted by MakeSolver.
std::vector<std::string> AvailableSolverNames();

}  // namespace coskq

#endif  // COSKQ_CORE_SOLVERS_H_
