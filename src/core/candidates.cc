#include "core/candidates.h"

#include <algorithm>

#include "geo/circle.h"

namespace coskq {

std::vector<Candidate> RelevantCandidatesInDisk(const CoskqContext& context,
                                                const CoskqQuery& query,
                                                double radius) {
  std::vector<ObjectId> ids;
  context.index->RangeRelevant(Circle(query.location, radius),
                               query.keywords, &ids);
  std::vector<Candidate> candidates;
  candidates.reserve(ids.size());
  for (ObjectId id : ids) {
    const Point& p = context.dataset->object(id).location;
    candidates.push_back(Candidate{id, p, Distance(query.location, p)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist_q != b.dist_q) {
                return a.dist_q < b.dist_q;
              }
              return a.id < b.id;
            });
  return candidates;
}

}  // namespace coskq
