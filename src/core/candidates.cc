#include "core/candidates.h"

#include <algorithm>

#include "geo/circle.h"
#include "index/search_scratch.h"

namespace coskq {

namespace {

void SortByDistanceThenId(std::vector<Candidate>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.dist_q != b.dist_q) {
                return a.dist_q < b.dist_q;
              }
              return a.id < b.id;
            });
}

}  // namespace

std::vector<Candidate> RelevantCandidatesInDisk(const CoskqContext& context,
                                                const CoskqQuery& query,
                                                double radius) {
  std::vector<ObjectId> ids;
  context.index->RangeRelevant(Circle(query.location, radius),
                               query.keywords, &ids);
  std::vector<Candidate> candidates;
  candidates.reserve(ids.size());
  for (ObjectId id : ids) {
    const Point& p = context.dataset->object(id).location;
    candidates.push_back(Candidate{id, p, Distance(query.location, p)});
  }
  SortByDistanceThenId(&candidates);
  return candidates;
}

void RelevantCandidatesInDisk(const CoskqContext& context,
                              const CoskqQuery& query, double radius,
                              SearchScratch* scratch,
                              std::vector<Candidate>* out) {
  out->clear();
  if (scratch == nullptr) {
    *out = RelevantCandidatesInDisk(context, query, radius);
    return;
  }
  std::vector<ObjectId>& ids = scratch->id_buffer();
  ids.clear();
  context.index->RangeRelevant(Circle(query.location, radius), query.keywords,
                               &ids, scratch);
  out->reserve(ids.size());
  for (ObjectId id : ids) {
    const Point& p = context.dataset->object(id).location;
    out->push_back(Candidate{id, p, scratch->QueryDistance(id, p)});
  }
  SortByDistanceThenId(out);
}

}  // namespace coskq
