#include "core/nn_set.h"

#include <algorithm>

#include "geo/point.h"

namespace coskq {

NnSetInfo ComputeNnSet(const CoskqContext& context, const CoskqQuery& query) {
  NnSetInfo info;
  TermSet missing;
  info.set = context.index->NnSet(query.location, query.keywords, &missing);
  if (!missing.empty() || query.keywords.empty()) {
    info.feasible = query.keywords.empty();
    info.set.clear();
    return info;
  }
  info.feasible = true;
  for (ObjectId id : info.set) {
    info.max_dist =
        std::max(info.max_dist,
                 Distance(query.location,
                          context.dataset->object(id).location));
  }
  return info;
}

}  // namespace coskq
