#include "core/nn_set.h"

#include <algorithm>

#include "geo/point.h"
#include "index/search_scratch.h"

namespace coskq {

NnSetInfo ComputeNnSet(const CoskqContext& context, const CoskqQuery& query) {
  return ComputeNnSet(context, query, nullptr);
}

NnSetInfo ComputeNnSet(const CoskqContext& context, const CoskqQuery& query,
                       SearchScratch* scratch) {
  NnSetInfo info;
  TermSet missing;
  info.set =
      context.index->NnSet(query.location, query.keywords, &missing, scratch);
  if (!missing.empty() || query.keywords.empty()) {
    info.feasible = query.keywords.empty();
    info.set.clear();
    return info;
  }
  info.feasible = true;
  for (ObjectId id : info.set) {
    const Point& location = context.dataset->object(id).location;
    const double d = scratch != nullptr
                         ? scratch->QueryDistance(id, location)
                         : Distance(query.location, location);
    info.max_dist = std::max(info.max_dist, d);
  }
  return info;
}

}  // namespace coskq
