#ifndef COSKQ_CORE_BRUTE_FORCE_H_
#define COSKQ_CORE_BRUTE_FORCE_H_

#include <string>

#include "core/cost.h"
#include "core/solver.h"

namespace coskq {

/// Reference oracle: exhaustive search over irredundant keyword covers drawn
/// from *all* relevant objects, with no index, no disk restriction, and no
/// owner reasoning — only the (provably safe) monotone-cost cutoff against
/// the running best. Exponential; intended for tests, where it validates
/// every exact algorithm and measures true approximation ratios on small
/// instances. Any optimal set can be reduced to an irredundant cover of no
/// greater cost, so searching irredundant covers is exact.
class BruteForceSolver : public CoskqSolver {
 public:
  BruteForceSolver(const CoskqContext& context, CostType type);

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  CostType type_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_BRUTE_FORCE_H_
