#include "core/cao_exact.h"

#include <algorithm>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

namespace {

// Branch-and-bound cover search over a fixed candidate pool.
class CoverSearch {
 public:
  CoverSearch(const Dataset& dataset, const CoskqQuery& query, CostType type,
              const std::vector<Candidate>& cands,
              std::vector<ObjectId>* cur_set, double* cur_cost,
              SolveStats* stats, const WallTimer* timer, double deadline_ms)
      : dataset_(dataset),
        cands_(cands),
        cur_set_(cur_set),
        cur_cost_(cur_cost),
        stats_(stats),
        timer_(timer),
        deadline_ms_(deadline_ms),
        tracker_(&dataset, query.location, type) {
    for (TermId t : query.keywords) {
      KeywordList list{t, {}};
      for (uint32_t i = 0; i < cands.size(); ++i) {
        if (dataset.object(cands[i].id).ContainsTerm(t)) {
          list.indices.push_back(i);  // cands_ is distance-sorted already.
        }
      }
      lists_.push_back(std::move(list));
    }
  }

  void Run(const TermSet& keywords) { Dfs(keywords); }

 private:
  struct KeywordList {
    TermId term;
    std::vector<uint32_t> indices;
  };

  void Dfs(const TermSet& uncovered) {
    if (stats_->truncated) {
      return;
    }
    if (deadline_ms_ > 0.0 && (++nodes_ & 1023) == 0 &&
        timer_->ElapsedMillis() > deadline_ms_) {
      stats_->truncated = true;
      return;
    }
    if (tracker_.cost() >= *cur_cost_) {
      return;  // Monotone cost: no extension can beat the incumbent.
    }
    if (uncovered.empty()) {
      ++stats_->sets_evaluated;
      *cur_cost_ = tracker_.cost();
      *cur_set_ = tracker_.ids();
      return;
    }
    const KeywordList* best_list = nullptr;
    for (const KeywordList& list : lists_) {
      if (!TermSetContains(uncovered, list.term)) {
        continue;
      }
      if (best_list == nullptr ||
          list.indices.size() < best_list->indices.size()) {
        best_list = &list;
      }
    }
    COSKQ_CHECK(best_list != nullptr);
    if (best_list->indices.empty()) {
      return;  // Uncoverable within the candidate pool.
    }
    for (uint32_t index : best_list->indices) {
      const Candidate& cand = cands_[index];
      if (cand.dist_q >= *cur_cost_) {
        break;  // Distance-sorted: the rest is at least as far.
      }
      tracker_.Push(cand.id);
      Dfs(TermSetDifference(uncovered, dataset_.object(cand.id).keywords));
      tracker_.Pop();
    }
  }

  const Dataset& dataset_;
  const std::vector<Candidate>& cands_;
  std::vector<ObjectId>* cur_set_;
  double* cur_cost_;
  SolveStats* stats_;
  const WallTimer* timer_;
  double deadline_ms_;
  uint64_t nodes_ = 0;
  SetCostTracker tracker_;
  std::vector<KeywordList> lists_;
};

}  // namespace

CaoExact::CaoExact(const CoskqContext& context, CostType type,
                   const Options& options)
    : CoskqSolver(context), type_(type), options_(options) {}

std::string CaoExact::name() const {
  std::string result = "Cao-Exact-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoExact::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeResult(query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost = EvaluateCost(type_, dataset(), query.location, cur_set);

  const std::vector<Candidate> cands = RelevantCandidatesInDisk(
      context_, query, cur_cost * (1.0 + 1e-12));
  stats.candidates = cands.size();

  CoverSearch search(dataset(), query, type_, cands, &cur_set, &cur_cost,
                     &stats, &timer, options_.deadline_ms);
  search.Run(query.keywords);

  CoskqResult result = MakeResult(query, std::move(cur_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
