#include "core/cao_exact.h"

#include <algorithm>
#include <bit>

#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

namespace {

// Branch-and-bound cover search over a fixed candidate pool.
class CoverSearch {
 public:
  CoverSearch(const Dataset& dataset, const CoskqQuery& query, CostType type,
              const std::vector<Candidate>& cands, SearchScratch* scratch,
              std::vector<ObjectId>* cur_set, double* cur_cost,
              SolveStats* stats, const WallTimer* timer, double deadline_ms)
      : dataset_(dataset),
        cands_(cands),
        cur_set_(cur_set),
        cur_cost_(cur_cost),
        stats_(stats),
        timer_(timer),
        deadline_ms_(deadline_ms),
        tracker_(&dataset, query.location, type, scratch) {
    // Per-keyword candidate lists. In masked mode the membership tests
    // collapse to bit probes of the cached per-candidate masks; bit k of a
    // mask is the k-th query keyword in sorted order, which is exactly the
    // iteration order of query.keywords, so both paths build identical
    // lists (and the branch choice below, keyed on list sizes with first
    // minimum winning, is identical too).
    lists_.reserve(query.keywords.size());
    for (TermId t : query.keywords) {
      lists_.push_back(KeywordList{t, {}});
    }
    if (scratch != nullptr && scratch->mask_active()) {
      for (uint32_t i = 0; i < cands.size(); ++i) {
        const uint64_t mask = scratch->ObjectMask(
            cands[i].id, dataset.object(cands[i].id).keywords);
        for (uint64_t m = mask; m != 0; m &= m - 1) {
          lists_[static_cast<size_t>(std::countr_zero(m))].indices.push_back(
              i);
        }
      }
    } else {
      for (size_t k = 0; k < lists_.size(); ++k) {
        for (uint32_t i = 0; i < cands.size(); ++i) {
          if (dataset.object(cands[i].id).ContainsTerm(lists_[k].term)) {
            lists_[k].indices.push_back(i);  // cands_ is distance-sorted.
          }
        }
      }
    }
  }

  void Run(const TermSet& keywords) { Dfs(keywords); }

 private:
  struct KeywordList {
    TermId term;
    std::vector<uint32_t> indices;
  };

  void Dfs(const TermSet& uncovered) {
    if (stats_->truncated) {
      return;
    }
    if (deadline_ms_ > 0.0 && (++nodes_ & 1023) == 0 &&
        timer_->ElapsedMillis() > deadline_ms_) {
      stats_->truncated = true;
      return;
    }
    if (tracker_.cost() >= *cur_cost_) {
      return;  // Monotone cost: no extension can beat the incumbent.
    }
    if (uncovered.empty()) {
      ++stats_->sets_evaluated;
      *cur_cost_ = tracker_.cost();
      *cur_set_ = tracker_.ids();
      return;
    }
    const KeywordList* best_list = nullptr;
    for (const KeywordList& list : lists_) {
      if (!TermSetContains(uncovered, list.term)) {
        continue;
      }
      if (best_list == nullptr ||
          list.indices.size() < best_list->indices.size()) {
        best_list = &list;
      }
    }
    COSKQ_CHECK(best_list != nullptr);
    if (best_list->indices.empty()) {
      return;  // Uncoverable within the candidate pool.
    }
    for (uint32_t index : best_list->indices) {
      const Candidate& cand = cands_[index];
      if (cand.dist_q >= *cur_cost_) {
        break;  // Distance-sorted: the rest is at least as far.
      }
      tracker_.Push(cand.id);
      Dfs(TermSetDifference(uncovered, dataset_.object(cand.id).keywords));
      tracker_.Pop();
    }
  }

  const Dataset& dataset_;
  const std::vector<Candidate>& cands_;
  std::vector<ObjectId>* cur_set_;
  double* cur_cost_;
  SolveStats* stats_;
  const WallTimer* timer_;
  double deadline_ms_;
  uint64_t nodes_ = 0;
  SetCostTracker tracker_;
  std::vector<KeywordList> lists_;
};

}  // namespace

CaoExact::CaoExact(const CoskqContext& context, CostType type,
                   const Options& options)
    : CoskqSolver(context), type_(type), options_(options) {
  scratch_.set_enabled(options_.use_query_masks);
}

std::string CaoExact::name() const {
  std::string result = "Cao-Exact-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoExact::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  scratch_.BeginQuery(query.location, query.keywords, index().node_id_limit(),
                      dataset().NumObjects());
  const auto finalize = [&](CoskqResult result) {
    scratch_.FinishQuery();
    result.stats.dist_cache_hits = scratch_.dist_cache_hits();
    result.stats.dist_cache_misses = scratch_.dist_cache_misses();
    result.stats.scratch_reallocs = scratch_.realloc_events();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  };
  if (query.keywords.empty()) {
    return finalize(MakeResult(query, {}, stats));
  }
  const NnSetInfo nn = ComputeNnSet(context_, query, &scratch_);
  if (!nn.feasible) {
    return finalize(Infeasible(stats));
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost =
      EvaluateCost(type_, dataset(), query.location, cur_set, &scratch_);

  RelevantCandidatesInDisk(context_, query, cur_cost * (1.0 + 1e-12),
                           &scratch_, &cands_);
  stats.candidates = cands_.size();

  CoverSearch search(dataset(), query, type_, cands_, &scratch_, &cur_set,
                     &cur_cost, &stats, &timer, options_.deadline_ms);
  search.Run(query.keywords);

  return finalize(MakeResult(query, std::move(cur_set), stats));
}

}  // namespace coskq
