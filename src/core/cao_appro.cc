#include "core/cao_appro.h"

#include <algorithm>

#include "core/nn_set.h"
#include "geo/circle.h"
#include "util/timer.h"

namespace coskq {

CaoAppro1::CaoAppro1(const CoskqContext& context, CostType type,
                     const Options& options)
    : CoskqSolver(context), type_(type), options_(options) {
  scratch_.set_enabled(options_.use_query_masks);
}

std::string CaoAppro1::name() const {
  std::string result = "Cao-Appro1-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoAppro1::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  scratch_.BeginQuery(query.location, query.keywords, index().node_id_limit(),
                      dataset().NumObjects());
  const auto finalize = [&](CoskqResult result) {
    scratch_.FinishQuery();
    result.stats.dist_cache_hits = scratch_.dist_cache_hits();
    result.stats.dist_cache_misses = scratch_.dist_cache_misses();
    result.stats.scratch_reallocs = scratch_.realloc_events();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  };
  if (query.keywords.empty()) {
    return finalize(MakeResult(query, {}, stats));
  }
  const NnSetInfo nn = ComputeNnSet(context_, query, &scratch_);
  if (!nn.feasible) {
    return finalize(Infeasible(stats));
  }
  stats.candidates = nn.set.size();
  stats.sets_evaluated = 1;
  return finalize(MakeResult(query, nn.set, stats));
}

CaoAppro2::CaoAppro2(const CoskqContext& context, CostType type,
                     const Options& options)
    : CoskqSolver(context), type_(type), options_(options) {
  scratch_.set_enabled(options_.use_query_masks);
}

std::string CaoAppro2::name() const {
  std::string result = "Cao-Appro2-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoAppro2::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  scratch_.BeginQuery(query.location, query.keywords, index().node_id_limit(),
                      dataset().NumObjects());
  const auto finalize = [&](CoskqResult result) {
    scratch_.FinishQuery();
    result.stats.dist_cache_hits = scratch_.dist_cache_hits();
    result.stats.dist_cache_misses = scratch_.dist_cache_misses();
    result.stats.scratch_reallocs = scratch_.realloc_events();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  };
  if (query.keywords.empty()) {
    return finalize(MakeResult(query, {}, stats));
  }
  const NnSetInfo nn = ComputeNnSet(context_, query, &scratch_);
  if (!nn.feasible) {
    return finalize(Infeasible(stats));
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost =
      EvaluateCost(type_, dataset(), query.location, cur_set, &scratch_);
  stats.sets_evaluated = 1;

  // The farthest keyword t_f: the query keyword whose NN is farthest.
  TermId t_f = query.keywords.front();
  double far_dist = -1.0;
  for (TermId t : query.keywords) {
    double d = 0.0;
    index().KeywordNn(query.location, t, &d, &scratch_);
    if (d > far_dist) {
      far_dist = d;
      t_f = t;
    }
  }

  // Anchor candidates: objects containing t_f within C(q, curCost). Every
  // feasible set has a t_f-covering member, so anchors outside the disk
  // cannot yield a better set.
  anchor_ids_.clear();
  index().RangeRelevant(Circle(query.location, cur_cost), TermSet{t_f},
                        &anchor_ids_, &scratch_);
  stats.candidates = anchor_ids_.size();

  anchors_.clear();
  anchors_.reserve(anchor_ids_.size());
  for (ObjectId id : anchor_ids_) {
    const Point& p = dataset().object(id).location;
    anchors_.push_back(Candidate{id, p, scratch_.QueryDistance(id, p)});
  }
  std::sort(anchors_.begin(), anchors_.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist_q < b.dist_q;
            });

  for (const Candidate& anchor : anchors_) {
    if (anchor.dist_q >= cur_cost) {
      break;
    }
    candidate_set_.assign(1, anchor.id);
    const TermSet missing = TermSetDifference(
        query.keywords, dataset().object(anchor.id).keywords);
    bool ok = true;
    for (TermId t : missing) {
      double d = 0.0;
      // Anchored at the candidate object, not at q: the masked overload
      // deliberately computes traversal distances directly (only d(q, ·)
      // goes through the memo), so this call is safe and bit-identical.
      const ObjectId id = index().KeywordNn(anchor.location, t, &d, &scratch_);
      if (id == kInvalidObjectId) {
        ok = false;
        break;
      }
      candidate_set_.push_back(id);
    }
    if (!ok) {
      continue;
    }
    ++stats.sets_evaluated;
    const double cost =
        EvaluateCost(type_, dataset(), query.location, candidate_set_,
                     &scratch_);
    if (cost < cur_cost) {
      cur_cost = cost;
      cur_set = candidate_set_;
    }
  }

  return finalize(MakeResult(query, std::move(cur_set), stats));
}

}  // namespace coskq
