#include "core/cao_appro.h"

#include <algorithm>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "geo/circle.h"
#include "util/timer.h"

namespace coskq {

CaoAppro1::CaoAppro1(const CoskqContext& context, CostType type)
    : CoskqSolver(context), type_(type) {}

std::string CaoAppro1::name() const {
  std::string result = "Cao-Appro1-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoAppro1::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeResult(query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  stats.candidates = nn.set.size();
  stats.sets_evaluated = 1;
  CoskqResult result = MakeResult(query, nn.set, stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

CaoAppro2::CaoAppro2(const CoskqContext& context, CostType type)
    : CoskqSolver(context), type_(type) {}

std::string CaoAppro2::name() const {
  std::string result = "Cao-Appro2-";
  result += CostTypeName(type_);
  return result;
}

CoskqResult CaoAppro2::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeResult(query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost = EvaluateCost(type_, dataset(), query.location, cur_set);
  stats.sets_evaluated = 1;

  // The farthest keyword t_f: the query keyword whose NN is farthest.
  TermId t_f = query.keywords.front();
  double far_dist = -1.0;
  for (TermId t : query.keywords) {
    double d = 0.0;
    index().KeywordNn(query.location, t, &d);
    if (d > far_dist) {
      far_dist = d;
      t_f = t;
    }
  }

  // Anchor candidates: objects containing t_f within C(q, curCost). Every
  // feasible set has a t_f-covering member, so anchors outside the disk
  // cannot yield a better set.
  std::vector<ObjectId> anchor_ids;
  index().RangeRelevant(Circle(query.location, cur_cost), TermSet{t_f},
                        &anchor_ids);
  stats.candidates = anchor_ids.size();

  std::vector<Candidate> anchors;
  anchors.reserve(anchor_ids.size());
  for (ObjectId id : anchor_ids) {
    const Point& p = dataset().object(id).location;
    anchors.push_back(Candidate{id, p, Distance(query.location, p)});
  }
  std::sort(anchors.begin(), anchors.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist_q < b.dist_q;
            });

  std::vector<ObjectId> candidate_set;
  for (const Candidate& anchor : anchors) {
    if (anchor.dist_q >= cur_cost) {
      break;
    }
    candidate_set.assign(1, anchor.id);
    const TermSet missing = TermSetDifference(
        query.keywords, dataset().object(anchor.id).keywords);
    bool ok = true;
    for (TermId t : missing) {
      double d = 0.0;
      const ObjectId id = index().KeywordNn(anchor.location, t, &d);
      if (id == kInvalidObjectId) {
        ok = false;
        break;
      }
      candidate_set.push_back(id);
    }
    if (!ok) {
      continue;
    }
    ++stats.sets_evaluated;
    const double cost =
        EvaluateCost(type_, dataset(), query.location, candidate_set);
    if (cost < cur_cost) {
      cur_cost = cost;
      cur_set = candidate_set;
    }
  }

  CoskqResult result = MakeResult(query, std::move(cur_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
