#include "core/solver.h"

#include <algorithm>

#include "util/logging.h"

namespace coskq {

CoskqResult CoskqSolver::MakeResult(const CoskqQuery& query,
                                    std::vector<ObjectId> set,
                                    SolveStats stats) const {
  CoskqResult result;
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  COSKQ_DCHECK(SetCoversKeywords(dataset(), query.keywords, set));
  result.feasible = true;
  result.cost =
      EvaluateCost(cost_type(), dataset(), query.location, set);
  result.set = std::move(set);
  result.stats = stats;
  return result;
}

CoskqResult CoskqSolver::Infeasible(SolveStats stats) {
  CoskqResult result;
  result.stats = stats;
  return result;
}

}  // namespace coskq
