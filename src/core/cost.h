#ifndef COSKQ_CORE_COST_H_
#define COSKQ_CORE_COST_H_

#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "data/object.h"
#include "data/query.h"
#include "geo/point.h"

namespace coskq {

class SearchScratch;

/// The two cost functions of the paper.
///
///  * kMaxSum: cost(S) = max_{o∈S} d(o,q) + max_{o1,o2∈S} d(o1,o2)
///  * kDia:    cost(S) = max{ max_{o∈S} d(o,q), max_{o1,o2∈S} d(o1,o2) }
///             (the diameter of S ∪ {q})
///
/// Both instantiate the distance owner-driven framework; minimizing either
/// over feasible sets is NP-hard.
enum class CostType {
  kMaxSum,
  kDia,
};

/// "MaxSum" / "Dia".
std::string_view CostTypeName(CostType type);

/// The proven approximation ratio of the paper's approximate algorithm for
/// this cost: 1.375 for MaxSum, sqrt(3) for Dia.
double ApproRatioBound(CostType type);

/// The two distance components the cost functions combine.
struct CostComponents {
  double max_query_dist = 0.0;     // max_{o∈S} d(o, q)
  double max_pairwise_dist = 0.0;  // max_{o1,o2∈S} d(o1, o2)
};

/// Combines the two components per the cost type.
double CombineCost(CostType type, const CostComponents& components);

/// Computes both components of `set` w.r.t. query location `q` in O(|S|^2).
/// An empty set yields zero components.
CostComponents ComputeComponents(const Dataset& dataset, const Point& q,
                                 const std::vector<ObjectId>& set);

/// As above, memoizing every distance through `cache` (which must have been
/// bound to `q` by BeginQuery). Falls back to the plain path when `cache`
/// is null or disabled; results are bit-identical either way because the
/// memo stores the output of the same Distance() calls.
CostComponents ComputeComponents(const Dataset& dataset, const Point& q,
                                 const std::vector<ObjectId>& set,
                                 SearchScratch* cache);

/// Full cost of `set` under `type`. Empty sets cost 0; callers guard
/// feasibility separately.
double EvaluateCost(CostType type, const Dataset& dataset, const Point& q,
                    const std::vector<ObjectId>& set);

/// Distance-memoized variant; same fallback contract as ComputeComponents.
double EvaluateCost(CostType type, const Dataset& dataset, const Point& q,
                    const std::vector<ObjectId>& set, SearchScratch* cache);

/// True iff the keyword sets of `set` jointly cover `keywords`.
bool SetCoversKeywords(const Dataset& dataset, const TermSet& keywords,
                       const std::vector<ObjectId>& set);

/// The distance owners of a set: the query distance owner (object farthest
/// from q) and the pairwise distance owners (the farthest pair). For a
/// singleton set the pair is (o, o).
struct DistanceOwners {
  ObjectId query_owner = kInvalidObjectId;
  ObjectId pair_first = kInvalidObjectId;
  ObjectId pair_second = kInvalidObjectId;
};

/// Extracts the distance owners of a non-empty set. Ties break toward the
/// smallest object id, making the result deterministic.
DistanceOwners FindDistanceOwners(const Dataset& dataset, const Point& q,
                                  const std::vector<ObjectId>& set);

/// Incremental cost tracker for branch-and-bound searches: push/pop objects
/// in stack (LIFO) order while maintaining the exact cost components in
/// O(|S|) per push and O(1) per pop. The running cost is monotone
/// non-decreasing under Push for both cost types, so it is a valid lower
/// bound on the cost of any superset — the pruning rule the exact searches
/// rely on.
class SetCostTracker {
 public:
  SetCostTracker(const Dataset* dataset, const Point& q, CostType type);

  /// As above with a per-query distance memo; every distance still comes
  /// from the same Distance() computation, so costs are bit-identical.
  SetCostTracker(const Dataset* dataset, const Point& q, CostType type,
                 SearchScratch* cache);

  /// Rebinds the tracker to a new query, keeping the capacity of its
  /// internal buffers (zero steady-state allocation across a batch). The
  /// tracker must be empty (fully popped) when Reset is called.
  void Reset(const Point& q, SearchScratch* cache);

  /// Adds `id` to the set. Duplicate pushes are allowed and harmless for
  /// cost purposes (distance 0 to the twin).
  void Push(ObjectId id);

  /// Removes the most recently pushed object.
  void Pop();

  double cost() const;
  const CostComponents& components() const { return stack_.back(); }
  size_t size() const { return ids_.size(); }
  const std::vector<ObjectId>& ids() const { return ids_; }
  bool Contains(ObjectId id) const;

 private:
  const Dataset* dataset_;
  Point query_;
  CostType type_;
  SearchScratch* cache_ = nullptr;  // Not owned; may be null.
  std::vector<ObjectId> ids_;
  std::vector<Point> points_;
  std::vector<CostComponents> stack_;  // stack_[k] = components of first k.
};

}  // namespace coskq

#endif  // COSKQ_CORE_COST_H_
