#ifndef COSKQ_CORE_OWNER_DRIVEN_EXACT_H_
#define COSKQ_CORE_OWNER_DRIVEN_EXACT_H_

#include <memory>
#include <string>

#include "core/cost.h"
#include "core/solver.h"
#include "index/search_scratch.h"

namespace coskq {

class OwnerDrivenAppro;

/// The paper's exact algorithms, MaxSum-Exact and Dia-Exact, expressed in
/// one distance owner-driven search engine.
///
/// The cost of any set is determined by three *distance owners*: the query
/// distance owner o_f (farthest from q) and the pairwise distance owners
/// (o_1, o_2) (the farthest pair). The search therefore iterates candidate
/// owner triplets instead of candidate sets:
///
///   1. Seed the incumbent with N(q).
///   2. Enumerate candidate pairwise-owner pairs among the relevant objects
///      inside C(q, curCost), filtered by proven distance bounds
///      [d_LB, d_UB] and ordered by a per-pair cost lower bound; stop as
///      soon as the lower bound reaches the incumbent cost.
///   3. For each pair, enumerate candidate query distance owners o_m inside
///      the lens C(o_1, d_12) ∩ C(o_2, d_12), restricted to the ring
///      r_LB <= d(o_m, q) <= r_UB, in ascending distance from q.
///   4. findBestFeasibleSet: cover the keywords the three owners miss using
///      objects inside the owner-constrained region, by branch-and-bound
///      over per-keyword candidate lists with incremental exact costing.
///
/// Every enumerated set is costed *exactly* (not via the owner prediction),
/// so the incumbent is always a genuine feasible cost; completeness follows
/// because the true optimum is enumerated when its own owner triplet comes
/// up. The bound families can be disabled individually for the ablation
/// study (the result stays exact; only the work grows).
///
/// Hot path: with `use_query_masks` (default) the solver runs every IR-tree
/// traversal, keyword-coverage test, and distance computation through its
/// private SearchScratch — query-scoped bitmasks plus memoized distances —
/// and reuses all enumeration buffers across Solve calls, making repeat
/// solves allocation-free in steady state. Results are bit-identical to the
/// baseline (the masks answer exactly the same containment questions and
/// the memo stores the same Distance() outputs); the switch exists for the
/// A/B hot-path benchmark.
class OwnerDrivenExact : public CoskqSolver {
 public:
  struct Options {
    /// Apply the [d_LB, d_UB] filter when generating owner pairs.
    bool use_pair_distance_bounds = true;
    /// Order pairs by cost lower bound and cut the loop at the incumbent.
    bool use_cost_lb_ordering = true;
    /// Apply the [r_LB, r_UB] ring filter to query-owner candidates.
    bool use_owner_ring_bounds = true;
    /// Seed the incumbent with the approximate algorithm's answer before
    /// searching (exactness is unaffected: the incumbent only tightens
    /// bounds). Dramatically shrinks the candidate disk and the pair
    /// distance cap on hard instances.
    bool seed_with_appro = true;
    /// Query-scoped keyword bitmasks + scratch-pooled buffers + distance
    /// memo (see class comment). Identical results either way.
    bool use_query_masks = true;
    /// Optional wall-clock deadline in milliseconds (0 = none). When hit,
    /// the solver stops and returns the incumbent with stats.truncated set.
    /// Intended for benchmark harnesses; leaves exactness guarantees void.
    double deadline_ms = 0.0;
  };

  OwnerDrivenExact(const CoskqContext& context, CostType type,
                   const Options& options);
  OwnerDrivenExact(const CoskqContext& context, CostType type)
      : OwnerDrivenExact(context, type, Options()) {}
  ~OwnerDrivenExact() override;

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  struct Workspace;

  CostType type_;
  Options options_;
  /// Per-solver scratch: one solver instance serves one thread (the
  /// BatchEngine gives each worker a private instance), so no locking.
  SearchScratch scratch_;
  /// Enumeration buffers pooled across Solve calls (defined in the .cc).
  std::unique_ptr<Workspace> ws_;
  /// Lazily created incumbent seeder (when seed_with_appro).
  std::unique_ptr<OwnerDrivenAppro> seeder_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_OWNER_DRIVEN_EXACT_H_
