#include "core/owner_driven_exact.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "core/owner_driven_appro.h"
#include "index/rtree.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

namespace {

// Absolute slack applied to the triangle-inequality lower bound d_LB, the
// one bound whose derivation mixes independently rounded distances. All
// other bounds compare identically computed quantities and need no slack.
double TriangleSlack(double scale) { return 1e-9 * (scale + 1.0); }

// A candidate pairwise-owner pair (indices into the candidate array).
struct PairCand {
  uint32_t i;
  uint32_t j;
  double d_ij;
  double cost_lb;
};

// findBestFeasibleSet (the per-owner-triplet subroutine): the best feasible
// set containing the owner triplet plus extras drawn from a prefix of the
// pair's lens members, beating *cur_cost. One finder lives per solver and
// is rebound per query (BeginQuery) and per pair (BeginPair), so its
// per-keyword lists and cost tracker keep their capacity across the batch.
//
// Two interchangeable search modes: the baseline walks sorted TermSets; the
// masked mode (active query bitmask covering all keywords) tracks uncovered
// keywords as a uint64. Bit k of every mask is the k-th query keyword in
// sorted order and set bits are consumed in ascending order, so branch
// selection — "uncovered keyword with the fewest in-prefix candidates",
// first minimum winning — is identical in both modes.
class BestSetFinder {
 public:
  BestSetFinder(const Dataset& dataset, CostType type)
      : dataset_(dataset), tracker_(&dataset, Point{}, type) {}

  void BeginQuery(const CoskqQuery& query, SearchScratch* scratch,
                  std::vector<ObjectId>* cur_set, double* cur_cost,
                  SolveStats* stats) {
    query_ = &query;
    scratch_ = scratch;
    masked_ = scratch != nullptr && scratch->mask_active() &&
              scratch->mask().num_keywords() == query.keywords.size();
    cur_set_ = cur_set;
    cur_cost_ = cur_cost;
    stats_ = stats;
    tracker_.Reset(query.location, scratch);
    if (lists_.size() < query.keywords.size()) {
      lists_.resize(query.keywords.size());
    }
  }

  // Per-query-keyword candidate lists over the lens, in lens (distance
  // from q) order. `lens_mask` parallels `lens` in masked mode (unused
  // otherwise).
  void BeginPair(const std::vector<Candidate>& lens,
                 const std::vector<uint64_t>& lens_mask) {
    lens_ = &lens;
    lens_mask_ = &lens_mask;
    const size_t num_kw = query_->keywords.size();
    for (size_t k = 0; k < num_kw; ++k) {
      lists_[k].clear();
    }
    if (masked_) {
      for (uint32_t i = 0; i < lens.size(); ++i) {
        uint64_t m = lens_mask[i];
        while (m != 0) {
          const int k = std::countr_zero(m);
          m &= m - 1;
          lists_[static_cast<size_t>(k)].push_back(i);
        }
      }
    } else {
      for (uint32_t i = 0; i < lens.size(); ++i) {
        const TermSet& kw = dataset_.object(lens[i].id).keywords;
        for (size_t k = 0; k < num_kw; ++k) {
          if (TermSetContains(kw, query_->keywords[k])) {
            lists_[k].push_back(i);
          }
        }
      }
    }
  }

  // `base` is the (deduplicated) owner triplet; extras come from
  // lens[0, prefix_end).
  void Run(const std::vector<ObjectId>& base, uint32_t prefix_end) {
    prefix_end_ = prefix_end;
    if (masked_) {
      uint64_t covered = 0;
      for (ObjectId id : base) {
        tracker_.Push(id);
        covered |= scratch_->ObjectMask(id, dataset_.object(id).keywords);
      }
      DfsMask(scratch_->mask().full_mask() & ~covered);
    } else {
      TermSet covered;
      for (ObjectId id : base) {
        tracker_.Push(id);
        TermSetMergeInto(&covered, dataset_.object(id).keywords);
      }
      Dfs(TermSetDifference(query_->keywords, covered));
    }
    for (size_t i = 0; i < base.size(); ++i) {
      tracker_.Pop();
    }
  }

 private:
  // Index into lists_ for a (query) keyword.
  size_t KeywordSlot(TermId t) const {
    const auto it = std::lower_bound(query_->keywords.begin(),
                                     query_->keywords.end(), t);
    COSKQ_DCHECK(it != query_->keywords.end() && *it == t);
    return static_cast<size_t>(it - query_->keywords.begin());
  }

  size_t PrefixCount(const std::vector<uint32_t>& list) const {
    return static_cast<size_t>(
        std::lower_bound(list.begin(), list.end(), prefix_end_) -
        list.begin());
  }

  void Dfs(const TermSet& uncovered) {
    if (tracker_.cost() >= *cur_cost_) {
      return;  // Cost is monotone under Push: no superset can be better.
    }
    if (uncovered.empty()) {
      ++stats_->sets_evaluated;
      *cur_cost_ = tracker_.cost();
      *cur_set_ = tracker_.ids();
      return;
    }
    // Branch on the uncovered keyword with the fewest candidates (counted
    // within the active prefix).
    size_t best_slot = query_->keywords.size();
    size_t best_count = 0;
    for (TermId t : uncovered) {
      const size_t slot = KeywordSlot(t);
      const size_t count = PrefixCount(lists_[slot]);
      if (count == 0) {
        return;  // Uncoverable within the region.
      }
      if (best_slot == query_->keywords.size() || count < best_count) {
        best_slot = slot;
        best_count = count;
      }
    }
    for (uint32_t index : lists_[best_slot]) {
      if (index >= prefix_end_) {
        break;  // Lists ascend in lens position.
      }
      const ObjectId id = (*lens_)[index].id;
      if (tracker_.Contains(id)) {
        continue;  // Already chosen (would not cover the branch keyword).
      }
      tracker_.Push(id);
      Dfs(TermSetDifference(uncovered, dataset_.object(id).keywords));
      tracker_.Pop();
    }
  }

  void DfsMask(uint64_t uncovered) {
    if (tracker_.cost() >= *cur_cost_) {
      return;
    }
    if (uncovered == 0) {
      ++stats_->sets_evaluated;
      *cur_cost_ = tracker_.cost();
      *cur_set_ = tracker_.ids();
      return;
    }
    const size_t num_kw = query_->keywords.size();
    size_t best_slot = num_kw;
    size_t best_count = 0;
    for (uint64_t m = uncovered; m != 0; m &= m - 1) {
      const size_t slot = static_cast<size_t>(std::countr_zero(m));
      const size_t count = PrefixCount(lists_[slot]);
      if (count == 0) {
        return;
      }
      if (best_slot == num_kw || count < best_count) {
        best_slot = slot;
        best_count = count;
      }
    }
    for (uint32_t index : lists_[best_slot]) {
      if (index >= prefix_end_) {
        break;
      }
      const ObjectId id = (*lens_)[index].id;
      if (tracker_.Contains(id)) {
        continue;
      }
      tracker_.Push(id);
      DfsMask(uncovered & ~(*lens_mask_)[index]);
      tracker_.Pop();
    }
  }

  const Dataset& dataset_;
  const CoskqQuery* query_ = nullptr;
  SearchScratch* scratch_ = nullptr;
  bool masked_ = false;
  const std::vector<Candidate>* lens_ = nullptr;
  const std::vector<uint64_t>* lens_mask_ = nullptr;
  std::vector<ObjectId>* cur_set_ = nullptr;
  double* cur_cost_ = nullptr;
  SolveStats* stats_ = nullptr;
  uint32_t prefix_end_ = 0;
  SetCostTracker tracker_;
  std::vector<std::vector<uint32_t>> lists_;  // Per query keyword.
};

}  // namespace

// Enumeration buffers pooled across Solve calls (zero steady-state
// allocations once every buffer has reached its high-water capacity).
struct OwnerDrivenExact::Workspace {
  Workspace(const Dataset& dataset, CostType type) : finder(dataset, type) {}

  std::vector<Candidate> cands;
  std::vector<uint64_t> kw_mask;
  std::vector<std::vector<uint32_t>> kw_lists;
  std::vector<size_t> rare_slots;
  std::vector<PairCand> pairs;
  std::vector<ObjectId> hits;
  std::vector<ObjectId> lens_ids;
  std::vector<Candidate> lens;
  std::vector<uint64_t> lens_mask;
  std::vector<ObjectId> base;
  BestSetFinder finder;
};

OwnerDrivenExact::OwnerDrivenExact(const CoskqContext& context, CostType type,
                                   const Options& options)
    : CoskqSolver(context),
      type_(type),
      options_(options),
      ws_(std::make_unique<Workspace>(*context.dataset, type)) {
  scratch_.set_enabled(options_.use_query_masks);
  if (options_.seed_with_appro) {
    OwnerDrivenAppro::Options appro_options;
    appro_options.use_query_masks = options_.use_query_masks;
    seeder_ =
        std::make_unique<OwnerDrivenAppro>(context, type, appro_options);
  }
}

OwnerDrivenExact::~OwnerDrivenExact() = default;

std::string OwnerDrivenExact::name() const {
  std::string result(CostTypeName(type_));
  result += "-Exact";
  if (!options_.use_pair_distance_bounds || !options_.use_cost_lb_ordering ||
      !options_.use_owner_ring_bounds) {
    result += "[-";
    if (!options_.use_pair_distance_bounds) result += "d";
    if (!options_.use_cost_lb_ordering) result += "o";
    if (!options_.use_owner_ring_bounds) result += "r";
    result += "]";
  }
  return result;
}

CoskqResult OwnerDrivenExact::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  scratch_.BeginQuery(query.location, query.keywords, index().node_id_limit(),
                      dataset().NumObjects());
  const auto finalize = [&](CoskqResult result) {
    scratch_.FinishQuery();
    result.stats.dist_cache_hits = scratch_.dist_cache_hits();
    result.stats.dist_cache_misses = scratch_.dist_cache_misses();
    result.stats.scratch_reallocs = scratch_.realloc_events();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  };
  if (query.keywords.empty()) {
    return finalize(MakeResult(query, {}, stats));
  }

  const NnSetInfo nn = ComputeNnSet(context_, query, &scratch_);
  if (!nn.feasible) {
    return finalize(Infeasible(stats));
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost =
      EvaluateCost(type_, dataset(), query.location, cur_set, &scratch_);
  const double d_f = nn.max_dist;

  // Optional incumbent seeding: the approximate answer is feasible and
  // usually near-optimal, which tightens every bound below before the
  // expensive enumeration starts (exactness is unaffected).
  if (seeder_ != nullptr) {
    CoskqResult seeded = seeder_->Solve(query);
    if (seeded.feasible && seeded.cost < cur_cost) {
      cur_cost = seeded.cost;
      cur_set = std::move(seeded.set);
    }
  }

  // Step 0: every member of a better-than-incumbent set lies within
  // C(q, curCost); fetch those relevant objects once (tiny relative slack
  // guards the squared-distance boundary test) and spatially index them for
  // the radius-bounded pair and lens retrievals below.
  RelevantCandidatesInDisk(context_, query, cur_cost * (1.0 + 1e-12),
                           &scratch_, &ws_->cands);
  const std::vector<Candidate>& cands = ws_->cands;
  stats.candidates = cands.size();

  RTree cand_tree;
  {
    std::vector<RTree::Item> items;
    items.reserve(cands.size());
    for (uint32_t i = 0; i < cands.size(); ++i) {
      items.push_back(RTree::Item{i, cands[i].location});
    }
    cand_tree.BulkLoad(std::move(items));
  }
  const double radius_slack = 1e-9 * (cur_cost + 1.0);

  // Per-candidate coverage bitmasks over (the first 64 of) the query
  // keywords: every member of a set with pairwise owners (o_i, o_j) lies in
  // their lens, so a pair whose lens does not cover the query keywords can
  // be skipped before any per-pair work. With more than 64 query keywords
  // the check degrades to a (still valid) necessary condition on the first
  // 64. In masked mode the per-object masks come from the scratch cache.
  const size_t num_kw = query.keywords.size();
  const bool masked = scratch_.mask_active();
  const size_t mask_bits = std::min<size_t>(64, num_kw);
  const uint64_t full_mask =
      mask_bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << mask_bits) - 1);
  std::vector<uint64_t>& kw_mask = ws_->kw_mask;
  kw_mask.assign(cands.size(), 0);
  std::vector<std::vector<uint32_t>>& kw_lists = ws_->kw_lists;
  if (kw_lists.size() < num_kw) {
    kw_lists.resize(num_kw);
  }
  for (size_t k = 0; k < num_kw; ++k) {
    kw_lists[k].clear();
  }
  if (masked) {
    for (uint32_t i = 0; i < cands.size(); ++i) {
      const uint64_t mask = scratch_.ObjectMask(
          cands[i].id, dataset().object(cands[i].id).keywords);
      kw_mask[i] = mask;
      for (uint64_t m = mask; m != 0; m &= m - 1) {
        kw_lists[static_cast<size_t>(std::countr_zero(m))].push_back(i);
      }
    }
  } else {
    for (uint32_t i = 0; i < cands.size(); ++i) {
      const TermSet& kw = dataset().object(cands[i].id).keywords;
      for (size_t k = 0; k < num_kw; ++k) {
        if (TermSetContains(kw, query.keywords[k])) {
          if (k < mask_bits) {
            kw_mask[i] |= uint64_t{1} << k;
          }
          kw_lists[k].push_back(i);
        }
      }
    }
  }
  // The rarest query keywords' candidate lists, for the cheap per-pair
  // viability check below (any feasible set with pairwise owners (o_i, o_j)
  // must cover each keyword from inside the lens C(o_i,d_ij) ∩ C(o_j,d_ij)).
  std::vector<size_t>& rare_slots = ws_->rare_slots;
  rare_slots.resize(num_kw);
  for (size_t k = 0; k < rare_slots.size(); ++k) {
    rare_slots[k] = k;
  }
  std::sort(rare_slots.begin(), rare_slots.end(), [&](size_t a, size_t b) {
    return kw_lists[a].size() < kw_lists[b].size();
  });
  rare_slots.resize(std::min<size_t>(3, rare_slots.size()));

  const auto pair_dist = [&](uint32_t i, uint32_t j) {
    return Distance(cands[i].location, cands[j].location);
  };

  // Step 1: generate candidate pairwise-owner pairs. Pairs (i, i) cover the
  // singleton / duplicate-location cases; distinct pairs are retrieved per
  // left endpoint i through a radius-bounded circle query (the incumbent
  // caps the pairwise owner distance at curCost - max(d_i, d_f) for MaxSum
  // and curCost for Dia), so the quadratic scan disappears whenever the
  // incumbent is tight.
  std::vector<PairCand>& pairs = ws_->pairs;
  pairs.clear();
  const double slack = TriangleSlack(d_f);
  const auto consider_pair = [&](uint32_t i, uint32_t j, double d_ij) {
    if (options_.use_pair_distance_bounds) {
      // d_LB: triangle inequality against the query distance owner.
      const double d_lb = d_f - std::min(cands[i].dist_q, cands[j].dist_q);
      if (d_ij < d_lb - slack) {
        return;
      }
      // d_UB: the pair already forces cost >= curCost.
      if (type_ == CostType::kMaxSum && d_f + d_ij >= cur_cost) {
        return;
      }
      if (type_ == CostType::kDia && d_ij >= cur_cost) {
        return;
      }
    }
    const double owner_floor =
        std::max({cands[i].dist_q, cands[j].dist_q, d_f});
    const double cost_lb = type_ == CostType::kMaxSum
                               ? d_ij + owner_floor
                               : std::max(d_ij, owner_floor);
    if (cost_lb >= cur_cost) {
      return;
    }
    pairs.push_back(PairCand{i, j, d_ij, cost_lb});
  };

  for (uint32_t i = 0; i < cands.size(); ++i) {
    consider_pair(i, i, 0.0);
  }
  if (options_.use_pair_distance_bounds) {
    std::vector<ObjectId>& hits = ws_->hits;
    for (uint32_t i = 0; i < cands.size(); ++i) {
      // Any pair kept by consider_pair satisfies
      // d_ij < curCost - max(d_i, d_f) (MaxSum) resp. d_ij < curCost (Dia).
      const double cap = type_ == CostType::kMaxSum
                             ? cur_cost - std::max(cands[i].dist_q, d_f)
                             : cur_cost;
      if (cap <= 0.0) {
        continue;
      }
      hits.clear();
      cand_tree.Search(Circle(cands[i].location, cap + radius_slack), &hits);
      for (ObjectId j : hits) {
        if (j > i) {
          consider_pair(i, j, pair_dist(i, j));
        }
      }
    }
  } else {
    for (uint32_t i = 0; i < cands.size(); ++i) {
      for (uint32_t j = i + 1; j < cands.size(); ++j) {
        consider_pair(i, j, pair_dist(i, j));
      }
    }
  }

  if (options_.use_cost_lb_ordering) {
    std::sort(pairs.begin(), pairs.end(),
              [](const PairCand& a, const PairCand& b) {
                return a.cost_lb < b.cost_lb;
              });
  }

  // Step 2: per pair, retrieve the lens members, enumerate query-owner
  // candidates in ascending distance from q, and run findBestFeasibleSet
  // over the corresponding lens prefix.
  BestSetFinder& finder = ws_->finder;
  finder.BeginQuery(query, &scratch_, &cur_set, &cur_cost, &stats);
  std::vector<ObjectId>& lens_ids = ws_->lens_ids;
  std::vector<Candidate>& lens = ws_->lens;
  std::vector<uint64_t>& lens_mask = ws_->lens_mask;
  for (const PairCand& pair : pairs) {
    if (options_.deadline_ms > 0.0 &&
        timer.ElapsedMillis() > options_.deadline_ms) {
      stats.truncated = true;
      break;
    }
    if (pair.cost_lb >= cur_cost) {
      if (options_.use_cost_lb_ordering) {
        break;  // Pairs are sorted: nothing later can beat the incumbent.
      }
      continue;
    }
    ++stats.pairs_examined;
    const Candidate& oi = cands[pair.i];
    const Candidate& oj = cands[pair.j];

    // Cheap viability precheck: each of the rarest keywords needs at least
    // one candidate inside the lens. This skips most pairs without touching
    // the candidate R-tree. As a bonus, the *nearest-to-q* in-lens cover of
    // each rare keyword lower-bounds the query-owner distance: the final
    // set covers the keyword from inside both the lens and the query-owner
    // disk, so d(o_m, q) >= min_{r in lens ∩ R_t} d(r, q).
    bool viable = true;
    double owner_floor2 = 0.0;
    for (size_t slot : rare_slots) {
      double nearest = std::numeric_limits<double>::infinity();
      for (uint32_t idx : kw_lists[slot]) {
        const Candidate& cand = cands[idx];
        if (cand.dist_q >= nearest) {
          continue;  // kw_lists ascend in dist_q; no improvement possible.
        }
        if (pair_dist(idx, pair.i) <= pair.d_ij &&
            pair_dist(idx, pair.j) <= pair.d_ij) {
          nearest = cand.dist_q;
          break;  // Ascending dist_q: the first hit is the minimum.
        }
      }
      if (nearest == std::numeric_limits<double>::infinity()) {
        viable = false;
        break;
      }
      owner_floor2 = std::max(owner_floor2, nearest);
    }
    if (!viable) {
      continue;
    }
    const double sharpened_lb =
        type_ == CostType::kMaxSum
            ? pair.d_ij + std::max(pair.cost_lb - pair.d_ij, owner_floor2)
            : std::max(pair.cost_lb, owner_floor2);
    if (sharpened_lb >= cur_cost) {
      continue;
    }

    // Objects that may coexist with the pairwise owners (o_i, o_j): the
    // lens C(o_i, d_ij) ∩ C(o_j, d_ij), sorted by distance from q.
    lens_ids.clear();
    cand_tree.Search(Circle(oi.location, pair.d_ij + radius_slack),
                     &lens_ids);
    lens.clear();
    uint64_t lens_cover = 0;
    for (ObjectId idx : lens_ids) {
      const Candidate& cand = cands[idx];
      if (pair_dist(idx, pair.i) <= pair.d_ij &&
          pair_dist(idx, pair.j) <= pair.d_ij) {
        lens.push_back(cand);
        lens_cover |= kw_mask[idx];
      }
    }
    if ((lens_cover & full_mask) != full_mask) {
      continue;  // The lens cannot host any feasible set.
    }
    // Cheap pre-check: skip the sort and the per-pair keyword lists when no
    // lens member can serve as the query distance owner of an improving set.
    if (options_.use_owner_ring_bounds) {
      const double r_lb = std::max({oi.dist_q, oj.dist_q, d_f});
      bool any_owner = false;
      for (const Candidate& cand : lens) {
        if (cand.dist_q < r_lb) {
          continue;
        }
        const double predicted = type_ == CostType::kMaxSum
                                     ? cand.dist_q + pair.d_ij
                                     : std::max(cand.dist_q, pair.d_ij);
        if (predicted < cur_cost) {
          any_owner = true;
          break;
        }
      }
      if (!any_owner) {
        continue;
      }
    }
    std::sort(lens.begin(), lens.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.dist_q != b.dist_q) {
                  return a.dist_q < b.dist_q;
                }
                return a.id < b.id;
              });
    lens_mask.clear();
    if (masked) {
      lens_mask.reserve(lens.size());
      for (const Candidate& cand : lens) {
        lens_mask.push_back(scratch_.ObjectMask(
            cand.id, dataset().object(cand.id).keywords));
      }
    }

    finder.BeginPair(lens, lens_mask);
    uint32_t prefix_end = 0;
    for (uint32_t mi = 0; mi < lens.size(); ++mi) {
      const Candidate& om = lens[mi];
      if (options_.use_owner_ring_bounds) {
        // r_LB: the query owner is at least as far as o_i, o_j, and d_f.
        if (om.dist_q < std::max({oi.dist_q, oj.dist_q, d_f})) {
          continue;
        }
        // r_UB: predicted cost with this owner already meets the incumbent;
        // later owners are farther, so stop.
        const double predicted = type_ == CostType::kMaxSum
                                     ? om.dist_q + pair.d_ij
                                     : std::max(om.dist_q, pair.d_ij);
        if (predicted >= cur_cost) {
          break;
        }
      }
      // Extras must stay inside the query-owner disk C(q, d(o_m, q)):
      // exactly the lens prefix up to o_m's distance.
      while (prefix_end < lens.size() &&
             lens[prefix_end].dist_q <= om.dist_q) {
        ++prefix_end;
      }

      std::vector<ObjectId>& base = ws_->base;
      base.assign({oi.id, oj.id, om.id});
      std::sort(base.begin(), base.end());
      base.erase(std::unique(base.begin(), base.end()), base.end());
      finder.Run(base, prefix_end);
    }
  }

  return finalize(MakeResult(query, std::move(cur_set), stats));
}

}  // namespace coskq
