#include "core/owner_driven_appro.h"

#include <algorithm>
#include <limits>

#include "core/candidates.h"
#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

OwnerDrivenAppro::OwnerDrivenAppro(const CoskqContext& context, CostType type)
    : CoskqSolver(context), type_(type) {}

std::string OwnerDrivenAppro::name() const {
  std::string result(CostTypeName(type_));
  result += "-Appro";
  return result;
}

CoskqResult OwnerDrivenAppro::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  if (query.keywords.empty()) {
    CoskqResult result = MakeResult(query, {}, stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  const NnSetInfo nn = ComputeNnSet(context_, query);
  if (!nn.feasible) {
    CoskqResult result = Infeasible(stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost = EvaluateCost(type_, dataset(), query.location, cur_set);
  const double d_f = nn.max_dist;

  const std::vector<Candidate> cands = RelevantCandidatesInDisk(
      context_, query, cur_cost * (1.0 + 1e-12));
  stats.candidates = cands.size();

  // Per-query-keyword candidate lists; indices into `cands` in ascending
  // distance order (cands is distance-sorted).
  const size_t num_kw = query.keywords.size();
  std::vector<std::vector<uint32_t>> lists(num_kw);
  for (uint32_t idx = 0; idx < cands.size(); ++idx) {
    const TermSet& kw = dataset().object(cands[idx].id).keywords;
    for (size_t k = 0; k < num_kw; ++k) {
      if (TermSetContains(kw, query.keywords[k])) {
        lists[k].push_back(idx);
      }
    }
  }

  // Scratch buffers reused across anchors.
  std::vector<double> nn_dist(num_kw);
  std::vector<uint32_t> nn_index(num_kw);
  std::vector<ObjectId> greedy_set;

  size_t prefix_end = 0;  // cands[0, prefix_end) have dist_q <= o.dist_q.
  for (size_t idx = 0; idx < cands.size(); ++idx) {
    const Candidate& o = cands[idx];
    while (prefix_end < cands.size() &&
           cands[prefix_end].dist_q <= o.dist_q) {
      ++prefix_end;
    }
    if (o.dist_q < d_f) {
      continue;  // Cannot be the query distance owner of a feasible set.
    }
    if (o.dist_q >= cur_cost) {
      break;  // Everything farther costs at least the incumbent.
    }

    // For each keyword not covered by the anchor o, find the candidate in
    // the disk prefix nearest to o that covers it. Adding objects never
    // shrinks the candidate pool, so these per-keyword nearest neighbors
    // stay valid for the whole greedy construction.
    const TermSet& anchor_kw = dataset().object(o.id).keywords;
    bool failed = false;
    for (size_t k = 0; k < num_kw && !failed; ++k) {
      if (TermSetContains(anchor_kw, query.keywords[k])) {
        nn_index[k] = kInvalidObjectId;  // Covered by the anchor itself.
        continue;
      }
      double best_d = std::numeric_limits<double>::infinity();
      uint32_t best = kInvalidObjectId;
      for (uint32_t cand_idx : lists[k]) {
        if (cand_idx >= prefix_end) {
          break;  // List indices ascend with distance from q.
        }
        const double d = Distance(cands[cand_idx].location, o.location);
        if (d < best_d) {
          best_d = d;
          best = cand_idx;
        }
      }
      if (best == kInvalidObjectId) {
        // N(q) lies inside every C(q, d(o,q)) with d(o,q) >= d_f, so every
        // keyword always has a candidate; reaching here indicates a bug.
        COSKQ_DCHECK(false) << "greedy construction found no candidate";
        failed = true;
        break;
      }
      nn_dist[k] = best_d;
      nn_index[k] = best;
    }
    if (failed) {
      continue;
    }

    // Greedy assembly: repeatedly take the uncovered keyword whose nearest
    // cover (w.r.t. o) is closest; one object may cover several keywords.
    greedy_set.assign(1, o.id);
    std::vector<bool> covered(num_kw, false);
    for (size_t k = 0; k < num_kw; ++k) {
      covered[k] = nn_index[k] == kInvalidObjectId;
    }
    while (true) {
      size_t pick = num_kw;
      for (size_t k = 0; k < num_kw; ++k) {
        if (!covered[k] &&
            (pick == num_kw || nn_dist[k] < nn_dist[pick])) {
          pick = k;
        }
      }
      if (pick == num_kw) {
        break;  // All keywords covered.
      }
      const Candidate& chosen = cands[nn_index[pick]];
      greedy_set.push_back(chosen.id);
      const TermSet& chosen_kw = dataset().object(chosen.id).keywords;
      for (size_t k = 0; k < num_kw; ++k) {
        if (!covered[k] && TermSetContains(chosen_kw, query.keywords[k])) {
          covered[k] = true;
        }
      }
    }

    ++stats.sets_evaluated;
    const double cost =
        EvaluateCost(type_, dataset(), query.location, greedy_set);
    if (cost < cur_cost) {
      cur_cost = cost;
      cur_set = greedy_set;
    }
  }

  CoskqResult result = MakeResult(query, std::move(cur_set), stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace coskq
