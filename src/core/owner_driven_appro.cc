#include "core/owner_driven_appro.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/nn_set.h"
#include "util/logging.h"
#include "util/timer.h"

namespace coskq {

OwnerDrivenAppro::OwnerDrivenAppro(const CoskqContext& context, CostType type,
                                   const Options& options)
    : CoskqSolver(context), type_(type), options_(options) {
  scratch_.set_enabled(options_.use_query_masks);
}

std::string OwnerDrivenAppro::name() const {
  std::string result(CostTypeName(type_));
  result += "-Appro";
  return result;
}

CoskqResult OwnerDrivenAppro::Solve(const CoskqQuery& query) {
  WallTimer timer;
  SolveStats stats;
  scratch_.BeginQuery(query.location, query.keywords, index().node_id_limit(),
                      dataset().NumObjects());
  const auto finalize = [&](CoskqResult result) {
    scratch_.FinishQuery();
    result.stats.dist_cache_hits = scratch_.dist_cache_hits();
    result.stats.dist_cache_misses = scratch_.dist_cache_misses();
    result.stats.scratch_reallocs = scratch_.realloc_events();
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  };
  if (query.keywords.empty()) {
    return finalize(MakeResult(query, {}, stats));
  }

  const NnSetInfo nn = ComputeNnSet(context_, query, &scratch_);
  if (!nn.feasible) {
    return finalize(Infeasible(stats));
  }
  std::vector<ObjectId> cur_set = nn.set;
  double cur_cost =
      EvaluateCost(type_, dataset(), query.location, cur_set, &scratch_);
  const double d_f = nn.max_dist;

  RelevantCandidatesInDisk(context_, query, cur_cost * (1.0 + 1e-12),
                           &scratch_, &cands_);
  const std::vector<Candidate>& cands = cands_;
  stats.candidates = cands.size();

  // Per-query-keyword candidate lists; indices into `cands` in ascending
  // distance order (cands is distance-sorted). In masked mode the coverage
  // tests collapse to bit probes of the cached per-object masks; set bits
  // ascend in keyword order, so the lists come out identical to the
  // baseline's TermSet scan.
  const size_t num_kw = query.keywords.size();
  const bool masked = scratch_.mask_active();
  if (lists_.size() < num_kw) {
    lists_.resize(num_kw);
  }
  for (size_t k = 0; k < num_kw; ++k) {
    lists_[k].clear();
  }
  if (masked) {
    for (uint32_t idx = 0; idx < cands.size(); ++idx) {
      const uint64_t mask = scratch_.ObjectMask(
          cands[idx].id, dataset().object(cands[idx].id).keywords);
      for (uint64_t m = mask; m != 0; m &= m - 1) {
        lists_[static_cast<size_t>(std::countr_zero(m))].push_back(idx);
      }
    }
  } else {
    for (uint32_t idx = 0; idx < cands.size(); ++idx) {
      const TermSet& kw = dataset().object(cands[idx].id).keywords;
      for (size_t k = 0; k < num_kw; ++k) {
        if (TermSetContains(kw, query.keywords[k])) {
          lists_[k].push_back(idx);
        }
      }
    }
  }

  // Pooled per-anchor buffers.
  nn_dist_.assign(num_kw, 0.0);
  nn_index_.assign(num_kw, kInvalidObjectId);

  size_t prefix_end = 0;  // cands[0, prefix_end) have dist_q <= o.dist_q.
  for (size_t idx = 0; idx < cands.size(); ++idx) {
    const Candidate& o = cands[idx];
    while (prefix_end < cands.size() &&
           cands[prefix_end].dist_q <= o.dist_q) {
      ++prefix_end;
    }
    if (o.dist_q < d_f) {
      continue;  // Cannot be the query distance owner of a feasible set.
    }
    if (o.dist_q >= cur_cost) {
      break;  // Everything farther costs at least the incumbent.
    }

    // For each keyword not covered by the anchor o, find the candidate in
    // the disk prefix nearest to o that covers it. Adding objects never
    // shrinks the candidate pool, so these per-keyword nearest neighbors
    // stay valid for the whole greedy construction.
    const TermSet& anchor_kw = dataset().object(o.id).keywords;
    const uint64_t anchor_mask =
        masked ? scratch_.ObjectMask(o.id, anchor_kw) : 0;
    bool failed = false;
    for (size_t k = 0; k < num_kw && !failed; ++k) {
      const bool anchor_covers =
          masked ? ((anchor_mask >> k) & 1) != 0
                 : TermSetContains(anchor_kw, query.keywords[k]);
      if (anchor_covers) {
        nn_index_[k] = kInvalidObjectId;  // Covered by the anchor itself.
        continue;
      }
      double best_d = std::numeric_limits<double>::infinity();
      uint32_t best = kInvalidObjectId;
      for (uint32_t cand_idx : lists_[k]) {
        if (cand_idx >= prefix_end) {
          break;  // List indices ascend with distance from q.
        }
        const double d = Distance(cands[cand_idx].location, o.location);
        if (d < best_d) {
          best_d = d;
          best = cand_idx;
        }
      }
      if (best == kInvalidObjectId) {
        // N(q) lies inside every C(q, d(o,q)) with d(o,q) >= d_f, so every
        // keyword always has a candidate; reaching here indicates a bug.
        COSKQ_DCHECK(false) << "greedy construction found no candidate";
        failed = true;
        break;
      }
      nn_dist_[k] = best_d;
      nn_index_[k] = best;
    }
    if (failed) {
      continue;
    }

    // Greedy assembly: repeatedly take the uncovered keyword whose nearest
    // cover (w.r.t. o) is closest; one object may cover several keywords.
    greedy_set_.assign(1, o.id);
    covered_.assign(num_kw, 0);
    for (size_t k = 0; k < num_kw; ++k) {
      covered_[k] = nn_index_[k] == kInvalidObjectId ? 1 : 0;
    }
    while (true) {
      size_t pick = num_kw;
      for (size_t k = 0; k < num_kw; ++k) {
        if (covered_[k] == 0 &&
            (pick == num_kw || nn_dist_[k] < nn_dist_[pick])) {
          pick = k;
        }
      }
      if (pick == num_kw) {
        break;  // All keywords covered.
      }
      const Candidate& chosen = cands[nn_index_[pick]];
      greedy_set_.push_back(chosen.id);
      const TermSet& chosen_kw = dataset().object(chosen.id).keywords;
      if (masked) {
        const uint64_t chosen_mask = scratch_.ObjectMask(chosen.id, chosen_kw);
        for (uint64_t m = chosen_mask; m != 0; m &= m - 1) {
          covered_[static_cast<size_t>(std::countr_zero(m))] = 1;
        }
      } else {
        for (size_t k = 0; k < num_kw; ++k) {
          if (covered_[k] == 0 &&
              TermSetContains(chosen_kw, query.keywords[k])) {
            covered_[k] = 1;
          }
        }
      }
    }

    ++stats.sets_evaluated;
    const double cost =
        EvaluateCost(type_, dataset(), query.location, greedy_set_, &scratch_);
    if (cost < cur_cost) {
      cur_cost = cost;
      cur_set = greedy_set_;
    }
  }

  return finalize(MakeResult(query, std::move(cur_set), stats));
}

}  // namespace coskq
