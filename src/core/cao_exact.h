#ifndef COSKQ_CORE_CAO_EXACT_H_
#define COSKQ_CORE_CAO_EXACT_H_

#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/cost.h"
#include "core/solver.h"
#include "index/search_scratch.h"

namespace coskq {

/// Baseline exact algorithm in the style of Cao et al. (SIGMOD 2011):
/// branch-and-bound over partial object sets. Seeded with the N(q) incumbent
/// (their Appro1), it retrieves the relevant objects inside C(q, curCost)
/// and grows partial covers keyword-by-keyword — always branching on the
/// uncovered keyword with the fewest candidates, candidates ordered by
/// ascending distance to q — pruning any branch whose exact running cost
/// reaches the incumbent (both cost functions are monotone under set
/// growth). Exact for MaxSum and Dia; its work grows exponentially with
/// |q.ψ| (the branching depth), which is the scaling weakness the paper's
/// owner-driven search removes.
class CaoExact : public CoskqSolver {
 public:
  struct Options {
    /// Optional wall-clock deadline in milliseconds (0 = none). When hit,
    /// the search stops and the incumbent is returned with stats.truncated
    /// set. Benchmark use only.
    double deadline_ms = 0.0;
    /// Query-scoped keyword bitmasks + pooled scratch + distance memo (A/B
    /// switch for the hot-path benchmark); results are bit-identical.
    bool use_query_masks = true;
  };

  CaoExact(const CoskqContext& context, CostType type, const Options& options);
  CaoExact(const CoskqContext& context, CostType type)
      : CaoExact(context, type, Options()) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  CostType type_;
  Options options_;
  /// Per-solver scratch and candidate buffer pooled across Solve calls; one
  /// solver instance serves one thread.
  SearchScratch scratch_;
  std::vector<Candidate> cands_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_CAO_EXACT_H_
