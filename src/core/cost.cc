#include "core/cost.h"

#include <algorithm>
#include <cmath>

#include "index/search_scratch.h"
#include "util/logging.h"

namespace coskq {

std::string_view CostTypeName(CostType type) {
  switch (type) {
    case CostType::kMaxSum:
      return "MaxSum";
    case CostType::kDia:
      return "Dia";
  }
  return "?";
}

double ApproRatioBound(CostType type) {
  switch (type) {
    case CostType::kMaxSum:
      return 1.375;
    case CostType::kDia:
      return std::sqrt(3.0);
  }
  return 0.0;
}

double CombineCost(CostType type, const CostComponents& components) {
  switch (type) {
    case CostType::kMaxSum:
      return components.max_query_dist + components.max_pairwise_dist;
    case CostType::kDia:
      return std::max(components.max_query_dist,
                      components.max_pairwise_dist);
  }
  return 0.0;
}

CostComponents ComputeComponents(const Dataset& dataset, const Point& q,
                                 const std::vector<ObjectId>& set) {
  CostComponents components;
  for (size_t i = 0; i < set.size(); ++i) {
    const Point& pi = dataset.object(set[i]).location;
    components.max_query_dist =
        std::max(components.max_query_dist, Distance(q, pi));
    for (size_t j = i + 1; j < set.size(); ++j) {
      const Point& pj = dataset.object(set[j]).location;
      components.max_pairwise_dist =
          std::max(components.max_pairwise_dist, Distance(pi, pj));
    }
  }
  return components;
}

CostComponents ComputeComponents(const Dataset& dataset, const Point& q,
                                 const std::vector<ObjectId>& set,
                                 SearchScratch* cache) {
  if (cache == nullptr || !cache->enabled()) {
    return ComputeComponents(dataset, q, set);
  }
  CostComponents components;
  for (size_t i = 0; i < set.size(); ++i) {
    const Point& pi = dataset.object(set[i]).location;
    components.max_query_dist =
        std::max(components.max_query_dist, cache->QueryDistance(set[i], pi));
    for (size_t j = i + 1; j < set.size(); ++j) {
      const Point& pj = dataset.object(set[j]).location;
      components.max_pairwise_dist =
          std::max(components.max_pairwise_dist, Distance(pi, pj));
    }
  }
  return components;
}

double EvaluateCost(CostType type, const Dataset& dataset, const Point& q,
                    const std::vector<ObjectId>& set) {
  return CombineCost(type, ComputeComponents(dataset, q, set));
}

double EvaluateCost(CostType type, const Dataset& dataset, const Point& q,
                    const std::vector<ObjectId>& set, SearchScratch* cache) {
  return CombineCost(type, ComputeComponents(dataset, q, set, cache));
}

bool SetCoversKeywords(const Dataset& dataset, const TermSet& keywords,
                       const std::vector<ObjectId>& set) {
  TermSet covered;
  for (ObjectId id : set) {
    TermSetMergeInto(&covered, dataset.object(id).keywords);
  }
  return TermSetIsSubset(keywords, covered);
}

DistanceOwners FindDistanceOwners(const Dataset& dataset, const Point& q,
                                  const std::vector<ObjectId>& set) {
  COSKQ_CHECK(!set.empty());
  DistanceOwners owners;
  double best_query_dist = -1.0;
  for (ObjectId id : set) {
    const double d = Distance(q, dataset.object(id).location);
    if (d > best_query_dist ||
        (d == best_query_dist && id < owners.query_owner)) {
      best_query_dist = d;
      owners.query_owner = id;
    }
  }
  owners.pair_first = set.front();
  owners.pair_second = set.front();
  double best_pair_dist = -1.0;
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i; j < set.size(); ++j) {
      const double d = Distance(dataset.object(set[i]).location,
                                dataset.object(set[j]).location);
      if (d > best_pair_dist) {
        best_pair_dist = d;
        owners.pair_first = std::min(set[i], set[j]);
        owners.pair_second = std::max(set[i], set[j]);
      }
    }
  }
  return owners;
}

SetCostTracker::SetCostTracker(const Dataset* dataset, const Point& q,
                               CostType type)
    : SetCostTracker(dataset, q, type, nullptr) {}

SetCostTracker::SetCostTracker(const Dataset* dataset, const Point& q,
                               CostType type, SearchScratch* cache)
    : dataset_(dataset), query_(q), type_(type), cache_(cache) {
  COSKQ_CHECK(dataset != nullptr);
  stack_.push_back(CostComponents{});
}

void SetCostTracker::Reset(const Point& q, SearchScratch* cache) {
  COSKQ_DCHECK(ids_.empty());
  query_ = q;
  cache_ = cache;
  ids_.clear();
  points_.clear();
  stack_.clear();
  stack_.push_back(CostComponents{});
}

void SetCostTracker::Push(ObjectId id) {
  const Point& p = dataset_->object(id).location;
  CostComponents next = stack_.back();
  if (cache_ != nullptr && cache_->enabled()) {
    next.max_query_dist =
        std::max(next.max_query_dist, cache_->QueryDistance(id, p));
    for (const Point& existing : points_) {
      next.max_pairwise_dist =
          std::max(next.max_pairwise_dist, Distance(existing, p));
    }
  } else {
    next.max_query_dist = std::max(next.max_query_dist, Distance(query_, p));
    for (const Point& existing : points_) {
      next.max_pairwise_dist =
          std::max(next.max_pairwise_dist, Distance(existing, p));
    }
  }
  ids_.push_back(id);
  points_.push_back(p);
  stack_.push_back(next);
}

void SetCostTracker::Pop() {
  COSKQ_CHECK(!ids_.empty());
  ids_.pop_back();
  points_.pop_back();
  stack_.pop_back();
}

double SetCostTracker::cost() const {
  return CombineCost(type_, stack_.back());
}

bool SetCostTracker::Contains(ObjectId id) const {
  return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
}

}  // namespace coskq
