#ifndef COSKQ_CORE_OWNER_DRIVEN_APPRO_H_
#define COSKQ_CORE_OWNER_DRIVEN_APPRO_H_

#include <stdint.h>

#include <string>
#include <vector>

#include "core/candidates.h"
#include "core/cost.h"
#include "core/solver.h"
#include "index/search_scratch.h"

namespace coskq {

/// The paper's approximate algorithms, MaxSum-Appro and Dia-Appro, in one
/// engine. The search keeps the query-distance-owner iteration of the exact
/// algorithm but replaces best-set construction with a cheap greedy:
///
///   1. Seed the incumbent with N(q).
///   2. Stream relevant objects o in ascending d(o, q) through the ring
///      d_f <= d(o, q) < curCost (objects closer than d_f cannot be the
///      query distance owner of any feasible set; objects at curCost or
///      farther cannot improve the incumbent).
///   3. For each o, greedily build a feasible set inside the disk
///      C(q, d(o, q)): repeatedly add the object *nearest to o* that covers
///      an uncovered keyword, which keeps the pairwise spread small.
///   4. Cost the set exactly; keep the best.
///
/// Guarantees: cost(answer) <= 1.375 · OPT for MaxSum and <= sqrt(3) · OPT
/// for Dia (the geometry of the owner disk ∩ query disk bounds the spread of
/// the greedy set relative to any optimal set sharing the same owner).
///
/// With `use_query_masks` (default) traversals, coverage tests, and cost
/// evaluations run through the solver's private SearchScratch (bitmasks +
/// distance memo + pooled buffers); results are bit-identical either way.
class OwnerDrivenAppro : public CoskqSolver {
 public:
  struct Options {
    /// Query-scoped keyword bitmasks + scratch-pooled buffers + distance
    /// memo; identical results, A/B switch for the hot-path benchmark.
    bool use_query_masks = true;
  };

  OwnerDrivenAppro(const CoskqContext& context, CostType type,
                   const Options& options);
  OwnerDrivenAppro(const CoskqContext& context, CostType type)
      : OwnerDrivenAppro(context, type, Options()) {}

  CoskqResult Solve(const CoskqQuery& query) override;
  std::string name() const override;
  CostType cost_type() const override { return type_; }

 private:
  CostType type_;
  Options options_;
  /// Per-solver scratch and enumeration buffers pooled across Solve calls;
  /// one solver instance serves one thread.
  SearchScratch scratch_;
  std::vector<Candidate> cands_;
  std::vector<std::vector<uint32_t>> lists_;
  std::vector<double> nn_dist_;
  std::vector<uint32_t> nn_index_;
  std::vector<ObjectId> greedy_set_;
  std::vector<uint8_t> covered_;
};

}  // namespace coskq

#endif  // COSKQ_CORE_OWNER_DRIVEN_APPRO_H_
