#ifndef COSKQ_CORE_NN_SET_H_
#define COSKQ_CORE_NN_SET_H_

#include <vector>

#include "core/solver.h"
#include "data/object.h"
#include "data/query.h"

namespace coskq {

/// The paper's nearest-neighbor set N(q) = { NN(q, t) : t ∈ q.ψ } plus the
/// quantity d_f = max_{o∈N(q)} d(o, q) that seeds every algorithm's bounds:
/// any feasible set has max_{o∈S} d(o,q) >= d_f, and N(q) itself is feasible
/// whenever the query is answerable at all.
struct NnSetInfo {
  /// True iff every query keyword matches at least one object.
  bool feasible = false;
  /// N(q), deduplicated and sorted by id. Empty when infeasible.
  std::vector<ObjectId> set;
  /// d_f = max_{o∈N(q)} d(o, q); 0 when infeasible.
  double max_dist = 0.0;
};

/// Computes N(q) with one keyword-NN query per query keyword on the IR-tree.
NnSetInfo ComputeNnSet(const CoskqContext& context, const CoskqQuery& query);

/// Masked/cached variant: keyword-NN traversals prune on the scratch's
/// query bitmask and d_f is computed through its distance memo. `scratch`
/// must be bound to `query` via BeginQuery; bit-identical to the baseline
/// (and equal to it when the scratch is disabled).
NnSetInfo ComputeNnSet(const CoskqContext& context, const CoskqQuery& query,
                       SearchScratch* scratch);

}  // namespace coskq

#endif  // COSKQ_CORE_NN_SET_H_
