#ifndef COSKQ_UTIL_RANDOM_H_
#define COSKQ_UTIL_RANDOM_H_

#include <stddef.h>
#include <stdint.h>

#include <utility>
#include <vector>

namespace coskq {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
/// Every randomized component in this library (synthetic data, query
/// generation, property tests) takes an explicit Rng seeded by the caller so
/// that runs are reproducible.
class Rng {
 public:
  /// Seeds the four 64-bit state words from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  /// Uses rejection sampling to avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns a uniform double in [lo, hi). Requires lo < hi.
  double UniformDouble(double lo, double hi);

  /// Returns a standard normal variate (Marsaglia polar method).
  double Gaussian();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples ranks from a Zipf distribution over {0, ..., n-1} with skew
/// `theta` (theta = 0 is uniform; theta ~ 0.8-1.0 matches word-frequency
/// distributions in geo-textual corpora). Rank 0 is the most frequent item.
/// Precomputes the CDF once, so sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Returns a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

  /// Probability mass of the given rank.
  double Pmf(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace coskq

#endif  // COSKQ_UTIL_RANDOM_H_
