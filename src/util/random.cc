#include "util/random.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace coskq {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  COSKQ_CHECK_GT(bound, 0u);
  // Rejection sampling on the top of the range to remove modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  COSKQ_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    // Full 64-bit range.
    return static_cast<int64_t>(NextUint64());
  }
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  COSKQ_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  COSKQ_CHECK_GT(n, 0u);
  COSKQ_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), theta);
    cdf_[rank] = total;
  }
  for (double& c : cdf_) {
    c /= total;
  }
  cdf_.back() = 1.0;  // Guard against accumulated floating-point error.
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  COSKQ_CHECK_LT(rank, cdf_.size());
  if (rank == 0) {
    return cdf_[0];
  }
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace coskq
