#ifndef COSKQ_UTIL_LOGGING_H_
#define COSKQ_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace coskq {

/// Severity levels understood by the logging macros below.
enum class LogSeverity {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
  kFatal = 3,
};

namespace internal_logging {

/// Collects a log message via stream insertion and emits it (to stderr) on
/// destruction. A `kFatal` message aborts the process after emission, which
/// is what the CHECK macros rely on.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Helper that swallows a stream expression; used by the disabled branch of
/// conditional logging macros so the expression still type-checks.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Returns the minimum severity that is actually emitted. Messages below the
/// threshold are discarded. Controlled by `SetMinLogSeverity`.
LogSeverity MinLogSeverity();

/// Sets the minimum severity emitted by COSKQ_LOG. Fatal messages are always
/// emitted regardless of the threshold.
void SetMinLogSeverity(LogSeverity severity);

}  // namespace coskq

#define COSKQ_LOG(severity)                                              \
  ::coskq::internal_logging::LogMessage(::coskq::LogSeverity::severity, \
                                        __FILE__, __LINE__)             \
      .stream()

// CHECK-style invariant enforcement: always on, aborts on failure. Use for
// conditions whose violation indicates a programming error in this library
// or its caller, never for recoverable conditions (use Status for those).
#define COSKQ_CHECK(condition)                                  \
  (condition) ? (void)0                                         \
              : ::coskq::internal_logging::LogMessageVoidify()& \
                    COSKQ_LOG(kFatal) << "Check failed: " #condition " "

#define COSKQ_CHECK_OP(op, a, b)                                      \
  COSKQ_CHECK((a)op(b)) << "(" << (a) << " vs. " << (b) << ") "

#define COSKQ_CHECK_EQ(a, b) COSKQ_CHECK_OP(==, a, b)
#define COSKQ_CHECK_NE(a, b) COSKQ_CHECK_OP(!=, a, b)
#define COSKQ_CHECK_LT(a, b) COSKQ_CHECK_OP(<, a, b)
#define COSKQ_CHECK_LE(a, b) COSKQ_CHECK_OP(<=, a, b)
#define COSKQ_CHECK_GT(a, b) COSKQ_CHECK_OP(>, a, b)
#define COSKQ_CHECK_GE(a, b) COSKQ_CHECK_OP(>=, a, b)

// Debug-only variants, compiled out in release builds.
#ifndef NDEBUG
#define COSKQ_DCHECK(condition) COSKQ_CHECK(condition)
#else
#define COSKQ_DCHECK(condition) \
  while (false) COSKQ_CHECK(condition)
#endif

#endif  // COSKQ_UTIL_LOGGING_H_
