#ifndef COSKQ_UTIL_STRING_UTIL_H_
#define COSKQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace coskq {

/// Splits `text` on `delimiter`, omitting empty pieces. "a  b" -> {"a","b"}.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Joins `pieces` with `separator` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

/// Lowercases ASCII characters in place and returns the result.
std::string AsciiToLower(std::string_view text);

/// Parses a double; returns false on malformed input or trailing junk.
bool ParseDouble(std::string_view text, double* value);

/// Parses a non-negative integer; returns false on malformed input.
bool ParseUint64(std::string_view text, uint64_t* value);

/// Formats `n` with thousands separators, e.g. 1868821 -> "1,868,821".
std::string FormatWithCommas(uint64_t n);

/// Formats a double with `digits` decimal places, trimming trailing zeros
/// ("1.25", "0.001", "12").
std::string FormatDouble(double value, int digits);

/// Formats a milliseconds measurement: "12.3 ms", "1.25 s" when >= 1000.
std::string FormatMillis(double ms);

}  // namespace coskq

#endif  // COSKQ_UTIL_STRING_UTIL_H_
