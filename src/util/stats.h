#ifndef COSKQ_UTIL_STATS_H_
#define COSKQ_UTIL_STATS_H_

#include <stddef.h>

#include <limits>
#include <string>
#include <vector>

namespace coskq {

/// Streaming accumulator for min / max / mean / stddev of a sequence of
/// measurements (Welford's algorithm for numerically stable variance).
/// Used by the benchmark harnesses to aggregate per-query running times and
/// approximation ratios, matching the avg/min/max bars reported in the paper.
class RunningStat {
 public:
  RunningStat() = default;

  /// Accumulates one observation.
  void Add(double x);

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Sample standard deviation (0 for fewer than two observations).
  double stddev() const;

  /// "avg [min, max] (n=count)" rendering for log lines.
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the p-th percentile (p in [0, 100]) of `values` using linear
/// interpolation between closest ranks. `values` need not be sorted; a copy
/// is sorted internally. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double p);

}  // namespace coskq

#endif  // COSKQ_UTIL_STATS_H_
