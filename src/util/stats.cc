#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace coskq {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

std::string RunningStat::ToString() const {
  std::ostringstream os;
  if (count_ == 0) {
    os << "(empty)";
    return os.str();
  }
  os << mean() << " [" << min_ << ", " << max_ << "] (n=" << count_ << ")";
  return os.str();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  COSKQ_CHECK_GE(p, 0.0);
  COSKQ_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace coskq
