#ifndef COSKQ_UTIL_STATUS_H_
#define COSKQ_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace coskq {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
};

/// RocksDB-style result of a fallible operation. Library code never throws;
/// anything that can fail for a reason the caller should handle (I/O, parse
/// errors, bad arguments) returns a Status or a StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IO error: no such file".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. `value()` aborts if the
/// wrapped status is not OK, so call sites must test `ok()` first unless the
/// error is a programming bug by contract.
template <typename T>
class StatusOr {
 public:
  /// Implicit conversions from both T and Status make `return value;` and
  /// `return Status::...;` read naturally at call sites (matching absl).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    COSKQ_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    COSKQ_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    COSKQ_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    COSKQ_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace coskq

/// Propagates a non-OK status to the caller, RocksDB/absl style.
#define COSKQ_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::coskq::Status _coskq_status = (expr);  \
    if (!_coskq_status.ok()) {               \
      return _coskq_status;                  \
    }                                        \
  } while (false)

#endif  // COSKQ_UTIL_STATUS_H_
