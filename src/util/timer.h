#ifndef COSKQ_UTIL_TIMER_H_
#define COSKQ_UTIL_TIMER_H_

#include <chrono>

namespace coskq {

/// Monotonic wall-clock stopwatch used for all reported timings.
class WallTimer {
 public:
  /// Starts the timer immediately on construction.
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace coskq

#endif  // COSKQ_UTIL_TIMER_H_
