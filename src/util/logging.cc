#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace coskq {

namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
                 line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace coskq
