#include "util/timer.h"

// WallTimer is header-only; this translation unit exists so the build target
// has a stable anchor and the header stays self-contained under -Werror.
