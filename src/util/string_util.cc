#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coskq {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delimiter, start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    if (end > start) {
      pieces.emplace_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      result += separator;
    }
    result += pieces[i];
  }
  return result;
}

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

bool ParseDouble(std::string_view text, double* value) {
  if (text.empty()) {
    return false;
  }
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseUint64(std::string_view text, uint64_t* value) {
  if (text.empty() || text[0] == '-') {
    return false;
  }
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *value = parsed;
  return true;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string result;
  int since_comma = 0;
  for (size_t i = digits.size(); i > 0; --i) {
    result.push_back(digits[i - 1]);
    if (++since_comma == 3 && i > 1) {
      result.push_back(',');
      since_comma = 0;
    }
  }
  std::reverse(result.begin(), result.end());
  return result;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  std::string s(buffer);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') {
      s.pop_back();
    }
    if (!s.empty() && s.back() == '.') {
      s.pop_back();
    }
  }
  return s;
}

std::string FormatMillis(double ms) {
  if (ms >= 1000.0) {
    return FormatDouble(ms / 1000.0, 2) + " s";
  }
  if (ms >= 1.0) {
    return FormatDouble(ms, 2) + " ms";
  }
  return FormatDouble(ms * 1000.0, 1) + " us";
}

}  // namespace coskq
