#include "util/status.h"

namespace coskq {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = CodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace coskq
