#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and flag performance regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
    tools/bench_compare.py --self-test

Walks both documents in parallel and compares every numeric metric that has
a direction:

  * keys ending in ``_ms``, ``_ms_per_op``, or ``_s``  -- lower is better
  * keys ending in ``qps`` or ``speedup``              -- higher is better

Everything else (counters, seeds, sizes, booleans, strings) is ignored.
Rows are labelled by the path through the document, using each record's
identifying fields (op / solver / dataset / threads / query_keywords) when
present, so the table stays readable as reports grow.

Best-of-rounds metrics travel with a median twin (``wall_ms`` with
``wall_median_ms``, ``scan_ms_per_op`` with ``scan_median_ms_per_op``,
``speedup`` with ``median_speedup``). When both documents carry the twin,
the gate runs on the median -- the statistically steadier number -- and the
best-of metric is demoted to informational ("info"): reported, never
failing. Reports that predate median emission still gate on best-of.

Exit status: 0 when no comparable metric regressed by more than
``--threshold`` percent (default 20), 1 otherwise. Improvements and small
fluctuations never fail the run. A metric present only in the current
report is labelled "new, no baseline" (benchmarks grow new series); one
present only in the baseline is labelled "missing"; neither is a failure.
With ``--warn-only`` regressions are still reported in full but the exit
status stays 0 -- the escape hatch for noisy shared runners.

``--self-test`` runs the built-in unit checks (direction parsing, median
twin derivation, demotion, regression detection, the new/missing labels)
against synthetic reports and exits 0 iff all pass; ci.sh runs it before
trusting any gate.

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys
import tempfile

LOWER_IS_BETTER = ("_ms_per_op", "_ms", "_s")
HIGHER_IS_BETTER = ("qps", "speedup")

ID_KEYS = ("op", "solver", "dataset", "threads", "query_keywords", "name",
           "kernel")


def metric_direction(key):
    """Returns -1 (lower better), +1 (higher better), or 0 (not a metric)."""
    for suffix in LOWER_IS_BETTER:
        if key.endswith(suffix):
            return -1
    for suffix in HIGHER_IS_BETTER:
        if key.endswith(suffix):
            return 1
    return 0


def median_twin(key):
    """The median-of-rounds companion of a best-of-rounds metric.

    wall_ms -> wall_median_ms, scan_ms_per_op -> scan_median_ms_per_op,
    speedup -> median_speedup, frozen_qps -> median_frozen_qps. Returns None
    for keys that are already medians (no twin-of-a-twin).
    """
    if "median" in key:
        return None
    for suffix in LOWER_IS_BETTER:
        if key.endswith(suffix):
            return key[:-len(suffix)] + "_median" + suffix
    for suffix in HIGHER_IS_BETTER:
        if key.endswith(suffix):
            return "median_" + key
    return None


def record_label(node, fallback):
    """A human-readable identifier for one JSON object."""
    parts = []
    for key in ID_KEYS:
        if key in node and not isinstance(node[key], (dict, list)):
            parts.append("%s=%s" % (key, node[key]))
    return " ".join(parts) if parts else fallback


def walk(node, path, out):
    """Collects (path_label, key) -> value for every directional metric."""
    if isinstance(node, dict):
        label = record_label(node, path)
        for key, value in node.items():
            if isinstance(value, (dict, list)):
                walk(value, "%s.%s" % (path, key) if path else key, out)
            elif isinstance(value, (int, float)) and not isinstance(
                    value, bool) and metric_direction(key) != 0:
                out[(label, key)] = float(value)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            walk(item, "%s[%d]" % (path, i), out)


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    walk(doc, "", out)
    return out


def compare(base, cur, threshold):
    """Compares two metric maps; returns (rows, regressions).

    rows: (label, metric, base, cur, delta_pct, status) in sorted order.
    regressions: (label, metric, regressed_pct) for each gating failure.
    """
    rows = []
    regressions = []
    for key in sorted(set(base) | set(cur)):
        label, metric = key
        b = base.get(key)
        c = cur.get(key)
        if b is None:
            rows.append((label, metric, b, c, None, "new, no baseline"))
            continue
        if c is None:
            rows.append((label, metric, b, c, None, "missing"))
            continue
        direction = metric_direction(metric)
        if b == 0:
            delta_pct = 0.0 if c == 0 else float("inf")
        else:
            delta_pct = (c - b) / abs(b) * 100.0
        # When the steadier median twin is present on both sides, it carries
        # the gate and this best-of metric is informational only.
        twin = median_twin(metric)
        if twin is not None and (label, twin) in base and (label,
                                                           twin) in cur:
            rows.append((label, metric, b, c, delta_pct, "info"))
            continue
        # A regression is slower (_ms up) or less throughput (qps down).
        regressed_pct = delta_pct if direction < 0 else -delta_pct
        status = "ok"
        if regressed_pct > threshold:
            status = "REGRESSED"
            regressions.append((label, metric, regressed_pct))
        elif regressed_pct < -threshold:
            status = "improved"
        rows.append((label, metric, b, c, delta_pct, status))
    return rows, regressions


def print_report(rows, regressions, threshold, warn_only):
    def fmt(v):
        if v is None:
            return "-"
        return "%.4g" % v

    headers = ("metric", "baseline", "current", "delta", "status")
    table = []
    for label, metric, b, c, delta_pct, status in rows:
        delta = "-" if delta_pct is None else "%+.1f%%" % delta_pct
        table.append(("%s %s" % (label, metric), fmt(b), fmt(c), delta,
                      status))
    widths = [max(len(headers[i]), *(len(r[i]) for r in table)) if table
              else len(headers[i]) for i in range(5)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in table:
        print("  ".join(row[i].ljust(widths[i]) for i in range(5)))

    if regressions:
        print()
        print("FAIL: %d metric(s) regressed more than %.0f%%:"
              % (len(regressions), threshold))
        for label, metric, pct in regressions:
            print("  %s %s: %.1f%% worse" % (label, metric, pct))
        if warn_only:
            print("(--warn-only: reporting without failing)")
            return 0
        return 1
    print()
    print("OK: no metric regressed more than %.0f%%." % threshold)
    return 0


def self_test():
    """Unit checks over synthetic reports; returns 0 iff all pass."""
    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)

    # Direction parsing.
    check("dir wall_ms", metric_direction("wall_ms") == -1)
    check("dir ms_per_op", metric_direction("scan_ms_per_op") == -1)
    check("dir seconds", metric_direction("budget_s") == -1)
    check("dir qps", metric_direction("frozen_qps") == 1)
    check("dir speedup", metric_direction("median_speedup") == 1)
    check("dir counter", metric_direction("dist_cache_hits") == 0)

    # Median twin derivation.
    check("twin wall_ms", median_twin("wall_ms") == "wall_median_ms")
    check("twin per_op",
          median_twin("scan_ms_per_op") == "scan_median_ms_per_op")
    check("twin speedup", median_twin("speedup") == "median_speedup")
    check("twin qps", median_twin("frozen_qps") == "median_frozen_qps")
    check("twin of twin", median_twin("wall_median_ms") is None)
    check("twin of median_speedup", median_twin("median_speedup") is None)

    def metrics_of(doc):
        out = {}
        walk(doc, "", out)
        return out

    # Demotion: with median twins on both sides, the best-of metric is
    # informational even when it regresses wildly, and the gate runs on
    # the (healthy) median.
    base = metrics_of({"solvers": [{"solver": "x", "wall_ms": 1.0,
                                    "wall_median_ms": 1.0}]})
    cur = metrics_of({"solvers": [{"solver": "x", "wall_ms": 10.0,
                                   "wall_median_ms": 1.05}]})
    rows, regs = compare(base, cur, 20.0)
    by_metric = {m: s for _, m, _, _, _, s in rows}
    check("demoted best-of", by_metric.get("wall_ms") == "info")
    check("median gates ok", by_metric.get("wall_median_ms") == "ok")
    check("no regressions", not regs)

    # Median regression still fails.
    cur_bad = metrics_of({"solvers": [{"solver": "x", "wall_ms": 1.0,
                                       "wall_median_ms": 2.0}]})
    _, regs = compare(base, cur_bad, 20.0)
    check("median regression caught",
          [m for _, m, _ in regs] == ["wall_median_ms"])

    # Without twins (old reports), best-of still gates.
    old_base = metrics_of({"solvers": [{"solver": "x", "wall_ms": 1.0}]})
    old_cur = metrics_of({"solvers": [{"solver": "x", "wall_ms": 2.0}]})
    _, regs = compare(old_base, old_cur, 20.0)
    check("best-of gates without twin",
          [m for _, m, _ in regs] == ["wall_ms"])

    # Twin on one side only: no demotion (can't gate on a number the
    # baseline never recorded).
    half_cur = metrics_of({"solvers": [{"solver": "x", "wall_ms": 2.0,
                                        "wall_median_ms": 2.0}]})
    rows, regs = compare(old_base, half_cur, 20.0)
    by_metric = {m: s for _, m, _, _, _, s in rows}
    check("no demotion half twin", by_metric.get("wall_ms") == "REGRESSED")
    check("one-sided twin is new",
          by_metric.get("wall_median_ms") == "new, no baseline")

    # New / missing labels, and neither ever fails the run.
    rows, regs = compare(metrics_of({"a_ms": 1.0}),
                         metrics_of({"b_ms": 1.0}), 20.0)
    by_metric = {m: s for _, m, _, _, _, s in rows}
    check("baseline-only is missing", by_metric.get("a_ms") == "missing")
    check("current-only is new",
          by_metric.get("b_ms") == "new, no baseline")
    check("new/missing never fail", not regs)

    # Improvements and higher-is-better direction.
    rows, regs = compare(metrics_of({"frozen_qps": 100.0}),
                         metrics_of({"frozen_qps": 50.0}), 20.0)
    check("qps drop regresses", [m for _, m, _ in regs] == ["frozen_qps"])
    rows, regs = compare(metrics_of({"frozen_qps": 100.0}),
                         metrics_of({"frozen_qps": 200.0}), 20.0)
    check("qps gain passes", not regs)

    # End-to-end through real files and main() exit codes.
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "base.json")
        cpath = os.path.join(tmp, "cur.json")
        with open(bpath, "w", encoding="utf-8") as f:
            json.dump({"solvers": [{"solver": "x", "wall_ms": 1.0,
                                    "wall_median_ms": 1.0}]}, f)
        with open(cpath, "w", encoding="utf-8") as f:
            json.dump({"solvers": [{"solver": "x", "wall_ms": 9.0,
                                    "wall_median_ms": 1.01}]}, f)
        check("main ok exit", main([bpath, cpath]) == 0)
        with open(cpath, "w", encoding="utf-8") as f:
            json.dump({"solvers": [{"solver": "x", "wall_ms": 9.0,
                                    "wall_median_ms": 9.0}]}, f)
        check("main fail exit", main([bpath, cpath]) == 1)
        check("main warn-only exit",
              main([bpath, cpath, "--warn-only"]) == 0)

    if failures:
        print("SELF-TEST FAIL: %s" % ", ".join(failures))
        return 1
    print("self-test: all checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH_*.json")
    parser.add_argument("current", nargs="?", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required unless --self-test")

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    rows, regressions = compare(base, cur, args.threshold)
    return print_report(rows, regressions, args.threshold, args.warn_only)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
