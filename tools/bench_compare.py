#!/usr/bin/env python3
"""Compare two BENCH_*.json reports and flag performance regressions.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]

Walks both documents in parallel and compares every numeric metric that has
a direction:

  * keys ending in ``_ms``, ``_ms_per_op``, or ``_s``  -- lower is better
  * keys ending in ``qps`` or ``speedup``              -- higher is better

Everything else (counters, seeds, sizes, booleans, strings) is ignored.
Rows are labelled by the path through the document, using each record's
identifying fields (op / solver / dataset / threads / query_keywords) when
present, so the table stays readable as reports grow.

Exit status: 0 when no comparable metric regressed by more than
``--threshold`` percent (default 20), 1 otherwise. Improvements and small
fluctuations never fail the run; missing counterparts are reported but are
not failures (new metrics appear as benchmarks evolve). With ``--warn-only``
regressions are still reported in full but the exit status stays 0 — the
escape hatch for noisy shared runners.

Only the Python standard library is used.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("_ms", "_ms_per_op", "_s")
HIGHER_IS_BETTER = ("qps", "speedup")

ID_KEYS = ("op", "solver", "dataset", "threads", "query_keywords", "name")


def metric_direction(key):
    """Returns -1 (lower better), +1 (higher better), or 0 (not a metric)."""
    for suffix in LOWER_IS_BETTER:
        if key.endswith(suffix):
            return -1
    for suffix in HIGHER_IS_BETTER:
        if key.endswith(suffix):
            return 1
    return 0


def record_label(node, fallback):
    """A human-readable identifier for one JSON object."""
    parts = []
    for key in ID_KEYS:
        if key in node and not isinstance(node[key], (dict, list)):
            parts.append("%s=%s" % (key, node[key]))
    return " ".join(parts) if parts else fallback


def walk(node, path, out):
    """Collects (path_label, key) -> value for every directional metric."""
    if isinstance(node, dict):
        label = record_label(node, path)
        for key, value in node.items():
            if isinstance(value, (dict, list)):
                walk(value, "%s.%s" % (path, key) if path else key, out)
            elif isinstance(value, (int, float)) and not isinstance(
                    value, bool) and metric_direction(key) != 0:
                out[(label, key)] = float(value)
    elif isinstance(node, list):
        for i, item in enumerate(node):
            walk(item, "%s[%d]" % (path, i), out)


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    walk(doc, "", out)
    return out


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=20.0,
                        help="regression threshold in percent (default 20)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0")
    args = parser.parse_args(argv)

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)

    rows = []
    regressions = []
    for key in sorted(set(base) | set(cur)):
        label, metric = key
        b = base.get(key)
        c = cur.get(key)
        if b is None or c is None:
            rows.append((label, metric, b, c, None, "missing"))
            continue
        direction = metric_direction(metric)
        if b == 0:
            delta_pct = 0.0 if c == 0 else float("inf")
        else:
            delta_pct = (c - b) / abs(b) * 100.0
        # A regression is slower (_ms up) or less throughput (qps down).
        regressed_pct = delta_pct if direction < 0 else -delta_pct
        status = "ok"
        if regressed_pct > args.threshold:
            status = "REGRESSED"
            regressions.append((label, metric, regressed_pct))
        elif regressed_pct < -args.threshold:
            status = "improved"
        rows.append((label, metric, b, c, delta_pct, status))

    def fmt(v):
        if v is None:
            return "-"
        return "%.4g" % v

    headers = ("metric", "baseline", "current", "delta", "status")
    table = []
    for label, metric, b, c, delta_pct, status in rows:
        delta = "-" if delta_pct is None else "%+.1f%%" % delta_pct
        table.append(("%s %s" % (label, metric), fmt(b), fmt(c), delta,
                      status))
    widths = [max(len(headers[i]), *(len(r[i]) for r in table)) if table
              else len(headers[i]) for i in range(5)]
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("  ".join("-" * w for w in widths))
    for row in table:
        print("  ".join(row[i].ljust(widths[i]) for i in range(5)))

    if regressions:
        print()
        print("FAIL: %d metric(s) regressed more than %.0f%%:"
              % (len(regressions), args.threshold))
        for label, metric, pct in regressions:
            print("  %s %s: %.1f%% worse" % (label, metric, pct))
        if args.warn_only:
            print("(--warn-only: reporting without failing)")
            return 0
        return 1
    print()
    print("OK: no metric regressed more than %.0f%%." % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
