// coskq_load — open-loop load generator for the CoSKQ query service.
//
// Drives a running `coskq_cli serve` instance at a target arrival rate:
// request k is *scheduled* at k/QPS seconds after start regardless of how
// fast earlier requests completed (open loop — no coordinated omission), so
// a saturated server shows up as shed OVERLOADED responses and latency
// inflation instead of a silently reduced offered rate.
//
//   coskq_load <host> <port> <dataset.txt>
//       [--qps Q] [--duration-s D] [--connections C] [--keywords K]
//       [--solver exact|appro|cao-exact|cao-appro1|cao-appro2|brute-force]
//       [--cost maxsum|dia] [--deadline-ms D] [--deadline-jitter-ms J]
//       [--seed S] [--mutate-fraction F] [--zipf-theta T]
//       [--hotspot-fraction F] [--hotspot-radius R]
//
// The dataset file is the one the server loaded; it is read only to
// reproduce the vocabulary so generated queries carry real keywords. Each
// request draws its deadline uniformly from [D-J, D+J] (clamped at >= 0;
// 0 = none). Prints achieved throughput, the response mix, and a
// log-scaled latency histogram with p50/p95/p99.
//
// Production-shaped skew: when --zipf-theta or --hotspot-fraction is set,
// requests are drawn from a finite pre-generated pool of complete
// (location, keyword set) tuples instead of being fresh uniform queries —
// production clients re-issue the same exact query, and the server's
// result cache can only hit on exact repeats. --zipf-theta T > 0 shapes
// both halves: each pool entry's keywords are drawn with a Zipf(T) sampler
// over the frequency-ranked vocabulary (rank 0 = the most frequent term),
// and each request picks its pool entry with the same Zipf so a handful of
// hot tuples dominates the stream. --hotspot-fraction places that fraction
// of the pool's locations inside a few hotspot clusters of radius
// --hotspot-radius (a fraction of the dataset MBR's larger extent, default
// 0.02); the rest are uniform over the MBR. A summary line reports the
// stream's repeat rate — the fraction of QUERY slots whose exact
// (location, keyword set, solver, cost) tuple already occurred — which is
// the ceiling on any result-cache hit rate. The tool also snapshots server
// STATS before and after the run and, when the server has a result cache
// (protocol v6), prints the server-side hit/miss delta attributable to
// this run.
//
// --mutate-fraction F turns fraction F of the scheduled slots into MUTATE
// requests (requires a server started with --enable-mutations): each lane
// alternates between inserting fresh objects (at query-generator locations
// with real vocabulary keywords) and removing ids it inserted earlier, so a
// mixed read/write soak exercises the delta-merge query paths and the
// background refreeze under live traffic.
//
// Exit status: 0 when every request got an in-band protocol response
// (RESULT / OVERLOADED / ERROR / MUTATE_REPLY); 1 on transport failures or
// when nothing succeeded at all.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "data/query_gen.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

struct LoadConfig {
  std::string host;
  uint16_t port = 0;
  std::string dataset_path;
  double qps = 200.0;
  double duration_s = 5.0;
  int connections = 4;
  size_t keywords = 4;
  SolverKind solver = SolverKind::kAppro;
  CostType cost = CostType::kMaxSum;
  double deadline_ms = 0.0;
  double deadline_jitter_ms = 0.0;
  uint64_t seed = 1;
  /// Fraction of scheduled slots sent as MUTATE instead of QUERY.
  double mutate_fraction = 0.0;
  /// Zipf exponent for keyword ranks and site popularity; 0 = uniform
  /// fresh queries (the historical behaviour).
  double zipf_theta = 0.0;
  /// Fraction of the location site pool placed inside hotspot clusters.
  double hotspot_fraction = 0.0;
  /// Hotspot cluster radius as a fraction of the MBR's larger extent.
  double hotspot_radius = 0.02;
};

/// Site pool dimensions for skewed traffic. 4 clusters x a 256-entry pool
/// keeps the tuple universe small enough that repeats occur within a short
/// soak but large enough that a 64 MiB cache never evicts under it.
constexpr size_t kHotspotClusters = 4;
constexpr size_t kSitePool = 256;

/// Sample.kind value for an acked mutation (past the QueryReply kinds).
constexpr int kMutateKind = 3;
/// Sample.kind value for an in-band mutation rejection.
constexpr int kMutateErrorKind = 4;

/// Per-request record; kind -1 marks a transport failure.
struct Sample {
  double latency_ms = 0.0;
  int kind = -1;
  QueryOutcome outcome = QueryOutcome::kExecuted;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: coskq_load <host> <port> <dataset.txt> [--qps Q] "
      "[--duration-s D]\n"
      "       [--connections C] [--keywords K] [--solver KIND] "
      "[--cost maxsum|dia]\n"
      "       [--deadline-ms D] [--deadline-jitter-ms J] [--seed S]\n"
      "       [--mutate-fraction F] [--zipf-theta T] "
      "[--hotspot-fraction F]\n"
      "       [--hotspot-radius R]\n");
  return 2;
}

bool ParseSolverKind(const std::string& name, SolverKind* out) {
  if (name == "exact") {
    *out = SolverKind::kExact;
  } else if (name == "appro") {
    *out = SolverKind::kAppro;
  } else if (name == "cao-exact") {
    *out = SolverKind::kCaoExact;
  } else if (name == "cao-appro1") {
    *out = SolverKind::kCaoAppro1;
  } else if (name == "cao-appro2") {
    *out = SolverKind::kCaoAppro2;
  } else if (name == "brute-force") {
    *out = SolverKind::kBruteForce;
  } else {
    return false;
  }
  return true;
}

/// Latency histogram over doubling buckets starting at 0.25 ms.
void PrintHistogram(const std::vector<double>& latencies) {
  if (latencies.empty()) {
    return;
  }
  constexpr int kBuckets = 14;
  size_t counts[kBuckets] = {0};
  for (double ms : latencies) {
    double bound = 0.25;
    int b = 0;
    while (b < kBuckets - 1 && ms > bound) {
      bound *= 2.0;
      ++b;
    }
    ++counts[b];
  }
  const size_t peak = *std::max_element(counts, counts + kBuckets);
  double bound = 0.25;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts[b] > 0) {
      const int bar =
          static_cast<int>(40.0 * static_cast<double>(counts[b]) /
                           static_cast<double>(peak));
      std::printf("  %8s %-40s %zu\n",
                  (b == kBuckets - 1 ? "> " + FormatMillis(bound / 2)
                                     : "<= " + FormatMillis(bound))
                      .c_str(),
                  std::string(static_cast<size_t>(std::max(bar, 1)), '#')
                      .c_str(),
                  counts[b]);
    }
    bound *= 2.0;
  }
}

int RunLoad(const LoadConfig& config) {
  StatusOr<Dataset> loaded = Dataset::LoadFromFile(config.dataset_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Dataset dataset = std::move(loaded).value();

  // Pre-generate every request so the send loops do no work but pacing.
  const size_t total =
      static_cast<size_t>(config.qps * config.duration_s + 0.5);
  if (total == 0) {
    std::fprintf(stderr, "error: qps * duration rounds to zero requests\n");
    return 1;
  }
  QueryGenerator gen(&dataset);
  Rng rng(config.seed);

  // Skewed traffic: a finite pool of complete (location, keyword set)
  // tuples is pre-drawn, and each request samples one — via Zipf(theta)
  // popularity when --zipf-theta is set, uniformly otherwise. Binding the
  // keywords to the site at pool construction is what makes whole tuples
  // recur: production clients re-issue the same query, not a fresh random
  // combination of a hot place and hot words. Uniform fresh queries when
  // neither skew knob is set (the historical behaviour).
  const bool skewed =
      config.zipf_theta > 0.0 || config.hotspot_fraction > 0.0;
  std::vector<QueryRequest> pool;
  if (skewed) {
    const Rect mbr = dataset.mbr();
    const double extent =
        std::max(mbr.max_x - mbr.min_x, mbr.max_y - mbr.min_y);
    const double radius = config.hotspot_radius * extent;
    Point centers[kHotspotClusters];
    for (size_t h = 0; h < kHotspotClusters; ++h) {
      centers[h].x = rng.UniformDouble(mbr.min_x, mbr.max_x);
      centers[h].y = rng.UniformDouble(mbr.min_y, mbr.max_y);
    }
    const std::vector<TermId>& ranked_terms = dataset.TermsByFrequencyDesc();
    std::unique_ptr<ZipfSampler> term_zipf;
    if (config.zipf_theta > 0.0 && !ranked_terms.empty()) {
      term_zipf = std::make_unique<ZipfSampler>(ranked_terms.size(),
                                                config.zipf_theta);
    }
    pool.reserve(kSitePool);
    for (size_t s = 0; s < kSitePool; ++s) {
      QueryRequest entry;
      if (rng.UniformDouble(0.0, 1.0) < config.hotspot_fraction) {
        const Point& c = centers[s % kHotspotClusters];
        entry.x = std::min(
            mbr.max_x,
            std::max(mbr.min_x, c.x + rng.UniformDouble(-radius, radius)));
        entry.y = std::min(
            mbr.max_y,
            std::max(mbr.min_y, c.y + rng.UniformDouble(-radius, radius)));
      } else {
        entry.x = rng.UniformDouble(mbr.min_x, mbr.max_x);
        entry.y = rng.UniformDouble(mbr.min_y, mbr.max_y);
      }
      std::vector<TermId> terms;
      if (term_zipf != nullptr) {
        // Draw distinct terms by frequency rank; the attempt cap falls back
        // to filling from the top of the ranking so this always terminates.
        const size_t want = std::min(config.keywords, ranked_terms.size());
        size_t attempts = 0;
        while (terms.size() < want && attempts < 64 * want) {
          ++attempts;
          const TermId t = ranked_terms[term_zipf->Sample(&rng)];
          if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
            terms.push_back(t);
          }
        }
        for (size_t r = 0; terms.size() < want; ++r) {
          const TermId t = ranked_terms[r];
          if (std::find(terms.begin(), terms.end(), t) == terms.end()) {
            terms.push_back(t);
          }
        }
      } else {
        const CoskqQuery q = gen.Generate(config.keywords, &rng);
        terms.assign(q.keywords.begin(), q.keywords.end());
      }
      entry.keywords.reserve(terms.size());
      for (TermId t : terms) {
        entry.keywords.push_back(dataset.vocabulary().TermString(t));
      }
      pool.push_back(std::move(entry));
    }
  }
  std::unique_ptr<ZipfSampler> pool_zipf;
  if (skewed && config.zipf_theta > 0.0) {
    pool_zipf = std::make_unique<ZipfSampler>(kSitePool, config.zipf_theta);
  }

  std::vector<QueryRequest> requests;
  requests.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    QueryRequest request;
    if (skewed) {
      const size_t pick =
          pool_zipf != nullptr
              ? pool_zipf->Sample(&rng)
              : static_cast<size_t>(rng.UniformUint64(pool.size() - 1));
      request = pool[pick];
    } else {
      const CoskqQuery q = gen.Generate(config.keywords, &rng);
      request.x = q.location.x;
      request.y = q.location.y;
      request.keywords.reserve(q.keywords.size());
      for (TermId t : q.keywords) {
        request.keywords.push_back(dataset.vocabulary().TermString(t));
      }
    }
    request.cost_type = config.cost;
    request.solver = config.solver;
    request.deadline_ms = config.deadline_ms;
    if (config.deadline_ms > 0.0 && config.deadline_jitter_ms > 0.0) {
      request.deadline_ms = std::max(
          0.0, rng.UniformDouble(config.deadline_ms - config.deadline_jitter_ms,
                                 config.deadline_ms + config.deadline_jitter_ms));
    }
    requests.push_back(std::move(request));
  }
  // Mark the mutate slots up front so the mix is deterministic for a seed.
  std::vector<uint8_t> mutate_slot(total, 0);
  if (config.mutate_fraction > 0.0) {
    for (size_t i = 0; i < total; ++i) {
      mutate_slot[i] = rng.UniformDouble(0.0, 1.0) < config.mutate_fraction;
    }
  }

  // Repeat-rate over the QUERY slots: the fraction whose exact
  // (location, sorted keyword set) tuple already occurred. Solver and cost
  // are constant per run, so the tuple is the full cache identity; the
  // repeat rate is the ceiling on the server-side cache hit rate.
  size_t query_slots = 0;
  size_t repeated = 0;
  {
    std::unordered_set<std::string> seen;
    for (size_t i = 0; i < total; ++i) {
      if (mutate_slot[i] != 0) {
        continue;
      }
      ++query_slots;
      std::string key(16, '\0');
      std::memcpy(&key[0], &requests[i].x, 8);
      std::memcpy(&key[8], &requests[i].y, 8);
      std::vector<std::string> words = requests[i].keywords;
      std::sort(words.begin(), words.end());
      for (const std::string& w : words) {
        key.push_back('\n');
        key.append(w);
      }
      if (!seen.insert(std::move(key)).second) {
        ++repeated;
      }
    }
  }

  // Server-side cache accounting: snapshot STATS before and after so the
  // printed hit/miss delta covers exactly this run (works against a single
  // server and the cluster router alike). A failed snapshot degrades the
  // report, never the run.
  const auto fetch_stats = [&config]() -> StatusOr<StatsReply> {
    CoskqClient client;
    ClientOptions stat_options;
    stat_options.connect_timeout_ms = 2000;
    stat_options.max_connect_attempts = 3;
    stat_options.retry_backoff_ms = 100;
    const Status connected =
        client.Connect(config.host, config.port, stat_options);
    if (!connected.ok()) {
      return connected;
    }
    return client.Stats();
  };
  const StatusOr<StatsReply> stats_before = fetch_stats();

  // Thread t sends requests t, t+C, t+2C, ... each at its scheduled time.
  std::vector<Sample> samples(total);
  std::atomic<size_t> transport_errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(config.connections);
  for (int t = 0; t < config.connections; ++t) {
    threads.emplace_back([&, t] {
      CoskqClient client;
      // A server or router that is still binding its port is a transient
      // condition, not a failed run: give connects a deadline and retry.
      ClientOptions connect_options;
      connect_options.connect_timeout_ms = 2000;
      connect_options.max_connect_attempts = 3;
      connect_options.retry_backoff_ms = 100;
      if (!client.Connect(config.host, config.port, connect_options).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      // Lane-local mutation state: removes only target ids this lane
      // inserted, so every well-formed MUTATE is expected to succeed.
      Rng lane_rng(config.seed * 7919 + static_cast<uint64_t>(t) + 1);
      QueryGenerator lane_gen(&dataset);
      std::vector<uint32_t> lane_inserted;
      for (size_t i = static_cast<size_t>(t); i < total;
           i += static_cast<size_t>(config.connections)) {
        const auto scheduled =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            static_cast<double>(i) / config.qps));
        std::this_thread::sleep_until(scheduled);
        if (mutate_slot[i] != 0) {
          MutateRequest mutation;
          const bool remove = !lane_inserted.empty() &&
                              lane_rng.UniformDouble(0.0, 1.0) < 0.5;
          if (remove) {
            const size_t pick = static_cast<size_t>(lane_rng.UniformDouble(
                0.0, static_cast<double>(lane_inserted.size())));
            const size_t slot = std::min(pick, lane_inserted.size() - 1);
            mutation.op = MutateRequest::Op::kRemove;
            mutation.object_id = lane_inserted[slot];
            lane_inserted.erase(lane_inserted.begin() +
                                static_cast<long>(slot));
          } else {
            const CoskqQuery q =
                lane_gen.Generate(config.keywords, &lane_rng);
            mutation.op = MutateRequest::Op::kInsert;
            mutation.x = q.location.x;
            mutation.y = q.location.y;
            for (TermId term : q.keywords) {
              mutation.keywords.push_back(
                  dataset.vocabulary().TermString(term));
            }
          }
          WallTimer timer;
          StatusOr<MutateReply> reply = client.Mutate(mutation);
          samples[i].latency_ms = timer.ElapsedMillis();
          if (reply.ok()) {
            samples[i].kind = kMutateKind;
            if (mutation.op == MutateRequest::Op::kInsert) {
              lane_inserted.push_back(reply->object_id);
            }
          } else if (reply.status().code() == StatusCode::kIoError ||
                     reply.status().code() == StatusCode::kCorruption) {
            transport_errors.fetch_add(1);
            return;  // The connection is unusable; stop this lane.
          } else {
            // In-band rejection (mutations disabled, capacity, ...): count
            // it and keep the lane running.
            samples[i].kind = kMutateErrorKind;
          }
          continue;
        }
        WallTimer timer;
        StatusOr<QueryReply> reply = client.Query(requests[i]);
        samples[i].latency_ms = timer.ElapsedMillis();
        if (!reply.ok()) {
          transport_errors.fetch_add(1);
          return;  // The connection is unusable; stop this lane.
        }
        samples[i].kind = static_cast<int>(reply->kind);
        if (reply->kind == QueryReply::Kind::kResult) {
          samples[i].outcome = reply->result.outcome;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Aggregate.
  size_t ok = 0;
  size_t truncated = 0;
  size_t infeasible = 0;
  size_t overloaded = 0;
  size_t errors = 0;
  size_t mutations_ok = 0;
  size_t mutations_rejected = 0;
  std::vector<double> ok_latencies;
  ok_latencies.reserve(total);
  for (const Sample& s : samples) {
    switch (s.kind) {
      case static_cast<int>(QueryReply::Kind::kResult):
        if (s.outcome == QueryOutcome::kDeadlineTruncated) {
          ++truncated;
        } else if (s.outcome == QueryOutcome::kInfeasible) {
          ++infeasible;
        }
        ++ok;
        ok_latencies.push_back(s.latency_ms);
        break;
      case static_cast<int>(QueryReply::Kind::kOverloaded):
        ++overloaded;
        break;
      case static_cast<int>(QueryReply::Kind::kError):
        ++errors;
        break;
      case kMutateKind:
        ++mutations_ok;
        break;
      case kMutateErrorKind:
        ++mutations_rejected;
        break;
      default:
        break;  // Transport failure or never sent; counted separately.
    }
  }

  const StatusOr<StatsReply> stats_after = fetch_stats();

  std::printf("offered %zu requests at %s qps over %s connections\n", total,
              FormatDouble(config.qps, 1).c_str(),
              FormatWithCommas(config.connections).c_str());
  if (query_slots > 0) {
    std::printf(
        "stream repeat rate: %s%% (%zu of %zu query slots repeat an exact "
        "earlier tuple; %zu distinct)\n",
        FormatDouble(100.0 * static_cast<double>(repeated) /
                         static_cast<double>(query_slots),
                     1)
            .c_str(),
        repeated, query_slots, query_slots - repeated);
  }
  std::printf(
      "answered %zu (%s/s): results=%zu (truncated=%zu infeasible=%zu) "
      "overloaded=%zu errors=%zu transport_errors=%zu\n",
      ok + overloaded + errors + mutations_ok + mutations_rejected,
      FormatDouble(static_cast<double>(ok) / wall_s, 1).c_str(), ok,
      truncated, infeasible, overloaded, errors, transport_errors.load());
  if (mutations_ok + mutations_rejected > 0) {
    std::printf("mutations applied=%zu rejected=%zu\n", mutations_ok,
                mutations_rejected);
  }
  if (!ok_latencies.empty()) {
    std::printf("latency p50=%s p95=%s p99=%s max=%s\n",
                FormatMillis(Percentile(ok_latencies, 50.0)).c_str(),
                FormatMillis(Percentile(ok_latencies, 95.0)).c_str(),
                FormatMillis(Percentile(ok_latencies, 99.0)).c_str(),
                FormatMillis(*std::max_element(ok_latencies.begin(),
                                               ok_latencies.end()))
                    .c_str());
    PrintHistogram(ok_latencies);
  }
  if (stats_after.ok() && stats_after->cache_enabled != 0) {
    // Delta against the pre-run snapshot isolates this run's traffic; if
    // the before snapshot failed, fall back to the lifetime counters.
    uint64_t hits = stats_after->cache_hits;
    uint64_t misses = stats_after->cache_misses;
    if (stats_before.ok() && stats_before->cache_enabled != 0) {
      hits -= std::min(stats_before->cache_hits, hits);
      misses -= std::min(stats_before->cache_misses, misses);
    }
    const uint64_t lookups = hits + misses;
    std::printf(
        "server result cache: +%llu hits / +%llu misses this run "
        "(hit rate %s%%); %llu entries, %llu bytes resident\n",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        FormatDouble(lookups == 0 ? 0.0
                                  : 100.0 * static_cast<double>(hits) /
                                        static_cast<double>(lookups),
                     1)
            .c_str(),
        static_cast<unsigned long long>(stats_after->cache_entries),
        static_cast<unsigned long long>(stats_after->cache_resident_bytes));
  } else if (stats_after.ok()) {
    std::printf("server result cache: disabled\n");
  }
  return (transport_errors.load() == 0 && ok + mutations_ok > 0) ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 4) {
    return Usage();
  }
  LoadConfig config;
  config.host = argv[1];
  uint64_t port = 0;
  if (!ParseUint64(argv[2], &port) || port == 0 || port > 65535) {
    return Usage();
  }
  config.port = static_cast<uint16_t>(port);
  config.dataset_path = argv[3];
  std::vector<std::string> args(argv + 4, argv + argc);
  for (size_t i = 0; i + 1 < args.size() + 1; i += 2) {
    if (i + 1 >= args.size()) {
      return Usage();
    }
    uint64_t value = 0;
    if (args[i] == "--qps") {
      if (!ParseDouble(args[i + 1], &config.qps) || config.qps <= 0) {
        return Usage();
      }
    } else if (args[i] == "--duration-s") {
      if (!ParseDouble(args[i + 1], &config.duration_s) ||
          config.duration_s <= 0) {
        return Usage();
      }
    } else if (args[i] == "--connections") {
      if (!ParseUint64(args[i + 1], &value) || value == 0 || value > 1024) {
        return Usage();
      }
      config.connections = static_cast<int>(value);
    } else if (args[i] == "--keywords") {
      if (!ParseUint64(args[i + 1], &value) || value == 0) {
        return Usage();
      }
      config.keywords = value;
    } else if (args[i] == "--solver") {
      if (!ParseSolverKind(args[i + 1], &config.solver)) {
        return Usage();
      }
    } else if (args[i] == "--cost") {
      if (args[i + 1] == "maxsum") {
        config.cost = CostType::kMaxSum;
      } else if (args[i + 1] == "dia") {
        config.cost = CostType::kDia;
      } else {
        return Usage();
      }
    } else if (args[i] == "--deadline-ms") {
      if (!ParseDouble(args[i + 1], &config.deadline_ms)) {
        return Usage();
      }
    } else if (args[i] == "--deadline-jitter-ms") {
      if (!ParseDouble(args[i + 1], &config.deadline_jitter_ms)) {
        return Usage();
      }
    } else if (args[i] == "--seed") {
      if (!ParseUint64(args[i + 1], &config.seed)) {
        return Usage();
      }
    } else if (args[i] == "--mutate-fraction") {
      if (!ParseDouble(args[i + 1], &config.mutate_fraction) ||
          config.mutate_fraction < 0.0 || config.mutate_fraction > 1.0) {
        return Usage();
      }
    } else if (args[i] == "--zipf-theta") {
      if (!ParseDouble(args[i + 1], &config.zipf_theta) ||
          config.zipf_theta < 0.0) {
        return Usage();
      }
    } else if (args[i] == "--hotspot-fraction") {
      if (!ParseDouble(args[i + 1], &config.hotspot_fraction) ||
          config.hotspot_fraction < 0.0 || config.hotspot_fraction > 1.0) {
        return Usage();
      }
    } else if (args[i] == "--hotspot-radius") {
      if (!ParseDouble(args[i + 1], &config.hotspot_radius) ||
          config.hotspot_radius <= 0.0 || config.hotspot_radius > 1.0) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  return RunLoad(config);
}

}  // namespace
}  // namespace coskq

int main(int argc, char** argv) { return coskq::Main(argc, argv); }
