// coskq_cli — command-line front end for the library.
//
// Subcommands:
//   generate <preset|objects> <out.txt> [--scale S] [--seed N]
//            [--augment-to N]
//       Writes a synthetic dataset ("hotel"/"gn"/"web" presets at the given
//       scale, or a plain object count) in the text format. --augment-to
//       grows the generated base to N objects the way the paper's
//       scalability experiment grows GN (location and keyword donors drawn
//       from the base), stream-written so memory stays bounded by the base
//       size even at 10M objects.
//   query <dataset.txt> <solver> <x> <y> <kw> [kw...]
//       Loads a dataset, builds the IR-tree, runs one query, prints the set.
//   batch <dataset.txt> <solver> <queries> <keywords>
//         [--threads N] [--seed S] [--deadline-ms D] [--no-masks]
//         [--index-snapshot PATH] [--cold] [--memory-budget BYTES]
//         [--drop-page-cache]
//       Generates a random query batch the paper's way and executes it on
//       the parallel BatchEngine (N worker threads; 0 or omitted = all
//       hardware threads), printing the aggregate latency stats (p50/p95/
//       p99), throughput, and the distance-memo hit counters. --no-masks
//       runs the pre-mask baseline hot path (A/B comparison). With
//       --index-snapshot, --cold maps the snapshot out-of-core (pages fault
//       in on demand), --memory-budget caps the body's resident bytes
//       (implies --cold), --drop-page-cache evicts the file cache first so
//       the run starts from disk; the residency/page-fault counters are
//       printed after the batch.
//   serve <dataset.txt> [--port P] [--workers N] [--queue-cap Q]
//         [--max-deadline-ms D] [--port-file PATH] [--index-snapshot PATH]
//         [--enable-mutations] [--refreeze-threshold T]
//         [--mutation-capacity C]
//       Loads the dataset, builds the IR-tree (or mmap-loads a prebuilt
//       snapshot; see `index build`), and serves the CoSKQ wire protocol
//       (QUERY/STATS/PING, plus MUTATE with --enable-mutations) on
//       127.0.0.1:P (P = 0 binds an ephemeral port; --port-file writes the
//       bound port for scripts). Live mutations go into the index's delta
//       and a background refreeze folds them into a fresh frozen body once
//       the delta reaches T pending entries (--refreeze-threshold, 0 = never;
//       --mutation-capacity caps lifetime inserts). Drains gracefully on
//       SIGTERM/SIGINT and prints the final stats.
//   index build <dataset.txt> <out.cqix> [--max-entries M]
//         [--layout <bfs|level-grouped>]
//       Builds the IR-tree once and writes the frozen flat representation
//       as a versioned snapshot, so `batch`/`serve --index-snapshot` can
//       skip the build on every start. --layout level-grouped emits the
//       page-local body layout (fewest pages per parent expansion; the
//       right choice for cold/out-of-core serving).
//   index inspect <snapshot.cqix>
//       Validates a snapshot (header, checksum) and prints its fields,
//       including the body layout and a per-section byte/page breakdown.
//   shard build <dataset.txt> <outdir> [--shards K] [--max-entries M]
//         [--layout <bfs|level-grouped>]
//       STR-partitions the dataset into K spatial shards, writes each
//       shard's dataset file and frozen index snapshot into <outdir>, and
//       writes the versioned cluster manifest (cluster.cqmf) binding them
//       together (per-shard MBRs, keyword Bloom signatures, id maps,
//       checksums). Each shard is then served by a plain `serve` process.
//   route <manifest.cqmf> --shard HOST:PORT [--shard HOST:PORT ...]
//         [--port P] [--port-file PATH] [--no-distance-prune]
//         [--connect-timeout-ms T] [--io-timeout-ms T] [--connect-retries N]
//       Serves the wire protocol as a scatter-gather router over the shard
//       servers (one --shard per manifest shard, in shard-id order; a bare
//       port means 127.0.0.1). Answers are bit-identical to a single server
//       over the whole dataset; shards that cannot contribute are pruned by
//       keyword signature and, for exact solvers, by the distance-owner
//       MINDIST bound. Drains gracefully on SIGTERM/SIGINT and prints the
//       final routing stats.
//   solvers
//       Lists the solver registry names.
//
// Examples:
//   coskq_cli generate hotel /tmp/hotel.txt --scale 1
//   coskq_cli query /tmp/hotel.txt maxsum-exact 0.4 0.6 t1 t5 t9
//   coskq_cli batch /tmp/hotel.txt maxsum-appro 500 6 --threads 8
//   coskq_cli index build /tmp/hotel.txt /tmp/hotel.cqix
//   coskq_cli serve /tmp/hotel.txt --port 7311 --index-snapshot /tmp/hotel.cqix
//   coskq_cli shard build /tmp/hotel.txt /tmp/cluster --shards 4
//   coskq_cli route /tmp/cluster/cluster.cqmf --port 7310 --shard 7311
//       --shard 7312 --shard 7313 --shard 7314

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/manifest.h"
#include "cluster/partitioner.h"
#include "cluster/router.h"
#include "core/solvers.h"
#include "data/augment.h"
#include "data/dataset.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "engine/batch_engine.h"
#include "index/frozen_layout.h"
#include "index/irtree.h"
#include "index/snapshot.h"
#include "server/client.h"
#include "server/server.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace coskq {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  coskq_cli generate <hotel|gn|web|COUNT> <out.txt> "
               "[--scale S] [--seed N] [--augment-to N]\n"
               "  coskq_cli query <dataset.txt> <solver> <x> <y> <kw...>\n"
               "  coskq_cli batch <dataset.txt> <solver> <queries> "
               "<keywords>\n"
               "            [--threads N] [--seed S] [--deadline-ms D] "
               "[--no-masks]\n"
               "            [--index-snapshot PATH] [--cold] "
               "[--memory-budget BYTES] [--drop-page-cache]\n"
               "  coskq_cli serve <dataset.txt> [--port P] [--workers N] "
               "[--queue-cap Q]\n"
               "            [--max-deadline-ms D] [--port-file PATH] "
               "[--index-snapshot PATH]\n"
               "            [--enable-mutations] [--refreeze-threshold T] "
               "[--mutation-capacity C]\n"
               "            [--result-cache-mb MB] [--cache-cell-bits B]\n"
               "  coskq_cli index build <dataset.txt> <out.cqix> "
               "[--max-entries M] [--layout <bfs|level-grouped>]\n"
               "  coskq_cli index inspect <snapshot.cqix>\n"
               "  coskq_cli shard build <dataset.txt> <outdir> [--shards K]\n"
               "            [--max-entries M] [--layout <bfs|level-grouped>]\n"
               "  coskq_cli route <manifest.cqmf> --shard HOST:PORT "
               "[--shard HOST:PORT ...]\n"
               "            [--port P] [--port-file PATH] "
               "[--no-distance-prune]\n"
               "            [--connect-timeout-ms T] [--io-timeout-ms T] "
               "[--connect-retries N]\n"
               "            [--result-cache-mb MB] [--cache-cell-bits B]\n"
               "  coskq_cli stats <host> <port>\n"
               "  coskq_cli solvers\n");
  return 2;
}

// Writes "<port>\n" to `path` atomically (temp file + rename) so a watcher
// polling the path never observes a partially written file.
bool WritePortFileAtomic(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool wrote = std::fprintf(f, "%u\n", port) > 0;
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote || !flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

int RunGenerate(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Usage();
  }
  double scale = 0.01;
  uint64_t seed = 1;
  uint64_t augment_to = 0;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "--scale") {
      ParseDouble(args[i + 1], &scale);
    } else if (args[i] == "--seed") {
      ParseUint64(args[i + 1], &seed);
    } else if (args[i] == "--augment-to") {
      if (!ParseUint64(args[i + 1], &augment_to)) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  SyntheticSpec spec;
  if (args[0] == "hotel") {
    spec = HotelLikeSpec(scale);
  } else if (args[0] == "gn") {
    spec = GnLikeSpec(scale);
  } else if (args[0] == "web") {
    spec = WebLikeSpec(scale);
  } else {
    uint64_t count = 0;
    if (!ParseUint64(args[0], &count) || count == 0) {
      return Usage();
    }
    spec.num_objects = count;
    spec.vocab_size = std::max<size_t>(50, count / 10);
  }
  Rng rng(seed);
  const Dataset dataset = GenerateSynthetic(spec, &rng);
  Status status;
  size_t written = dataset.NumObjects();
  if (augment_to > dataset.NumObjects()) {
    status = StreamAugmentedToFile(dataset, augment_to, &rng, args[1]);
    written = augment_to;
  } else {
    status = dataset.SaveToFile(args[1]);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::string base_note;
  if (augment_to > dataset.NumObjects()) {
    base_note = ", base " + FormatWithCommas(dataset.NumObjects());
  }
  std::printf("wrote %s objects (%s unique words%s) to %s\n",
              FormatWithCommas(written).c_str(),
              FormatWithCommas(dataset.vocabulary().size()).c_str(),
              base_note.c_str(), args[1].c_str());
  return 0;
}

int RunQuery(const std::vector<std::string>& args) {
  if (args.size() < 5) {
    return Usage();
  }
  StatusOr<Dataset> loaded = Dataset::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(loaded).value();
  WallTimer build_timer;
  IrTree index(&dataset);
  CoskqContext context{&dataset, &index};
  std::printf("loaded %s objects, IR-tree built in %.1f ms\n",
              FormatWithCommas(dataset.NumObjects()).c_str(),
              build_timer.ElapsedMillis());

  auto solver = MakeSolver(args[1], context);
  if (solver == nullptr) {
    std::fprintf(stderr, "unknown solver '%s'; try 'coskq_cli solvers'\n",
                 args[1].c_str());
    return 1;
  }
  CoskqQuery query;
  if (!ParseDouble(args[2], &query.location.x) ||
      !ParseDouble(args[3], &query.location.y)) {
    return Usage();
  }
  for (size_t i = 4; i < args.size(); ++i) {
    const TermId t = dataset.vocabulary().Find(args[i]);
    if (t == Vocabulary::kInvalidTermId) {
      std::fprintf(stderr, "keyword '%s' does not occur in the dataset\n",
                   args[i].c_str());
      return 1;
    }
    query.keywords.push_back(t);
  }
  NormalizeTermSet(&query.keywords);

  const CoskqResult result = solver->Solve(query);
  if (!result.feasible) {
    std::printf("infeasible: some keyword matches no object\n");
    return 0;
  }
  std::printf("%s: cost %.6f in %.2f ms (%llu candidates)\n",
              solver->name().c_str(), result.cost, result.stats.elapsed_ms,
              static_cast<unsigned long long>(result.stats.candidates));
  for (ObjectId id : result.set) {
    const SpatialObject& obj = dataset.object(id);
    std::printf("  #%u (%.6f, %.6f)", obj.id, obj.location.x,
                obj.location.y);
    for (TermId t : obj.keywords) {
      std::printf(" %s", dataset.vocabulary().TermString(t).c_str());
    }
    std::printf("\n");
  }
  return 0;
}

/// Builds the IR-tree in-process (then freezes it) or loads it from a
/// snapshot when `snapshot_path` is non-empty (honouring `load_options` —
/// cold/out-of-core mapping, memory budget). Prints the prepare timing and
/// reports it (plus provenance) through the out-parameters.
std::unique_ptr<IrTree> PrepareIndex(const Dataset& dataset,
                                     const std::string& snapshot_path,
                                     const SnapshotLoadOptions& load_options,
                                     double* prepare_ms, bool* from_snapshot) {
  WallTimer timer;
  std::unique_ptr<IrTree> index;
  if (snapshot_path.empty()) {
    index = std::make_unique<IrTree>(&dataset);
    index->Freeze();
    *from_snapshot = false;
  } else {
    StatusOr<std::unique_ptr<IrTree>> loaded =
        LoadSnapshot(&dataset, snapshot_path, load_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return nullptr;
    }
    index = std::move(loaded).value();
    *from_snapshot = true;
  }
  *prepare_ms = timer.ElapsedMillis();
  std::printf("loaded %s objects, IR-tree %s in %.1f ms\n",
              FormatWithCommas(dataset.NumObjects()).c_str(),
              *from_snapshot ? "snapshot-loaded" : "built", *prepare_ms);
  return index;
}

/// Prints the out-of-core counters after a batch (what the CI smoke greps
/// for: page-fault counters must be present on budget-capped runs).
void PrintMemoryStats(const IrTree& index) {
  const IndexMemoryStats mem = index.MemoryStats();
  std::printf(
      "index memory: layout=%s %s body=%s resident=%s major_faults=%llu "
      "minor_faults=%llu",
      FrozenLayoutName(mem.layout), mem.cold ? "cold" : "warm",
      FormatWithCommas(mem.body_bytes).c_str(),
      FormatWithCommas(mem.body_resident_bytes).c_str(),
      static_cast<unsigned long long>(mem.major_faults),
      static_cast<unsigned long long>(mem.minor_faults));
  if (mem.memory_budget_bytes > 0) {
    std::printf(" budget=%s trims=%llu",
                FormatWithCommas(mem.memory_budget_bytes).c_str(),
                static_cast<unsigned long long>(mem.budget_trims));
  }
  std::printf("\n");
}

int RunBatch(const std::vector<std::string>& args) {
  if (args.size() < 4) {
    return Usage();
  }
  uint64_t num_queries = 0;
  uint64_t num_keywords = 0;
  if (!ParseUint64(args[2], &num_queries) || num_queries == 0 ||
      !ParseUint64(args[3], &num_keywords) || num_keywords == 0) {
    return Usage();
  }
  uint64_t seed = 1;
  uint64_t threads = 0;
  double deadline_ms = 0.0;
  bool use_query_masks = true;
  std::string snapshot_path;
  SnapshotLoadOptions load_options;
  for (size_t i = 4; i < args.size();) {
    if (args[i] == "--no-masks") {
      use_query_masks = false;
      ++i;
      continue;
    }
    if (args[i] == "--cold") {
      load_options.cold = true;
      ++i;
      continue;
    }
    if (args[i] == "--drop-page-cache") {
      load_options.drop_page_cache = true;
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Usage();
    }
    if (args[i] == "--threads") {
      if (!ParseUint64(args[i + 1], &threads)) {
        return Usage();
      }
    } else if (args[i] == "--seed") {
      if (!ParseUint64(args[i + 1], &seed)) {
        return Usage();
      }
    } else if (args[i] == "--deadline-ms") {
      if (!ParseDouble(args[i + 1], &deadline_ms)) {
        return Usage();
      }
    } else if (args[i] == "--index-snapshot") {
      snapshot_path = args[i + 1];
    } else if (args[i] == "--memory-budget") {
      if (!ParseUint64(args[i + 1], &load_options.memory_budget_bytes)) {
        return Usage();
      }
    } else {
      return Usage();
    }
    i += 2;
  }
  if ((load_options.cold || load_options.memory_budget_bytes != 0 ||
       load_options.drop_page_cache) &&
      snapshot_path.empty()) {
    std::fprintf(stderr,
                 "--cold/--memory-budget/--drop-page-cache require "
                 "--index-snapshot\n");
    return Usage();
  }

  StatusOr<Dataset> loaded = Dataset::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(loaded).value();
  double prepare_ms = 0.0;
  bool from_snapshot = false;
  std::unique_ptr<IrTree> index = PrepareIndex(
      dataset, snapshot_path, load_options, &prepare_ms, &from_snapshot);
  if (index == nullptr) {
    return 1;
  }
  CoskqContext context{&dataset, index.get()};

  QueryGenerator gen(&dataset);
  Rng rng(seed);
  std::vector<CoskqQuery> queries;
  queries.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries; ++i) {
    queries.push_back(gen.Generate(num_keywords, &rng));
  }

  BatchOptions options;
  options.solver_name = args[1];
  options.num_threads = static_cast<int>(threads);
  options.deadline_ms = deadline_ms;
  options.use_query_masks = use_query_masks;
  BatchEngine engine(context, options);
  const BatchOutcome outcome = engine.Run(queries);
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "error: %s\n", outcome.status.ToString().c_str());
    return 1;
  }
  std::printf("%s x %llu queries (|q.psi|=%llu, seed %llu)\n",
              args[1].c_str(),
              static_cast<unsigned long long>(num_queries),
              static_cast<unsigned long long>(num_keywords),
              static_cast<unsigned long long>(seed));
  std::printf("%s\n", outcome.stats.ToString().c_str());
  PrintMemoryStats(*index);
  return 0;
}

int RunServe(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage();
  }
  ServerOptions options;
  options.num_workers = 0;  // All hardware threads by default.
  std::string port_file;
  std::string snapshot_path;
  for (size_t i = 1; i < args.size();) {
    if (args[i] == "--enable-mutations") {
      options.enable_mutations = true;
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Usage();
    }
    uint64_t value = 0;
    if (args[i] == "--port") {
      if (!ParseUint64(args[i + 1], &value) || value > 65535) {
        return Usage();
      }
      options.port = static_cast<uint16_t>(value);
    } else if (args[i] == "--workers") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.num_workers = static_cast<int>(value);
    } else if (args[i] == "--queue-cap") {
      if (!ParseUint64(args[i + 1], &value) || value == 0) {
        return Usage();
      }
      options.queue_capacity = value;
    } else if (args[i] == "--max-deadline-ms") {
      if (!ParseDouble(args[i + 1], &options.max_deadline_ms)) {
        return Usage();
      }
    } else if (args[i] == "--port-file") {
      port_file = args[i + 1];
    } else if (args[i] == "--index-snapshot") {
      snapshot_path = args[i + 1];
    } else if (args[i] == "--refreeze-threshold") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.refreeze_threshold = value;
    } else if (args[i] == "--mutation-capacity") {
      if (!ParseUint64(args[i + 1], &value) || value == 0) {
        return Usage();
      }
      options.mutation_capacity = value;
    } else if (args[i] == "--result-cache-mb") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.result_cache_mb = value;
    } else if (args[i] == "--cache-cell-bits") {
      if (!ParseUint64(args[i + 1], &value) || value > 52) {
        return Usage();
      }
      options.cache_cell_bits = static_cast<int>(value);
    } else {
      return Usage();
    }
    i += 2;
  }

  StatusOr<Dataset> loaded = Dataset::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(loaded).value();
  double prepare_ms = 0.0;
  bool from_snapshot = false;
  std::unique_ptr<IrTree> index =
      PrepareIndex(dataset, snapshot_path, SnapshotLoadOptions(),
                   &prepare_ms, &from_snapshot);
  if (index == nullptr) {
    return 1;
  }
  CoskqContext context{&dataset, index.get()};
  options.index_from_snapshot = from_snapshot;
  options.index_prepare_ms = prepare_ms;
  options.index_nodes = index->NodeCount();
  // Checksum before enabling mutations: the digest names the base corpus the
  // index was built over (live appends deliberately do not change it).
  options.index_checksum = dataset.ContentChecksum();
  if (options.enable_mutations) {
    options.mutable_dataset = &dataset;
    options.mutable_index = index.get();
  }

  CoskqServer server(context, options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  CoskqServer::InstallSignalHandlers(&server);
  if (!port_file.empty() && !WritePortFileAtomic(port_file, server.port())) {
    std::fprintf(stderr, "warning: could not write port file %s\n",
                 port_file.c_str());
  }
  std::printf("serving on %s:%u (workers=%d queue=%zu); SIGTERM drains\n",
              options.host.c_str(), server.port(), options.num_workers,
              options.queue_capacity);
  std::fflush(stdout);
  server.Wait();
  std::printf("drained: %s\n", server.stats().ToString().c_str());
  return 0;
}

int RunIndexBuild(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Usage();
  }
  IrTree::Options tree_options;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "--max-entries") {
      uint64_t value = 0;
      if (!ParseUint64(args[i + 1], &value) || value < 4 || value > 65535) {
        return Usage();
      }
      tree_options.max_entries = static_cast<int>(value);
    } else if (args[i] == "--layout") {
      if (!FrozenLayoutFromName(args[i + 1], &tree_options.frozen_layout)) {
        std::fprintf(stderr, "unknown layout '%s' (bfs, level-grouped)\n",
                     args[i + 1].c_str());
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  StatusOr<Dataset> loaded = Dataset::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset dataset = std::move(loaded).value();
  WallTimer build_timer;
  IrTree index(&dataset, tree_options);
  index.Freeze();
  const double build_ms = build_timer.ElapsedMillis();
  WallTimer save_timer;
  const Status status = SaveSnapshot(&index, args[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  auto info = ReadSnapshotInfo(args[1]);
  if (!info.ok()) {
    std::fprintf(stderr, "error: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "built IR-tree over %s objects in %.1f ms; wrote %s bytes to %s "
      "in %.1f ms (%s nodes, height %u, layout %s)\n",
      FormatWithCommas(dataset.NumObjects()).c_str(), build_ms,
      FormatWithCommas(info->file_bytes).c_str(), args[1].c_str(),
      save_timer.ElapsedMillis(), FormatWithCommas(info->num_nodes).c_str(),
      info->height, FrozenLayoutName(info->layout));
  return 0;
}

int RunIndexInspect(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return Usage();
  }
  WallTimer timer;
  auto info = ReadSnapshotInfo(args[0]);
  if (!info.ok()) {
    std::fprintf(stderr, "error: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("snapshot %s (validated in %.1f ms)\n", args[0].c_str(),
              timer.ElapsedMillis());
  std::printf("  version          %u\n", info->version);
  std::printf("  dataset checksum %016llx\n",
              static_cast<unsigned long long>(info->dataset_checksum));
  std::printf("  objects          %s\n",
              FormatWithCommas(info->num_objects).c_str());
  std::printf("  max entries      %u\n", info->max_entries);
  std::printf("  nodes            %s\n",
              FormatWithCommas(info->num_nodes).c_str());
  std::printf("  leaf entries     %s\n",
              FormatWithCommas(info->num_leaf_entries).c_str());
  std::printf("  term arena       %s ids\n",
              FormatWithCommas(info->num_terms).c_str());
  std::printf("  height           %u\n", info->height);
  std::printf("  layout           %s\n", FrozenLayoutName(info->layout));
  std::printf("  header bytes     %s\n",
              FormatWithCommas(info->header_bytes).c_str());
  constexpr uint64_t kPage = 4096;
  const auto pages = [](uint64_t bytes) { return (bytes + kPage - 1) / kPage; };
  std::printf("  body bytes       %s (%s pages)\n",
              FormatWithCommas(info->body_bytes).c_str(),
              FormatWithCommas(pages(info->body_bytes)).c_str());
  std::printf("  file bytes       %s\n",
              FormatWithCommas(info->file_bytes).c_str());

  // Per-section breakdown, recomputed from the header counts exactly as the
  // loader lays the body out.
  using internal_index::BodyLayout;
  const BodyLayout lay = BodyLayout::Make(
      info->layout, info->num_nodes, info->num_leaf_entries, info->num_terms);
  const auto section = [&](const char* name, uint64_t begin, uint64_t end) {
    std::printf("    %-15s %12s bytes %8s pages\n", name,
                FormatWithCommas(end - begin).c_str(),
                FormatWithCommas(pages(end - begin)).c_str());
  };
  std::printf("  body sections (%s node region):\n",
              info->layout == FrozenLayout::kLevelGrouped
                  ? "page-group interleaved"
                  : "per-lane");
  section("node region", 0, lay.node_region_bytes);
  section("term arena", lay.terms_off, lay.leaf_ids_off);
  section("leaf ids", lay.leaf_ids_off, lay.leaf_x_off);
  section("leaf x", lay.leaf_x_off, lay.leaf_y_off);
  section("leaf y", lay.leaf_y_off, lay.leaf_sigs_off);
  section("leaf sigs", lay.leaf_sigs_off, lay.leaf_term_begin_off);
  section("leaf term begin", lay.leaf_term_begin_off,
          lay.leaf_term_count_off);
  section("leaf term count", lay.leaf_term_count_off, lay.total_bytes);
  return 0;
}

int RunShardBuild(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Usage();
  }
  BuildClusterOptions options;
  for (size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "--shards") {
      uint64_t value = 0;
      if (!ParseUint64(args[i + 1], &value) || value == 0 || value > 65536) {
        return Usage();
      }
      options.num_shards = static_cast<uint32_t>(value);
    } else if (args[i] == "--max-entries") {
      uint64_t value = 0;
      if (!ParseUint64(args[i + 1], &value) || value < 4 || value > 65535) {
        return Usage();
      }
      options.max_entries = static_cast<int>(value);
    } else if (args[i] == "--layout") {
      if (!FrozenLayoutFromName(args[i + 1], &options.layout)) {
        std::fprintf(stderr, "unknown layout '%s' (bfs, level-grouped)\n",
                     args[i + 1].c_str());
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  StatusOr<Dataset> loaded = Dataset::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const Dataset dataset = std::move(loaded).value();
  mkdir(args[1].c_str(), 0755);  // best-effort; BuildShardedCluster reports
  WallTimer timer;
  StatusOr<ClusterManifest> built =
      BuildShardedCluster(dataset, args[1], options);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const ClusterManifest& manifest = built.value();
  std::printf(
      "sharded %s objects into %u shards in %.1f ms (manifest %s/%s, "
      "checksum %016llx)\n",
      FormatWithCommas(manifest.total_objects).c_str(), options.num_shards,
      timer.ElapsedMillis(), args[1].c_str(), kManifestFileName,
      static_cast<unsigned long long>(manifest.file_checksum));
  for (const ShardManifestEntry& shard : manifest.shards) {
    std::printf(
        "  shard %u: %s objects, mbr [%.6g,%.6g]x[%.6g,%.6g], %s (%s bytes)\n",
        shard.shard_id, FormatWithCommas(shard.num_objects).c_str(),
        shard.mbr.min_x, shard.mbr.max_x, shard.mbr.min_y, shard.mbr.max_y,
        shard.snapshot_file.c_str(),
        FormatWithCommas(shard.snapshot_bytes).c_str());
  }
  return 0;
}

// "HOST:PORT" or bare "PORT" (host defaults to loopback).
bool ParseShardAddress(const std::string& spec, ShardAddress* out) {
  ShardAddress addr;
  std::string port_text = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon == 0 || colon + 1 == spec.size()) {
      return false;
    }
    addr.host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  uint64_t port = 0;
  if (!ParseUint64(port_text, &port) || port == 0 || port > 65535) {
    return false;
  }
  addr.port = static_cast<uint16_t>(port);
  *out = addr;
  return true;
}

int RunRoute(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage();
  }
  RouterOptions options;
  std::string port_file;
  size_t i = 1;
  while (i < args.size()) {
    if (args[i] == "--no-distance-prune") {
      options.enable_distance_prune = false;
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      return Usage();
    }
    uint64_t value = 0;
    if (args[i] == "--shard") {
      ShardAddress addr;
      if (!ParseShardAddress(args[i + 1], &addr)) {
        std::fprintf(stderr, "bad --shard '%s' (want HOST:PORT or PORT)\n",
                     args[i + 1].c_str());
        return Usage();
      }
      options.shards.push_back(addr);
    } else if (args[i] == "--port") {
      if (!ParseUint64(args[i + 1], &value) || value > 65535) {
        return Usage();
      }
      options.port = static_cast<uint16_t>(value);
    } else if (args[i] == "--port-file") {
      port_file = args[i + 1];
    } else if (args[i] == "--connect-timeout-ms") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.client_options.connect_timeout_ms = static_cast<int>(value);
    } else if (args[i] == "--io-timeout-ms") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.client_options.io_timeout_ms = static_cast<int>(value);
    } else if (args[i] == "--connect-retries") {
      if (!ParseUint64(args[i + 1], &value) || value == 0) {
        return Usage();
      }
      options.client_options.max_connect_attempts = static_cast<int>(value);
    } else if (args[i] == "--result-cache-mb") {
      if (!ParseUint64(args[i + 1], &value)) {
        return Usage();
      }
      options.result_cache_mb = value;
    } else if (args[i] == "--cache-cell-bits") {
      if (!ParseUint64(args[i + 1], &value) || value > 52) {
        return Usage();
      }
      options.cache_cell_bits = static_cast<int>(value);
    } else {
      return Usage();
    }
    i += 2;
  }

  StatusOr<ClusterManifest> loaded = ClusterManifest::LoadFromFile(args[0]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const ClusterManifest manifest = std::move(loaded).value();
  if (options.shards.size() != manifest.shards.size()) {
    std::fprintf(stderr,
                 "error: manifest has %zu shards but %zu --shard flags given\n",
                 manifest.shards.size(), options.shards.size());
    return 1;
  }

  ClusterRouter router(manifest, options);
  const Status status = router.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  ClusterRouter::InstallSignalHandlers(&router);
  if (!port_file.empty() && !WritePortFileAtomic(port_file, router.port())) {
    std::fprintf(stderr, "warning: could not write port file %s\n",
                 port_file.c_str());
  }
  std::printf(
      "routing on %s:%u over %zu shards (%s objects, manifest %016llx); "
      "SIGTERM drains\n",
      options.host.c_str(), router.port(), manifest.shards.size(),
      FormatWithCommas(manifest.total_objects).c_str(),
      static_cast<unsigned long long>(manifest.file_checksum));
  std::fflush(stdout);
  router.Wait();
  std::printf("drained: %s\n", router.stats().ToString().c_str());
  return 0;
}

/// `coskq_cli stats HOST PORT`: one STATS round trip against a running
/// server or router, rendered through StatsReply::ToString — the v6 cache
/// block (hits/misses/evictions/invalidations/hit rate/resident bytes)
/// included when the target has a result cache.
int RunStats(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return Usage();
  }
  uint64_t port = 0;
  if (!ParseUint64(args[1], &port) || port == 0 || port > 65535) {
    return Usage();
  }
  CoskqClient client;
  const Status connected =
      client.Connect(args[0], static_cast<uint16_t>(port));
  if (!connected.ok()) {
    std::fprintf(stderr, "error: %s\n", connected.ToString().c_str());
    return 1;
  }
  StatusOr<StatsReply> stats = client.Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", stats->ToString().c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "generate") {
    return RunGenerate(args);
  }
  if (command == "query") {
    return RunQuery(args);
  }
  if (command == "batch") {
    return RunBatch(args);
  }
  if (command == "serve") {
    return RunServe(args);
  }
  if (command == "index") {
    if (args.empty()) {
      return Usage();
    }
    const std::string sub = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (sub == "build") {
      return RunIndexBuild(rest);
    }
    if (sub == "inspect") {
      return RunIndexInspect(rest);
    }
    return Usage();
  }
  if (command == "shard") {
    if (args.empty() || args[0] != "build") {
      return Usage();
    }
    return RunShardBuild(std::vector<std::string>(args.begin() + 1,
                                                  args.end()));
  }
  if (command == "route") {
    return RunRoute(args);
  }
  if (command == "stats") {
    return RunStats(args);
  }
  if (command == "solvers") {
    for (const std::string& name : AvailableSolverNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace coskq

int main(int argc, char** argv) { return coskq::Run(argc, argv); }
