#!/usr/bin/env bash
# CI matrix for the coskq tree: {Release, ThreadSanitizer, ASan+UBSan} x the
# fast test tier (`ctest -L fast`). The Release job also runs the slow tier.
#
# The TSan job is the enforcement mechanism for the BatchEngine contract
# that concurrent solves over one immutable CoskqContext are race-free: it
# re-runs engine_batch_test with COSKQ_TEST_THREADS=8 so every batch
# assertion doubles as an 8-worker race probe.
#
# The fast tier includes the serving layer (server_codec_test and the
# server_loopback_test, which binds a real epoll server on localhost), so
# both sanitizer jobs exercise the event loop, the wire codecs, and the
# worker handoff on every build.
#
# The perf job is opt-in (not part of the default matrix): it builds
# Release, runs the hot-path A/B benchmark at smoke scale, compares the
# fresh BENCH_hotpath.json against the committed one with
# tools/bench_compare.py, and finishes with a 10-second coskq_load soak
# against a live `coskq_cli serve` instance (saturation + graceful SIGTERM
# drain must both hold). The benchmark comparison is informational on
# shared CI runners (noisy neighbours); run it locally at full scale before
# accepting a perf-sensitive change.
#
# Usage: tools/ci.sh [job...]
#   jobs: release tsan asan perf  (default: release tsan asan)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=("$@")
if [ ${#JOBS[@]} -eq 0 ]; then
  JOBS=(release tsan asan)
fi

NPROC=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

configure_and_build() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$NPROC"
}

run_fast_tests() {
  local dir=$1
  ctest --test-dir "$dir" --output-on-failure -L fast -j "$NPROC"
}

for job in "${JOBS[@]}"; do
  case "$job" in
    release)
      echo "== CI job: Release, full test suite =="
      configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
          -DCOSKQ_SANITIZE=""
      ctest --test-dir build-ci-release --output-on-failure -j "$NPROC"
      ;;
    tsan)
      echo "== CI job: ThreadSanitizer, fast tier + 8-thread batch =="
      configure_and_build build-ci-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=thread -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-tsan
      COSKQ_TEST_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/engine_batch_test
      ;;
    asan)
      echo "== CI job: AddressSanitizer+UBSan, fast tier =="
      configure_and_build build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=address,undefined -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-asan
      ;;
    perf)
      echo "== CI job: perf smoke, hot-path A/B benchmark =="
      configure_and_build build-ci-perf -DCMAKE_BUILD_TYPE=Release \
          -DCOSKQ_SANITIZE=""
      mkdir -p build-ci-perf/perf
      ( cd build-ci-perf/perf &&
        COSKQ_BENCH_SCALE="${COSKQ_BENCH_SCALE:-0.01}" \
        COSKQ_BENCH_QUERIES="${COSKQ_BENCH_QUERIES:-20}" \
            ../bench/bench_hotpath )
      if [ -f BENCH_hotpath.json ]; then
        # Informational on shared runners: timing noise there is far larger
        # than the 20% gate, so a miss must not fail the matrix.
        python3 tools/bench_compare.py BENCH_hotpath.json \
            build-ci-perf/perf/BENCH_hotpath.json || true
      fi

      echo "== perf: 10-second coskq_load soak against a live server =="
      SOAK_DIR=build-ci-perf/soak
      mkdir -p "$SOAK_DIR"
      ./build-ci-perf/tools/coskq_cli generate 20000 "$SOAK_DIR/soak.txt" \
          --seed 7 > /dev/null
      ./build-ci-perf/tools/coskq_cli serve "$SOAK_DIR/soak.txt" --port 0 \
          --workers 2 --queue-cap 16 --port-file "$SOAK_DIR/port" &
      SERVE_PID=$!
      for _ in $(seq 1 100); do
        [ -s "$SOAK_DIR/port" ] && break
        sleep 0.1
      done
      [ -s "$SOAK_DIR/port" ] || { echo "server never bound"; exit 1; }
      # Offered load well above two workers' capacity: the soak passes only
      # if the server keeps answering (shedding OVERLOADED as needed) for
      # the whole window without a transport error or accept-loop stall.
      ./build-ci-perf/tools/coskq_load 127.0.0.1 "$(cat "$SOAK_DIR/port")" \
          "$SOAK_DIR/soak.txt" --qps 200 --duration-s 10 --connections 4 \
          --deadline-ms 50 --seed 11
      kill -TERM "$SERVE_PID"
      wait "$SERVE_PID"  # Non-zero (drain failure/crash) fails the job.
      ;;
    *)
      echo "unknown CI job '$job' (expected release, tsan, asan, or perf)" >&2
      exit 2
      ;;
  esac
done

echo "CI matrix complete: ${JOBS[*]}"
