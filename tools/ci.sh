#!/usr/bin/env bash
# CI matrix for the coskq tree: {Release, ThreadSanitizer, ASan+UBSan} x the
# fast test tier (`ctest -L fast`). The Release job also runs the slow tier.
#
# The TSan job is the enforcement mechanism for two concurrency contracts:
# the BatchEngine contract that concurrent solves over one immutable
# CoskqContext are race-free (engine_batch_test re-run with
# COSKQ_TEST_THREADS=8 so every batch assertion doubles as an 8-worker race
# probe), and the live-update contract that a background Refreeze() epoch
# swap is invisible to in-flight readers (index_refreeze_race_test run
# explicitly so the writer/refreezer/query-storm interleaving is always
# probed under TSan, not just in the plain fast tier). It also re-runs
# cache_invalidation_test with COSKQ_TEST_THREADS=8: the result-cache
# storm races query/mutate lanes against background refreezes over the
# sharded cache's per-shard leaf mutexes.
#
# The fast tier includes the serving layer (server_codec_test and the
# server_loopback_test, which binds a real epoll server on localhost) and
# the cluster layer (cluster_partition_test and cluster_router_diff_test,
# which stands up a real 4-shard cluster behind a ClusterRouter and asserts
# routed answers bit-identical to the single-dataset run for every solver
# family), so both sanitizer jobs exercise the event loop, the wire codecs,
# the scatter-gather path, and the worker handoff on every build. The TSan
# job additionally re-runs cluster_router_diff_test explicitly — the router
# is thread-per-connection with per-connection shard clients, and that
# interleaving must stay probed even if test labels change. The release job
# adds a subprocess-level 3-shard smoke: `coskq_cli shard build` + three
# `serve` processes + `route`, soaked with coskq_load and drained with
# SIGTERM.
#
# The perf job is opt-in (not part of the default matrix): it builds
# Release, runs the A/B benchmarks (hot path, dataset suite, frozen IR-tree
# layout, out-of-core scalability) at the same scale the committed
# BENCH_*.json baselines were recorded at, and gates on
# tools/bench_compare.py: any directional metric more than 25% worse than
# its committed baseline fails the job. It also smoke-tests the
# bounded-memory contract: a budget-capped cold-mmap batch must finish
# under a hard `ulimit -v` cap and report the DESIGN.md §14 paging
# counters. Set
# COSKQ_PERF_WARN_ONLY=1 to report regressions without failing (the escape
# hatch for noisy shared runners). The job then builds an index snapshot
# once with `coskq_cli index build`, records cold-start (rebuild) vs
# warm-start (snapshot load) times, and reuses the snapshot for two
# 10-second coskq_load soaks against a live `coskq_cli serve
# --index-snapshot` instance: a read-only one (saturation + graceful
# SIGTERM drain must both hold) and a mixed read/write one
# (--enable-mutations + --mutate-fraction 0.05, with background refreezes
# folding the delta mid-soak). The read-only server soak and the cluster
# router soak both run with --result-cache-mb 64 under a --zipf-theta 1.0
# production-shaped stream, and each gates on the server-side result cache
# reporting a non-zero hit count through the v6 STATS tail.
#
# Usage: tools/ci.sh [job...]
#   jobs: release tsan asan perf  (default: release tsan asan)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=("$@")
if [ ${#JOBS[@]} -eq 0 ]; then
  JOBS=(release tsan asan)
fi

NPROC=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

configure_and_build() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$NPROC"
}

run_fast_tests() {
  local dir=$1
  ctest --test-dir "$dir" --output-on-failure -L fast -j "$NPROC"
}

for job in "${JOBS[@]}"; do
  case "$job" in
    release)
      echo "== CI job: Release, full test suite =="
      configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
          -DCOSKQ_SANITIZE=""
      ctest --test-dir build-ci-release --output-on-failure -j "$NPROC"
      # The SIMD kernel layer must be a pure optimization: with the scalar
      # reference table forced, every fast-tier answer (including the
      # frozen-vs-pointer differential suite) must still hold bit-exactly.
      echo "== release: fast tier re-run with COSKQ_KERNEL=scalar =="
      COSKQ_KERNEL=scalar ctest --test-dir build-ci-release \
          --output-on-failure -L fast -j "$NPROC"
      # The result cache must be a pure optimization too: with the cache
      # force-disabled through its environment kill switch, every fast-tier
      # answer (including cache_invalidation_test, whose freshness
      # assertions hold trivially without a cache) must still pass.
      echo "== release: fast tier re-run with COSKQ_RESULT_CACHE=off =="
      COSKQ_RESULT_CACHE=off ctest --test-dir build-ci-release \
          --output-on-failure -L fast -j "$NPROC"

      echo "== release: 3-shard cluster subprocess smoke =="
      # The real deployment shape, one binary per process: shard build,
      # three shard servers from the artifacts, a router over their port
      # files, a short saturating load, and a SIGTERM drain that must
      # report the cluster fan-out counters. (Bit-identity itself is
      # asserted by cluster_router_diff_test in the fast tier above.)
      CL_DIR=build-ci-release/cluster-smoke
      rm -rf "$CL_DIR" && mkdir -p "$CL_DIR"
      ./build-ci-release/tools/coskq_cli generate 3000 "$CL_DIR/data.txt" \
          --seed 13 > /dev/null
      ./build-ci-release/tools/coskq_cli shard build "$CL_DIR/data.txt" \
          "$CL_DIR/shards" --shards 3
      SHARD_PIDS=()
      for s in 0 1 2; do
        ./build-ci-release/tools/coskq_cli serve \
            "$CL_DIR/shards/shard_000$s.txt" --port 0 --workers 2 \
            --index-snapshot "$CL_DIR/shards/shard_000$s.cqix" \
            --port-file "$CL_DIR/port$s" > "$CL_DIR/shard$s.log" &
        SHARD_PIDS+=($!)
      done
      for s in 0 1 2; do
        for _ in $(seq 1 100); do
          [ -s "$CL_DIR/port$s" ] && break
          sleep 0.1
        done
        [ -s "$CL_DIR/port$s" ] || { echo "shard $s never bound"; exit 1; }
      done
      ./build-ci-release/tools/coskq_cli route "$CL_DIR/shards/cluster.cqmf" \
          --port 0 --port-file "$CL_DIR/router-port" \
          --shard "$(cat "$CL_DIR/port0")" \
          --shard "$(cat "$CL_DIR/port1")" \
          --shard "$(cat "$CL_DIR/port2")" > "$CL_DIR/router.log" &
      ROUTE_PID=$!
      for _ in $(seq 1 100); do
        [ -s "$CL_DIR/router-port" ] && break
        sleep 0.1
      done
      [ -s "$CL_DIR/router-port" ] || { echo "router never bound"; exit 1; }
      ./build-ci-release/tools/coskq_load 127.0.0.1 \
          "$(cat "$CL_DIR/router-port")" "$CL_DIR/data.txt" --qps 100 \
          --duration-s 3 --connections 2 --seed 17
      kill -TERM "$ROUTE_PID"
      wait "$ROUTE_PID"  # Non-zero (drain failure/crash) fails the job.
      for pid in "${SHARD_PIDS[@]}"; do
        kill -TERM "$pid"
        wait "$pid"
      done
      grep -q "cluster{" "$CL_DIR/router.log"
      grep -q "shard2{" "$CL_DIR/router.log"
      ;;
    tsan)
      echo "== CI job: ThreadSanitizer, fast tier + 8-thread batch =="
      configure_and_build build-ci-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=thread -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-tsan
      COSKQ_TEST_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/engine_batch_test
      # Live updates: mutations + RefreezeAsync racing a saturating query
      # batch. This is the binary the delta/refreeze lock order was written
      # for; run it explicitly so a labels change can never drop it.
      TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/index_refreeze_race_test
      # The cluster router: thread-per-connection scatter-gather over
      # per-connection shard clients, plus the bit-identity acceptance
      # sweep. Run explicitly so a labels change can never drop it.
      TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/cluster_router_diff_test
      # The result cache storm: 8 lanes racing insert/probe/remove loops
      # over the sharded cache while background refreezes advance the
      # epoch underneath — the per-shard leaf mutexes and the stamp reads
      # on the event-loop thread are what TSan is probing here.
      COSKQ_TEST_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/cache_invalidation_test
      ;;
    asan)
      echo "== CI job: AddressSanitizer+UBSan, fast tier =="
      configure_and_build build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=address,undefined -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-asan
      # The AVX2 kernels use unaligned 256-bit loads over SoA stripes whose
      # alignment the snapshot format only guarantees to 8 bytes; one forced
      # run under ASan+UBSan probes those loads for overreads wherever the
      # hardware allows (the kernels are function-level target("avx2"), so
      # the binary itself is baseline x86-64 and safe to build anywhere).
      if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
        echo "== asan: kernel sweep re-run with COSKQ_KERNEL=avx2 =="
        COSKQ_KERNEL=avx2 ./build-ci-asan/tests/index_kernels_test
        COSKQ_KERNEL=avx2 ./build-ci-asan/tests/index_frozen_diff_test
      else
        echo "== asan: no AVX2 on this host; skipping forced-kernel run =="
      fi
      ;;
    perf)
      echo "== CI job: perf, A/B benchmarks gated against committed baselines =="
      # Note: the perf build is plain Release with NO global -march flag.
      # The SIMD kernels carry function-level __attribute__((target))
      # annotations, so the same baseline-x86-64 binary contains scalar,
      # SSE2, and AVX2 paths and picks one at runtime — what ships is what
      # gets benchmarked.
      configure_and_build build-ci-perf -DCMAKE_BUILD_TYPE=Release \
          -DCOSKQ_SANITIZE=""
      mkdir -p build-ci-perf/perf

      # Prove the gate itself works before trusting it with a verdict.
      python3 tools/bench_compare.py --self-test

      # The regression gate: each benchmark runs at the exact config its
      # committed BENCH_*.json baseline was recorded at, and bench_compare
      # fails the job on any directional metric >25% worse. The escape hatch
      # for noisy shared runners is COSKQ_PERF_WARN_ONLY=1.
      #
      # Since the live-update layer landed, the read-path benches
      # (BENCH_hotpath, BENCH_irtree_layout, BENCH_simd) double as the
      # empty-delta tax gate: every frozen traversal now passes through the
      # delta-merge wrappers, and these baselines were recorded before that
      # layer existed, so a delta check that costs pure reads >25% fails
      # here.
      COMPARE_FLAGS=(--threshold 25)
      if [ "${COSKQ_PERF_WARN_ONLY:-0}" != "0" ]; then
        COMPARE_FLAGS+=(--warn-only)
      fi
      run_gated_bench() {
        local bench=$1 baseline=$2 queries=$3
        ( cd build-ci-perf/perf &&
          COSKQ_BENCH_SCALE="${COSKQ_BENCH_SCALE:-0.02}" \
          COSKQ_BENCH_QUERIES="${COSKQ_BENCH_QUERIES:-$queries}" \
              "../bench/$bench" )
        if [ -f "$baseline" ]; then
          python3 tools/bench_compare.py "${COMPARE_FLAGS[@]}" "$baseline" \
              "build-ci-perf/perf/$baseline"
        else
          echo "no committed $baseline; skipping comparison"
        fi
      }
      run_gated_bench bench_hotpath BENCH_hotpath.json 100
      run_gated_bench bench_irtree_layout BENCH_irtree_layout.json 100
      run_gated_bench bench_simd BENCH_simd.json 100
      run_gated_bench bench_datasets BENCH_datasets.json 20
      # Out-of-core scalability (DESIGN.md §14). Two growth points at CI
      # scale keep the job bounded; cell identity embeds the object count,
      # so these small runs are "new, no baseline" against the committed
      # paper-scale BENCH_scalability.json rather than false regressions.
      # A full-scale re-run (COSKQ_BENCH_SCALE=1 COSKQ_BENCH_SIZES=2000000)
      # compares cell-for-cell against the committed baseline.
      COSKQ_BENCH_SIZES="${COSKQ_BENCH_SIZES:-2000000,4000000}" \
          run_gated_bench bench_scalability BENCH_scalability.json 20
      # Scatter-gather cluster (DESIGN.md §15): router vs single server,
      # with the bench itself enforcing bit-identity and a non-zero prune
      # rate from both shard lower bounds before it writes the report.
      run_gated_bench bench_cluster BENCH_cluster.json 20
      # Result cache (DESIGN.md §16): cache-on vs cache-off single server
      # under Zipf(1.0)+hotspot traffic, with the bench itself enforcing
      # bit-identity against the direct solve, a >=50% hit rate, and a >=3x
      # cached p50 speedup before it writes the report.
      run_gated_bench bench_cache BENCH_cache.json 20

      echo "== perf: out-of-core smoke under a hard address-space cap =="
      # A budget-capped cold-mmap batch must complete inside a 256 MiB
      # ulimit -v sandbox (the cap counts the mmap itself, so it must
      # exceed the snapshot file size — here ~7 MB — by the process's
      # baseline needs) and must report the §14 paging counters. This is
      # the bounded-memory contract a paper-scale deployment relies on.
      OOC_DIR=build-ci-perf/ooc
      mkdir -p "$OOC_DIR"
      ./build-ci-perf/tools/coskq_cli generate 100000 "$OOC_DIR/ooc.txt" \
          --seed 9 > /dev/null
      ./build-ci-perf/tools/coskq_cli index build "$OOC_DIR/ooc.txt" \
          "$OOC_DIR/ooc.cqix" --layout level-grouped > /dev/null
      ( ulimit -v 262144
        ./build-ci-perf/tools/coskq_cli batch "$OOC_DIR/ooc.txt" \
            maxsum-appro 50 6 --index-snapshot "$OOC_DIR/ooc.cqix" --cold \
            --drop-page-cache --memory-budget 2097152 ) \
          | tee "$OOC_DIR/ooc.log"
      grep -q "index memory: layout=level-grouped cold" "$OOC_DIR/ooc.log"
      grep -q "major_faults=" "$OOC_DIR/ooc.log"
      grep -q "budget=2,097,152" "$OOC_DIR/ooc.log"

      echo "== perf: snapshot build + cold-start vs warm-start =="
      SOAK_DIR=build-ci-perf/soak
      mkdir -p "$SOAK_DIR"
      ./build-ci-perf/tools/coskq_cli generate 20000 "$SOAK_DIR/soak.txt" \
          --seed 7 > /dev/null
      # Build the index snapshot once; every serve below reuses it.
      ./build-ci-perf/tools/coskq_cli index build "$SOAK_DIR/soak.txt" \
          "$SOAK_DIR/soak.cqix" | tee "$SOAK_DIR/build.log"
      ./build-ci-perf/tools/coskq_cli index inspect "$SOAK_DIR/soak.cqix" \
          > /dev/null
      # Cold start: serve builds the tree in-process. Warm start: serve
      # mmap-loads the snapshot. Both report "IR-tree <how> in <ms>" on
      # stdout; the job summary quotes the two lines side by side.
      start_and_stop_server() {
        local log=$1
        shift
        rm -f "$SOAK_DIR/port"
        ./build-ci-perf/tools/coskq_cli serve "$SOAK_DIR/soak.txt" --port 0 \
            --workers 2 --queue-cap 16 --port-file "$SOAK_DIR/port" "$@" \
            > "$log" &
        SERVE_PID=$!
        for _ in $(seq 1 100); do
          [ -s "$SOAK_DIR/port" ] && break
          sleep 0.1
        done
        [ -s "$SOAK_DIR/port" ] || { echo "server never bound"; exit 1; }
      }
      start_and_stop_server "$SOAK_DIR/cold.log"
      kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
      start_and_stop_server "$SOAK_DIR/warm.log" \
          --index-snapshot "$SOAK_DIR/soak.cqix"
      kill -TERM "$SERVE_PID"; wait "$SERVE_PID"
      echo "== perf job summary: server start =="
      echo "cold (rebuild):       $(grep -o 'IR-tree .* ms' "$SOAK_DIR/cold.log")"
      echo "warm (snapshot load): $(grep -o 'IR-tree .* ms' "$SOAK_DIR/warm.log")"

      echo "== perf: 10-second coskq_load soak against a live server =="
      start_and_stop_server "$SOAK_DIR/soak.log" \
          --index-snapshot "$SOAK_DIR/soak.cqix" --result-cache-mb 64
      # Offered load well above two workers' capacity: the soak passes only
      # if the server keeps answering (shedding OVERLOADED as needed) for
      # the whole window without a transport error or accept-loop stall.
      # The Zipf(1.0) tuple pool makes the stream production-shaped, and
      # the grep gates on the server-side cache actually absorbing repeats
      # (coskq_load prints the STATS hit/miss delta for this run).
      ./build-ci-perf/tools/coskq_load 127.0.0.1 "$(cat "$SOAK_DIR/port")" \
          "$SOAK_DIR/soak.txt" --qps 200 --duration-s 10 --connections 4 \
          --deadline-ms 50 --seed 11 --zipf-theta 1.0 \
          | tee "$SOAK_DIR/load.log"
      grep -Eq "server result cache: \+[1-9][0-9]* hits" "$SOAK_DIR/load.log"
      kill -TERM "$SERVE_PID"
      wait "$SERVE_PID"  # Non-zero (drain failure/crash) fails the job.
      cat "$SOAK_DIR/soak.log"

      echo "== perf: 10-second coskq_load soak against the cluster router =="
      # The same saturating soak shape, but through the scatter-gather
      # path: 3 shard servers + router, offered load above capacity, and a
      # SIGTERM drain that must exit clean with the cluster counters in the
      # drain line. The router sheds nothing itself (routing happens on the
      # connection thread), so this probes shard-client backpressure.
      CLS_DIR=build-ci-perf/cluster-soak
      rm -rf "$CLS_DIR" && mkdir -p "$CLS_DIR"
      ./build-ci-perf/tools/coskq_cli shard build "$SOAK_DIR/soak.txt" \
          "$CLS_DIR/shards" --shards 3
      CLS_PIDS=()
      for s in 0 1 2; do
        ./build-ci-perf/tools/coskq_cli serve \
            "$CLS_DIR/shards/shard_000$s.txt" --port 0 --workers 2 \
            --index-snapshot "$CLS_DIR/shards/shard_000$s.cqix" \
            --port-file "$CLS_DIR/port$s" > "$CLS_DIR/shard$s.log" &
        CLS_PIDS+=($!)
      done
      for s in 0 1 2; do
        for _ in $(seq 1 100); do
          [ -s "$CLS_DIR/port$s" ] && break
          sleep 0.1
        done
        [ -s "$CLS_DIR/port$s" ] || { echo "shard $s never bound"; exit 1; }
      done
      ./build-ci-perf/tools/coskq_cli route "$CLS_DIR/shards/cluster.cqmf" \
          --port 0 --port-file "$CLS_DIR/router-port" \
          --shard "$(cat "$CLS_DIR/port0")" \
          --shard "$(cat "$CLS_DIR/port1")" \
          --shard "$(cat "$CLS_DIR/port2")" --result-cache-mb 64 \
          > "$CLS_DIR/router.log" &
      ROUTE_PID=$!
      for _ in $(seq 1 100); do
        [ -s "$CLS_DIR/router-port" ] && break
        sleep 0.1
      done
      [ -s "$CLS_DIR/router-port" ] || { echo "router never bound"; exit 1; }
      # Same Zipf-shaped stream through the scatter-gather path: a router
      # cache hit skips the whole probe/harvest/re-solve fan-out, and the
      # grep gates on that actually happening during the soak.
      ./build-ci-perf/tools/coskq_load 127.0.0.1 \
          "$(cat "$CLS_DIR/router-port")" "$SOAK_DIR/soak.txt" --qps 150 \
          --duration-s 10 --connections 4 --deadline-ms 100 --seed 19 \
          --zipf-theta 1.0 | tee "$CLS_DIR/load.log"
      grep -Eq "server result cache: \+[1-9][0-9]* hits" "$CLS_DIR/load.log"
      kill -TERM "$ROUTE_PID"
      wait "$ROUTE_PID"  # Non-zero (drain failure/crash) fails the job.
      for pid in "${CLS_PIDS[@]}"; do
        kill -TERM "$pid"
        wait "$pid"
      done
      grep -q "cluster{" "$CLS_DIR/router.log"
      cat "$CLS_DIR/router.log"

      echo "== perf: 10-second mixed read/write soak (protocol v3 MUTATE) =="
      # Same snapshot, but the server accepts MUTATE and folds the delta in
      # the background every 2048 mutations. 5% of the offered load is
      # inserts/removes; the soak passes only if every acked write stays
      # acked (no transport errors), queries keep flowing around the epoch
      # swaps, and SIGTERM still drains cleanly with refreezes in flight.
      start_and_stop_server "$SOAK_DIR/soak_rw.log" \
          --index-snapshot "$SOAK_DIR/soak.cqix" --enable-mutations \
          --refreeze-threshold 2048
      ./build-ci-perf/tools/coskq_load 127.0.0.1 "$(cat "$SOAK_DIR/port")" \
          "$SOAK_DIR/soak.txt" --qps 200 --duration-s 10 --connections 4 \
          --deadline-ms 50 --seed 12 --mutate-fraction 0.05
      kill -TERM "$SERVE_PID"
      wait "$SERVE_PID"  # Non-zero (drain failure/crash) fails the job.
      cat "$SOAK_DIR/soak_rw.log"
      ;;
    *)
      echo "unknown CI job '$job' (expected release, tsan, asan, or perf)" >&2
      exit 2
      ;;
  esac
done

echo "CI matrix complete: ${JOBS[*]}"
