#!/usr/bin/env bash
# CI matrix for the coskq tree: {Release, ThreadSanitizer, ASan+UBSan} x the
# fast test tier (`ctest -L fast`). The Release job also runs the slow tier.
#
# The TSan job is the enforcement mechanism for the BatchEngine contract
# that concurrent solves over one immutable CoskqContext are race-free: it
# re-runs engine_batch_test with COSKQ_TEST_THREADS=8 so every batch
# assertion doubles as an 8-worker race probe.
#
# Usage: tools/ci.sh [job...]
#   jobs: release tsan asan  (default: all three, in that order)

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=("$@")
if [ ${#JOBS[@]} -eq 0 ]; then
  JOBS=(release tsan asan)
fi

NPROC=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)

configure_and_build() {
  local dir=$1
  shift
  cmake -B "$dir" -S . "$@" > /dev/null
  cmake --build "$dir" -j "$NPROC"
}

run_fast_tests() {
  local dir=$1
  ctest --test-dir "$dir" --output-on-failure -L fast -j "$NPROC"
}

for job in "${JOBS[@]}"; do
  case "$job" in
    release)
      echo "== CI job: Release, full test suite =="
      configure_and_build build-ci-release -DCMAKE_BUILD_TYPE=Release \
          -DCOSKQ_SANITIZE=""
      ctest --test-dir build-ci-release --output-on-failure -j "$NPROC"
      ;;
    tsan)
      echo "== CI job: ThreadSanitizer, fast tier + 8-thread batch =="
      configure_and_build build-ci-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=thread -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-tsan
      COSKQ_TEST_THREADS=8 TSAN_OPTIONS="halt_on_error=1" \
          ./build-ci-tsan/tests/engine_batch_test
      ;;
    asan)
      echo "== CI job: AddressSanitizer+UBSan, fast tier =="
      configure_and_build build-ci-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DCOSKQ_SANITIZE=address,undefined -DCOSKQ_BUILD_BENCHMARKS=OFF \
          -DCOSKQ_BUILD_EXAMPLES=OFF
      run_fast_tests build-ci-asan
      ;;
    *)
      echo "unknown CI job '$job' (expected release, tsan, or asan)" >&2
      exit 2
      ;;
  esac
done

echo "CI matrix complete: ${JOBS[*]}"
