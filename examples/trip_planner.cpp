// Trip planner — the paper's motivating scenario: a tourist at a hotel
// wants a set of nearby POIs that collectively cover "attraction",
// "shopping", and "dining", and compares what the two cost functions
// optimize for:
//
//  * MaxSum favors sets that are close to the hotel AND mutually close;
//  * Dia minimizes the overall span of the outing (the diameter of the
//    chosen places together with the hotel).
//
// The city is synthetic (clustered POIs with category keywords), the
// query keywords and hotel location are configurable via argv:
//
//   $ ./build/examples/trip_planner [x y [keyword...]]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"
#include "data/dataset.h"
#include "ext/topk_coskq.h"
#include "index/irtree.h"
#include "util/random.h"

namespace {

// Builds a synthetic city: POIs clustered into neighborhoods, each tagged
// with one primary category and occasional secondary ones.
coskq::Dataset BuildCity(coskq::Rng* rng) {
  using coskq::Dataset;
  using coskq::Point;
  const std::vector<std::string> categories = {
      "attraction", "shopping", "dining", "park",
      "theatre",    "cafe",     "hotel",  "viewpoint"};
  Dataset city;
  const int kNeighborhoods = 12;
  std::vector<Point> centers;
  for (int i = 0; i < kNeighborhoods; ++i) {
    centers.push_back(Point{rng->UniformDouble(0.1, 0.9),
                            rng->UniformDouble(0.1, 0.9)});
  }
  for (int i = 0; i < 4000; ++i) {
    const Point& c = centers[rng->UniformUint64(centers.size())];
    const Point location{
        std::clamp(c.x + 0.04 * rng->Gaussian(), 0.0, 1.0),
        std::clamp(c.y + 0.04 * rng->Gaussian(), 0.0, 1.0)};
    std::vector<std::string> words;
    words.push_back(categories[rng->UniformUint64(categories.size())]);
    if (rng->Bernoulli(0.3)) {
      words.push_back(categories[rng->UniformUint64(categories.size())]);
    }
    city.AddObject(location, words);
  }
  return city;
}

void PrintSet(const coskq::Dataset& city,
              const std::vector<coskq::ObjectId>& set, double cost,
              const char* label) {
  std::printf("  %-12s cost=%.4f  places:", label, cost);
  for (coskq::ObjectId id : set) {
    const auto& obj = city.object(id);
    std::printf("  #%u(%.3f, %.3f)[", obj.id, obj.location.x,
                obj.location.y);
    for (size_t i = 0; i < obj.keywords.size(); ++i) {
      std::printf("%s%s", i ? "," : "",
                  city.vocabulary().TermString(obj.keywords[i]).c_str());
    }
    std::printf("]");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coskq;
  Rng rng(2013);
  Dataset city = BuildCity(&rng);
  IrTree index(&city);
  CoskqContext context{&city, &index};

  CoskqQuery query;
  query.location = Point{0.5, 0.5};
  std::vector<std::string> wanted = {"attraction", "shopping", "dining"};
  if (argc >= 3) {
    query.location.x = std::atof(argv[1]);
    query.location.y = std::atof(argv[2]);
  }
  if (argc > 3) {
    wanted.assign(argv + 3, argv + argc);
  }
  std::printf("Hotel at (%.3f, %.3f); looking for:", query.location.x,
              query.location.y);
  for (const std::string& w : wanted) {
    const TermId t = city.vocabulary().Find(w);
    if (t == Vocabulary::kInvalidTermId) {
      std::printf(" %s(unknown!)", w.c_str());
      continue;
    }
    std::printf(" %s", w.c_str());
    query.keywords.push_back(t);
  }
  std::printf("\n\n");
  NormalizeTermSet(&query.keywords);

  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    std::printf("cost_%s:\n", std::string(CostTypeName(type)).c_str());
    OwnerDrivenExact exact(context, type);
    OwnerDrivenAppro appro(context, type);
    const CoskqResult best = exact.Solve(query);
    if (!best.feasible) {
      std::printf("  no feasible plan (some category has no POI)\n");
      continue;
    }
    PrintSet(city, best.set, best.cost, "optimal");
    const CoskqResult quick = appro.Solve(query);
    PrintSet(city, quick.set, quick.cost, "approximate");

    // Alternatives: the runner-up plans via top-k CoSKQ.
    const TopkCoskqResult alternatives =
        SolveTopkCoskq(context, query, type, 3);
    for (size_t i = 1; i < alternatives.answers.size(); ++i) {
      PrintSet(city, alternatives.answers[i].set,
               alternatives.answers[i].cost,
               ("alt #" + std::to_string(i)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
