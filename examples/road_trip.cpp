// Road trip — CoSKQ under *network* distance (the extension module): find
// a set of stops on a road network that collectively covers the shopping
// list, minimizing network-distance cost from the driver's position, and
// contrast it with the (possibly wrong) Euclidean answer.
//
//   $ ./build/examples/road_trip

#include <cstdio>

#include "core/owner_driven_exact.h"
#include "index/irtree.h"
#include "road/road_coskq.h"
#include "road/road_generator.h"
#include "util/random.h"

int main() {
  using namespace coskq;
  Rng rng(1234);
  RoadNetworkSpec spec;
  spec.grid_size = 25;
  spec.removal_probability = 0.25;  // A sparse city with detours.
  spec.num_objects = 1800;
  spec.vocab_size = 40;
  RoadWorkload city = GenerateRoadWorkload(spec, &rng);

  std::printf("Road network: %zu nodes, %zu edges, %zu places\n\n",
              city.graph.NumNodes(), city.graph.NumEdges(),
              city.dataset.NumObjects());

  RoadCoskqQuery errand;
  errand.node = city.graph.NearestNode(Point{0.5, 0.5});
  errand.keywords = {24, 31, 37};  // Three rarer kinds of stops to cover.
  NormalizeTermSet(&errand.keywords);

  const CoskqResult by_road =
      SolveRoadCoskqExact(city, errand, CostType::kMaxSum);
  const CoskqResult quick =
      SolveRoadCoskqGreedy(city, errand, CostType::kMaxSum);

  // The Euclidean answer for the same query, priced under network distance.
  IrTree index(&city.dataset);
  CoskqContext euclidean_ctx{&city.dataset, &index};
  CoskqQuery as_euclidean;
  as_euclidean.location = city.graph.location(errand.node);
  as_euclidean.keywords = errand.keywords;
  OwnerDrivenExact euclidean(euclidean_ctx, CostType::kMaxSum);
  const CoskqResult straight_line = euclidean.Solve(as_euclidean);

  auto show = [&](const char* label, const CoskqResult& result) {
    if (!result.feasible) {
      std::printf("%-28s infeasible\n", label);
      return;
    }
    RoadDistanceOracle oracle(&city.graph);
    const double network_cost = EvaluateRoadCost(
        CostType::kMaxSum, city, &oracle, errand.node, result.set);
    std::printf("%-28s stops:", label);
    for (ObjectId id : result.set) {
      std::printf(" #%u", id);
    }
    std::printf("  network cost %.4f\n", network_cost);
  };

  show("network-optimal (exact)", by_road);
  show("network greedy", quick);
  show("Euclidean-optimal set", straight_line);
  std::printf(
      "\nIf the last line costs more than the first, the straight-line\n"
      "answer sends the driver across missing road segments — the reason\n"
      "the paper lists road networks as the next metric to support.\n");
  return 0;
}
