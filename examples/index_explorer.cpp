// Index explorer: loads a dataset from a file (or generates a GN-like
// synthetic one), builds the IR-tree, prints index statistics, and runs a
// few keyword-aware spatial queries directly against the index — the layer
// below the CoSKQ algorithms.
//
//   $ ./build/examples/index_explorer [dataset.txt]
//
// The file format is one object per line: "x y word1 word2 ...".

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "geo/circle.h"
#include "index/irtree.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace coskq;
  Dataset dataset;
  if (argc > 1) {
    StatusOr<Dataset> loaded = Dataset::LoadFromFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
    std::printf("Loaded %s\n", argv[1]);
  } else {
    Rng rng(7);
    dataset = GenerateSynthetic(GnLikeSpec(0.01), &rng);
    std::printf("Generated a GN-like synthetic dataset "
                "(pass a file path to load your own)\n");
  }

  std::printf("objects:       %s\n",
              FormatWithCommas(dataset.NumObjects()).c_str());
  std::printf("unique words:  %s\n",
              FormatWithCommas(dataset.vocabulary().size()).c_str());
  std::printf("total words:   %s\n",
              FormatWithCommas(dataset.TotalKeywordCount()).c_str());
  std::printf("avg |o.psi|:   %.2f\n", dataset.AverageKeywordsPerObject());
  std::printf("MBR:           %s\n", dataset.mbr().ToString().c_str());

  WallTimer build_timer;
  IrTree index(&dataset);
  std::printf("IR-tree built in %.1f ms: height=%d, nodes=%zu\n\n",
              build_timer.ElapsedMillis(), index.Height(),
              index.NodeCount());

  // Keyword-NN queries for the five most frequent keywords from the center
  // of the data space.
  const Point center = dataset.mbr().Center();
  const auto ranked = dataset.TermsByFrequencyDesc();
  std::printf("keyword NN queries from the MBR center %s:\n",
              center.ToString().c_str());
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    double d = 0.0;
    const ObjectId nn = index.KeywordNn(center, ranked[i], &d);
    std::printf("  NN(q, \"%s\")%*s -> object #%u at distance %.5f "
                "(keyword frequency %u)\n",
                dataset.vocabulary().TermString(ranked[i]).c_str(), 0, "",
                nn, d, dataset.TermFrequency(ranked[i]));
  }

  // A relevance range query and an incremental relevant stream.
  if (ranked.size() >= 3) {
    TermSet terms{ranked[0], ranked[1], ranked[2]};
    NormalizeTermSet(&terms);
    std::vector<ObjectId> in_range;
    const Circle range(center, 0.05);
    index.RangeRelevant(range, terms, &in_range);
    std::printf("\n%zu relevant objects within %s for the top-3 keywords\n",
                in_range.size(), range.ToString().c_str());

    IrTree::RelevantStream stream(&index, center, terms);
    std::printf("nearest 5 relevant objects by incremental stream:\n");
    for (int i = 0; i < 5; ++i) {
      auto next = stream.Next();
      if (!next) {
        break;
      }
      std::printf("  #%u at distance %.5f\n", next->first, next->second);
    }
  }
  return 0;
}
