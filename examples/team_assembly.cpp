// Team assembly — the paper's second motivating scenario: a project manager
// needs a consortium of partners who collectively provide a required skill
// set and are geographically close to each other (and to the manager).
//
// People are generated with 1-4 skills each, clustered in "tech hubs". The
// Dia cost is the natural objective here (the whole consortium should fit
// in a small region around the coordinator); the example also shows the Sum
// cost from the extensions, which models total travel to the coordinator.
//
//   $ ./build/examples/team_assembly

#include <cstdio>
#include <string>
#include <vector>

#include "core/owner_driven_appro.h"
#include "core/owner_driven_exact.h"
#include "data/dataset.h"
#include "ext/sum_coskq.h"
#include "index/irtree.h"
#include "util/random.h"

int main() {
  using namespace coskq;
  const std::vector<std::string> skills = {
      "frontend", "backend", "databases", "ml",      "security",
      "devops",   "mobile",  "design",    "testing", "legal"};

  Rng rng(42);
  Dataset people;
  for (int i = 0; i < 3000; ++i) {
    // Three tech hubs plus a uniform background of remote workers.
    Point location;
    const double hub = rng.UniformDouble();
    if (hub < 0.35) {
      location = {0.25 + 0.05 * rng.Gaussian(), 0.3 + 0.05 * rng.Gaussian()};
    } else if (hub < 0.7) {
      location = {0.7 + 0.05 * rng.Gaussian(), 0.65 + 0.05 * rng.Gaussian()};
    } else if (hub < 0.85) {
      location = {0.5 + 0.04 * rng.Gaussian(), 0.15 + 0.04 * rng.Gaussian()};
    } else {
      location = {rng.UniformDouble(), rng.UniformDouble()};
    }
    location.x = std::clamp(location.x, 0.0, 1.0);
    location.y = std::clamp(location.y, 0.0, 1.0);
    std::vector<std::string> person_skills;
    const size_t count = 1 + rng.UniformUint64(4);
    for (size_t s = 0; s < count; ++s) {
      person_skills.push_back(skills[rng.UniformUint64(skills.size())]);
    }
    people.AddObject(location, person_skills);
  }

  IrTree index(&people);
  CoskqContext context{&people, &index};

  CoskqQuery project;
  project.location = {0.28, 0.32};  // The coordinator sits in hub 1.
  for (const char* need :
       {"backend", "databases", "ml", "security", "legal"}) {
    project.keywords.push_back(people.vocabulary().Find(need));
  }
  NormalizeTermSet(&project.keywords);

  std::printf("Coordinator at (%.2f, %.2f); required skills: backend, "
              "databases, ml, security, legal\n\n",
              project.location.x, project.location.y);

  auto print_team = [&](const char* objective,
                        const CoskqResult& result) {
    std::printf("%s team (cost %.4f):\n", objective, result.cost);
    for (ObjectId id : result.set) {
      const SpatialObject& person = people.object(id);
      std::printf("  person #%-5u at (%.3f, %.3f)  skills:", person.id,
                  person.location.x, person.location.y);
      for (TermId t : person.keywords) {
        std::printf(" %s", people.vocabulary().TermString(t).c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  };

  // Dia: the consortium spans the smallest possible region.
  OwnerDrivenExact dia_exact(context, CostType::kDia);
  print_team("Dia-optimal (tightest region)", dia_exact.Solve(project));

  // MaxSum: balance proximity to the coordinator and mutual proximity.
  OwnerDrivenAppro maxsum_appro(context, CostType::kMaxSum);
  print_team("MaxSum-approximate (1.375-bounded)",
             maxsum_appro.Solve(project));

  // Sum (extension): minimize the total travel to the coordinator.
  SumExact sum_exact(context);
  print_team("Sum-optimal (least total travel)", sum_exact.Solve(project));
  return 0;
}
