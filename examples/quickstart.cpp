// Quickstart: build a tiny geo-textual dataset, index it with an IR-tree,
// and answer one collective spatial keyword query with every algorithm in
// the library.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/solvers.h"
#include "data/dataset.h"
#include "index/irtree.h"

int main() {
  using namespace coskq;

  // 1. A dataset of points of interest around a small town. Coordinates are
  //    kilometres; keywords describe what each place offers.
  Dataset town;
  town.AddObject({0.2, 0.3}, {"cafe", "wifi"});
  town.AddObject({0.4, 0.1}, {"museum"});
  town.AddObject({0.5, 0.6}, {"restaurant", "bar"});
  town.AddObject({1.8, 1.9}, {"cafe", "museum", "restaurant"});
  town.AddObject({0.1, 0.7}, {"bakery"});
  town.AddObject({0.9, 0.4}, {"museum", "cafe"});
  town.AddObject({0.3, 0.5}, {"restaurant"});

  // 2. Index it. The IR-tree answers keyword-aware spatial queries and is
  //    the substrate every CoSKQ algorithm runs on.
  IrTree index(&town);
  CoskqContext context{&town, &index};

  // 3. A query: "find a set of places, close to my hotel at (0.25, 0.35),
  //    that together offer a cafe, a museum, and a restaurant".
  CoskqQuery query;
  query.location = {0.25, 0.35};
  query.keywords = {town.vocabulary().Find("cafe"),
                    town.vocabulary().Find("museum"),
                    town.vocabulary().Find("restaurant")};
  NormalizeTermSet(&query.keywords);

  // 4. Solve with each registered algorithm and print the answers.
  std::printf("%-20s %-10s %s\n", "algorithm", "cost", "set");
  for (const std::string& name : AvailableSolverNames()) {
    auto solver = MakeSolver(name, context);
    const CoskqResult result = solver->Solve(query);
    std::printf("%-20s %-10.4f {", solver->name().c_str(), result.cost);
    for (size_t i = 0; i < result.set.size(); ++i) {
      const SpatialObject& obj = town.object(result.set[i]);
      std::printf("%s#%u(%.1f,%.1f)", i ? ", " : "", obj.id, obj.location.x,
                  obj.location.y);
    }
    std::printf("}\n");
  }
  return 0;
}
