# Empty dependencies file for coskq_cli.
# This may be replaced when dependencies are built.
