file(REMOVE_RECURSE
  "CMakeFiles/coskq_cli.dir/coskq_cli.cc.o"
  "CMakeFiles/coskq_cli.dir/coskq_cli.cc.o.d"
  "coskq_cli"
  "coskq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
