file(REMOVE_RECURSE
  "CMakeFiles/bench_dia_vary_qkw.dir/bench_dia_vary_qkw.cc.o"
  "CMakeFiles/bench_dia_vary_qkw.dir/bench_dia_vary_qkw.cc.o.d"
  "bench_dia_vary_qkw"
  "bench_dia_vary_qkw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dia_vary_qkw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
