# Empty compiler generated dependencies file for bench_dia_vary_qkw.
# This may be replaced when dependencies are built.
