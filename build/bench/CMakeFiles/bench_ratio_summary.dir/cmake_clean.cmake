file(REMOVE_RECURSE
  "CMakeFiles/bench_ratio_summary.dir/bench_ratio_summary.cc.o"
  "CMakeFiles/bench_ratio_summary.dir/bench_ratio_summary.cc.o.d"
  "bench_ratio_summary"
  "bench_ratio_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ratio_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
