# Empty compiler generated dependencies file for bench_ratio_summary.
# This may be replaced when dependencies are built.
