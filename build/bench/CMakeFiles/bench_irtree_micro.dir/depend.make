# Empty dependencies file for bench_irtree_micro.
# This may be replaced when dependencies are built.
