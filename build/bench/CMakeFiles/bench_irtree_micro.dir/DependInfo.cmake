
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_irtree_micro.cc" "bench/CMakeFiles/bench_irtree_micro.dir/bench_irtree_micro.cc.o" "gcc" "bench/CMakeFiles/bench_irtree_micro.dir/bench_irtree_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/coskq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coskq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
