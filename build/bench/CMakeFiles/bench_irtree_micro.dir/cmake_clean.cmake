file(REMOVE_RECURSE
  "CMakeFiles/bench_irtree_micro.dir/bench_irtree_micro.cc.o"
  "CMakeFiles/bench_irtree_micro.dir/bench_irtree_micro.cc.o.d"
  "bench_irtree_micro"
  "bench_irtree_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_irtree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
