# Empty compiler generated dependencies file for bench_maxsum_vary_qkw.
# This may be replaced when dependencies are built.
