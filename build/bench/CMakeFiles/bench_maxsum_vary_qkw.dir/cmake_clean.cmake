file(REMOVE_RECURSE
  "CMakeFiles/bench_maxsum_vary_qkw.dir/bench_maxsum_vary_qkw.cc.o"
  "CMakeFiles/bench_maxsum_vary_qkw.dir/bench_maxsum_vary_qkw.cc.o.d"
  "bench_maxsum_vary_qkw"
  "bench_maxsum_vary_qkw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxsum_vary_qkw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
