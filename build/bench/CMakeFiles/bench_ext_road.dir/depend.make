# Empty dependencies file for bench_ext_road.
# This may be replaced when dependencies are built.
