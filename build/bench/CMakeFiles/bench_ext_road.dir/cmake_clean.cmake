file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_road.dir/bench_ext_road.cc.o"
  "CMakeFiles/bench_ext_road.dir/bench_ext_road.cc.o.d"
  "bench_ext_road"
  "bench_ext_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
