# Empty compiler generated dependencies file for bench_vary_okw.
# This may be replaced when dependencies are built.
