
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_vary_okw.cc" "bench/CMakeFiles/bench_vary_okw.dir/bench_vary_okw.cc.o" "gcc" "bench/CMakeFiles/bench_vary_okw.dir/bench_vary_okw.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/coskq_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coskq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coskq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coskq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
