file(REMOVE_RECURSE
  "CMakeFiles/bench_vary_okw.dir/bench_vary_okw.cc.o"
  "CMakeFiles/bench_vary_okw.dir/bench_vary_okw.cc.o.d"
  "bench_vary_okw"
  "bench_vary_okw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vary_okw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
