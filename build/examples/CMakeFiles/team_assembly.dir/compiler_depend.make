# Empty compiler generated dependencies file for team_assembly.
# This may be replaced when dependencies are built.
