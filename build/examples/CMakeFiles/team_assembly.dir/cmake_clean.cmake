file(REMOVE_RECURSE
  "CMakeFiles/team_assembly.dir/team_assembly.cpp.o"
  "CMakeFiles/team_assembly.dir/team_assembly.cpp.o.d"
  "team_assembly"
  "team_assembly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_assembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
