# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/road_test[1]_include.cmake")
include("/root/repo/build/tests/benchlib_test[1]_include.cmake")
