
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/benchlib_test.cc" "tests/CMakeFiles/benchlib_test.dir/benchlib_test.cc.o" "gcc" "tests/CMakeFiles/benchlib_test.dir/benchlib_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchlib/CMakeFiles/coskq_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/coskq_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coskq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coskq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coskq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
