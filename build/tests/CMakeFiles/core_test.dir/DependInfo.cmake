
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_appro_test.cc" "tests/CMakeFiles/core_test.dir/core_appro_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_appro_test.cc.o.d"
  "/root/repo/tests/core_cost_test.cc" "tests/CMakeFiles/core_test.dir/core_cost_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_cost_test.cc.o.d"
  "/root/repo/tests/core_exact_test.cc" "tests/CMakeFiles/core_test.dir/core_exact_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_exact_test.cc.o.d"
  "/root/repo/tests/core_metamorphic_test.cc" "tests/CMakeFiles/core_test.dir/core_metamorphic_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_metamorphic_test.cc.o.d"
  "/root/repo/tests/core_solvers_test.cc" "tests/CMakeFiles/core_test.dir/core_solvers_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_solvers_test.cc.o.d"
  "/root/repo/tests/core_stress_test.cc" "tests/CMakeFiles/core_test.dir/core_stress_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core_stress_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ext/CMakeFiles/coskq_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coskq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/coskq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coskq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
