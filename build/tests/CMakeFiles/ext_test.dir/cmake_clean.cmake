file(REMOVE_RECURSE
  "CMakeFiles/ext_test.dir/ext_minmax_test.cc.o"
  "CMakeFiles/ext_test.dir/ext_minmax_test.cc.o.d"
  "CMakeFiles/ext_test.dir/ext_sum_coskq_test.cc.o"
  "CMakeFiles/ext_test.dir/ext_sum_coskq_test.cc.o.d"
  "CMakeFiles/ext_test.dir/ext_topk_test.cc.o"
  "CMakeFiles/ext_test.dir/ext_topk_test.cc.o.d"
  "CMakeFiles/ext_test.dir/ext_unified_cost_test.cc.o"
  "CMakeFiles/ext_test.dir/ext_unified_cost_test.cc.o.d"
  "ext_test"
  "ext_test.pdb"
  "ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
