# Empty dependencies file for coskq_data.
# This may be replaced when dependencies are built.
