file(REMOVE_RECURSE
  "CMakeFiles/coskq_data.dir/augment.cc.o"
  "CMakeFiles/coskq_data.dir/augment.cc.o.d"
  "CMakeFiles/coskq_data.dir/dataset.cc.o"
  "CMakeFiles/coskq_data.dir/dataset.cc.o.d"
  "CMakeFiles/coskq_data.dir/object.cc.o"
  "CMakeFiles/coskq_data.dir/object.cc.o.d"
  "CMakeFiles/coskq_data.dir/query_gen.cc.o"
  "CMakeFiles/coskq_data.dir/query_gen.cc.o.d"
  "CMakeFiles/coskq_data.dir/synthetic.cc.o"
  "CMakeFiles/coskq_data.dir/synthetic.cc.o.d"
  "CMakeFiles/coskq_data.dir/term_set.cc.o"
  "CMakeFiles/coskq_data.dir/term_set.cc.o.d"
  "libcoskq_data.a"
  "libcoskq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
