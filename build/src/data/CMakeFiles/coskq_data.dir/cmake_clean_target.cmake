file(REMOVE_RECURSE
  "libcoskq_data.a"
)
