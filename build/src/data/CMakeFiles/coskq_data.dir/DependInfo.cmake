
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cc" "src/data/CMakeFiles/coskq_data.dir/augment.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/augment.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/coskq_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/object.cc" "src/data/CMakeFiles/coskq_data.dir/object.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/object.cc.o.d"
  "/root/repo/src/data/query_gen.cc" "src/data/CMakeFiles/coskq_data.dir/query_gen.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/query_gen.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/coskq_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/term_set.cc" "src/data/CMakeFiles/coskq_data.dir/term_set.cc.o" "gcc" "src/data/CMakeFiles/coskq_data.dir/term_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
