file(REMOVE_RECURSE
  "CMakeFiles/coskq_road.dir/road_coskq.cc.o"
  "CMakeFiles/coskq_road.dir/road_coskq.cc.o.d"
  "CMakeFiles/coskq_road.dir/road_generator.cc.o"
  "CMakeFiles/coskq_road.dir/road_generator.cc.o.d"
  "CMakeFiles/coskq_road.dir/road_graph.cc.o"
  "CMakeFiles/coskq_road.dir/road_graph.cc.o.d"
  "libcoskq_road.a"
  "libcoskq_road.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_road.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
