file(REMOVE_RECURSE
  "libcoskq_road.a"
)
