# Empty dependencies file for coskq_road.
# This may be replaced when dependencies are built.
