file(REMOVE_RECURSE
  "libcoskq_index.a"
)
