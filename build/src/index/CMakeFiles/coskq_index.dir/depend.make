# Empty dependencies file for coskq_index.
# This may be replaced when dependencies are built.
