file(REMOVE_RECURSE
  "CMakeFiles/coskq_index.dir/inverted_index.cc.o"
  "CMakeFiles/coskq_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/coskq_index.dir/irtree.cc.o"
  "CMakeFiles/coskq_index.dir/irtree.cc.o.d"
  "CMakeFiles/coskq_index.dir/rtree.cc.o"
  "CMakeFiles/coskq_index.dir/rtree.cc.o.d"
  "libcoskq_index.a"
  "libcoskq_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
