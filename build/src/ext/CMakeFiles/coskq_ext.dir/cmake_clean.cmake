file(REMOVE_RECURSE
  "CMakeFiles/coskq_ext.dir/minmax_coskq.cc.o"
  "CMakeFiles/coskq_ext.dir/minmax_coskq.cc.o.d"
  "CMakeFiles/coskq_ext.dir/sum_coskq.cc.o"
  "CMakeFiles/coskq_ext.dir/sum_coskq.cc.o.d"
  "CMakeFiles/coskq_ext.dir/topk_coskq.cc.o"
  "CMakeFiles/coskq_ext.dir/topk_coskq.cc.o.d"
  "CMakeFiles/coskq_ext.dir/unified_cost.cc.o"
  "CMakeFiles/coskq_ext.dir/unified_cost.cc.o.d"
  "libcoskq_ext.a"
  "libcoskq_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
