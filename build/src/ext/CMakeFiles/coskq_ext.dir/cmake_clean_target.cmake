file(REMOVE_RECURSE
  "libcoskq_ext.a"
)
