# Empty dependencies file for coskq_ext.
# This may be replaced when dependencies are built.
