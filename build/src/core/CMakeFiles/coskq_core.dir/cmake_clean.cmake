file(REMOVE_RECURSE
  "CMakeFiles/coskq_core.dir/brute_force.cc.o"
  "CMakeFiles/coskq_core.dir/brute_force.cc.o.d"
  "CMakeFiles/coskq_core.dir/candidates.cc.o"
  "CMakeFiles/coskq_core.dir/candidates.cc.o.d"
  "CMakeFiles/coskq_core.dir/cao_appro.cc.o"
  "CMakeFiles/coskq_core.dir/cao_appro.cc.o.d"
  "CMakeFiles/coskq_core.dir/cao_exact.cc.o"
  "CMakeFiles/coskq_core.dir/cao_exact.cc.o.d"
  "CMakeFiles/coskq_core.dir/cost.cc.o"
  "CMakeFiles/coskq_core.dir/cost.cc.o.d"
  "CMakeFiles/coskq_core.dir/nn_set.cc.o"
  "CMakeFiles/coskq_core.dir/nn_set.cc.o.d"
  "CMakeFiles/coskq_core.dir/owner_driven_appro.cc.o"
  "CMakeFiles/coskq_core.dir/owner_driven_appro.cc.o.d"
  "CMakeFiles/coskq_core.dir/owner_driven_exact.cc.o"
  "CMakeFiles/coskq_core.dir/owner_driven_exact.cc.o.d"
  "CMakeFiles/coskq_core.dir/solver.cc.o"
  "CMakeFiles/coskq_core.dir/solver.cc.o.d"
  "CMakeFiles/coskq_core.dir/solvers.cc.o"
  "CMakeFiles/coskq_core.dir/solvers.cc.o.d"
  "libcoskq_core.a"
  "libcoskq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
