file(REMOVE_RECURSE
  "libcoskq_core.a"
)
