# Empty dependencies file for coskq_core.
# This may be replaced when dependencies are built.
