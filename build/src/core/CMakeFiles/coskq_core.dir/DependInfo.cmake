
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cc" "src/core/CMakeFiles/coskq_core.dir/brute_force.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/brute_force.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/coskq_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/cao_appro.cc" "src/core/CMakeFiles/coskq_core.dir/cao_appro.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/cao_appro.cc.o.d"
  "/root/repo/src/core/cao_exact.cc" "src/core/CMakeFiles/coskq_core.dir/cao_exact.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/cao_exact.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/core/CMakeFiles/coskq_core.dir/cost.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/cost.cc.o.d"
  "/root/repo/src/core/nn_set.cc" "src/core/CMakeFiles/coskq_core.dir/nn_set.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/nn_set.cc.o.d"
  "/root/repo/src/core/owner_driven_appro.cc" "src/core/CMakeFiles/coskq_core.dir/owner_driven_appro.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/owner_driven_appro.cc.o.d"
  "/root/repo/src/core/owner_driven_exact.cc" "src/core/CMakeFiles/coskq_core.dir/owner_driven_exact.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/owner_driven_exact.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/core/CMakeFiles/coskq_core.dir/solver.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/solver.cc.o.d"
  "/root/repo/src/core/solvers.cc" "src/core/CMakeFiles/coskq_core.dir/solvers.cc.o" "gcc" "src/core/CMakeFiles/coskq_core.dir/solvers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/coskq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coskq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/coskq_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coskq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
