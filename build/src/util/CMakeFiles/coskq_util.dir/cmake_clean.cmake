file(REMOVE_RECURSE
  "CMakeFiles/coskq_util.dir/logging.cc.o"
  "CMakeFiles/coskq_util.dir/logging.cc.o.d"
  "CMakeFiles/coskq_util.dir/random.cc.o"
  "CMakeFiles/coskq_util.dir/random.cc.o.d"
  "CMakeFiles/coskq_util.dir/stats.cc.o"
  "CMakeFiles/coskq_util.dir/stats.cc.o.d"
  "CMakeFiles/coskq_util.dir/status.cc.o"
  "CMakeFiles/coskq_util.dir/status.cc.o.d"
  "CMakeFiles/coskq_util.dir/string_util.cc.o"
  "CMakeFiles/coskq_util.dir/string_util.cc.o.d"
  "CMakeFiles/coskq_util.dir/timer.cc.o"
  "CMakeFiles/coskq_util.dir/timer.cc.o.d"
  "libcoskq_util.a"
  "libcoskq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
