# Empty compiler generated dependencies file for coskq_util.
# This may be replaced when dependencies are built.
