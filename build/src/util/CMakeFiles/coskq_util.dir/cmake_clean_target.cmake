file(REMOVE_RECURSE
  "libcoskq_util.a"
)
