file(REMOVE_RECURSE
  "CMakeFiles/coskq_benchlib.dir/bench_config.cc.o"
  "CMakeFiles/coskq_benchlib.dir/bench_config.cc.o.d"
  "CMakeFiles/coskq_benchlib.dir/experiments.cc.o"
  "CMakeFiles/coskq_benchlib.dir/experiments.cc.o.d"
  "CMakeFiles/coskq_benchlib.dir/harness.cc.o"
  "CMakeFiles/coskq_benchlib.dir/harness.cc.o.d"
  "CMakeFiles/coskq_benchlib.dir/table.cc.o"
  "CMakeFiles/coskq_benchlib.dir/table.cc.o.d"
  "libcoskq_benchlib.a"
  "libcoskq_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
