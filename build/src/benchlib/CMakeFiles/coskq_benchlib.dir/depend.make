# Empty dependencies file for coskq_benchlib.
# This may be replaced when dependencies are built.
