file(REMOVE_RECURSE
  "libcoskq_benchlib.a"
)
