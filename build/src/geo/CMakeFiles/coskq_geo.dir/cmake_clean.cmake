file(REMOVE_RECURSE
  "CMakeFiles/coskq_geo.dir/circle.cc.o"
  "CMakeFiles/coskq_geo.dir/circle.cc.o.d"
  "CMakeFiles/coskq_geo.dir/point.cc.o"
  "CMakeFiles/coskq_geo.dir/point.cc.o.d"
  "CMakeFiles/coskq_geo.dir/rect.cc.o"
  "CMakeFiles/coskq_geo.dir/rect.cc.o.d"
  "libcoskq_geo.a"
  "libcoskq_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coskq_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
