file(REMOVE_RECURSE
  "libcoskq_geo.a"
)
