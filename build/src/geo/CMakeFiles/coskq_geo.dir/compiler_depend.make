# Empty compiler generated dependencies file for coskq_geo.
# This may be replaced when dependencies are built.
