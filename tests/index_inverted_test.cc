#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace coskq {
namespace {

Dataset TinyDataset() {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"cafe", "wifi"});
  ds.AddObject(Point{1, 0}, {"museum"});
  ds.AddObject(Point{0, 1}, {"cafe", "museum"});
  ds.AddObject(Point{1, 1}, {"park"});
  return ds;
}

TEST(InvertedIndexTest, PostingsMatchObjects) {
  Dataset ds = TinyDataset();
  InvertedIndex index(ds);
  const TermId cafe = ds.vocabulary().Find("cafe");
  const TermId museum = ds.vocabulary().Find("museum");
  EXPECT_EQ(index.Postings(cafe), (std::vector<ObjectId>{0, 2}));
  EXPECT_EQ(index.Postings(museum), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(index.TotalPostings(), 6u);
  EXPECT_EQ(index.NumTerms(), 4u);
}

TEST(InvertedIndexTest, UnknownTermEmpty) {
  Dataset ds = TinyDataset();
  InvertedIndex index(ds);
  EXPECT_TRUE(index.Postings(999).empty());
}

TEST(InvertedIndexTest, RelevantObjectsUnion) {
  Dataset ds = TinyDataset();
  InvertedIndex index(ds);
  TermSet terms{ds.vocabulary().Find("cafe"), ds.vocabulary().Find("park")};
  NormalizeTermSet(&terms);
  EXPECT_EQ(index.RelevantObjects(terms), (std::vector<ObjectId>{0, 2, 3}));
}

TEST(InvertedIndexTest, PostingsSortedAndCompleteOnSynthetic) {
  Dataset ds = test::MakeRandomDataset(500, 60, 4.0, 77);
  InvertedIndex index(ds);
  size_t postings = 0;
  for (TermId t = 0; t < ds.vocabulary().size(); ++t) {
    const auto& list = index.Postings(t);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    EXPECT_EQ(list.size(), ds.TermFrequency(t));
    for (ObjectId id : list) {
      EXPECT_TRUE(ds.object(id).ContainsTerm(t));
    }
    postings += list.size();
  }
  EXPECT_EQ(postings, ds.TotalKeywordCount());
  EXPECT_EQ(index.TotalPostings(), ds.TotalKeywordCount());
}

}  // namespace
}  // namespace coskq
