#ifndef COSKQ_TESTS_TEST_UTIL_H_
#define COSKQ_TESTS_TEST_UTIL_H_

// Helpers shared by the test suites: small random datasets and queries with
// reproducible seeds.

#include <vector>

#include "data/dataset.h"
#include "data/query.h"
#include "data/query_gen.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace coskq {
namespace test {

/// A small synthetic dataset: `n` objects in the unit square, vocabulary
/// `vocab`, ~`avg_kw` keywords per object, deterministic in `seed`.
inline Dataset MakeRandomDataset(size_t n, size_t vocab, double avg_kw,
                                 uint64_t seed) {
  SyntheticSpec spec;
  spec.num_objects = n;
  spec.vocab_size = vocab;
  spec.avg_keywords_per_object = avg_kw;
  spec.zipf_theta = 0.7;
  spec.cluster_fraction = 0.5;
  spec.num_clusters = 4;
  Rng rng(seed);
  return GenerateSynthetic(spec, &rng);
}

/// A random query with `k` keywords drawn from the frequent band.
inline CoskqQuery MakeRandomQuery(const Dataset& dataset, size_t k,
                                  uint64_t seed) {
  QueryGenerator gen(&dataset);
  Rng rng(seed);
  return gen.Generate(k, &rng);
}

}  // namespace test
}  // namespace coskq

#endif  // COSKQ_TESTS_TEST_UTIL_H_
