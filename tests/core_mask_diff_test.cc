// Differential property suite for the query-mask hot path, over seeds 0-49
// and both cost functions: every solver must produce *bit-identical* answers
// with masks on and off, and the masked index traversals the solvers lean on
// must expand identical node sequences. This is the enforcement mechanism
// behind the "provably identical pruning" claim — any divergence, even a
// tie broken differently, fails loudly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/solvers.h"
#include "geo/circle.h"
#include "index/irtree.h"
#include "index/search_scratch.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Solver registry names under differential test (the brute-force oracle has
// no masked path and is exercised elsewhere).
const char* const kSolverNames[] = {
    "maxsum-exact",      "dia-exact",        "maxsum-appro",
    "dia-appro",         "cao-exact-maxsum", "cao-exact-dia",
    "cao-appro1-maxsum", "cao-appro1-dia",   "cao-appro2-maxsum",
    "cao-appro2-dia",
};

class MaskDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    const uint64_t seed = GetParam();
    dataset_ = test::MakeRandomDataset(150, 25, 3.0, seed + 1);
    tree_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, tree_.get()};
    for (int i = 0; i < 3; ++i) {
      queries_.push_back(test::MakeRandomQuery(dataset_, 3 + i,
                                               seed * 1000 + i));
    }
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
  CoskqContext context_;
  std::vector<CoskqQuery> queries_;
};

TEST_P(MaskDiffTest, EverySolverBitIdenticalWithMasksOnAndOff) {
  SolverOptions masked_options;
  masked_options.use_query_masks = true;
  SolverOptions baseline_options;
  baseline_options.use_query_masks = false;
  for (const char* name : kSolverNames) {
    auto masked = MakeSolver(name, context_, masked_options);
    auto baseline = MakeSolver(name, context_, baseline_options);
    ASSERT_NE(masked, nullptr) << name;
    ASSERT_NE(baseline, nullptr) << name;
    for (size_t i = 0; i < queries_.size(); ++i) {
      SCOPED_TRACE(std::string(name) + " query " + std::to_string(i));
      const CoskqResult want = baseline->Solve(queries_[i]);
      const CoskqResult got = masked->Solve(queries_[i]);
      EXPECT_EQ(got.feasible, want.feasible);
      EXPECT_EQ(got.set, want.set);
      EXPECT_EQ(got.cost, want.cost);  // Bit-identical, no tolerance.
      EXPECT_EQ(got.stats.candidates, want.stats.candidates);
      EXPECT_EQ(got.stats.sets_evaluated, want.stats.sets_evaluated);
      EXPECT_EQ(got.stats.pairs_examined, want.stats.pairs_examined);
      // The baseline path must never touch the distance memo.
      EXPECT_EQ(want.stats.dist_cache_hits, 0u);
      EXPECT_EQ(want.stats.dist_cache_misses, 0u);
    }
  }
}

TEST_P(MaskDiffTest, MaskedSolversActuallyUseTheDistanceMemo) {
  SolverOptions options;
  options.use_query_masks = true;
  uint64_t touches = 0;
  for (const char* name : {"maxsum-exact", "dia-exact", "maxsum-appro"}) {
    auto solver = MakeSolver(name, context_, options);
    for (const CoskqQuery& q : queries_) {
      const CoskqResult r = solver->Solve(q);
      touches += r.stats.dist_cache_hits + r.stats.dist_cache_misses;
    }
  }
  EXPECT_GT(touches, 0u) << "masked solvers never consulted the memo";
}

TEST_P(MaskDiffTest, NnSetVisitSequencesIdenticalToBaseline) {
  SearchScratch scratch;
  for (const CoskqQuery& q : queries_) {
    // The baseline expansion trace: per-keyword KeywordNn logs concatenated
    // in sorted keyword order, exactly how NnSet issues them.
    std::vector<uint32_t> base_log;
    for (TermId t : q.keywords) {
      double d = 0.0;
      tree_->KeywordNn(q.location, t, &d, &base_log);
    }

    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    std::vector<uint32_t> mask_log;
    scratch.set_visit_log(&mask_log);
    TermSet base_missing;
    TermSet mask_missing;
    const std::vector<ObjectId> want =
        tree_->NnSet(q.location, q.keywords, &base_missing);
    const std::vector<ObjectId> got =
        tree_->NnSet(q.location, q.keywords, &mask_missing, &scratch);
    scratch.set_visit_log(nullptr);
    scratch.FinishQuery();

    EXPECT_EQ(got, want);
    EXPECT_EQ(mask_missing, base_missing);
    EXPECT_EQ(mask_log, base_log) << "NnSet expansion order diverged";
  }
}

TEST_P(MaskDiffTest, RangeRelevantVisitSequencesIdenticalToBaseline) {
  SearchScratch scratch;
  Rng rng(GetParam() + 77);
  for (const CoskqQuery& q : queries_) {
    const double radius = 0.1 + 0.4 * rng.UniformDouble();
    const Circle circle(q.location, radius);

    std::vector<ObjectId> base_out;
    std::vector<uint32_t> base_log;
    tree_->RangeRelevant(circle, q.keywords, &base_out, &base_log);

    scratch.BeginQuery(q.location, q.keywords, tree_->node_id_limit(),
                       dataset_.NumObjects());
    std::vector<ObjectId> mask_out;
    std::vector<uint32_t> mask_log;
    scratch.set_visit_log(&mask_log);
    tree_->RangeRelevant(circle, q.keywords, &mask_out, &scratch);
    scratch.set_visit_log(nullptr);
    scratch.FinishQuery();

    EXPECT_EQ(mask_out, base_out);
    EXPECT_EQ(mask_log, base_log) << "RangeRelevant expansion diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskDiffTest, ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace coskq
