#include "util/string_util.h"

#include <gtest/gtest.h>

namespace coskq {
namespace {

TEST(SplitStringTest, Basic) {
  EXPECT_EQ(SplitString("a b c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitStringTest, CollapsesEmptyPieces) {
  EXPECT_EQ(SplitString("  a   b ", ' '),
            (std::vector<std::string>{"a", "b"}));
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", ' ').empty());
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(TrimWhitespace("nochange"), "nochange");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(AsciiToLowerTest, Basic) {
  EXPECT_EQ(AsciiToLower("HeLLo 42!"), "hello 42!");
}

TEST(ParseDoubleTest, Valid) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDoubleTest, RejectsJunk) {
  double v = 0.0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(ParseUint64Test, Valid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
}

TEST(ParseUint64Test, RejectsNegativeAndJunk) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12ab", &v));
  EXPECT_FALSE(ParseUint64("", &v));
}

TEST(FormatWithCommasTest, Basic) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1868821), "1,868,821");
}

}  // namespace
}  // namespace coskq
