#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace coskq {
namespace {

TEST(RunningStatTest, EmptyDefaults) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.stddev(), 0.0);
  EXPECT_EQ(stat.ToString(), "(empty)");
}

TEST(RunningStatTest, SingleValue) {
  RunningStat stat;
  stat.Add(4.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_EQ(stat.mean(), 4.0);
  EXPECT_EQ(stat.min(), 4.0);
  EXPECT_EQ(stat.max(), 4.0);
  EXPECT_EQ(stat.stddev(), 0.0);
}

TEST(RunningStatTest, KnownSequence) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(x);
  }
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_EQ(stat.min(), 2.0);
  EXPECT_EQ(stat.max(), 9.0);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.5 - 3.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 1.0);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 5.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 75.0), 7.5);
}

TEST(PercentileTest, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 50.0), 0.0);
}

}  // namespace
}  // namespace coskq
