// The parallel batch engine, tested the way a concurrent read path earns
// trust:
//  * differential — N-thread output must be bit-identical to sequential
//    output, for exact and approximate solvers alike;
//  * metamorphic — shuffling the batch, splitting it in two, and varying
//    the thread count must leave every per-query result unchanged;
//  * failure handling — unknown solvers are clean errors, infeasible
//    queries cancel the remainder when asked to, per-query deadlines
//    propagate without ever marking an undeadlined solve truncated.
//
// The TSan CI job runs this binary with COSKQ_TEST_THREADS=8 so every
// assertion below doubles as a data-race probe over the shared immutable
// context (Dataset + IR-tree).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/solvers.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Worker counts exercised everywhere: sequential, small, the CI TSan count
// (>= 8), and whatever the hardware reports. COSKQ_TEST_THREADS, when set,
// is added on top so CI can push the count higher without a rebuild.
std::vector<int> ThreadCounts() {
  std::vector<int> counts = {1, 2, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    counts.push_back(static_cast<int>(hw));
  }
  if (const char* env = std::getenv("COSKQ_TEST_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) {
      counts.push_back(n);
    }
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

std::vector<CoskqResult> SolveSequentially(
    const std::string& solver_name, const CoskqContext& context,
    const std::vector<CoskqQuery>& queries) {
  auto solver = MakeSolver(solver_name, context);
  std::vector<CoskqResult> results;
  results.reserve(queries.size());
  for (const CoskqQuery& q : queries) {
    results.push_back(solver->Solve(q));
  }
  return results;
}

// Bit-identical on the answer fields (timings naturally differ).
void ExpectSameAnswers(const std::vector<CoskqResult>& want,
                       const std::vector<CoskqResult>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].feasible, got[i].feasible) << "query " << i;
    EXPECT_EQ(want[i].set, got[i].set) << "query " << i;
    EXPECT_EQ(want[i].cost, got[i].cost) << "query " << i;
  }
}

class BatchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(300, 25, 3.0, 20130622);
    index_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, index_.get()};
    Rng rng(7);
    QueryGenerator gen(&dataset_);
    for (int i = 0; i < 40; ++i) {
      queries_.push_back(gen.Generate(3 + i % 4, &rng));
    }
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  std::vector<CoskqQuery> queries_;
};

TEST_F(BatchEngineTest, UnknownSolverIsACleanError) {
  BatchOptions options;
  options.solver_name = "no-such-solver";
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run(queries_);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(outcome.stats.executed, 0u);
  for (uint8_t e : outcome.executed) {
    EXPECT_EQ(e, 0);
  }
}

// The heart of the suite: for every solver family and every thread count,
// the batch answers are bit-identical to a sequential loop over one solver.
TEST_F(BatchEngineTest, ParallelOutputBitIdenticalToSequential) {
  for (const std::string& solver :
       {std::string("maxsum-appro"), std::string("dia-appro"),
        std::string("maxsum-exact"), std::string("dia-exact"),
        std::string("cao-appro2-maxsum")}) {
    const std::vector<CoskqResult> want =
        SolveSequentially(solver, context_, queries_);
    for (int threads : ThreadCounts()) {
      BatchOptions options;
      options.solver_name = solver;
      options.num_threads = threads;
      BatchEngine engine(context_, options);
      const BatchOutcome outcome = engine.Run(queries_);
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      EXPECT_EQ(outcome.stats.executed, queries_.size());
      EXPECT_EQ(outcome.stats.cancelled, 0u);
      SCOPED_TRACE(solver + " @" + std::to_string(threads) + " threads");
      ExpectSameAnswers(want, outcome.results);
    }
  }
}

TEST_F(BatchEngineTest, ShufflingTheBatchPermutesTheResults) {
  BatchOptions options;
  options.solver_name = "maxsum-appro";
  options.num_threads = 4;
  BatchEngine engine(context_, options);
  const BatchOutcome base = engine.Run(queries_);
  ASSERT_TRUE(base.status.ok());

  std::vector<size_t> perm(queries_.size());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(99);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.UniformUint64(i)]);
  }
  std::vector<CoskqQuery> shuffled;
  shuffled.reserve(perm.size());
  for (size_t i : perm) {
    shuffled.push_back(queries_[i]);
  }
  const BatchOutcome got = engine.Run(shuffled);
  ASSERT_TRUE(got.status.ok());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(got.results[i].feasible, base.results[perm[i]].feasible);
    EXPECT_EQ(got.results[i].set, base.results[perm[i]].set);
    EXPECT_EQ(got.results[i].cost, base.results[perm[i]].cost);
  }
}

TEST_F(BatchEngineTest, SplittingTheBatchChangesNothing) {
  BatchOptions options;
  options.solver_name = "dia-appro";
  options.num_threads = 3;
  BatchEngine engine(context_, options);
  const BatchOutcome whole = engine.Run(queries_);
  ASSERT_TRUE(whole.status.ok());

  const size_t half = queries_.size() / 2;
  const std::vector<CoskqQuery> first(queries_.begin(),
                                      queries_.begin() + half);
  const std::vector<CoskqQuery> second(queries_.begin() + half,
                                       queries_.end());
  const BatchOutcome a = engine.Run(first);
  const BatchOutcome b = engine.Run(second);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  std::vector<CoskqResult> stitched = a.results;
  stitched.insert(stitched.end(), b.results.begin(), b.results.end());
  ExpectSameAnswers(whole.results, stitched);
}

TEST_F(BatchEngineTest, RepeatedRunsAreDeterministic) {
  BatchOptions options;
  options.solver_name = "maxsum-exact";
  options.num_threads = 8;
  BatchEngine engine(context_, options);
  const BatchOutcome a = engine.Run(queries_);
  const BatchOutcome b = engine.Run(queries_);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  ExpectSameAnswers(a.results, b.results);
  // Work counters are summed in input order after the join, so they are
  // exactly reproducible as well.
  EXPECT_EQ(a.stats.candidates, b.stats.candidates);
  EXPECT_EQ(a.stats.pairs_examined, b.stats.pairs_examined);
  EXPECT_EQ(a.stats.sets_evaluated, b.stats.sets_evaluated);
  EXPECT_EQ(a.stats.infeasible, b.stats.infeasible);
}

TEST_F(BatchEngineTest, NoDeadlineMeansNoTruncation) {
  BatchOptions options;
  options.solver_name = "maxsum-exact";
  options.num_threads = 4;
  options.deadline_ms = 0.0;
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run(queries_);
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.stats.truncated, 0u);
  for (const CoskqResult& r : outcome.results) {
    EXPECT_FALSE(r.stats.truncated);
  }
}

// A (near-)zero deadline propagated to a deadline-aware exact solver must
// still produce feasible answers — the solver returns its incumbent — and
// the aggregate truncation count must match the per-result flags.
TEST_F(BatchEngineTest, TinyDeadlineStillYieldsFeasibleIncumbents) {
  BatchOptions options;
  options.solver_name = "dia-exact";
  options.num_threads = 4;
  options.deadline_ms = 1e-9;
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run(queries_);
  ASSERT_TRUE(outcome.status.ok());
  size_t truncated = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    const CoskqResult& r = outcome.results[i];
    if (r.stats.truncated) {
      ++truncated;
    }
    if (r.feasible) {
      EXPECT_TRUE(SetCoversKeywords(dataset_, queries_[i].keywords, r.set));
    }
  }
  EXPECT_EQ(outcome.stats.truncated, truncated);
}

TEST_F(BatchEngineTest, RatioSummaryMatchesManualComputation) {
  const std::vector<CoskqResult> exact =
      SolveSequentially("maxsum-exact", context_, queries_);
  std::vector<double> reference;
  reference.reserve(exact.size());
  for (const CoskqResult& r : exact) {
    reference.push_back(r.cost);
  }
  BatchOptions options;
  options.solver_name = "maxsum-appro";
  options.num_threads = 4;
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run(queries_, &reference);
  ASSERT_TRUE(outcome.status.ok());

  RunningStat want;
  size_t optimal = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (!outcome.results[i].feasible || !std::isfinite(reference[i]) ||
        reference[i] <= 0.0) {
      continue;
    }
    const double ratio = outcome.results[i].cost / reference[i];
    want.Add(ratio);
    if (ratio <= 1.0 + 1e-9) {
      ++optimal;
    }
  }
  EXPECT_EQ(outcome.stats.ratio.count(), want.count());
  EXPECT_DOUBLE_EQ(outcome.stats.ratio.mean(), want.mean());
  EXPECT_DOUBLE_EQ(outcome.stats.ratio.max(), want.max());
  EXPECT_EQ(outcome.stats.optimal_count, optimal);
  // Every ratio honors the paper's proven bound.
  EXPECT_LE(outcome.stats.ratio.max(),
            ApproRatioBound(CostType::kMaxSum) + 1e-9);
}

TEST_F(BatchEngineTest, CancelOnInfeasibleStopsTheBatch) {
  // Plant an infeasible query (ghost keyword) in the middle of the batch.
  Dataset ds = dataset_.Clone();
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost-keyword");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  std::vector<CoskqQuery> queries = queries_;
  const size_t bad = queries.size() / 2;
  queries[bad].keywords = {ghost};

  BatchOptions options;
  options.solver_name = "maxsum-appro";
  options.cancel_on_infeasible = true;
  options.num_threads = 1;
  BatchEngine engine(ctx, options);
  const BatchOutcome outcome = engine.Run(queries);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_NE(outcome.status.message().find(std::to_string(bad)),
            std::string::npos)
      << outcome.status.ToString();
  // Single-threaded, the executed set is exactly the prefix through the
  // offending query; everything after was cancelled before starting.
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(outcome.executed[i], i <= bad ? 1 : 0) << "query " << i;
  }
  EXPECT_EQ(outcome.stats.cancelled, queries.size() - bad - 1);

  // Concurrently the exact cut point is scheduling-dependent, but the batch
  // must still report the error, and every result that did execute must be
  // identical to its sequential counterpart.
  options.num_threads = 8;
  BatchEngine parallel(ctx, options);
  const BatchOutcome outcome8 = parallel.Run(queries);
  EXPECT_FALSE(outcome8.status.ok());
  const std::vector<CoskqResult> sequential =
      SolveSequentially("maxsum-appro", ctx, queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (outcome8.executed[i] == 0) {
      continue;
    }
    EXPECT_EQ(outcome8.results[i].set, sequential[i].set) << "query " << i;
    EXPECT_EQ(outcome8.results[i].cost, sequential[i].cost) << "query " << i;
  }
}

TEST_F(BatchEngineTest, ResolvedThreadsHonorsExplicitCountAndDefault) {
  BatchOptions options;
  options.num_threads = 5;
  EXPECT_EQ(BatchEngine(context_, options).ResolvedThreads(), 5);
  options.num_threads = 0;
  EXPECT_GE(BatchEngine(context_, options).ResolvedThreads(), 1);
}

// Masks off must reproduce the masked batch bit-for-bit — the engine-level
// face of the differential suite in core_mask_diff_test.
TEST_F(BatchEngineTest, MasksOnAndOffProduceIdenticalBatches) {
  for (const std::string& solver :
       {std::string("maxsum-exact"), std::string("dia-appro"),
        std::string("cao-appro2-maxsum")}) {
    BatchOptions masked;
    masked.solver_name = solver;
    masked.num_threads = 4;
    masked.use_query_masks = true;
    BatchOptions baseline = masked;
    baseline.use_query_masks = false;
    const BatchOutcome want = BatchEngine(context_, baseline).Run(queries_);
    const BatchOutcome got = BatchEngine(context_, masked).Run(queries_);
    ASSERT_TRUE(want.status.ok());
    ASSERT_TRUE(got.status.ok());
    SCOPED_TRACE(solver);
    ExpectSameAnswers(want.results, got.results);
    // The baseline path must never touch the distance memo.
    EXPECT_EQ(want.stats.dist_cache_hits, 0u);
    EXPECT_EQ(want.stats.dist_cache_misses, 0u);
  }
}

// The zero-steady-state-allocation property: each worker's solver pools its
// scratch across the batch, so once the first half of a doubled batch has
// pushed every buffer to its high-water mark, the identical second half must
// not allocate at all.
TEST_F(BatchEngineTest, WarmScratchStopsReallocating) {
  std::vector<CoskqQuery> doubled = queries_;
  doubled.insert(doubled.end(), queries_.begin(), queries_.end());
  for (const std::string& solver :
       {std::string("maxsum-appro"), std::string("maxsum-exact")}) {
    BatchOptions options;
    options.solver_name = solver;
    options.num_threads = 1;  // One worker => one solver sees every query.
    BatchEngine engine(context_, options);
    const BatchOutcome outcome = engine.Run(doubled);
    ASSERT_TRUE(outcome.status.ok());
    uint64_t second_half = 0;
    for (size_t i = queries_.size(); i < doubled.size(); ++i) {
      second_half += outcome.results[i].stats.scratch_reallocs;
    }
    EXPECT_EQ(second_half, 0u)
        << solver << ": warm scratch still allocating";
  }
}

TEST_F(BatchEngineTest, CacheCountersAggregateAcrossTheBatch) {
  BatchOptions options;
  options.solver_name = "maxsum-exact";
  options.num_threads = 4;
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run(queries_);
  ASSERT_TRUE(outcome.status.ok());
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t reallocs = 0;
  for (const CoskqResult& r : outcome.results) {
    hits += r.stats.dist_cache_hits;
    misses += r.stats.dist_cache_misses;
    reallocs += r.stats.scratch_reallocs;
  }
  EXPECT_EQ(outcome.stats.dist_cache_hits, hits);
  EXPECT_EQ(outcome.stats.dist_cache_misses, misses);
  EXPECT_EQ(outcome.stats.scratch_reallocs, reallocs);
  // The exact solver revisits distances heavily; the memo must be earning
  // its keep on this workload, and the counters must reach ToString.
  EXPECT_GT(hits, 0u);
  EXPECT_NE(outcome.stats.ToString().find("cache{"), std::string::npos);
}

// Options now arrive over the wire from untrusted clients; each bad shape
// must be a clean InvalidArgument with nothing executed, not UB.
TEST_F(BatchEngineTest, InvalidOptionsAreRejectedAtRunEntry) {
  struct Case {
    const char* name;
    BatchOptions options;
  };
  std::vector<Case> cases;
  cases.push_back({"negative threads", {}});
  cases.back().options.num_threads = -1;
  cases.push_back({"absurd threads", {}});
  cases.back().options.num_threads = kMaxBatchThreads + 1;
  cases.push_back({"negative deadline", {}});
  cases.back().options.deadline_ms = -1.0;
  cases.push_back({"nan deadline", {}});
  cases.back().options.deadline_ms = std::nan("");

  for (const Case& c : cases) {
    BatchEngine engine(context_, c.options);
    const BatchOutcome outcome = engine.Run(queries_);
    EXPECT_FALSE(outcome.status.ok()) << c.name;
    EXPECT_EQ(outcome.status.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_EQ(outcome.stats.executed, 0u) << c.name;
    for (uint8_t e : outcome.executed) {
      EXPECT_EQ(e, 0) << c.name;
    }
  }

  // The cap itself is fine; just below it must not be rejected for shape.
  BatchOptions at_cap;
  at_cap.num_threads = kMaxBatchThreads;
  EXPECT_TRUE(BatchEngine(context_, at_cap).Run({}).status.ok());
}

TEST_F(BatchEngineTest, EmptyBatchIsANoOp) {
  BatchOptions options;
  options.solver_name = "maxsum-appro";
  BatchEngine engine(context_, options);
  const BatchOutcome outcome = engine.Run({});
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.stats.executed, 0u);
  EXPECT_TRUE(outcome.results.empty());
  EXPECT_EQ(outcome.stats.QueriesPerSecond(), 0.0);
}

}  // namespace
}  // namespace coskq
