#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace coskq {
namespace {

TEST(VocabularyTest, InternAndLookup) {
  Vocabulary vocab;
  const TermId a = vocab.GetOrAdd("cafe");
  const TermId b = vocab.GetOrAdd("museum");
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.GetOrAdd("cafe"), a);
  EXPECT_EQ(vocab.Find("cafe"), a);
  EXPECT_EQ(vocab.Find("missing"), Vocabulary::kInvalidTermId);
  EXPECT_EQ(vocab.TermString(a), "cafe");
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(DatasetTest, AddObjectTracksStatistics) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"cafe", "wifi"});
  ds.AddObject(Point{2, 3}, {"cafe"});
  EXPECT_EQ(ds.NumObjects(), 2u);
  EXPECT_EQ(ds.TotalKeywordCount(), 3u);
  EXPECT_DOUBLE_EQ(ds.AverageKeywordsPerObject(), 1.5);
  EXPECT_EQ(ds.TermFrequency(ds.vocabulary().Find("cafe")), 2u);
  EXPECT_EQ(ds.TermFrequency(ds.vocabulary().Find("wifi")), 1u);
  EXPECT_EQ(ds.mbr(), Rect(0, 0, 2, 3));
}

TEST(DatasetTest, DuplicateKeywordsDeduplicated) {
  Dataset ds;
  const ObjectId id = ds.AddObject(Point{0, 0}, {"a", "a", "b"});
  EXPECT_EQ(ds.object(id).keywords.size(), 2u);
  EXPECT_EQ(ds.TotalKeywordCount(), 2u);
}

TEST(DatasetTest, TermsByFrequencyDesc) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"rare", "common"});
  ds.AddObject(Point{1, 0}, {"common"});
  ds.AddObject(Point{2, 0}, {"common", "mid"});
  ds.AddObject(Point{3, 0}, {"mid"});
  const auto ranked = ds.TermsByFrequencyDesc();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ds.vocabulary().TermString(ranked[0]), "common");
  EXPECT_EQ(ds.vocabulary().TermString(ranked[1]), "mid");
  EXPECT_EQ(ds.vocabulary().TermString(ranked[2]), "rare");
}

TEST(DatasetTest, ReplaceKeywordsUpdatesStats) {
  Dataset ds;
  const ObjectId id = ds.AddObject(Point{0, 0}, {"a", "b"});
  const TermId c = ds.mutable_vocabulary().GetOrAdd("c");
  ds.ReplaceKeywords(id, TermSet{c});
  EXPECT_EQ(ds.TotalKeywordCount(), 1u);
  EXPECT_EQ(ds.TermFrequency(ds.vocabulary().Find("a")), 0u);
  EXPECT_EQ(ds.TermFrequency(c), 1u);
}

TEST(DatasetTest, ParseFromString) {
  const std::string text =
      "# comment line\n"
      "0.5 0.25 cafe wifi\n"
      "\n"
      "1.0 2.0 museum\n";
  auto ds = Dataset::ParseFromString(text);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->NumObjects(), 2u);
  EXPECT_EQ(ds->object(0).location, (Point{0.5, 0.25}));
  EXPECT_EQ(ds->object(1).keywords.size(), 1u);
}

TEST(DatasetTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Dataset::ParseFromString("justoneword\n").ok());
  EXPECT_FALSE(Dataset::ParseFromString("abc def cafe\n").ok());
  EXPECT_EQ(Dataset::ParseFromString("1.0\n").status().code(),
            StatusCode::kCorruption);
}

// strtod accepts "nan"/"inf" spellings, so the loader must reject them
// explicitly — a non-finite coordinate would poison every distance.
TEST(DatasetTest, ParseRejectsNonFiniteCoordinates) {
  for (const char* line : {"nan 1.0 cafe\n", "1.0 inf cafe\n",
                           "-inf 0.0 cafe\n", "0.0 NaN cafe\n"}) {
    auto result = Dataset::ParseFromString(line);
    ASSERT_FALSE(result.ok()) << line;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption) << line;
    EXPECT_NE(result.status().ToString().find("non-finite"),
              std::string::npos)
        << line;
  }
}

// Regression: a malformed row in a file must be reported with the file name
// and the 1-based line number of the offending row (comments and blank
// lines count toward the numbering; they are how the file is edited).
TEST(DatasetTest, LoadReportsFileAndLineOfCorruptRow) {
  const std::string path = ::testing::TempDir() + "/coskq_corrupt.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header comment\n", f);
    std::fputs("0.5 0.25 cafe wifi\n", f);
    std::fputs("\n", f);
    std::fputs("3.5 oops museum\n", f);  // Line 4: malformed y.
    std::fclose(f);
  }
  auto result = Dataset::LoadFromFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find(path), std::string::npos) << message;
  EXPECT_NE(message.find(":4"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(DatasetTest, ObjectWithNoKeywordsAllowed) {
  auto ds = Dataset::ParseFromString("1.0 2.0\n");
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->object(0).keywords.empty());
}

TEST(DatasetTest, SaveLoadRoundTrip) {
  Dataset ds;
  ds.AddObject(Point{0.125, 0.25}, {"cafe", "wifi"});
  ds.AddObject(Point{3.5, -1.75}, {"museum"});
  const std::string path = ::testing::TempDir() + "/coskq_roundtrip.txt";
  ASSERT_TRUE(ds.SaveToFile(path).ok());
  auto loaded = Dataset::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->NumObjects(), 2u);
  EXPECT_EQ(loaded->object(0).location, ds.object(0).location);
  EXPECT_EQ(loaded->object(1).location, ds.object(1).location);
  EXPECT_EQ(loaded->TotalKeywordCount(), ds.TotalKeywordCount());
  std::remove(path.c_str());
}

TEST(DatasetTest, LoadMissingFileFails) {
  auto result = Dataset::LoadFromFile("/nonexistent/coskq.txt");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DatasetTest, CloneIsDeepAndIndependent) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a"});
  Dataset copy = ds.Clone();
  copy.AddObject(Point{1, 1}, {"b"});
  EXPECT_EQ(ds.NumObjects(), 1u);
  EXPECT_EQ(copy.NumObjects(), 2u);
}

}  // namespace
}  // namespace coskq
