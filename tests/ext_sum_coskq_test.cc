#include "ext/sum_coskq.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Reference: exhaustive Sum-optimal cover over all relevant objects.
double BruteSumOptimal(const Dataset& ds, const CoskqQuery& q) {
  std::vector<std::vector<ObjectId>> lists(q.keywords.size());
  for (const SpatialObject& obj : ds.objects()) {
    for (size_t k = 0; k < q.keywords.size(); ++k) {
      if (obj.ContainsTerm(q.keywords[k])) {
        lists[k].push_back(obj.id);
      }
    }
  }
  for (const auto& list : lists) {
    if (list.empty()) {
      return std::numeric_limits<double>::infinity();
    }
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<ObjectId> chosen;
  // DFS over keywords; cost counts distinct chosen objects once.
  struct Rec {
    const Dataset& ds;
    const CoskqQuery& q;
    const std::vector<std::vector<ObjectId>>& lists;
    double& best;
    std::vector<ObjectId>& chosen;

    double CostOf() const {
      std::vector<ObjectId> dedup = chosen;
      std::sort(dedup.begin(), dedup.end());
      dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
      double sum = 0.0;
      for (ObjectId id : dedup) {
        sum += Distance(q.location, ds.object(id).location);
      }
      return sum;
    }

    void Go(const TermSet& uncovered) {
      if (CostOf() >= best) {
        return;
      }
      if (uncovered.empty()) {
        best = CostOf();
        return;
      }
      size_t slot = q.keywords.size();
      for (size_t k = 0; k < q.keywords.size(); ++k) {
        if (TermSetContains(uncovered, q.keywords[k]) &&
            (slot == q.keywords.size() ||
             lists[k].size() < lists[slot].size())) {
          slot = k;
        }
      }
      for (ObjectId id : lists[slot]) {
        chosen.push_back(id);
        Go(TermSetDifference(uncovered, ds.object(id).keywords));
        chosen.pop_back();
      }
    }
  };
  Rec rec{ds, q, lists, best, chosen};
  rec.Go(q.keywords);
  return best;
}

double HarmonicNumber(size_t n) {
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    h += 1.0 / static_cast<double>(i);
  }
  return h;
}

class SumCoskqTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SumCoskqTest, ExactMatchesBruteForceAndGreedyWithinHarmonicBound) {
  Dataset ds = test::MakeRandomDataset(120, 20, 3.0, GetParam());
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  SumExact exact(ctx);
  SumGreedy greedy(ctx);
  for (int trial = 0; trial < 8; ++trial) {
    const CoskqQuery q =
        test::MakeRandomQuery(ds, 4, GetParam() * 31 + trial);
    const double opt = BruteSumOptimal(ds, q);
    const CoskqResult got = exact.Solve(q);
    const CoskqResult approx = greedy.Solve(q);
    ASSERT_TRUE(got.feasible);
    EXPECT_NEAR(got.cost, opt, 1e-9);
    ASSERT_TRUE(approx.feasible);
    EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, approx.set));
    EXPECT_GE(approx.cost, opt - 1e-12);
    EXPECT_LE(approx.cost,
              HarmonicNumber(q.keywords.size()) * opt + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SumCoskqTest,
                         ::testing::Values(201, 202, 203, 204, 205));

TEST(SumCoskqTest, InfeasibleAndEmptyQueries) {
  Dataset ds = test::MakeRandomDataset(50, 10, 3.0, 211);
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  SumExact exact(ctx);
  SumGreedy greedy(ctx);
  CoskqQuery empty;
  empty.location = Point{0.5, 0.5};
  EXPECT_TRUE(exact.Solve(empty).feasible);
  EXPECT_EQ(exact.Solve(empty).cost, 0.0);
  CoskqQuery impossible;
  impossible.location = Point{0.5, 0.5};
  impossible.keywords = {ghost};
  EXPECT_FALSE(exact.Solve(impossible).feasible);
  EXPECT_FALSE(greedy.Solve(impossible).feasible);
}

TEST(SumCoskqTest, SingleKeywordIsNearestNeighbor) {
  Dataset ds = test::MakeRandomDataset(200, 15, 3.0, 212);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  SumExact exact(ctx);
  Rng rng(213);
  for (int trial = 0; trial < 10; ++trial) {
    const TermId t = static_cast<TermId>(rng.UniformUint64(15));
    CoskqQuery q;
    q.location = Point{rng.UniformDouble(), rng.UniformDouble()};
    q.keywords = {t};
    double nn_dist = 0.0;
    if (tree.KeywordNn(q.location, t, &nn_dist) == kInvalidObjectId) {
      continue;
    }
    EXPECT_DOUBLE_EQ(exact.Solve(q).cost, nn_dist);
  }
}

TEST(SumCoskqTest, SumCostEvaluator) {
  Dataset ds;
  ds.AddObject(Point{3, 4}, {"a"});
  ds.AddObject(Point{0, 1}, {"b"});
  EXPECT_DOUBLE_EQ(EvaluateSumCost(ds, Point{0, 0}, {0, 1}), 6.0);
  EXPECT_DOUBLE_EQ(EvaluateSumCost(ds, Point{0, 0}, {}), 0.0);
}

}  // namespace
}  // namespace coskq
