// Race coverage for the background refreeze (DESIGN.md §13), written to run
// under ThreadSanitizer (the CI TSan job executes this binary explicitly):
// a writer thread applies a stream of inserts/removes and keeps kicking
// RefreezeAsync() while a saturating batch of query threads hammers every
// merged query path through the BatchEngine. In-flight queries must finish
// on the view they pinned — no torn reads, no lock-order inversions — and
// once the writer stops, the tree must agree with a from-scratch freeze over
// the surviving live set.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "engine/batch_engine.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

constexpr size_t kNumObjects = 400;
constexpr size_t kBaseObjects = 300;
constexpr size_t kVocab = 30;

TEST(RefreezeRaceTest, QueriesRaceMutationsAndBackgroundRefreezes) {
  Dataset dataset = test::MakeRandomDataset(kNumObjects, kVocab, 3.0, 11);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < kBaseObjects; ++id) {
    base.push_back(id);
  }
  IrTree tree(&dataset, IrTree::Options(), base);
  tree.Freeze();
  ASSERT_TRUE(tree.frozen());
  const CoskqContext context{&dataset, &tree};

  std::vector<CoskqQuery> queries;
  for (int i = 0; i < 24; ++i) {
    queries.push_back(test::MakeRandomQuery(dataset, 3 + i % 3, 500 + i));
  }

  std::atomic<bool> stop{false};
  std::set<ObjectId> live(base.begin(), base.end());

  // Writer: random delta mutations with a refreeze kicked every few ops, so
  // swaps overlap the query storm instead of happening between batches.
  std::thread writer([&] {
    Rng rng(97);
    int ops = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<ObjectId> dead;
      for (ObjectId id = 0; id < kNumObjects; ++id) {
        if (live.count(id) == 0) {
          dead.push_back(id);
        }
      }
      const bool do_insert =
          live.empty() ||
          (!dead.empty() && rng.UniformDouble(0.0, 1.0) < 0.5);
      if (do_insert) {
        const ObjectId id =
            dead[static_cast<size_t>(rng.UniformUint64(dead.size()))];
        ASSERT_TRUE(tree.Insert(id).ok());
        live.insert(id);
      } else {
        std::vector<ObjectId> alive(live.begin(), live.end());
        const ObjectId id =
            alive[static_cast<size_t>(rng.UniformUint64(alive.size()))];
        ASSERT_TRUE(tree.Remove(id).ok());
        live.erase(id);
      }
      if (++ops % 5 == 0) {
        tree.RefreezeAsync();
      }
    }
  });

  // Readers: saturating solver batches through the BatchEngine (each query
  // runs under its own pinned ReadGuard view).
  BatchOptions options;
  options.solver_name = "maxsum-appro";
  options.num_threads = 8;
  const BatchEngine engine(context, options);
  uint64_t executed = 0;
  for (int round = 0; round < 12; ++round) {
    const BatchOutcome outcome = engine.Run(queries);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    executed += outcome.stats.executed;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  tree.WaitForRefreeze();
  EXPECT_EQ(executed, 12u * queries.size());
  EXPECT_GT(tree.mutations_applied(), 0u);

  // Post-join: the tree agrees with a from-scratch freeze over the live set
  // the writer left behind, and a final fold drains the delta.
  tree.CheckInvariants();
  ASSERT_EQ(tree.size(), live.size());
  ASSERT_TRUE(tree.Refreeze().ok());
  EXPECT_EQ(tree.delta_size(), 0u);

  const std::vector<ObjectId> live_ids(live.begin(), live.end());
  IrTree ref(&dataset, IrTree::Options(), live_ids);
  ref.Freeze();
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    for (TermId t = 0; t < kVocab; ++t) {
      double want_d = 0.0;
      double got_d = 0.0;
      const ObjectId want = ref.KeywordNn(p, t, &want_d);
      const ObjectId got = tree.KeywordNn(p, t, &got_d);
      ASSERT_EQ(got, want);
      if (want != kInvalidObjectId) {
        ASSERT_EQ(got_d, want_d);
      }
    }
  }
}

TEST(RefreezeRaceTest, StreamsPinTheirViewAcrossASwap) {
  // A RelevantStream opened before a refreeze must drain its pinned view
  // even when mutations and a swap land mid-drain.
  Dataset dataset = test::MakeRandomDataset(200, 20, 3.0, 23);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < 150; ++id) {
    base.push_back(id);
  }
  IrTree tree(&dataset, IrTree::Options(), base);
  tree.Freeze();
  const CoskqQuery q = test::MakeRandomQuery(dataset, 3, 91);

  // Reference drain of the pre-mutation view.
  std::vector<std::pair<ObjectId, double>> want;
  {
    IrTree::RelevantStream stream(&tree, q.location, q.keywords);
    while (auto next = stream.Next()) {
      want.push_back(*next);
    }
  }

  std::vector<std::pair<ObjectId, double>> got;
  {
    // The stream's guard holds the swap shared: it must be destroyed before
    // WaitForRefreeze below, or the swap (unique) could never be granted.
    IrTree::RelevantStream stream(&tree, q.location, q.keywords);
    for (int i = 0; i < 5; ++i) {
      if (auto next = stream.Next()) {
        got.push_back(*next);
      }
    }
    // Mutate + refreeze concurrently with the half-drained stream. The swap
    // must wait for (or overlap safely with) the stream's guard; either way
    // the stream's remaining output is the old view's.
    std::thread mutator([&] {
      ASSERT_TRUE(tree.Insert(170).ok());
      ASSERT_TRUE(tree.Remove(3).ok());
      tree.RefreezeAsync();
    });
    while (auto next = stream.Next()) {
      got.push_back(*next);
    }
    mutator.join();
  }
  tree.WaitForRefreeze();
  EXPECT_EQ(got, want);

  // A stream opened after the swap sees the new logical set.
  std::set<ObjectId> new_view;
  {
    IrTree::RelevantStream after(&tree, q.location, q.keywords);
    while (auto next = after.Next()) {
      new_view.insert(next->first);
    }
  }
  EXPECT_EQ(new_view.count(3), 0u);
  tree.CheckInvariants();
}

}  // namespace
}  // namespace coskq
