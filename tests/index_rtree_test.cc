#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "geo/circle.h"
#include "util/random.h"

namespace coskq {
namespace {

std::vector<RTree::Item> RandomItems(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Item> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    items.push_back(RTree::Item{
        static_cast<ObjectId>(i),
        Point{rng.UniformDouble(), rng.UniformDouble()}});
  }
  return items;
}

std::vector<ObjectId> BruteRange(const std::vector<RTree::Item>& items,
                                 const Rect& rect) {
  std::vector<ObjectId> out;
  for (const auto& item : items) {
    if (rect.Contains(item.point)) {
      out.push_back(item.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0);
  std::vector<ObjectId> out;
  tree.Search(Rect(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
  double d = 0.0;
  EXPECT_EQ(tree.NearestNeighbor(Point{0, 0}, &d), kInvalidObjectId);
}

TEST(RTreeTest, SingleInsertAndSearch) {
  RTree tree;
  tree.Insert(7, Point{0.5, 0.5});
  EXPECT_EQ(tree.size(), 1u);
  std::vector<ObjectId> out;
  tree.Search(Rect(0, 0, 1, 1), &out);
  EXPECT_EQ(out, std::vector<ObjectId>{7});
  out.clear();
  tree.Search(Rect(0.6, 0.6, 1, 1), &out);
  EXPECT_TRUE(out.empty());
  tree.CheckInvariants();
}

TEST(RTreeTest, InsertManyMaintainsInvariants) {
  RTree tree;
  auto items = RandomItems(500, 42);
  for (const auto& item : items) {
    tree.Insert(item.id, item.point);
  }
  EXPECT_EQ(tree.size(), 500u);
  tree.CheckInvariants();
  EXPECT_GT(tree.Height(), 1);
}

TEST(RTreeTest, BulkLoadMaintainsInvariants) {
  RTree tree;
  tree.BulkLoad(RandomItems(1000, 43));
  EXPECT_EQ(tree.size(), 1000u);
  tree.CheckInvariants();
}

TEST(RTreeTest, BulkLoadEmptyAndSmall) {
  RTree tree;
  tree.BulkLoad({});
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
  tree.BulkLoad(RandomItems(3, 44));
  EXPECT_EQ(tree.size(), 3u);
  tree.CheckInvariants();
}

class RTreeRangeTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, bool>> {};

TEST_P(RTreeRangeTest, MatchesBruteForce) {
  const auto [n, seed, bulk] = GetParam();
  auto items = RandomItems(n, seed);
  RTree tree;
  if (bulk) {
    tree.BulkLoad(items);
  } else {
    for (const auto& item : items) {
      tree.Insert(item.id, item.point);
    }
  }
  tree.CheckInvariants();
  Rng rng(seed + 1);
  for (int trial = 0; trial < 25; ++trial) {
    const double x1 = rng.UniformDouble();
    const double x2 = rng.UniformDouble();
    const double y1 = rng.UniformDouble();
    const double y2 = rng.UniformDouble();
    Rect rect(std::min(x1, x2), std::min(y1, y2), std::max(x1, x2),
              std::max(y1, y2));
    std::vector<ObjectId> got;
    tree.Search(rect, &got);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, BruteRange(items, rect));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeRangeTest,
    ::testing::Combine(::testing::Values<size_t>(10, 100, 700),
                       ::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Bool()));

TEST(RTreeTest, CircleSearchMatchesBruteForce) {
  auto items = RandomItems(400, 45);
  RTree tree;
  tree.BulkLoad(items);
  Rng rng(46);
  for (int trial = 0; trial < 20; ++trial) {
    Circle circle(Point{rng.UniformDouble(), rng.UniformDouble()},
                  rng.UniformDouble(0.01, 0.4));
    std::vector<ObjectId> got;
    tree.Search(circle, &got);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> want;
    for (const auto& item : items) {
      if (circle.Contains(item.point)) {
        want.push_back(item.id);
      }
    }
    EXPECT_EQ(got, want);
  }
}

class RTreeKnnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeKnnTest, MatchesBruteForceOrder) {
  auto items = RandomItems(300, GetParam());
  RTree tree;
  tree.BulkLoad(items);
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 10; ++trial) {
    Point q{rng.UniformDouble(), rng.UniformDouble()};
    const size_t k = 1 + rng.UniformUint64(20);
    auto got = tree.KNearest(q, k);
    ASSERT_EQ(got.size(), std::min(k, items.size()));
    // Distances are ascending.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].second, got[i].second);
    }
    // The k-th distance matches the brute-force k-th smallest.
    std::vector<double> dists;
    for (const auto& item : items) {
      dists.push_back(Distance(q, item.point));
    }
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(got[i].second, dists[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeKnnTest, ::testing::Values(7, 8, 9));

TEST(RTreeTest, DeleteRemovesAndPreservesInvariants) {
  auto items = RandomItems(200, 50);
  RTree tree;
  for (const auto& item : items) {
    tree.Insert(item.id, item.point);
  }
  Rng rng(51);
  std::vector<RTree::Item> remaining = items;
  for (int round = 0; round < 150; ++round) {
    const size_t pick = rng.UniformUint64(remaining.size());
    const RTree::Item victim = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(pick));
    ASSERT_TRUE(tree.Delete(victim.id, victim.point));
    EXPECT_EQ(tree.size(), remaining.size());
    if (round % 25 == 0) {
      tree.CheckInvariants();
      std::vector<ObjectId> got;
      tree.Search(Rect(0, 0, 1, 1), &got);
      EXPECT_EQ(got.size(), remaining.size());
    }
  }
  tree.CheckInvariants();
}

TEST(RTreeTest, DeleteMissingReturnsFalse) {
  RTree tree;
  tree.Insert(1, Point{0.1, 0.1});
  EXPECT_FALSE(tree.Delete(2, Point{0.1, 0.1}));
  EXPECT_FALSE(tree.Delete(1, Point{0.2, 0.2}));
  EXPECT_TRUE(tree.Delete(1, Point{0.1, 0.1}));
  EXPECT_TRUE(tree.empty());
}

TEST(RTreeTest, DuplicatePointsSupported) {
  RTree tree;
  for (ObjectId id = 0; id < 100; ++id) {
    tree.Insert(id, Point{0.5, 0.5});
  }
  tree.CheckInvariants();
  std::vector<ObjectId> got;
  tree.Search(Rect(0.5, 0.5, 0.5, 0.5), &got);
  EXPECT_EQ(got.size(), 100u);
}

TEST(RTreeTest, VisitEarlyStop) {
  RTree tree;
  tree.BulkLoad(RandomItems(100, 52));
  int visited = 0;
  tree.Visit(Rect(0, 0, 1, 1), [&visited](ObjectId, const Point&) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

}  // namespace
}  // namespace coskq
