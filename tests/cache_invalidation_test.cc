// Loopback tests for the sharded result cache (protocol v6, DESIGN.md §16):
// a real CoskqServer with the cache AND live mutations enabled, driven
// through CoskqClient.
//
//  * unit — ResultCache hit/miss/stale/evict mechanics without a server:
//    exact-coordinate hit guard, stamp-mismatch invalidation, byte-budget
//    eviction, snapshot counters;
//  * freshness — a QUERY issued after a MUTATE ack can never be answered
//    from a cache entry solved before that mutation: 50 seeded
//    query/mutate interleavings, zero stale reads tolerated;
//  * storm — COSKQ_TEST_THREADS lanes hammer disjoint points with
//    insert/probe/remove/probe loops over a cache that is concurrently
//    filling, hitting, invalidating, and being refrozen underneath (the
//    TSan CI job runs this variant with 8 lanes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "index/irtree.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

int TestThreads() {
  const char* env = std::getenv("COSKQ_TEST_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0 && n <= 64) {
      return n;
    }
  }
  return 4;
}

ResultCacheKey MakeKey(double x, double y, std::vector<uint32_t> keywords,
                       int cell_bits) {
  ResultCacheKey key;
  key.cell = ResultCache::CellOf(x, y, cell_bits);
  key.keywords = std::move(keywords);
  key.solver = 0;
  key.cost_type = 0;
  key.x = x;
  key.y = y;
  return key;
}

TEST(ResultCacheUnitTest, HitStaleCoordGuardAndSnapshot) {
  ResultCache::Options options;
  options.budget_bytes = 1 << 20;
  ResultCache cache(options);

  const ResultCacheKey key = MakeKey(0.25, 0.75, {3, 7, 9}, 12);
  CachedAnswer answer;
  answer.outcome = static_cast<uint8_t>(QueryOutcome::kExecuted);
  answer.cost = 0.125;
  answer.set = {1, 2, 3};

  CachedAnswer out;
  EXPECT_FALSE(cache.Lookup(key, 1, 5, &out));  // Cold.
  cache.Insert(key, 1, 5, answer);
  ASSERT_TRUE(cache.Lookup(key, 1, 5, &out));
  EXPECT_EQ(out.cost, answer.cost);
  EXPECT_EQ(out.set, answer.set);

  // Same cell, different exact coordinates: a miss, and the entry stays.
  ResultCacheKey near = key;
  near.x += 1e-13;  // Same quantization cell at 12 mantissa bits.
  EXPECT_EQ(ResultCache::CellOf(near.x, near.y, 12), key.cell);
  EXPECT_FALSE(cache.Lookup(near, 1, 5, &out));
  ASSERT_TRUE(cache.Lookup(key, 1, 5, &out));

  // A stamp mismatch (epoch or mutation count) invalidates the entry.
  EXPECT_FALSE(cache.Lookup(key, 1, 6, &out));
  EXPECT_FALSE(cache.Lookup(key, 1, 5, &out));  // Erased, not just skipped.
  cache.Insert(key, 2, 0, answer);
  EXPECT_FALSE(cache.Lookup(key, 3, 0, &out));

  const ResultCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.invalidations, 2u);
  EXPECT_GT(stats.misses, stats.hits);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(ResultCacheUnitTest, ByteBudgetEvictsLeastRecentlyUsed) {
  ResultCache::Options options;
  // 16 shards share the budget; a few hundred bytes per shard only fits a
  // couple of entries, so inserts must evict from the LRU tail.
  options.budget_bytes = 16 * 512;
  ResultCache cache(options);
  CachedAnswer answer;
  answer.set = {1, 2, 3, 4};
  for (uint32_t i = 0; i < 256; ++i) {
    cache.Insert(MakeKey(0.001 * i, 0.5, {i}, 12), 0, 0, answer);
  }
  const ResultCacheStats stats = cache.Snapshot();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, 16u * 512u);
  EXPECT_GT(stats.entries, 0u);
}

class CacheInvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = test::MakeRandomDataset(300, 25, 3.0, 777);
    index_ = std::make_unique<IrTree>(&dataset_);
    index_->Freeze();
    context_ = CoskqContext{&dataset_, index_.get()};
  }

  ServerOptions CachedMutableOptions() {
    ServerOptions options;
    options.enable_mutations = true;
    options.mutable_dataset = &dataset_;
    options.mutable_index = index_.get();
    options.result_cache_mb = 8;
    return options;
  }

  void StartServer(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<CoskqServer>(context_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// A single-keyword QUERY at `p`: the appro solver answers with the
  /// keyword's nearest object, so an object inserted exactly at `p` must
  /// win with cost 0 — any other answer after its ack is a stale read.
  QueryRequest ProbeQuery(const Point& p, const std::string& keyword) {
    QueryRequest q;
    q.x = p.x;
    q.y = p.y;
    q.solver = SolverKind::kAppro;
    q.cost_type = CostType::kMaxSum;
    q.keywords = {keyword};
    return q;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  std::unique_ptr<CoskqServer> server_;
};

TEST_F(CacheInvalidationTest, RepeatHitsThenAckedInsertInvalidates) {
  StartServer(CachedMutableOptions());
  CoskqClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  const std::string keyword = dataset_.vocabulary().TermString(0);
  const Point p{0.41421, 0.73205};

  // Fill, then hit: the repeat must be served and counted as a hit.
  StatusOr<QueryReply> first = client.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->kind, QueryReply::Kind::kResult);
  StatusOr<QueryReply> repeat = client.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(repeat.ok());
  ASSERT_EQ(repeat->kind, QueryReply::Kind::kResult);
  EXPECT_EQ(repeat->result.set, first->result.set);
  EXPECT_EQ(repeat->result.cost, first->result.cost);
  StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  if (!ResultCache::ForceDisabledByEnv()) {
    EXPECT_EQ(stats->cache_enabled, 1u);
    EXPECT_GE(stats->cache_hits, 1u);
  }

  // Acked insert at the exact probe point: the very next repeat must NOT be
  // served from the pre-mutation entry.
  MutateRequest insert;
  insert.op = MutateRequest::Op::kInsert;
  insert.x = p.x;
  insert.y = p.y;
  insert.keywords = {keyword};
  StatusOr<MutateReply> ack = client.Mutate(insert);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();

  StatusOr<QueryReply> fresh = client.Query(ProbeQuery(p, keyword));
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(fresh->kind, QueryReply::Kind::kResult);
  ASSERT_EQ(fresh->result.set.size(), 1u);
  EXPECT_EQ(fresh->result.set[0], ack->object_id);
  EXPECT_EQ(fresh->result.cost, 0.0);

  stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  if (!ResultCache::ForceDisabledByEnv()) {
    EXPECT_GE(stats->cache_invalidations, 1u);
  }
}

TEST_F(CacheInvalidationTest, FiftySeededInterleavingsZeroStaleReads) {
  StartServer(CachedMutableOptions());
  CoskqClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  size_t stale_reads = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed + 1);
    const Point p{rng.UniformDouble(0.05, 0.95),
                  rng.UniformDouble(0.05, 0.95)};
    const std::string keyword =
        dataset_.vocabulary().TermString(static_cast<TermId>(seed % 25));

    // Warm the cache with a seed-dependent number of identical queries so
    // some interleavings mutate over a fresh entry, others over a hot one.
    const int warmups = 1 + static_cast<int>(seed % 3);
    for (int w = 0; w < warmups; ++w) {
      StatusOr<QueryReply> warm = client.Query(ProbeQuery(p, keyword));
      ASSERT_TRUE(warm.ok());
      ASSERT_EQ(warm->kind, QueryReply::Kind::kResult);
    }

    MutateRequest insert;
    insert.op = MutateRequest::Op::kInsert;
    insert.x = p.x;
    insert.y = p.y;
    insert.keywords = {keyword};
    StatusOr<MutateReply> ack = client.Mutate(insert);
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();

    // The acked insert sits exactly at the probe point: anything but
    // (inserted id, cost 0) is a stale read.
    StatusOr<QueryReply> probe = client.Query(ProbeQuery(p, keyword));
    ASSERT_TRUE(probe.ok());
    ASSERT_EQ(probe->kind, QueryReply::Kind::kResult);
    const bool fresh = probe->result.set.size() == 1 &&
                       probe->result.set[0] == ack->object_id &&
                       probe->result.cost == 0.0;
    if (!fresh) {
      ++stale_reads;
    }

    if (seed % 2 == 1) {
      // Half the interleavings also remove and re-probe: serving the
      // removed object after its remove ack is the other stale read.
      MutateRequest remove;
      remove.op = MutateRequest::Op::kRemove;
      remove.object_id = ack->object_id;
      ASSERT_TRUE(client.Mutate(remove).ok());
      probe = client.Query(ProbeQuery(p, keyword));
      ASSERT_TRUE(probe.ok());
      ASSERT_EQ(probe->kind, QueryReply::Kind::kResult);
      if (probe->result.outcome != QueryOutcome::kInfeasible &&
          !probe->result.set.empty() &&
          probe->result.set[0] == ack->object_id) {
        ++stale_reads;
      }
    }
  }
  EXPECT_EQ(stale_reads, 0u);

  // The freshness sweep above holds with or without a cache (the
  // COSKQ_RESULT_CACHE=off CI re-run proves the disabled path); the
  // counter assertions only make sense when the cache is live.
  StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  if (!ResultCache::ForceDisabledByEnv()) {
    EXPECT_EQ(stats->cache_enabled, 1u);
    EXPECT_GT(stats->cache_hits, 0u);
    EXPECT_GT(stats->cache_invalidations, 0u);
  }
}

TEST_F(CacheInvalidationTest, ConcurrentQueryMutateStorm) {
  // A low refreeze threshold keeps background epoch swaps happening under
  // the storm, so stamp invalidation is exercised against both mutation
  // counts and epoch advances while lanes race on the cache shards.
  ServerOptions options = CachedMutableOptions();
  options.refreeze_threshold = 32;
  StartServer(options);

  const int lanes = TestThreads();
  constexpr int kIterations = 12;
  std::atomic<size_t> stale_reads{0};
  std::atomic<size_t> transport_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(lanes));
  for (int t = 0; t < lanes; ++t) {
    threads.emplace_back([&, t] {
      CoskqClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        transport_failures.fetch_add(1);
        return;
      }
      // Disjoint per-lane probe points: an object inserted at p_t is that
      // point's unique distance-0 answer no matter what other lanes do.
      const Point p{0.05 + 0.9 * (static_cast<double>(t) + 0.5) /
                               static_cast<double>(lanes),
                    0.37};
      const std::string keyword = dataset_.vocabulary().TermString(
          static_cast<TermId>(t % 25));
      for (int i = 0; i < kIterations; ++i) {
        // Repeat queries to generate hits on this lane's entry.
        for (int w = 0; w < 2; ++w) {
          StatusOr<QueryReply> warm = client.Query(ProbeQuery(p, keyword));
          if (!warm.ok() || warm->kind != QueryReply::Kind::kResult) {
            transport_failures.fetch_add(1);
            return;
          }
        }
        MutateRequest insert;
        insert.op = MutateRequest::Op::kInsert;
        insert.x = p.x;
        insert.y = p.y;
        insert.keywords = {keyword};
        StatusOr<MutateReply> ack = client.Mutate(insert);
        if (!ack.ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        StatusOr<QueryReply> probe = client.Query(ProbeQuery(p, keyword));
        if (!probe.ok() || probe->kind != QueryReply::Kind::kResult) {
          transport_failures.fetch_add(1);
          return;
        }
        if (probe->result.set.size() != 1 ||
            probe->result.set[0] != ack->object_id ||
            probe->result.cost != 0.0) {
          stale_reads.fetch_add(1);
        }
        MutateRequest remove;
        remove.op = MutateRequest::Op::kRemove;
        remove.object_id = ack->object_id;
        if (!client.Mutate(remove).ok()) {
          transport_failures.fetch_add(1);
          return;
        }
        probe = client.Query(ProbeQuery(p, keyword));
        if (!probe.ok() || probe->kind != QueryReply::Kind::kResult) {
          transport_failures.fetch_add(1);
          return;
        }
        if (probe->result.outcome != QueryOutcome::kInfeasible &&
            !probe->result.set.empty() &&
            probe->result.set[0] == ack->object_id) {
          stale_reads.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(transport_failures.load(), 0u);
  EXPECT_EQ(stale_reads.load(), 0u);

  CoskqClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  StatusOr<StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  if (!ResultCache::ForceDisabledByEnv()) {
    EXPECT_EQ(stats->cache_enabled, 1u);
    EXPECT_GT(stats->cache_hits, 0u);
    EXPECT_GT(stats->cache_invalidations, 0u);
  }
}

}  // namespace
}  // namespace coskq
