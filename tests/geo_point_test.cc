#include "geo/point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace coskq {
namespace {

TEST(PointTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
}

TEST(PointTest, DistanceIsSymmetricBitwise) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Point a{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)};
    Point b{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10)};
    // Exact bitwise symmetry matters: the CoSKQ bound proofs assume the two
    // directions of a pairwise distance compare equal.
    EXPECT_EQ(Distance(a, b), Distance(b, a));
    EXPECT_EQ(SquaredDistance(a, b), SquaredDistance(b, a));
  }
}

TEST(PointTest, TriangleInequalityHolds) {
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    Point a{rng.UniformDouble(), rng.UniformDouble()};
    Point b{rng.UniformDouble(), rng.UniformDouble()};
    Point c{rng.UniformDouble(), rng.UniformDouble()};
    EXPECT_LE(Distance(a, c), Distance(a, b) + Distance(b, c) + 1e-12);
  }
}

TEST(PointTest, Midpoint) {
  Point m = Midpoint({0, 0}, {2, 4});
  EXPECT_EQ(m, (Point{1, 2}));
}

TEST(PointTest, EqualityAndToString) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
  EXPECT_EQ((Point{1.5, -2}).ToString(), "(1.5, -2)");
}

}  // namespace
}  // namespace coskq
