#include "ext/topk_coskq.h"

#include <gtest/gtest.h>

#include "core/owner_driven_exact.h"
#include "index/irtree.h"
#include "test_util.h"

namespace coskq {
namespace {

class TopkTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopkTest, Top1MatchesExactSolver) {
  Dataset ds = test::MakeRandomDataset(100, 15, 3.0, GetParam());
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenExact exact(ctx, type);
    for (int trial = 0; trial < 5; ++trial) {
      const CoskqQuery q =
          test::MakeRandomQuery(ds, 3, GetParam() * 7 + trial);
      const CoskqResult want = exact.Solve(q);
      const TopkCoskqResult got = SolveTopkCoskq(ctx, q, type, 1);
      if (!want.feasible) {
        EXPECT_TRUE(got.answers.empty());
        continue;
      }
      ASSERT_EQ(got.answers.size(), 1u);
      EXPECT_NEAR(got.answers.front().cost, want.cost, 1e-9);
    }
  }
}

TEST_P(TopkTest, AnswersAreSortedDistinctAndFeasible) {
  Dataset ds = test::MakeRandomDataset(80, 12, 3.0, GetParam() + 50);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  const CoskqQuery q = test::MakeRandomQuery(ds, 3, GetParam() + 51);
  const TopkCoskqResult got =
      SolveTopkCoskq(ctx, q, CostType::kMaxSum, 5);
  ASSERT_FALSE(got.answers.empty());
  for (size_t i = 0; i < got.answers.size(); ++i) {
    EXPECT_TRUE(SetCoversKeywords(ds, q.keywords, got.answers[i].set));
    EXPECT_NEAR(EvaluateCost(CostType::kMaxSum, ds, q.location,
                             got.answers[i].set),
                got.answers[i].cost, 1e-12);
    if (i > 0) {
      EXPECT_GE(got.answers[i].cost, got.answers[i - 1].cost);
      EXPECT_NE(got.answers[i].set, got.answers[i - 1].set);
    }
  }
  // All answers pairwise distinct.
  for (size_t i = 0; i < got.answers.size(); ++i) {
    for (size_t j = i + 1; j < got.answers.size(); ++j) {
      EXPECT_NE(got.answers[i].set, got.answers[j].set);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopkTest, ::testing::Values(301, 302, 303));

TEST(TopkTest, KLargerThanAnswerSpace) {
  // One object per keyword: exactly one irredundant cover exists.
  Dataset ds;
  ds.AddObject(Point{0.1, 0.1}, {"a"});
  ds.AddObject(Point{0.2, 0.2}, {"b"});
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CoskqQuery q;
  q.location = Point{0, 0};
  q.keywords = {ds.vocabulary().Find("a"), ds.vocabulary().Find("b")};
  NormalizeTermSet(&q.keywords);
  const TopkCoskqResult got = SolveTopkCoskq(ctx, q, CostType::kDia, 10);
  ASSERT_EQ(got.answers.size(), 1u);
  EXPECT_EQ(got.answers.front().set, (std::vector<ObjectId>{0, 1}));
}

TEST(TopkTest, InfeasibleGivesNoAnswers) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a"});
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CoskqQuery q;
  q.location = Point{0, 0};
  q.keywords = {ghost};
  EXPECT_TRUE(SolveTopkCoskq(ctx, q, CostType::kMaxSum, 3).answers.empty());
}

TEST(TopkTest, SecondBestIsTrulySecondBest) {
  // Hand-built instance: keyword "a" at two locations, "b" at one.
  Dataset ds;
  ds.AddObject(Point{0.1, 0.0}, {"a"});   // near
  ds.AddObject(Point{0.5, 0.0}, {"a"});   // far
  ds.AddObject(Point{0.0, 0.1}, {"b"});
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CoskqQuery q;
  q.location = Point{0, 0};
  q.keywords = {ds.vocabulary().Find("a"), ds.vocabulary().Find("b")};
  NormalizeTermSet(&q.keywords);
  const TopkCoskqResult got = SolveTopkCoskq(ctx, q, CostType::kMaxSum, 2);
  ASSERT_EQ(got.answers.size(), 2u);
  EXPECT_EQ(got.answers[0].set, (std::vector<ObjectId>{0, 2}));
  EXPECT_EQ(got.answers[1].set, (std::vector<ObjectId>{1, 2}));
  EXPECT_LT(got.answers[0].cost, got.answers[1].cost);
}

}  // namespace
}  // namespace coskq
