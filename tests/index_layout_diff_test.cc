// Differential suite for the frozen body layouts, over seeds 0-49: the
// level-grouped (page-local) layout must be *bit-identical* to the bfs
// layout on every query path (KeywordNn, NnSet, RangeRelevant,
// RelevantStream — baseline and masked) and every registry solver, down to
// node-visit logs and distance-memo counters. Both layouts keep the same
// BFS slot numbering; only the physical byte placement differs, so any
// divergence here is a layout-addressing bug, never a legitimate
// traversal difference.
//
// Every check runs once per supported SIMD kernel (scalar always, plus
// sse2/avx2 where the hardware has them): the bfs-side expectation is
// computed under the same kernel the level-grouped side runs, so kernel
// and layout are varied independently.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/solvers.h"
#include "geo/circle.h"
#include "index/irtree.h"
#include "index/kernels.h"
#include "index/search_scratch.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

/// Runs `fn` once per supported kernel table with that table forced
/// process-wide, then restores the previous selection.
template <typename Fn>
void ForEachKernel(Fn&& fn) {
  using internal_index::ActiveKernelName;
  using internal_index::SelectKernels;
  using internal_index::SupportedKernelNames;
  const std::string before = ActiveKernelName();
  for (const std::string& kernel : SupportedKernelNames()) {
    ASSERT_TRUE(SelectKernels(kernel).ok()) << kernel;
    SCOPED_TRACE("kernel=" + kernel);
    fn();
  }
  ASSERT_TRUE(SelectKernels(before).ok());
}

const char* const kSolverNames[] = {
    "maxsum-exact",      "dia-exact",        "maxsum-appro",
    "dia-appro",         "cao-exact-maxsum", "cao-exact-dia",
    "cao-appro1-maxsum", "cao-appro1-dia",   "cao-appro2-maxsum",
    "cao-appro2-dia",
};

class LayoutDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    const uint64_t seed = GetParam();
    dataset_ = test::MakeRandomDataset(150, 25, 3.0, seed + 1);

    IrTree::Options bfs_options;
    bfs_options.frozen_layout = FrozenLayout::kBfs;
    bfs_ = std::make_unique<IrTree>(&dataset_, bfs_options);
    bfs_->Freeze();
    ASSERT_TRUE(bfs_->frozen());
    ASSERT_EQ(bfs_->MemoryStats().layout, FrozenLayout::kBfs);

    IrTree::Options lg_options;
    lg_options.frozen_layout = FrozenLayout::kLevelGrouped;
    lg_ = std::make_unique<IrTree>(&dataset_, lg_options);
    lg_->Freeze();
    ASSERT_TRUE(lg_->frozen());
    ASSERT_EQ(lg_->MemoryStats().layout, FrozenLayout::kLevelGrouped);

    bfs_context_ = CoskqContext{&dataset_, bfs_.get()};
    lg_context_ = CoskqContext{&dataset_, lg_.get()};
    for (int i = 0; i < 3; ++i) {
      queries_.push_back(
          test::MakeRandomQuery(dataset_, 3 + i, seed * 1000 + i));
    }
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> bfs_;
  std::unique_ptr<IrTree> lg_;
  CoskqContext bfs_context_;
  CoskqContext lg_context_;
  std::vector<CoskqQuery> queries_;
};

TEST_P(LayoutDiffTest, BothLayoutsPassInvariants) {
  bfs_->CheckInvariants();
  lg_->CheckInvariants();
  // Same logical tree shape regardless of physical placement.
  EXPECT_EQ(lg_->NodeCount(), bfs_->NodeCount());
  EXPECT_EQ(lg_->Height(), bfs_->Height());
  EXPECT_EQ(lg_->node_id_limit(), bfs_->node_id_limit());
}

TEST_P(LayoutDiffTest, KeywordNnVisitSequencesIdentical) {
  Rng rng(GetParam() + 11);
  for (int trial = 0; trial < 20; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(25));
    ForEachKernel([&] {
      double want_d = 0.0;
      std::vector<uint32_t> want_log;
      const ObjectId want = bfs_->KeywordNn(p, t, &want_d, &want_log);
      double got_d = 0.0;
      std::vector<uint32_t> got_log;
      const ObjectId got = lg_->KeywordNn(p, t, &got_d, &got_log);
      EXPECT_EQ(got, want);
      EXPECT_EQ(got_d, want_d);  // Bit-identical, no tolerance.
      EXPECT_EQ(got_log, want_log) << "KeywordNn expansion order diverged";
    });
  }
}

TEST_P(LayoutDiffTest, MaskedNnSetVisitSequencesIdentical) {
  SearchScratch scratch;
  for (const CoskqQuery& q : queries_) {
    ForEachKernel([&] {
      std::vector<uint32_t> want_log;
      std::vector<ObjectId> want;
      TermSet want_missing;
      scratch.BeginQuery(q.location, q.keywords, bfs_->node_id_limit(),
                         dataset_.NumObjects());
      scratch.set_visit_log(&want_log);
      want = bfs_->NnSet(q.location, q.keywords, &want_missing, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      std::vector<uint32_t> got_log;
      std::vector<ObjectId> got;
      TermSet got_missing;
      scratch.BeginQuery(q.location, q.keywords, lg_->node_id_limit(),
                         dataset_.NumObjects());
      scratch.set_visit_log(&got_log);
      got = lg_->NnSet(q.location, q.keywords, &got_missing, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      EXPECT_EQ(got, want);
      EXPECT_EQ(got_missing, want_missing);
      EXPECT_EQ(got_log, want_log) << "masked NnSet expansion diverged";
    });
  }
}

TEST_P(LayoutDiffTest, RangeRelevantVisitSequencesIdentical) {
  SearchScratch scratch;
  Rng rng(GetParam() + 77);
  for (const CoskqQuery& q : queries_) {
    const double radius = 0.1 + 0.4 * rng.UniformDouble();
    const Circle circle(q.location, radius);
    ForEachKernel([&] {
      // Baseline (unmasked) with visit logs.
      std::vector<ObjectId> want_out;
      std::vector<uint32_t> want_log;
      bfs_->RangeRelevant(circle, q.keywords, &want_out, &want_log);
      std::vector<ObjectId> got_out;
      std::vector<uint32_t> got_log;
      lg_->RangeRelevant(circle, q.keywords, &got_out, &got_log);
      EXPECT_EQ(got_out, want_out);
      EXPECT_EQ(got_log, want_log) << "RangeRelevant expansion diverged";

      // Masked with visit logs through the scratch.
      scratch.BeginQuery(q.location, q.keywords, bfs_->node_id_limit(),
                         dataset_.NumObjects());
      std::vector<ObjectId> want_mout;
      std::vector<uint32_t> want_mlog;
      scratch.set_visit_log(&want_mlog);
      bfs_->RangeRelevant(circle, q.keywords, &want_mout, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      scratch.BeginQuery(q.location, q.keywords, lg_->node_id_limit(),
                         dataset_.NumObjects());
      std::vector<ObjectId> got_mout;
      std::vector<uint32_t> got_mlog;
      scratch.set_visit_log(&got_mlog);
      lg_->RangeRelevant(circle, q.keywords, &got_mout, &scratch);
      scratch.set_visit_log(nullptr);
      scratch.FinishQuery();

      EXPECT_EQ(got_mout, want_mout);
      EXPECT_EQ(got_mlog, want_mlog) << "masked RangeRelevant diverged";
    });
  }
}

TEST_P(LayoutDiffTest, RelevantStreamDrainsIdentically) {
  SearchScratch scratch;
  for (const CoskqQuery& q : queries_) {
    ForEachKernel([&] {
      // Unmasked streams.
      std::vector<std::pair<ObjectId, double>> want;
      {
        IrTree::RelevantStream stream(bfs_.get(), q.location, q.keywords);
        while (auto next = stream.Next()) {
          want.push_back(*next);
        }
      }
      std::vector<std::pair<ObjectId, double>> got;
      {
        IrTree::RelevantStream stream(lg_.get(), q.location, q.keywords);
        while (auto next = stream.Next()) {
          got.push_back(*next);
        }
      }
      EXPECT_EQ(got, want) << "RelevantStream order/content diverged";

      // Masked streams (scratch caches shared within each drain).
      want.clear();
      got.clear();
      scratch.BeginQuery(q.location, q.keywords, bfs_->node_id_limit(),
                         dataset_.NumObjects());
      {
        IrTree::RelevantStream stream(bfs_.get(), q.location, q.keywords,
                                      &scratch);
        while (auto next = stream.Next()) {
          want.push_back(*next);
        }
      }
      scratch.FinishQuery();
      scratch.BeginQuery(q.location, q.keywords, lg_->node_id_limit(),
                         dataset_.NumObjects());
      {
        IrTree::RelevantStream stream(lg_.get(), q.location, q.keywords,
                                      &scratch);
        while (auto next = stream.Next()) {
          got.push_back(*next);
        }
      }
      scratch.FinishQuery();
      EXPECT_EQ(got, want) << "masked RelevantStream diverged";
    });
  }
}

TEST_P(LayoutDiffTest, EverySolverBitIdenticalAcrossLayouts) {
  for (const bool use_masks : {false, true}) {
    SolverOptions options;
    options.use_query_masks = use_masks;
    for (const char* name : kSolverNames) {
      auto bfs_solver = MakeSolver(name, bfs_context_, options);
      auto lg_solver = MakeSolver(name, lg_context_, options);
      ASSERT_NE(bfs_solver, nullptr) << name;
      ASSERT_NE(lg_solver, nullptr) << name;
      for (size_t i = 0; i < queries_.size(); ++i) {
        SCOPED_TRACE(std::string(name) +
                     (use_masks ? " masked" : " baseline") + " query " +
                     std::to_string(i));
        ForEachKernel([&] {
          const CoskqResult want = bfs_solver->Solve(queries_[i]);
          const CoskqResult got = lg_solver->Solve(queries_[i]);
          EXPECT_EQ(got.feasible, want.feasible);
          EXPECT_EQ(got.set, want.set);
          EXPECT_EQ(got.cost, want.cost);  // Bit-identical, no tolerance.
          EXPECT_EQ(got.stats.candidates, want.stats.candidates);
          EXPECT_EQ(got.stats.sets_evaluated, want.stats.sets_evaluated);
          EXPECT_EQ(got.stats.pairs_examined, want.stats.pairs_examined);
          EXPECT_EQ(got.stats.dist_cache_hits, want.stats.dist_cache_hits);
          EXPECT_EQ(got.stats.dist_cache_misses,
                    want.stats.dist_cache_misses);
        });
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutDiffTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace coskq
