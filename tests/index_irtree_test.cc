#include "index/irtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

// Brute-force keyword NN over the dataset.
ObjectId BruteKeywordNn(const Dataset& ds, const Point& p, TermId t,
                        double* dist) {
  ObjectId best = kInvalidObjectId;
  double best_d = std::numeric_limits<double>::infinity();
  for (const SpatialObject& obj : ds.objects()) {
    if (!obj.ContainsTerm(t)) {
      continue;
    }
    const double d = Distance(p, obj.location);
    if (d < best_d) {
      best_d = d;
      best = obj.id;
    }
  }
  *dist = best_d;
  return best;
}

TEST(IrTreeTest, EmptyDataset) {
  Dataset ds;
  IrTree tree(&ds);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  double d = 0.0;
  EXPECT_EQ(tree.KeywordNn(Point{0, 0}, 0, &d), kInvalidObjectId);
  tree.CheckInvariants();
}

TEST(IrTreeTest, BulkLoadInvariants) {
  Dataset ds = test::MakeRandomDataset(2000, 100, 4.0, 11);
  IrTree tree(&ds);
  EXPECT_EQ(tree.size(), 2000u);
  tree.CheckInvariants();
  EXPECT_GT(tree.Height(), 1);
}

class IrTreeKeywordNnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrTreeKeywordNnTest, MatchesBruteForce) {
  Dataset ds = test::MakeRandomDataset(800, 80, 4.0, GetParam());
  IrTree tree(&ds);
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 60; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(80));
    double got_d = 0.0;
    double want_d = 0.0;
    const ObjectId got = tree.KeywordNn(p, t, &got_d);
    const ObjectId want = BruteKeywordNn(ds, p, t, &want_d);
    if (want == kInvalidObjectId) {
      EXPECT_EQ(got, kInvalidObjectId);
      continue;
    }
    ASSERT_NE(got, kInvalidObjectId);
    // Distances must match exactly (ties may pick a different witness).
    EXPECT_DOUBLE_EQ(got_d, want_d);
    EXPECT_TRUE(ds.object(got).ContainsTerm(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrTreeKeywordNnTest,
                         ::testing::Values(21, 22, 23, 24));

TEST(IrTreeTest, NnSetCoversEveryKeywordWithNearest) {
  Dataset ds = test::MakeRandomDataset(600, 50, 3.5, 31);
  IrTree tree(&ds);
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    const CoskqQuery q = test::MakeRandomQuery(ds, 5, 33 + trial);
    TermSet missing;
    const auto set = tree.NnSet(q.location, q.keywords, &missing);
    EXPECT_TRUE(missing.empty());
    for (TermId t : q.keywords) {
      double want_d = 0.0;
      BruteKeywordNn(ds, q.location, t, &want_d);
      // Some member of the NN set containing t must be at the NN distance.
      double best = std::numeric_limits<double>::infinity();
      for (ObjectId id : set) {
        if (ds.object(id).ContainsTerm(t)) {
          best = std::min(best, Distance(q.location, ds.object(id).location));
        }
      }
      EXPECT_DOUBLE_EQ(best, want_d);
    }
  }
}

TEST(IrTreeTest, NnSetReportsMissingKeywords) {
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a"});
  IrTree tree(&ds);
  TermSet query{0, 42};  // "a" and an unknown term.
  TermSet missing;
  const auto set = tree.NnSet(Point{0, 0}, query, &missing);
  EXPECT_EQ(set, (std::vector<ObjectId>{0}));
  EXPECT_EQ(missing, (TermSet{42}));
}

class IrTreeRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IrTreeRangeTest, RangeRelevantMatchesBruteForce) {
  Dataset ds = test::MakeRandomDataset(700, 60, 4.0, GetParam());
  IrTree tree(&ds);
  Rng rng(GetParam() + 900);
  for (int trial = 0; trial < 25; ++trial) {
    const Circle circle(Point{rng.UniformDouble(), rng.UniformDouble()},
                        rng.UniformDouble(0.02, 0.5));
    TermSet terms;
    for (int k = 0; k < 3; ++k) {
      terms.push_back(static_cast<TermId>(rng.UniformUint64(60)));
    }
    NormalizeTermSet(&terms);
    std::vector<ObjectId> got;
    tree.RangeRelevant(circle, terms, &got);
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> want;
    for (const SpatialObject& obj : ds.objects()) {
      if (circle.Contains(obj.location) && obj.ContainsAnyOf(terms)) {
        want.push_back(obj.id);
      }
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrTreeRangeTest,
                         ::testing::Values(41, 42, 43));

TEST(IrTreeTest, RelevantStreamIsSortedAndComplete) {
  Dataset ds = test::MakeRandomDataset(500, 40, 4.0, 55);
  IrTree tree(&ds);
  Rng rng(56);
  for (int trial = 0; trial < 10; ++trial) {
    const Point origin{rng.UniformDouble(), rng.UniformDouble()};
    TermSet terms{static_cast<TermId>(rng.UniformUint64(40)),
                  static_cast<TermId>(rng.UniformUint64(40))};
    NormalizeTermSet(&terms);
    IrTree::RelevantStream stream(&tree, origin, terms);
    std::vector<ObjectId> got;
    double last = -1.0;
    while (auto next = stream.Next()) {
      EXPECT_GE(next->second, last);
      last = next->second;
      EXPECT_DOUBLE_EQ(next->second,
                       Distance(origin, ds.object(next->first).location));
      EXPECT_TRUE(ds.object(next->first).ContainsAnyOf(terms));
      got.push_back(next->first);
    }
    std::sort(got.begin(), got.end());
    std::vector<ObjectId> want;
    for (const SpatialObject& obj : ds.objects()) {
      if (obj.ContainsAnyOf(terms)) {
        want.push_back(obj.id);
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(IrTreeTest, DynamicInsertMatchesBulk) {
  Dataset ds = test::MakeRandomDataset(300, 30, 3.0, 61);
  // Bulk tree over the full dataset.
  IrTree bulk(&ds);
  // Dynamic tree: bulk over nothing is impossible (tree binds to dataset),
  // so build over the same dataset via Insert on an empty clone.
  Dataset empty;
  for (size_t i = 0; i < ds.vocabulary().size(); ++i) {
    empty.mutable_vocabulary().GetOrAdd(ds.vocabulary().TermString(
        static_cast<TermId>(i)));
  }
  for (const SpatialObject& obj : ds.objects()) {
    empty.AddObjectWithTerms(obj.location, obj.keywords);
  }
  IrTree dynamic(&empty, IrTree::Options{8});
  // Rebuild dynamically: insert everything again into a fresh tree built
  // over a dataset that starts conceptually empty. The IR-tree is built at
  // construction, so instead verify Insert on top of a prefix: build over
  // the dataset and insert each object one more time, then check invariants
  // and duplicated query results.
  for (const SpatialObject& obj : empty.objects()) {
    ASSERT_TRUE(dynamic.Insert(obj.id).ok());
  }
  dynamic.CheckInvariants();
  EXPECT_EQ(dynamic.size(), 2 * ds.NumObjects());
  // Keyword NN distances agree with the bulk tree (duplicates do not change
  // nearest distances).
  Rng rng(62);
  for (int trial = 0; trial < 30; ++trial) {
    const Point p{rng.UniformDouble(), rng.UniformDouble()};
    const TermId t = static_cast<TermId>(rng.UniformUint64(30));
    double d_bulk = 0.0;
    double d_dyn = 0.0;
    const ObjectId a = bulk.KeywordNn(p, t, &d_bulk);
    const ObjectId b = dynamic.KeywordNn(p, t, &d_dyn);
    EXPECT_EQ(a == kInvalidObjectId, b == kInvalidObjectId);
    if (a != kInvalidObjectId) {
      EXPECT_DOUBLE_EQ(d_bulk, d_dyn);
    }
  }
}

TEST(IrTreeTest, RefreezeAfterMutationsFoldsDeltaRepeatedly) {
  // Freeze(), mutate through the delta, Freeze() again: each fold must drain
  // the delta, bump the epoch, and leave queries identical to a brute-force
  // scan of the live set. Two full cycles catch state leaking across folds.
  Dataset ds = test::MakeRandomDataset(260, 30, 3.0, 81);
  std::vector<ObjectId> base;
  for (ObjectId id = 0; id < 200; ++id) {
    base.push_back(id);
  }
  IrTree tree(&ds, IrTree::Options(), base);
  tree.Freeze();
  std::vector<bool> live(ds.NumObjects(), false);
  for (ObjectId id : base) {
    live[id] = true;
  }

  Rng rng(82);
  for (int cycle = 0; cycle < 2; ++cycle) {
    const uint64_t epoch_before = tree.epoch();
    int mutated = 0;
    for (int op = 0; op < 25; ++op) {
      const ObjectId id = static_cast<ObjectId>(rng.UniformUint64(ds.NumObjects()));
      if (live[id]) {
        ASSERT_TRUE(tree.Remove(id).ok());
        live[id] = false;
      } else {
        ASSERT_TRUE(tree.Insert(id).ok());
        live[id] = true;
      }
      ++mutated;
    }
    ASSERT_GT(mutated, 0);
    EXPECT_GT(tree.delta_size(), 0u);
    tree.Freeze();  // Re-Freeze folds the delta in place.
    EXPECT_EQ(tree.delta_size(), 0u);
    EXPECT_TRUE(tree.frozen());
    EXPECT_EQ(tree.epoch(), epoch_before + 1);
    tree.CheckInvariants();
    const size_t want_size =
        static_cast<size_t>(std::count(live.begin(), live.end(), true));
    EXPECT_EQ(tree.size(), want_size);

    // Post-fold queries match a brute-force scan restricted to the live set.
    for (int trial = 0; trial < 20; ++trial) {
      const Point p{rng.UniformDouble(), rng.UniformDouble()};
      const TermId t = static_cast<TermId>(rng.UniformUint64(30));
      ObjectId want = kInvalidObjectId;
      double want_d = std::numeric_limits<double>::infinity();
      for (const SpatialObject& obj : ds.objects()) {
        if (!live[obj.id] || !obj.ContainsTerm(t)) {
          continue;
        }
        const double d = Distance(p, obj.location);
        if (d < want_d) {
          want_d = d;
          want = obj.id;
        }
      }
      double got_d = 0.0;
      const ObjectId got = tree.KeywordNn(p, t, &got_d);
      if (want == kInvalidObjectId) {
        EXPECT_EQ(got, kInvalidObjectId);
      } else {
        ASSERT_NE(got, kInvalidObjectId);
        EXPECT_DOUBLE_EQ(got_d, want_d);
        EXPECT_TRUE(live[got]);
        EXPECT_TRUE(ds.object(got).ContainsTerm(t));
      }
    }
  }
}

TEST(IrTreeTest, NodeCountGrowsWithData) {
  Dataset small = test::MakeRandomDataset(50, 20, 3.0, 71);
  Dataset large = test::MakeRandomDataset(5000, 20, 3.0, 72);
  IrTree t1(&small);
  IrTree t2(&large);
  EXPECT_LT(t1.NodeCount(), t2.NodeCount());
  EXPECT_LE(t1.Height(), t2.Height());
}

}  // namespace
}  // namespace coskq
