// Differential update-interleaving harness for the live-update delta layer
// (DESIGN.md §13), over seeds 0-49: starting from a frozen base of 80 of the
// dataset's 120 objects, random insert/remove interleavings are applied to
// the delta overlay and, at every checkpoint, every query path (KeywordNn,
// NnSet, RangeRelevant, RelevantStream) and every registry solver (both cost
// types, masked and baseline) must be *bit-identical* to a reference tree
// frozen from scratch over the same logical live set. This enforces the
// delta-merge contract: the overlay changes where mutations live, never what
// queries answer.
//
// The harness also folds the delta mid-test — synchronously via Freeze() and
// via Refreeze() — and re-verifies, plus metamorphic checks: disjoint-id
// mutation scripts applied in shuffled orders must converge to identical
// trees, and an insert/remove (or remove/insert) pair on one id must cancel
// to an empty delta.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/solvers.h"
#include "geo/circle.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

constexpr size_t kNumObjects = 120;
constexpr size_t kBaseObjects = 80;
constexpr size_t kVocab = 25;

const char* const kSolverNames[] = {
    "maxsum-exact",      "dia-exact",        "maxsum-appro",
    "dia-appro",         "cao-exact-maxsum", "cao-exact-dia",
    "cao-appro1-maxsum", "cao-appro1-dia",   "cao-appro2-maxsum",
    "cao-appro2-dia",
};

/// A drained RelevantStream, canonicalized by (distance, id) so content and
/// distances are compared bit-exactly while distance ties (distinct objects
/// at equal distance) stay order-insensitive.
std::vector<std::pair<ObjectId, double>> DrainStream(const IrTree* tree,
                                                     const Point& origin,
                                                     const TermSet& terms) {
  std::vector<std::pair<ObjectId, double>> out;
  IrTree::RelevantStream stream(tree, origin, terms);
  double prev = 0.0;
  while (auto next = stream.Next()) {
    EXPECT_GE(next->second, prev) << "stream emitted out of distance order";
    prev = next->second;
    out.push_back(*next);
  }
  std::sort(out.begin(), out.end(),
            [](const std::pair<ObjectId, double>& a,
               const std::pair<ObjectId, double>& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return out;
}

class DeltaDiffTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    seed_ = GetParam();
    dataset_ = test::MakeRandomDataset(kNumObjects, kVocab, 3.0, seed_ + 1);
    std::vector<ObjectId> base;
    for (ObjectId id = 0; id < kBaseObjects; ++id) {
      base.push_back(id);
    }
    tree_ = std::make_unique<IrTree>(&dataset_, IrTree::Options(), base);
    tree_->Freeze();
    ASSERT_TRUE(tree_->frozen());
    live_.insert(base.begin(), base.end());
    for (int i = 0; i < 3; ++i) {
      queries_.push_back(
          test::MakeRandomQuery(dataset_, 3 + i, seed_ * 1000 + i));
    }
  }

  std::vector<ObjectId> LiveIds() const {
    return std::vector<ObjectId>(live_.begin(), live_.end());
  }

  /// One random mutation against tree_ and the model set: an insert of a
  /// currently-dead id (fresh tail ids and tombstoned base ids alike, so
  /// resurrection is exercised) or a remove of a live one.
  void ApplyRandomOp(Rng* rng) {
    std::vector<ObjectId> dead;
    for (ObjectId id = 0; id < kNumObjects; ++id) {
      if (live_.count(id) == 0) {
        dead.push_back(id);
      }
    }
    const bool do_insert =
        live_.empty() ||
        (!dead.empty() && rng->UniformDouble(0.0, 1.0) < 0.5);
    if (do_insert) {
      const ObjectId id =
          dead[static_cast<size_t>(rng->UniformUint64(dead.size()))];
      ASSERT_TRUE(tree_->Insert(id).ok()) << "insert " << id;
      live_.insert(id);
    } else {
      std::vector<ObjectId> alive(live_.begin(), live_.end());
      const ObjectId id =
          alive[static_cast<size_t>(rng->UniformUint64(alive.size()))];
      ASSERT_TRUE(tree_->Remove(id).ok()) << "remove " << id;
      live_.erase(id);
    }
  }

  /// The core differential check: every query path against a reference tree
  /// frozen from scratch over the identical live set.
  void ExpectMatchesReference(Rng* rng) {
    const std::vector<ObjectId> live = LiveIds();
    IrTree ref(&dataset_, IrTree::Options(), live);
    ref.Freeze();
    ASSERT_EQ(tree_->size(), live.size());
    tree_->CheckInvariants();

    // KeywordNn: random origins x the whole vocabulary.
    for (int trial = 0; trial < 4; ++trial) {
      const Point p{rng->UniformDouble(), rng->UniformDouble()};
      for (TermId t = 0; t < kVocab; ++t) {
        double want_d = 0.0;
        double got_d = 0.0;
        const ObjectId want = ref.KeywordNn(p, t, &want_d);
        const ObjectId got = tree_->KeywordNn(p, t, &got_d);
        ASSERT_EQ(got, want) << "KeywordNn term " << t;
        if (want != kInvalidObjectId) {
          ASSERT_EQ(got_d, want_d);  // Bit-identical, no tolerance.
        }
      }
    }

    for (const CoskqQuery& q : queries_) {
      // NnSet (deduplicated, id-sorted: directly comparable).
      TermSet want_missing;
      TermSet got_missing;
      const std::vector<ObjectId> want_nn =
          ref.NnSet(q.location, q.keywords, &want_missing);
      const std::vector<ObjectId> got_nn =
          tree_->NnSet(q.location, q.keywords, &got_missing);
      EXPECT_EQ(got_nn, want_nn);
      EXPECT_EQ(got_missing, want_missing);

      // RangeRelevant (exact set; merged output interleaves differently, so
      // compare sorted).
      const double radius = 0.1 + 0.4 * rng->UniformDouble();
      const Circle circle(q.location, radius);
      std::vector<ObjectId> want_range;
      std::vector<ObjectId> got_range;
      ref.RangeRelevant(circle, q.keywords, &want_range);
      tree_->RangeRelevant(circle, q.keywords, &got_range);
      std::sort(want_range.begin(), want_range.end());
      std::sort(got_range.begin(), got_range.end());
      EXPECT_EQ(got_range, want_range);

      // RelevantStream: full drains, ascending distance, bit-identical
      // (id, distance) content.
      EXPECT_EQ(DrainStream(tree_.get(), q.location, q.keywords),
                DrainStream(&ref, q.location, q.keywords));
    }
  }

  /// Every registry solver (both cost types), masked and baseline, must
  /// produce bit-identical results over the delta'd tree and the reference.
  void ExpectSolversMatchReference() {
    const std::vector<ObjectId> live = LiveIds();
    IrTree ref(&dataset_, IrTree::Options(), live);
    ref.Freeze();
    const CoskqContext live_ctx{&dataset_, tree_.get()};
    const CoskqContext ref_ctx{&dataset_, &ref};
    for (const bool use_masks : {false, true}) {
      SolverOptions options;
      options.use_query_masks = use_masks;
      for (const char* name : kSolverNames) {
        auto want_solver = MakeSolver(name, ref_ctx, options);
        auto got_solver = MakeSolver(name, live_ctx, options);
        ASSERT_NE(want_solver, nullptr) << name;
        ASSERT_NE(got_solver, nullptr) << name;
        for (size_t i = 0; i < queries_.size(); ++i) {
          SCOPED_TRACE(std::string(name) +
                       (use_masks ? " masked" : " baseline") + " query " +
                       std::to_string(i));
          const CoskqResult want = want_solver->Solve(queries_[i]);
          const CoskqResult got = got_solver->Solve(queries_[i]);
          EXPECT_EQ(got.feasible, want.feasible);
          EXPECT_EQ(got.set, want.set);
          EXPECT_EQ(got.cost, want.cost);  // Bit-identical, no tolerance.
        }
      }
    }
  }

  uint64_t seed_ = 0;
  Dataset dataset_;
  std::unique_ptr<IrTree> tree_;
  std::set<ObjectId> live_;
  std::vector<CoskqQuery> queries_;
};

TEST_P(DeltaDiffTest, InterleavedMutationsMatchFromScratchFreeze) {
  Rng op_rng(seed_ * 31 + 7);
  Rng query_rng(seed_ * 977 + 13);
  for (int checkpoint = 0; checkpoint < 3; ++checkpoint) {
    for (int op = 0; op < 12; ++op) {
      ApplyRandomOp(&op_rng);
    }
    SCOPED_TRACE("checkpoint " + std::to_string(checkpoint) + " delta=" +
                 std::to_string(tree_->delta_size()));
    ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(&query_rng));
  }
  EXPECT_GT(tree_->delta_size(), 0u);
  ExpectSolversMatchReference();

  // Fold the delta via Refreeze(): the logical answers must not move, the
  // delta must drain, and the epoch must advance exactly once.
  const uint64_t epoch_before = tree_->epoch();
  ASSERT_TRUE(tree_->Refreeze().ok());
  EXPECT_EQ(tree_->delta_size(), 0u);
  EXPECT_EQ(tree_->epoch(), epoch_before + 1);
  EXPECT_EQ(tree_->refreezes_completed(), 1u);
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(&query_rng));

  // More mutations on the refrozen body, then the synchronous Freeze() fold
  // path (Freeze on an already-frozen tree delegates to Refreeze).
  for (int op = 0; op < 8; ++op) {
    ApplyRandomOp(&op_rng);
  }
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(&query_rng));
  tree_->Freeze();
  EXPECT_EQ(tree_->delta_size(), 0u);
  EXPECT_EQ(tree_->epoch(), epoch_before + 2);
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(&query_rng));
  ExpectSolversMatchReference();
}

TEST_P(DeltaDiffTest, ShuffledDisjointScriptsConverge) {
  // A script touching each id at most once commutes: applying it in any
  // order must yield identical logical sets and identical query answers.
  Rng rng(seed_ * 131 + 3);
  std::vector<std::pair<ObjectId, bool>> script;  // (id, is_insert)
  std::set<ObjectId> picked;
  while (script.size() < 20) {
    const ObjectId id =
        static_cast<ObjectId>(rng.UniformUint64(kNumObjects));
    if (!picked.insert(id).second) {
      continue;
    }
    script.emplace_back(id, live_.count(id) == 0);
  }

  std::vector<ObjectId> base_ids;
  for (ObjectId id = 0; id < kBaseObjects; ++id) {
    base_ids.push_back(id);
  }
  IrTree other(&dataset_, IrTree::Options(), base_ids);
  other.Freeze();

  std::vector<std::pair<ObjectId, bool>> shuffled = script;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1],
              shuffled[static_cast<size_t>(rng.UniformUint64(i))]);
  }
  for (const auto& [id, is_insert] : script) {
    ASSERT_TRUE(
        (is_insert ? tree_->Insert(id) : tree_->Remove(id)).ok());
    if (is_insert) {
      live_.insert(id);
    } else {
      live_.erase(id);
    }
  }
  for (const auto& [id, is_insert] : shuffled) {
    ASSERT_TRUE((is_insert ? other.Insert(id) : other.Remove(id)).ok());
  }

  ASSERT_EQ(tree_->size(), other.size());
  ASSERT_EQ(tree_->delta_size(), other.delta_size());
  tree_->CheckInvariants();
  other.CheckInvariants();

  Rng query_rng(seed_ * 977 + 13);
  ASSERT_NO_FATAL_FAILURE(ExpectMatchesReference(&query_rng));
  for (const CoskqQuery& q : queries_) {
    TermSet m1;
    TermSet m2;
    EXPECT_EQ(tree_->NnSet(q.location, q.keywords, &m1),
              other.NnSet(q.location, q.keywords, &m2));
    EXPECT_EQ(m1, m2);
    EXPECT_EQ(DrainStream(tree_.get(), q.location, q.keywords),
              DrainStream(&other, q.location, q.keywords));
  }
}

TEST_P(DeltaDiffTest, CancellingPairsDrainTheDelta) {
  // Insert-then-remove of a fresh id cancels to nothing...
  const ObjectId fresh = static_cast<ObjectId>(kBaseObjects + seed_ % 40);
  ASSERT_TRUE(tree_->Insert(fresh).ok());
  EXPECT_EQ(tree_->delta_size(), 1u);
  ASSERT_TRUE(tree_->Remove(fresh).ok());
  EXPECT_EQ(tree_->delta_size(), 0u);
  EXPECT_EQ(tree_->size(), kBaseObjects);

  // ...and so does remove-then-reinsert (resurrection) of a base id.
  const ObjectId base_id = static_cast<ObjectId>(seed_ % kBaseObjects);
  ASSERT_TRUE(tree_->Remove(base_id).ok());
  EXPECT_EQ(tree_->delta_size(), 1u);
  ASSERT_TRUE(tree_->Insert(base_id).ok());
  EXPECT_EQ(tree_->delta_size(), 0u);
  EXPECT_EQ(tree_->size(), kBaseObjects);
  tree_->CheckInvariants();

  // The mutation error contract: double-insert of a live id and removal of
  // a never-present id are clean failures, not aborts.
  EXPECT_FALSE(tree_->Insert(base_id).ok());
  EXPECT_FALSE(tree_->Remove(fresh).ok());
  EXPECT_FALSE(tree_->Insert(static_cast<ObjectId>(kNumObjects + 5)).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaDiffTest,
                         ::testing::Range<uint64_t>(0, 50));

}  // namespace
}  // namespace coskq
