#include <gtest/gtest.h>

#include <memory>

#include "core/brute_force.h"
#include "core/cao_appro.h"
#include "core/owner_driven_appro.h"
#include "index/irtree.h"
#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

using ApproSweepParam = std::tuple<size_t, size_t, double, size_t, uint64_t>;

class ApproGuaranteeTest : public ::testing::TestWithParam<ApproSweepParam> {
 protected:
  void SetUp() override {
    const auto [n, vocab, avg_kw, num_kw, seed] = GetParam();
    dataset_ = test::MakeRandomDataset(n, vocab, avg_kw, seed);
    index_ = std::make_unique<IrTree>(&dataset_);
    context_ = CoskqContext{&dataset_, index_.get()};
    num_kw_ = num_kw;
    seed_ = seed;
  }

  Dataset dataset_;
  std::unique_ptr<IrTree> index_;
  CoskqContext context_;
  size_t num_kw_ = 0;
  uint64_t seed_ = 0;
};

// The paper's approximation guarantees, verified against the brute-force
// optimum: MaxSum-Appro <= 1.375 * OPT, Dia-Appro <= sqrt(3) * OPT. The
// approximate answers must also be genuinely feasible and never beat OPT.
TEST_P(ApproGuaranteeTest, WithinProvenRatioOfOptimal) {
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    BruteForceSolver oracle(context_, type);
    OwnerDrivenAppro appro(context_, type);
    const double bound = ApproRatioBound(type);
    for (int trial = 0; trial < 8; ++trial) {
      const CoskqQuery q =
          test::MakeRandomQuery(dataset_, num_kw_, seed_ * 777 + trial);
      const CoskqResult opt = oracle.Solve(q);
      const CoskqResult got = appro.Solve(q);
      ASSERT_EQ(opt.feasible, got.feasible);
      if (!opt.feasible) {
        continue;
      }
      EXPECT_TRUE(SetCoversKeywords(dataset_, q.keywords, got.set));
      EXPECT_GE(got.cost, opt.cost - 1e-12);
      EXPECT_LE(got.cost, bound * opt.cost + 1e-9)
          << CostTypeName(type) << " ratio violated: " << got.cost << " vs "
          << opt.cost;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproGuaranteeTest,
    ::testing::Values(
        ApproSweepParam{80, 12, 2.5, 3, 11},
        ApproSweepParam{120, 20, 3.0, 4, 12},
        ApproSweepParam{200, 25, 3.0, 5, 13},
        ApproSweepParam{200, 30, 4.0, 6, 14},
        ApproSweepParam{300, 20, 3.0, 5, 15},
        ApproSweepParam{150, 15, 2.0, 4, 16},
        ApproSweepParam{100, 10, 3.0, 6, 17},
        ApproSweepParam{250, 35, 3.5, 5, 18}));

// Cao baselines: always feasible, never below OPT; Appro2 never worse than
// trying only N(q)'s cost is not guaranteed in theory for our costs, so we
// assert feasibility + correct pricing only, plus the known ratios on
// average behavior is left to the benches.
TEST_P(ApproGuaranteeTest, CaoBaselinesProduceValidFeasibleSets) {
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    BruteForceSolver oracle(context_, type);
    CaoAppro1 appro1(context_, type);
    CaoAppro2 appro2(context_, type);
    for (int trial = 0; trial < 6; ++trial) {
      const CoskqQuery q =
          test::MakeRandomQuery(dataset_, num_kw_, seed_ * 999 + trial);
      const CoskqResult opt = oracle.Solve(q);
      const CoskqResult a1 = appro1.Solve(q);
      const CoskqResult a2 = appro2.Solve(q);
      ASSERT_EQ(opt.feasible, a1.feasible);
      ASSERT_EQ(opt.feasible, a2.feasible);
      if (!opt.feasible) {
        continue;
      }
      EXPECT_TRUE(SetCoversKeywords(dataset_, q.keywords, a1.set));
      EXPECT_TRUE(SetCoversKeywords(dataset_, q.keywords, a2.set));
      EXPECT_GE(a1.cost, opt.cost - 1e-12);
      EXPECT_GE(a2.cost, opt.cost - 1e-12);
      EXPECT_NEAR(EvaluateCost(type, dataset_, q.location, a1.set), a1.cost,
                  1e-12);
      EXPECT_NEAR(EvaluateCost(type, dataset_, q.location, a2.set), a2.cost,
                  1e-12);
      // Appro2 refines over anchors including N(q)'s coverage of t_f, and
      // in this implementation is seeded with N(q): never worse than A1.
      EXPECT_LE(a2.cost, a1.cost + 1e-12);
    }
  }
}

TEST(OwnerDrivenApproTest, EmptyAndInfeasibleQueries) {
  Dataset ds = test::MakeRandomDataset(60, 10, 3.0, 21);
  const TermId ghost = ds.mutable_vocabulary().GetOrAdd("ghost");
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenAppro appro(ctx, CostType::kMaxSum);
  CoskqQuery empty;
  empty.location = Point{0.5, 0.5};
  EXPECT_TRUE(appro.Solve(empty).feasible);
  EXPECT_EQ(appro.Solve(empty).cost, 0.0);
  CoskqQuery impossible;
  impossible.location = Point{0.5, 0.5};
  impossible.keywords = {ghost};
  EXPECT_FALSE(appro.Solve(impossible).feasible);
}

TEST(OwnerDrivenApproTest, DeterministicAndStable) {
  Dataset ds = test::MakeRandomDataset(200, 20, 3.0, 22);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  OwnerDrivenAppro appro(ctx, CostType::kDia);
  const CoskqQuery q = test::MakeRandomQuery(ds, 5, 23);
  const CoskqResult a = appro.Solve(q);
  const CoskqResult b = appro.Solve(q);
  EXPECT_EQ(a.set, b.set);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(OwnerDrivenApproTest, NeverWorseThanNnSet) {
  // The incumbent starts at N(q), so the answer can only improve on it.
  Dataset ds = test::MakeRandomDataset(250, 25, 3.0, 24);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    OwnerDrivenAppro appro(ctx, type);
    CaoAppro1 nnset(ctx, type);
    for (int trial = 0; trial < 15; ++trial) {
      const CoskqQuery q = test::MakeRandomQuery(ds, 5, 500 + trial);
      EXPECT_LE(appro.Solve(q).cost, nnset.Solve(q).cost + 1e-12);
    }
  }
}

TEST(CaoApproTest, Appro1IsExactlyNnSet) {
  Dataset ds = test::MakeRandomDataset(150, 15, 3.0, 26);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  CaoAppro1 appro1(ctx, CostType::kMaxSum);
  const CoskqQuery q = test::MakeRandomQuery(ds, 4, 27);
  const CoskqResult result = appro1.Solve(q);
  ASSERT_TRUE(result.feasible);
  TermSet missing;
  const auto want = tree.NnSet(q.location, q.keywords, &missing);
  EXPECT_TRUE(missing.empty());
  EXPECT_EQ(result.set, want);
}

TEST(SolverNamesTest, NamesIdentifyAlgorithms) {
  Dataset ds = test::MakeRandomDataset(20, 5, 2.0, 28);
  IrTree tree(&ds);
  CoskqContext ctx{&ds, &tree};
  EXPECT_EQ(OwnerDrivenAppro(ctx, CostType::kMaxSum).name(), "MaxSum-Appro");
  EXPECT_EQ(OwnerDrivenAppro(ctx, CostType::kDia).name(), "Dia-Appro");
  EXPECT_EQ(CaoAppro1(ctx, CostType::kMaxSum).name(), "Cao-Appro1-MaxSum");
  EXPECT_EQ(CaoAppro2(ctx, CostType::kDia).name(), "Cao-Appro2-Dia");
}

}  // namespace
}  // namespace coskq
