#include "core/cost.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "util/random.h"

namespace coskq {
namespace {

Dataset SquareDataset() {
  // Four corners of the unit square plus the center.
  Dataset ds;
  ds.AddObject(Point{0, 0}, {"a"});      // 0
  ds.AddObject(Point{1, 0}, {"b"});      // 1
  ds.AddObject(Point{0, 1}, {"c"});      // 2
  ds.AddObject(Point{1, 1}, {"d"});      // 3
  ds.AddObject(Point{0.5, 0.5}, {"e"});  // 4
  return ds;
}

TEST(CostTest, NamesAndBounds) {
  EXPECT_EQ(CostTypeName(CostType::kMaxSum), "MaxSum");
  EXPECT_EQ(CostTypeName(CostType::kDia), "Dia");
  EXPECT_DOUBLE_EQ(ApproRatioBound(CostType::kMaxSum), 1.375);
  EXPECT_DOUBLE_EQ(ApproRatioBound(CostType::kDia), std::sqrt(3.0));
}

TEST(CostTest, HandComputedComponents) {
  Dataset ds = SquareDataset();
  const Point q{0, 0};
  const std::vector<ObjectId> set{1, 2, 3};
  const CostComponents c = ComputeComponents(ds, q, set);
  EXPECT_DOUBLE_EQ(c.max_query_dist, std::sqrt(2.0));  // To (1,1).
  EXPECT_DOUBLE_EQ(c.max_pairwise_dist, std::sqrt(2.0));  // (1,0)-(0,1).
  EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kMaxSum, ds, q, set),
                   2.0 * std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kDia, ds, q, set), std::sqrt(2.0));
}

TEST(CostTest, SingletonSet) {
  Dataset ds = SquareDataset();
  const Point q{0, 0};
  const std::vector<ObjectId> set{3};
  EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kMaxSum, ds, q, set),
                   std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kDia, ds, q, set), std::sqrt(2.0));
}

TEST(CostTest, EmptySetCostsZero) {
  Dataset ds = SquareDataset();
  EXPECT_EQ(EvaluateCost(CostType::kMaxSum, ds, Point{0, 0}, {}), 0.0);
  EXPECT_EQ(EvaluateCost(CostType::kDia, ds, Point{0, 0}, {}), 0.0);
}

TEST(CostTest, SetCoversKeywords) {
  Dataset ds = SquareDataset();
  const TermId a = ds.vocabulary().Find("a");
  const TermId b = ds.vocabulary().Find("b");
  TermSet want{a, b};
  NormalizeTermSet(&want);
  EXPECT_TRUE(SetCoversKeywords(ds, want, {0, 1}));
  EXPECT_FALSE(SetCoversKeywords(ds, want, {0, 2}));
  EXPECT_TRUE(SetCoversKeywords(ds, {}, {}));
}

TEST(CostTest, FindDistanceOwners) {
  Dataset ds = SquareDataset();
  const Point q{0, 0};
  const DistanceOwners owners = FindDistanceOwners(ds, q, {1, 2, 3, 4});
  EXPECT_EQ(owners.query_owner, 3u);  // (1,1) farthest from origin.
  // Farthest pair: (1,0)-(0,1) at sqrt(2) — same as corner pairs with (1,1)?
  // d((1,0),(0,1)) = sqrt(2); d((1,0),(1,1)) = 1. So the pair is {1,2}.
  EXPECT_EQ(owners.pair_first, 1u);
  EXPECT_EQ(owners.pair_second, 2u);
}

TEST(CostTest, OwnersOfSingleton) {
  Dataset ds = SquareDataset();
  const DistanceOwners owners = FindDistanceOwners(ds, Point{0, 0}, {4});
  EXPECT_EQ(owners.query_owner, 4u);
  EXPECT_EQ(owners.pair_first, 4u);
  EXPECT_EQ(owners.pair_second, 4u);
}

class TrackerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrackerPropertyTest, TrackerMatchesBatchEvaluation) {
  Dataset ds = test::MakeRandomDataset(200, 30, 3.0, GetParam());
  Rng rng(GetParam() + 1);
  for (CostType type : {CostType::kMaxSum, CostType::kDia}) {
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    SetCostTracker tracker(&ds, q, type);
    std::vector<ObjectId> set;
    double last_cost = 0.0;
    for (int step = 0; step < 12; ++step) {
      const ObjectId id = static_cast<ObjectId>(rng.UniformUint64(200));
      tracker.Push(id);
      set.push_back(id);
      std::vector<ObjectId> dedup = set;
      std::sort(dedup.begin(), dedup.end());
      dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
      EXPECT_NEAR(tracker.cost(), EvaluateCost(type, ds, q, dedup), 1e-12);
      // Monotone non-decreasing under Push.
      EXPECT_GE(tracker.cost(), last_cost - 1e-15);
      last_cost = tracker.cost();
      EXPECT_TRUE(tracker.Contains(id));
    }
    // Pop everything back and verify the stack unwinds exactly.
    for (int step = 11; step >= 0; --step) {
      tracker.Pop();
      set.pop_back();
      std::vector<ObjectId> dedup = set;
      std::sort(dedup.begin(), dedup.end());
      dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
      EXPECT_NEAR(tracker.cost(), EvaluateCost(type, ds, q, dedup), 1e-12);
    }
    EXPECT_EQ(tracker.size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15));

TEST(CostTest, DiaIsMaxOfComponents) {
  Rng rng(77);
  Dataset ds = test::MakeRandomDataset(100, 20, 3.0, 78);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<ObjectId> set;
    for (int i = 0; i < 4; ++i) {
      set.push_back(static_cast<ObjectId>(rng.UniformUint64(100)));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    const Point q{rng.UniformDouble(), rng.UniformDouble()};
    const CostComponents c = ComputeComponents(ds, q, set);
    EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kDia, ds, q, set),
                     std::max(c.max_query_dist, c.max_pairwise_dist));
    EXPECT_DOUBLE_EQ(EvaluateCost(CostType::kMaxSum, ds, q, set),
                     c.max_query_dist + c.max_pairwise_dist);
    // MaxSum dominates Dia.
    EXPECT_GE(EvaluateCost(CostType::kMaxSum, ds, q, set),
              EvaluateCost(CostType::kDia, ds, q, set));
  }
}

}  // namespace
}  // namespace coskq
